//! Criterion micro-benchmarks for the building blocks underneath the
//! figure experiments: simulation kernel cycle cost, software probe cost,
//! blocked vs scalar probe kernels, FQP fabric push, and reconfiguration
//! latency.
//!
//! A measuring run (not `--test`) also archives every `(id, ns/iter)`
//! median into a `microbench` run manifest under `target/obs/`, like the
//! figure binaries do.

use criterion::{BatchSize, Criterion};
use std::hint::black_box;

use fqp::assign::assign;
use fqp::fabric::Fabric;
use fqp::plan::{bind, Catalog};
use fqp::query::Query;
use hwsim::{ParSimulator, Simulator};
use joinhw::harness::{build, prefill_steady_state, run_throughput, run_throughput_with};
use joinhw::{DesignParams, FlowModel};
use joinsw::baseline::NestedLoopJoin;
use streamcore::workload::{KeyDist, WorkloadSpec};
use streamcore::{Field, JoinPredicate, Record, Schema, StreamTag, Tuple};

fn hw_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hw_simulation");
    for (name, flow) in [("uniflow", FlowModel::UniFlow), ("biflow", FlowModel::BiFlow)] {
        group.bench_function(format!("{name}_16core_cycle"), |b| {
            let params = DesignParams::new(flow, 16, 1 << 10);
            let mut join = build(&params);
            prefill_steady_state(join.as_mut(), 1 << 10);
            let mut sim = Simulator::new();
            let mut seq = 0u32;
            b.iter(|| {
                // Keep the design saturated while stepping one cycle.
                join.offer(StreamTag::R, Tuple::new(seq, seq));
                seq = seq.wrapping_add(1);
                sim.step(black_box(join.as_mut()));
                if join.pending_results() > 1_024 {
                    join.drain_results();
                }
            });
        });
    }
    group.finish();
}

/// Sequential vs parallel simulation engines driving the same saturated
/// 64-core uni-flow design. Thread counts come from `ACCEL_THREADS` (the
/// CI matrix knob) with 1 and the host width as defaults; the quotient of
/// the two lines is the parallel layer's wall-clock speedup on this host.
fn par_simulation(c: &mut Criterion) {
    const TUPLES: u64 = 64;
    const KEY_DOMAIN: u32 = 1 << 20;
    let params = DesignParams::new(FlowModel::UniFlow, 64, 1 << 12)
        .with_network(joinhw::NetworkKind::Scalable);
    let mut group = c.benchmark_group("par_simulation");
    group.bench_function("sequential_64core_burst", |b| {
        b.iter_batched(
            || {
                let mut join = build(&params);
                prefill_steady_state(join.as_mut(), params.window_size);
                join
            },
            |mut join| black_box(run_throughput(join.as_mut(), TUPLES, KEY_DOMAIN)),
            BatchSize::PerIteration,
        );
    });
    let threads = ParSimulator::auto().threads();
    group.bench_function(format!("parallel_64core_burst_{threads}t"), |b| {
        b.iter_batched(
            || {
                let mut join = build(&params);
                prefill_steady_state(join.as_mut(), params.window_size);
                join
            },
            |mut join| {
                black_box(run_throughput_with(
                    &mut ParSimulator::new(threads),
                    join.as_mut(),
                    TUPLES,
                    KEY_DOMAIN,
                ))
            },
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

fn synthesis_model(c: &mut Criterion) {
    c.bench_function("synthesize_512core_report", |b| {
        let params = DesignParams::new(FlowModel::UniFlow, 512, 1 << 18)
            .with_network(joinhw::NetworkKind::Scalable);
        b.iter(|| params.synthesize(black_box(&hwsim::devices::XC7VX485T)).unwrap());
    });
}

fn sw_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("sw_probe");
    for exp in [10u32, 12, 14] {
        group.bench_function(format!("nested_loop_window_2e{exp}"), |b| {
            let mut join = NestedLoopJoin::new(1 << exp, JoinPredicate::Equi);
            for i in 0..(1u32 << exp) {
                join.prefill(StreamTag::S, Tuple::new(i, i));
            }
            let mut seq = 1u32 << 30;
            b.iter(|| {
                seq = seq.wrapping_add(1);
                black_box(join.process(StreamTag::R, Tuple::new(seq, 0)));
            });
        });
    }
    group.finish();
}

/// The blocked probe kernels against the scalar sweep on raw key
/// arrays: one batch of 256 probes against one window-sized slice, the
/// exact shape the SplitJoin workers hand to `streamcore::kernel`.
fn sw_kernel(c: &mut Criterion) {
    use streamcore::kernel::{count_block, emit_block, KernelStats};

    let mut group = c.benchmark_group("sw_kernel");
    const PROBES: usize = 256;
    for exp in [10u32, 12, 14] {
        let keys: Vec<u32> = (0..1u32 << exp)
            .map(|i| i.wrapping_mul(2_654_435_761) % (1 << 20))
            .collect();
        let probes: Vec<u32> = (0..PROBES as u32)
            .map(|i| i.wrapping_mul(2_246_822_519) % (1 << 20))
            .collect();
        group.bench_function(format!("scalar_count_256x2e{exp}"), |b| {
            b.iter(|| {
                let total: u64 = probes
                    .iter()
                    .map(|&p| {
                        JoinPredicate::Equi.count_matches(p, true, black_box(&keys)) as u64
                    })
                    .sum();
                black_box(total)
            });
        });
        group.bench_function(format!("blocked_count_256x2e{exp}"), |b| {
            let mut stats = KernelStats::default();
            b.iter(|| {
                black_box(count_block(
                    JoinPredicate::Equi,
                    true,
                    black_box(&probes),
                    black_box(&keys),
                    &mut stats,
                ))
            });
        });
        group.bench_function(format!("blocked_emit_256x2e{exp}"), |b| {
            let mut stats = KernelStats::default();
            b.iter(|| {
                let mut hits = 0u64;
                emit_block(
                    JoinPredicate::Equi,
                    true,
                    black_box(&probes),
                    black_box(&keys),
                    &mut stats,
                    |_, _| hits += 1,
                );
                black_box(hits)
            });
        });
    }
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    c.bench_function("workload_generate_10k", |b| {
        let spec = WorkloadSpec::new(10_000, KeyDist::Uniform { domain: 1 << 16 });
        b.iter(|| black_box(spec.generate().count()));
    });
}

fn select_variants(c: &mut Criterion) {
    use fqp::opblock::{BlockId, BlockProgram, OpBlock, Port};
    use fqp::plan::BoundCondition;
    use fqp::query::CmpOp;

    let mut group = c.benchmark_group("select_variants");
    let conditions = vec![
        BoundCondition { field: 0, op: CmpOp::Gt, value: 10 },
        BoundCondition { field: 1, op: CmpOp::Lt, value: 90 },
        BoundCondition { field: 2, op: CmpOp::Eq, value: 1 },
    ];
    group.bench_function("conjunction_3_conditions", |b| {
        let mut block = OpBlock::new(BlockId(0));
        block.reprogram(BlockProgram::Select {
            conditions: conditions.clone(),
        });
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(block.process(Port::Left, Record::new(vec![i % 100, i % 97, i % 2])))
        });
    });
    group.bench_function("truth_table_3_atoms", |b| {
        // Equivalent conjunction as a precomputed table (only mask 0b111
        // passes).
        let table: Vec<bool> = (0..8).map(|m| m == 7).collect();
        let mut block = OpBlock::new(BlockId(1));
        block.reprogram(BlockProgram::TruthTableSelect {
            atoms: conditions.clone(),
            table,
        });
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(block.process(Port::Left, Record::new(vec![i % 100, i % 97, i % 2])))
        });
    });
    group.finish();
}

fn datapath_push(c: &mut Criterion) {
    use fqp::datapath::canonical_path;
    use fqp::opblock::BlockProgram;
    use fqp::plan::BoundCondition;
    use fqp::query::CmpOp;

    c.bench_function("datapath_active_switch_push", |b| {
        let mut path = canonical_path();
        path.activate(
            1,
            BlockProgram::Select {
                conditions: vec![BoundCondition { field: 0, op: CmpOp::Gt, value: 90 }],
            },
        )
        .unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            path.push(Record::new(vec![i % 100]));
            if i.is_multiple_of(4_096) {
                path.take_delivered();
            }
        });
    });
}

fn fqp_fabric(c: &mut Criterion) {
    let mut catalog = Catalog::new();
    catalog.register(
        "customers",
        Schema::new(vec![
            Field::new("product_id", 32).unwrap(),
            Field::new("age", 8).unwrap(),
        ])
        .unwrap(),
    );
    catalog.register(
        "products",
        Schema::new(vec![
            Field::new("product_id", 32).unwrap(),
            Field::new("price", 32).unwrap(),
        ])
        .unwrap(),
    );
    let plan = bind(
        &Query::parse(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 256",
        )
        .unwrap(),
        &catalog,
    )
    .unwrap();

    c.bench_function("fabric_push_select_join", |b| {
        let mut fabric = Fabric::new(4);
        let handle = assign(&plan, &mut fabric).unwrap();
        for i in 0..256u64 {
            fabric.push("products", Record::new(vec![i, i * 2])).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            fabric
                .push("customers", Record::new(vec![i % 256, 30]))
                .unwrap();
            if i.is_multiple_of(1_024) {
                fabric.take_sink(handle.sink).unwrap();
            }
        });
    });

    c.bench_function("fabric_assign_and_remove", |b| {
        b.iter_batched(
            || Fabric::new(4),
            |mut fabric| {
                let handle = assign(black_box(&plan), &mut fabric).unwrap();
                fqp::assign::remove(&handle, &mut fabric).unwrap();
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("query_parse_and_bind", |b| {
        b.iter(|| {
            let q = Query::parse(black_box(
                "SELECT age FROM customers WHERE age > 25 \
                 JOIN products ON product_id WINDOW 1536",
            ))
            .unwrap();
            bind(&q, &catalog).unwrap()
        });
    });
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    hw_simulation(&mut criterion);
    par_simulation(&mut criterion);
    synthesis_model(&mut criterion);
    sw_probe(&mut criterion);
    sw_kernel(&mut criterion);
    workload_generation(&mut criterion);
    select_variants(&mut criterion);
    datapath_push(&mut criterion);
    fqp_fabric(&mut criterion);

    // Archive the medians like the figure binaries archive their runs.
    if !criterion.results().is_empty() {
        let mut m = bench::obsout::manifest("microbench");
        for (id, ns) in criterion.results() {
            m.counter(format!("{id}.ns_per_iter"), ns.round() as u64);
        }
        bench::obsout::emit(&m);
    }
}
