//! Prints every figure and table of the evaluation in paper order.
//! Pass `--csv` for machine-readable output.
fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    for table in bench::all() {
        if csv {
            println!("{}", table.to_csv());
        } else {
            println!("{table}");
        }
    }
}
