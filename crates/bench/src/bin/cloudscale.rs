//! Projection: uni-flow stream joins on the AWS F1 FPGA (XCVU9P).
fn main() {
    println!("{}", bench::cloudscale_projection());
}
