//! Ablation: original vs low-latency handshake join result deferral.
fn main() {
    println!("{}", bench::deferral_ablation());
}
