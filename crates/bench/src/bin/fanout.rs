//! Ablation: scalable-network tree fan-out (paper future work, Fig. 9 discussion).
fn main() {
    println!("{}", bench::fanout_ablation());
}
