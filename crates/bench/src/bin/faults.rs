//! Fault-injection sweep: scripted kill/stall/drop scenarios against the
//! SplitJoin runtime versus throughput and match completeness. Run with
//! --release.
//!
//! Each scenario replays the same workload under a different
//! deterministic [`joinsw::FaultPlan`] and reports wall-clock
//! throughput, the match count versus the strict single-threaded
//! reference (completeness), and the runtime's own damage accounting
//! (orphaned/readopted tuples, recovery latency). The acceptance
//! scenario — kill worker 1 at batch 100 on 4 cores — also publishes
//! its `fault.*` counters and the `fault.recovery_ns` histogram into
//! the `faults` run manifest.
//!
//! Accepts `--cores N` (first value used), `--windows LO..HI` (first
//! exponent used), and `--batch N`.

use std::time::Instant;

use joinsw::baseline::reference_join;
use joinsw::splitjoin::{JoinOutcome, SplitJoin, SplitJoinConfig};
use joinsw::{FaultPlan, JoinError};
use streamcore::{JoinPredicate, StreamTag, Tuple};

use bench::swjoin::SwRunOpts;

const TUPLES: usize = 60_000;
const KEY_DOMAIN: u32 = 64;

fn workload() -> Vec<(StreamTag, Tuple)> {
    (0..TUPLES)
        .map(|seq| {
            let tag = if seq % 2 == 0 { StreamTag::R } else { StreamTag::S };
            let key = ((seq as u32).wrapping_mul(2_654_435_761) >> 16) % KEY_DOMAIN;
            (tag, Tuple::new(key, seq as u32))
        })
        .collect()
}

fn run_scenario(
    config: SplitJoinConfig,
    inputs: &[(StreamTag, Tuple)],
) -> Result<(f64, JoinOutcome), JoinError> {
    let join = SplitJoin::spawn(config.counting_only());
    let start = Instant::now();
    for &(tag, t) in inputs {
        join.process(tag, t)?;
    }
    join.flush()?;
    let secs = start.elapsed().as_secs_f64();
    let outcome = join.shutdown()?;
    Ok((inputs.len() as f64 / secs / 1e6, outcome))
}

fn main() {
    let opts = SwRunOpts::from_args();
    let cores = opts.cores.clone().and_then(|c| c.first().copied()).unwrap_or(4);
    let exp = opts
        .windows
        .clone()
        .map(|w| *w.start())
        .unwrap_or(9);
    let window = 1usize << exp;
    let batch = opts.batch_size;
    let inputs = workload();
    let reference = reference_join(&inputs, window, JoinPredicate::Equi).len() as u64;

    let scenarios: &[(&str, &str, bool)] = &[
        ("baseline", "", false),
        ("kill1@100", "kill1@100", false),
        ("kill1@100 +replicate", "kill1@100", true),
        ("stall0@3x25", "stall0@3x25", false),
        ("drop0@5", "drop0@5", false),
    ];

    let mut m = bench::obsout::manifest("faults");
    m.config("cores", cores);
    m.config("window", format!("2^{exp}"));
    m.config("tuples", TUPLES);
    m.config("batch_size", batch);
    m.config("reference_matches", reference);

    let mut t = bench::Table::new(
        format!("Fault injection — SplitJoin on {cores} cores, window 2^{exp}"),
        &[
            "scenario",
            "Mt/s",
            "matches",
            "completeness",
            "orphaned",
            "readopted",
            "lost workers",
        ],
    );
    for &(label, spec, replicate) in scenarios {
        let plan = if spec.is_empty() {
            FaultPlan::none()
        } else {
            FaultPlan::parse(spec).expect("scenario spec parses")
        };
        let mut config = SplitJoinConfig::new(cores, window)
            .with_batch_size(batch)
            .with_fault_plan(plan);
        if replicate {
            config = config.with_replication();
        }
        let (mtps, outcome) =
            run_scenario(config, &inputs).expect("degraded runs still complete");
        let completeness = 100.0 * outcome.result_count as f64 / reference as f64;
        t.row(vec![
            label.to_string(),
            format!("{mtps:.5}"),
            outcome.result_count.to_string(),
            format!("{completeness:.2}%"),
            outcome.fault.orphaned_tuples.to_string(),
            outcome.fault.readopted_tuples.to_string(),
            format!("{:?}", outcome.fault.workers_lost),
        ]);
        let key = label.replace([' ', '@'], "_");
        m.config(format!("{key}.mtps"), format!("{mtps:.5}"));
        m.config(format!("{key}.completeness"), format!("{completeness:.4}"));
        if label == "kill1@100" {
            // The acceptance scenario's damage accounting is the
            // manifest's counter set and recovery-latency histogram.
            m.record_registry(&outcome.registry());
            m.histogram("fault.recovery_ns", outcome.fault.recovery_ns.clone());
        }
    }
    t.note(format!(
        "completeness = matches / strict reference ({reference}); orphaned tuples \
         are sub-window entries that died with their worker"
    ));
    t.note("re-replication re-adopts every orphan onto the survivors");
    println!("{t}");
    bench::obsout::emit(&m);
}
