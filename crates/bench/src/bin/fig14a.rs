//! Regenerates the paper's fig14a experiment. Run with --release.
fn main() {
    println!("{}", bench::fig14a());
}
