//! Regenerates the paper's fig14a experiment. Run with --release.
//!
//! Prints the table to stdout and writes a run manifest to
//! `target/obs/fig14a.json` (or `$ACCEL_OBS_DIR`).
fn main() {
    let (t, m) = bench::fig14a_run();
    println!("{t}");
    bench::obsout::emit(&m);
}
