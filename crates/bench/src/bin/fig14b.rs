//! Regenerates the paper's fig14b experiment. Run with --release.
//!
//! Prints the table to stdout and writes a run manifest to
//! `target/obs/fig14b.json` (or `$ACCEL_OBS_DIR`). Pass `--trace [N]`
//! to also record span rings and 1-in-N tuple provenance and export a
//! Chrome/Perfetto timeline to `target/obs/fig14b.trace.json`.
fn main() {
    bench::trace_setup();
    let (t, m) = bench::fig14b_run();
    println!("{t}");
    bench::obsout::emit(&m);
    bench::obsout::emit_harvest("fig14b");
}
