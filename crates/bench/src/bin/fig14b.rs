//! Regenerates the paper's fig14b experiment. Run with --release.
fn main() {
    println!("{}", bench::fig14b());
}
