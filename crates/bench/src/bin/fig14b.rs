//! Regenerates the paper's fig14b experiment. Run with --release.
//!
//! Prints the table to stdout and writes a run manifest to
//! `target/obs/fig14b.json` (or `$ACCEL_OBS_DIR`).
fn main() {
    let (t, m) = bench::fig14b_run();
    println!("{t}");
    bench::obsout::emit(&m);
}
