//! Regenerates the paper's fig14c experiment. Run with --release.
//!
//! Pass `--threads N` to also run every point on an N-wide parallel
//! simulation pool and report the wall-clock speedup (the measured
//! throughput itself is engine-invariant). The run manifest written to
//! `target/obs/fig14c.json` then carries per-worker busy/wait cycles.
//! Pass `--trace [N]` to also record span rings and 1-in-N tuple
//! provenance and export a Chrome/Perfetto timeline to
//! `target/obs/fig14c.trace.json`.
fn main() {
    bench::trace_setup();
    let (t, m) = match bench::threads_from_args() {
        Some(threads) => bench::fig14c_threads_run(threads),
        None => bench::fig14c_run(),
    };
    println!("{t}");
    bench::obsout::emit(&m);
    bench::obsout::emit_harvest("fig14c");
}
