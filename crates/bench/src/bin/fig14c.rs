//! Regenerates the paper's fig14c experiment. Run with --release.
fn main() {
    println!("{}", bench::fig14c());
}
