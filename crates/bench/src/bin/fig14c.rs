//! Regenerates the paper's fig14c experiment. Run with --release.
//!
//! Pass `--threads N` to also run every point on an N-wide parallel
//! simulation pool and report the wall-clock speedup (the measured
//! throughput itself is engine-invariant).
fn main() {
    match bench::threads_from_args() {
        Some(threads) => println!("{}", bench::fig14c_threads(threads)),
        None => println!("{}", bench::fig14c()),
    }
}
