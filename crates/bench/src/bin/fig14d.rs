//! Regenerates the paper's fig14d experiment. Run with --release.
//!
//! Accepts `--batch N`, `--cores A,B,...`, `--windows LO..HI`
//! (inclusive exponent range), `--trace [N]` (export worker span
//! rings to `target/obs/fig14d.trace.json`), `--live [MS]` (stream a
//! live-telemetry series to `target/obs/fig14d.series.jsonl`), and
//! `--live-port PORT` (serve a Prometheus-style scrape endpoint while
//! the figure runs; implies `--live`). Prints the table to stdout,
//! writes a run manifest to `target/obs/fig14d.json` (or
//! `$ACCEL_OBS_DIR`), and upserts every measured point into
//! `BENCH_swjoin.json` alongside it.
fn main() {
    let opts = bench::swjoin::SwRunOpts::from_args();
    opts.setup_trace();
    let live = opts.setup_live("fig14d");
    let (t, m, entries) = bench::fig14d_run_opts(&opts);
    if let Some(live) = live {
        live.finish();
    }
    println!("{t}");
    bench::obsout::emit(&m);
    bench::swjoin::record(&entries);
    bench::obsout::emit_harvest("fig14d");
}
