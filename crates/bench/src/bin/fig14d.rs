//! Regenerates the paper's fig14d experiment. Run with --release.
//!
//! Prints the table to stdout and writes a run manifest to
//! `target/obs/fig14d.json` (or `$ACCEL_OBS_DIR`).
fn main() {
    let (t, m) = bench::fig14d_run();
    println!("{t}");
    bench::obsout::emit(&m);
}
