//! Regenerates the paper's fig14d experiment. Run with --release.
fn main() {
    println!("{}", bench::fig14d());
}
