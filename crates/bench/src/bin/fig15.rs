//! Regenerates the paper's fig15 experiment. Run with --release.
fn main() {
    println!("{}", bench::fig15());
}
