//! Regenerates the paper's fig15 experiment. Run with --release.
//!
//! Pass `--threads N` to also run every point on an N-wide parallel
//! simulation pool and report the wall-clock speedup (the measured
//! cycle counts are engine-invariant).
fn main() {
    match bench::threads_from_args() {
        Some(threads) => println!("{}", bench::fig15_threads(threads)),
        None => println!("{}", bench::fig15()),
    }
}
