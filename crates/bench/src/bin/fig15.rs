//! Regenerates the paper's fig15 experiment. Run with --release.
//!
//! Pass `--threads N` to also run every point on an N-wide parallel
//! simulation pool and report the wall-clock speedup (the measured
//! cycle counts are engine-invariant). The run manifest written to
//! `target/obs/fig15.json` then carries per-worker busy/wait cycles.
//! Pass `--trace [N]` to also record span rings and 1-in-N tuple
//! provenance and export a Chrome/Perfetto timeline to
//! `target/obs/fig15.trace.json`.
fn main() {
    bench::trace_setup();
    let (t, m) = match bench::threads_from_args() {
        Some(threads) => bench::fig15_threads_run(threads),
        None => bench::fig15_run(),
    };
    println!("{t}");
    bench::obsout::emit(&m);
    bench::obsout::emit_harvest("fig15");
}
