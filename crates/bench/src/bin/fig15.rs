//! Regenerates the paper's fig15 experiment. Run with --release.
//!
//! Pass `--threads N` to also run every point on an N-wide parallel
//! simulation pool and report the wall-clock speedup (the measured
//! cycle counts are engine-invariant). The run manifest written to
//! `target/obs/fig15.json` then carries per-worker busy/wait cycles.
fn main() {
    let (t, m) = match bench::threads_from_args() {
        Some(threads) => bench::fig15_threads_run(threads),
        None => bench::fig15_run(),
    };
    println!("{t}");
    bench::obsout::emit(&m);
}
