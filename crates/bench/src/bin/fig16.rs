//! Regenerates the paper's fig16 experiment. Run with --release.
fn main() {
    println!("{}", bench::fig16());
}
