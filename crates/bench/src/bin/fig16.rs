//! Regenerates the paper's fig16 experiment. Run with --release.
//!
//! Prints the table to stdout and writes a run manifest to
//! `target/obs/fig16.json` (or `$ACCEL_OBS_DIR`).
fn main() {
    let (t, m) = bench::fig16_run();
    println!("{t}");
    bench::obsout::emit(&m);
}
