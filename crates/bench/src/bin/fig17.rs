//! Regenerates the paper's fig17 experiment. Run with --release.
//!
//! Prints the table to stdout and writes a run manifest to
//! `target/obs/fig17.json` (or `$ACCEL_OBS_DIR`).
fn main() {
    let (t, m) = bench::fig17_run();
    println!("{t}");
    bench::obsout::emit(&m);
}
