//! Regenerates the paper's fig17 experiment. Run with --release.
fn main() {
    println!("{}", bench::fig17());
}
