//! Ablation: nested-loop vs hash join cores.
fn main() {
    println!("{}", bench::hashjoin_ablation());
}
