//! Regenerates the kernel figure: scalar vs blocked probe kernels on
//! the software SplitJoin. Run with --release.
//!
//! Accepts `--batch N` (blocked tiles need >= 8 probes per batch),
//! `--windows LO..HI` (inclusive exponent range, default 8..14), and
//! `--samples N` (best-of-N runs per point, default 3 — scheduler
//! noise only depresses a rate), plus `--trace [N]`. Prints the sweep
//! table to stdout, writes a run
//! manifest to `target/obs/kernel.json` (or `$ACCEL_OBS_DIR`), and
//! upserts every measured point into `BENCH_swjoin.json` alongside it.
//! `swjoin_check` gates on the counting-mode speedup these entries
//! record.
fn main() {
    let opts = bench::swjoin::SwRunOpts::from_args();
    opts.setup_trace();
    let (t, m, entries) = bench::kernel_run_opts(&opts);
    println!("{t}");
    bench::obsout::emit(&m);
    bench::swjoin::record(&entries);
    bench::obsout::emit_harvest("kernel");
}
