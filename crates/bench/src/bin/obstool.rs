//! Inspects the artifacts the bench harness drops under `target/obs/`:
//! run manifests (`<figure>.json`) and Chrome/Perfetto trace exports
//! (`<figure>.trace.json`).
//!
//! ```text
//! obstool summarize <manifest.json>
//! obstool diff <baseline.json> <candidate.json> [--tolerance PCT]
//!             [--require PREFIX]
//! obstool trace <file.trace.json>
//! obstool series validate <file.series.jsonl>
//! obstool series summarize <file.series.jsonl>
//! obstool series spark <file.series.jsonl> <key>
//! obstool scrape <ADDR> [--require PREFIX] [--retry N]
//! ```
//!
//! `summarize` prints a manifest's config, counters, and histogram
//! digests. `diff` compares two manifests counter by counter and
//! histogram by histogram, flags relative drifts beyond the tolerance
//! (default 10%), and exits non-zero when anything drifted — the CI
//! determinism smoke runs a figure twice and diffs the manifests.
//! `--require PREFIX` additionally fails the diff unless the candidate
//! manifest carries at least one counter or histogram under that prefix
//! (the CI fault leg asserts `fault.*` made it into the schema).
//! `trace` validates a trace export against the Chrome trace-event
//! schema and summarizes spans per track.
//!
//! `series` works on the live-telemetry time-series artifacts
//! (`<figure>.series.jsonl`, written by the `--live` flag of the figure
//! binaries): `validate` strictly checks the schema (CI runs it on the
//! bench-smoke artifacts), `summarize` prints per-key digests and
//! rates, and `spark` renders one key's trajectory as a sparkline.
//! `scrape` performs a single HTTP scrape of a running figure's
//! `--live-port` endpoint, printing the exposition; `--require PREFIX`
//! fails unless a sample under the prefix is present (dots in the
//! prefix are matched against the sanitized exposition names), and
//! `--retry N` retries a refused connection (the endpoint racing CI).

use std::process::ExitCode;

use obs::json::Json;
use obs::RunManifest;

fn usage() -> ExitCode {
    eprintln!(
        "usage: obstool summarize <manifest.json>\n\
        \x20      obstool diff <baseline.json> <candidate.json> [--tolerance PCT]\n\
        \x20                   [--require PREFIX]\n\
        \x20      obstool trace <file.trace.json>\n\
        \x20      obstool series validate|summarize <file.series.jsonl>\n\
        \x20      obstool series spark <file.series.jsonl> <key>\n\
        \x20      obstool scrape <ADDR> [--require PREFIX] [--retry N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("summarize") if args.len() == 2 => summarize(&args[1]),
        Some("diff") => match parse_diff_args(&args[1..]) {
            Some((a, b, tol, require)) => diff(a, b, tol, require),
            None => return usage(),
        },
        Some("trace") if args.len() == 2 => trace(&args[1]),
        Some("series") => match args.get(1).map(String::as_str) {
            Some("validate") if args.len() == 3 => series_validate(&args[2]),
            Some("summarize") if args.len() == 3 => series_summarize(&args[2]),
            Some("spark") if args.len() == 4 => series_spark(&args[2], &args[3]),
            _ => return usage(),
        },
        Some("scrape") => match parse_scrape_args(&args[1..]) {
            Some((addr, require, retries)) => scrape(addr, require, retries),
            None => return usage(),
        },
        _ => return usage(),
    };
    match result {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_diff_args(rest: &[String]) -> Option<(&str, &str, f64, Option<&str>)> {
    let mut paths = Vec::new();
    let mut tolerance = 10.0;
    let mut require = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--tolerance" => {
                tolerance = rest.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            flag if flag.starts_with("--tolerance=") => {
                tolerance = flag["--tolerance=".len()..].parse().ok()?;
                i += 1;
            }
            "--require" => {
                require = Some(rest.get(i + 1)?.as_str());
                i += 2;
            }
            flag if flag.starts_with("--require=") => {
                require = Some(&rest[i]["--require=".len()..]);
                i += 1;
            }
            path => {
                paths.push(path);
                i += 1;
            }
        }
    }
    if paths.len() == 2 && tolerance >= 0.0 {
        Some((paths[0], paths[1], tolerance, require))
    } else {
        None
    }
}

fn load_manifest(path: &str) -> Result<RunManifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    RunManifest::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn summarize(path: &str) -> Result<bool, String> {
    let m = load_manifest(path)?;
    println!("manifest {} (git {}, threads {})", m.name(), obs_rev(&m), m.threads());
    if !m.config_entries().is_empty() {
        println!("config:");
        for (k, v) in m.config_entries() {
            println!("  {k} = {v}");
        }
    }
    let mut counters: Vec<(&str, u64)> = m.counters().iter().collect();
    counters.sort();
    if !counters.is_empty() {
        println!("counters:");
        for (k, v) in counters {
            println!("  {k} = {v}");
        }
    }
    if !m.histograms().is_empty() {
        println!("histograms:");
        for (name, h) in m.histograms() {
            println!(
                "  {name}: n={} sum={} p50={} p99={} max={}",
                h.total(),
                h.sum().unwrap_or(0),
                h.p50().unwrap_or(0),
                h.p99().unwrap_or(0),
                h.max().unwrap_or(0),
            );
        }
    }
    Ok(true)
}

/// The manifest's recorded git revision. (A free function only because
/// `RunManifest` exposes it via serialization, not a getter.)
fn obs_rev(m: &RunManifest) -> String {
    Json::parse(&m.to_json())
        .ok()
        .and_then(|j| j.get("git_rev").and_then(Json::as_str).map(String::from))
        .unwrap_or_default()
}

/// One drifted metric: `(metric, baseline, candidate, relative %)`.
type Drift = (String, f64, f64, f64);

/// Relative drift of `b` versus baseline `a`, in percent. A change from
/// zero is infinite drift — any tolerance flags it.
fn drift_pct(a: f64, b: f64) -> f64 {
    if a == b {
        0.0
    } else if a == 0.0 {
        f64::INFINITY
    } else {
        100.0 * (b - a).abs() / a.abs()
    }
}

/// Compares every counter and histogram digest present in either
/// manifest; returns the drifts beyond `tolerance` percent. A metric
/// missing on one side counts as zero there (infinite drift).
fn manifest_drifts(a: &RunManifest, b: &RunManifest, tolerance: f64) -> Vec<Drift> {
    let mut out = Vec::new();
    let mut check = |metric: String, va: f64, vb: f64| {
        if drift_pct(va, vb) > tolerance {
            out.push((metric, va, vb, drift_pct(va, vb)));
        }
    };
    let mut names: Vec<&str> = a.counters().iter().map(|(k, _)| k).collect();
    for (k, _) in b.counters().iter() {
        if !names.contains(&k) {
            names.push(k);
        }
    }
    names.sort_unstable();
    for name in names {
        let va = a.counters().get(name).unwrap_or(0) as f64;
        let vb = b.counters().get(name).unwrap_or(0) as f64;
        check(name.to_string(), va, vb);
    }
    let digest = |m: &RunManifest, name: &str| -> Option<(f64, f64)> {
        m.histograms()
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| (h.total() as f64, h.sum().unwrap_or(0) as f64))
    };
    let mut hnames: Vec<&str> = a.histograms().iter().map(|(n, _)| n.as_str()).collect();
    for (n, _) in b.histograms() {
        if !hnames.contains(&n.as_str()) {
            hnames.push(n);
        }
    }
    hnames.sort_unstable();
    for name in hnames {
        let (na, sa) = digest(a, name).unwrap_or((0.0, 0.0));
        let (nb, sb) = digest(b, name).unwrap_or((0.0, 0.0));
        check(format!("hist {name} (count)"), na, nb);
        check(format!("hist {name} (sum)"), sa, sb);
    }
    out
}

/// Metric names (counters and histograms) in `m` under `prefix`.
fn metrics_under<'m>(m: &'m RunManifest, prefix: &str) -> Vec<&'m str> {
    let mut names: Vec<&str> = m
        .counters()
        .iter()
        .map(|(k, _)| k)
        .filter(|k| k.starts_with(prefix))
        .collect();
    names.extend(
        m.histograms()
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| n.starts_with(prefix)),
    );
    names.sort_unstable();
    names
}

fn diff(
    a_path: &str,
    b_path: &str,
    tolerance: f64,
    require: Option<&str>,
) -> Result<bool, String> {
    let a = load_manifest(a_path)?;
    let b = load_manifest(b_path)?;
    if let Some(prefix) = require {
        let present = metrics_under(&b, prefix);
        if present.is_empty() {
            println!(
                "FAIL: `{}` carries no counter or histogram under `{prefix}*`",
                b.name()
            );
            return Ok(false);
        }
        println!(
            "required `{prefix}*` present in `{}`: {}",
            b.name(),
            present.join(", ")
        );
    }
    let drifts = manifest_drifts(&a, &b, tolerance);
    if drifts.is_empty() {
        println!(
            "OK: `{}` matches `{}` within {tolerance}% ({} counters, {} histograms)",
            b.name(),
            a.name(),
            a.counters().len(),
            a.histograms().len(),
        );
        return Ok(true);
    }
    println!(
        "{} metric(s) drifted beyond {tolerance}% ({a_path} -> {b_path}):",
        drifts.len()
    );
    for (metric, va, vb, pct) in &drifts {
        println!("  {metric}: {va} -> {vb} ({pct:.1}%)");
    }
    Ok(false)
}

fn trace(path: &str) -> Result<bool, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let summary = obs::trace::validate(&doc).map_err(|e| format!("{path}: {e}"))?;
    println!("valid Chrome trace: {} span(s), {} dropped", summary.spans, summary.dropped);
    for (track, spans) in &summary.tracks {
        println!("  {track}: {spans} span(s)");
    }
    Ok(true)
}

fn load_series(path: &str) -> Result<obs::series::SeriesDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    obs::series::SeriesDoc::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn series_validate(path: &str) -> Result<bool, String> {
    let doc = load_series(path)?;
    println!(
        "valid series: {} ({} samples, {} keys, {:.2}s span, {}ms interval, git {})",
        doc.header.name,
        doc.samples.len(),
        doc.keys().len(),
        doc.span_ns() as f64 / 1e9,
        doc.header.interval_ms,
        doc.header.git_rev,
    );
    Ok(true)
}

fn series_summarize(path: &str) -> Result<bool, String> {
    let doc = load_series(path)?;
    println!(
        "series {} (git {}, {}ms interval, {} samples over {:.2}s)",
        doc.header.name,
        doc.header.git_rev,
        doc.header.interval_ms,
        doc.samples.len(),
        doc.span_ns() as f64 / 1e9,
    );
    if !doc.header.config.is_empty() {
        println!("config:");
        for (k, v) in &doc.header.config {
            println!("  {k} = {v}");
        }
    }
    println!("keys:");
    for key in doc.keys() {
        let points = doc.series_of(key);
        let first = points.first().map_or(0, |&(_, v)| v);
        let last = points.last().map_or(0, |&(_, v)| v);
        let max = points.iter().map(|&(_, v)| v).max().unwrap_or(0);
        match doc.rate_of(key) {
            Some(rate) if last >= first => println!(
                "  {key}: {first} -> {last} (max {max}, {rate:.1}/s)"
            ),
            _ => println!("  {key}: {first} -> {last} (max {max})"),
        }
    }
    Ok(true)
}

/// Renders `values` as a fixed-palette sparkline, downsampled (by
/// bucket max) to at most `width` columns. Empty input renders empty.
fn sparkline(values: &[u64], width: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let buckets: Vec<u64> = if values.len() <= width {
        values.to_vec()
    } else {
        (0..width)
            .map(|b| {
                let lo = b * values.len() / width;
                let hi = ((b + 1) * values.len() / width).max(lo + 1);
                values[lo..hi].iter().copied().max().unwrap_or(0)
            })
            .collect()
    };
    let lo = buckets.iter().copied().min().unwrap_or(0);
    let hi = buckets.iter().copied().max().unwrap_or(0);
    let span = (hi - lo).max(1);
    buckets
        .iter()
        .map(|&v| LEVELS[((v - lo) * (LEVELS.len() as u64 - 1) / span) as usize])
        .collect()
}

fn series_spark(path: &str, key: &str) -> Result<bool, String> {
    let doc = load_series(path)?;
    let points = doc.series_of(key);
    if points.is_empty() {
        let known = doc.keys().join(", ");
        return Err(format!("key `{key}` not in series (known keys: {known})"));
    }
    let values: Vec<u64> = points.iter().map(|&(_, v)| v).collect();
    let min = values.iter().copied().min().unwrap_or(0);
    let max = values.iter().copied().max().unwrap_or(0);
    println!("{key} ({} points, min {min}, max {max})", values.len());
    println!("{}", sparkline(&values, 72));
    Ok(true)
}

fn parse_scrape_args(rest: &[String]) -> Option<(&str, Option<&str>, u32)> {
    let mut addr = None;
    let mut require = None;
    let mut retries = 0u32;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--require" => {
                require = Some(rest.get(i + 1)?.as_str());
                i += 2;
            }
            flag if flag.starts_with("--require=") => {
                require = Some(&rest[i]["--require=".len()..]);
                i += 1;
            }
            "--retry" => {
                retries = rest.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            flag if flag.starts_with("--retry=") => {
                retries = flag["--retry=".len()..].parse().ok()?;
                i += 1;
            }
            a if addr.is_none() && !a.starts_with("--") => {
                addr = Some(a);
                i += 1;
            }
            _ => return None,
        }
    }
    addr.map(|a| (a, require, retries))
}

/// Prometheus exposition names replace everything outside
/// `[a-zA-Z0-9_:]` with `_` — apply the same mapping to a dotted
/// `--require` prefix so `splitjoin.` matches `splitjoin_…` samples.
fn sanitize_prefix(prefix: &str) -> String {
    prefix
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn scrape(addr: &str, require: Option<&str>, retries: u32) -> Result<bool, String> {
    let want = require.map(sanitize_prefix);
    let mut attempt = 0;
    loop {
        // Both failure modes are retryable while attempts remain: a
        // refused connection (endpoint not up yet) and a scrape where
        // the required prefix has not registered yet (the figure's
        // first engine has not spawned) — CI races both.
        match obs::scrape::scrape_once(addr) {
            Ok(body) => {
                let hits = want.as_ref().map(|w| {
                    body.lines()
                        .filter(|l| !l.starts_with('#') && l.starts_with(w.as_str()))
                        .count()
                });
                match hits {
                    Some(0) if attempt >= retries => {
                        print!("{body}");
                        println!("FAIL: no sample under `{}*` in the scrape", require.unwrap_or(""));
                        return Ok(false);
                    }
                    Some(0) => eprintln!(
                        "scrape {addr} attempt {}/{retries}: required prefix absent; retrying",
                        attempt + 1
                    ),
                    found => {
                        print!("{body}");
                        if let (Some(prefix), Some(n)) = (require, found) {
                            println!("required `{prefix}*` present: {n} sample(s)");
                        }
                        return Ok(true);
                    }
                }
            }
            Err(e) if attempt >= retries => return Err(format!("scrape {addr}: {e}")),
            Err(e) => {
                eprintln!("scrape {addr} attempt {}/{retries} failed: {e}; retrying", attempt + 1);
            }
        }
        attempt += 1;
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(counter: u64, hist_vals: &[u64]) -> RunManifest {
        let mut m = RunManifest::new("t");
        m.counter("tuples", counter);
        let mut h = obs::Histogram::new();
        for &v in hist_vals {
            h.record_value(v);
        }
        m.histogram("lat", h);
        m
    }

    #[test]
    fn identical_manifests_have_no_drift() {
        let a = manifest(100, &[5, 9]);
        assert!(manifest_drifts(&a, &manifest(100, &[5, 9]), 0.0).is_empty());
    }

    #[test]
    fn counter_drift_beyond_tolerance_is_flagged() {
        let a = manifest(100, &[5]);
        let b = manifest(125, &[5]);
        assert!(manifest_drifts(&a, &b, 30.0).is_empty());
        let drifts = manifest_drifts(&a, &b, 20.0);
        assert_eq!(drifts.len(), 1);
        assert_eq!(drifts[0].0, "tuples");
        assert_eq!(drifts[0].3, 25.0);
    }

    #[test]
    fn metric_appearing_from_zero_is_infinite_drift() {
        let mut a = RunManifest::new("t");
        a.counter("only_in_b", 0);
        let mut b = RunManifest::new("t");
        b.counter("only_in_b", 7);
        let drifts = manifest_drifts(&a, &b, 1e9);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].3.is_infinite());
    }

    #[test]
    fn histogram_sum_drift_is_flagged_separately_from_count() {
        let a = manifest(1, &[10, 10]);
        let b = manifest(1, &[10, 100]); // same count, bigger sum
        let drifts = manifest_drifts(&a, &b, 10.0);
        assert_eq!(drifts.len(), 1);
        assert!(drifts[0].0.contains("sum"));
    }

    #[test]
    fn diff_args_accept_tolerance_forms() {
        let args: Vec<String> =
            ["a.json", "b.json", "--tolerance", "5"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_diff_args(&args), Some(("a.json", "b.json", 5.0, None)));
        let args: Vec<String> =
            ["--tolerance=2.5", "a.json", "b.json"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_diff_args(&args), Some(("a.json", "b.json", 2.5, None)));
        let args: Vec<String> = ["a.json"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_diff_args(&args), None);
    }

    #[test]
    fn diff_args_accept_require_forms() {
        let args: Vec<String> = ["a.json", "b.json", "--require", "fault."]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            parse_diff_args(&args),
            Some(("a.json", "b.json", 10.0, Some("fault.")))
        );
        let args: Vec<String> = ["--require=fault.", "a.json", "b.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            parse_diff_args(&args),
            Some(("a.json", "b.json", 10.0, Some("fault.")))
        );
    }

    #[test]
    fn scrape_args_parse_all_forms() {
        let args: Vec<String> = ["127.0.0.1:9091", "--require", "splitjoin.", "--retry", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            parse_scrape_args(&args),
            Some(("127.0.0.1:9091", Some("splitjoin."), 3))
        );
        let args: Vec<String> = ["--require=fault.", "localhost:1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_scrape_args(&args), Some(("localhost:1", Some("fault."), 0)));
        assert_eq!(parse_scrape_args(&[]), None);
        let bad: Vec<String> = ["--retry".to_string()].to_vec();
        assert_eq!(parse_scrape_args(&bad), None);
    }

    #[test]
    fn sanitize_prefix_matches_exposition_names() {
        assert_eq!(sanitize_prefix("splitjoin.worker.0."), "splitjoin_worker_0_");
        assert_eq!(sanitize_prefix("already_clean:ok"), "already_clean:ok");
    }

    #[test]
    fn sparkline_scales_and_downsamples() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[5], 10), "▁");
        let line = sparkline(&[0, 7], 10);
        assert_eq!(line.chars().collect::<Vec<_>>(), vec!['▁', '█']);
        // Constant series stays at the floor instead of dividing by zero.
        assert_eq!(sparkline(&[3, 3, 3], 10), "▁▁▁");
        // 100 points squeeze into the requested width.
        let wide: Vec<u64> = (0..100).collect();
        assert_eq!(sparkline(&wide, 8).chars().count(), 8);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn scrape_round_trips_against_a_live_endpoint() {
        let reg = obs::live::LiveRegistry::new();
        reg.counter("splitjoin.tuples").add(41);
        reg.gauge("splitjoin.workers.live").set(4);
        let server = obs::scrape::serve(reg, 0).expect("bind ephemeral");
        let addr = server.addr().to_string();
        assert!(scrape(&addr, Some("splitjoin."), 0).unwrap());
        assert!(!scrape(&addr, Some("nonexistent."), 0).unwrap());
        server.stop();
        // A dead endpoint with no retries is a hard error.
        assert!(scrape(&addr, None, 0).is_err());
    }

    #[test]
    fn series_commands_validate_and_summarize_a_real_artifact() {
        let dir = std::env::temp_dir().join(format!("obstool-series-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let reg = obs::live::LiveRegistry::new();
        let c = reg.counter("sw.tuples");
        let header = obs::series::SeriesHeader::new("obstool-test", 5);
        let mut writer = obs::series::SeriesWriter::create(&dir, header).unwrap();
        for v in [10u64, 30, 60] {
            c.add(v);
            writer.append(&reg.snapshot()).unwrap();
        }
        let path = writer.finish().unwrap();
        let path = path.to_str().unwrap();
        assert!(series_validate(path).unwrap());
        assert!(series_summarize(path).unwrap());
        #[cfg(feature = "obs")]
        {
            assert!(series_spark(path, "sw.tuples").unwrap());
            let err = series_spark(path, "missing.key").unwrap_err();
            assert!(err.contains("known keys"), "{err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_under_finds_counters_and_histograms() {
        let mut m = RunManifest::new("t");
        m.counter("fault.workers_lost", 1);
        m.counter("sw.tuples", 9);
        m.histogram("fault.recovery_ns", obs::Histogram::new());
        assert_eq!(
            metrics_under(&m, "fault."),
            vec!["fault.recovery_ns", "fault.workers_lost"]
        );
        assert!(metrics_under(&m, "hw.").is_empty());
    }
}
