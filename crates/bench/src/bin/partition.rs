//! Regenerates the partitioned-dispatch (PanJoin mode) figure. Run
//! with --release.
//!
//! Accepts `--batch N`, `--cores A,...` (the first value is the sweep's
//! core count), `--windows LO..HI` (inclusive exponent range for the
//! speedup sweep), and `--trace [N]`. Prints the broadcast-vs-hash
//! speedup table and the zipf occupancy table to stdout, writes a run
//! manifest to `target/obs/partition.json` (or `$ACCEL_OBS_DIR`), and
//! upserts every measured point into `BENCH_swjoin.json` alongside it.
//! `docs/PARTITIONING.md` walks through reading the output.
fn main() {
    let opts = bench::swjoin::SwRunOpts::from_args();
    opts.setup_trace();
    let (tables, m, entries) = bench::partition_run_opts(&opts);
    for t in &tables {
        println!("{t}");
    }
    bench::obsout::emit(&m);
    bench::swjoin::record(&entries);
    bench::obsout::emit_harvest("partition");
}
