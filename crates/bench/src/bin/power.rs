//! Regenerates the paper's power experiment. Run with --release.
fn main() {
    println!("{}", bench::power());
}
