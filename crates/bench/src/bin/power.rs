//! Regenerates the paper's power experiment. Run with --release.
//!
//! Prints the table to stdout and writes a run manifest to
//! `target/obs/power.json` (or `$ACCEL_OBS_DIR`).
fn main() {
    let (t, m) = bench::power_run();
    println!("{t}");
    bench::obsout::emit(&m);
}
