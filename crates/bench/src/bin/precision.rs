//! Regenerates the paper's precision experiment. Run with --release.
fn main() {
    println!("{}", bench::precision_ablation());
}
