//! Standing-query demo: N concurrent queries multiplexed onto one
//! shared join fabric, with per-query manifests and an optional live
//! re-plan mid-run. Run with --release.
//!
//! The binary admits `--queries N` standing queries (window joins with
//! filters and projections over a `trades`⋈`quotes` pair, plus one
//! inline windowed aggregate) into a single
//! [`query::QueryRuntime`], feeds a zipf-skewed workload through it,
//! and — when `--replan` is given — performs one drain-and-handoff
//! re-plan to the latency-optimal engine at the halfway point without
//! stopping the feed.
//!
//! Every query is then *verified*: the same query is run alone in a
//! fresh runtime over the same workload, and the shared run's rows must
//! equal the solo run's rows exactly (as multisets). The process exits
//! non-zero on any mismatch, lossy handoff, or completeness violation,
//! making it usable as an acceptance gate in CI.
//!
//! Per-query [`obs::RunManifest`]s (`query_<id>.json`) and one run-level
//! `queries.json` manifest land in `target/obs/` (or `$ACCEL_OBS_DIR`).
//!
//! Flags: `--queries N` (default 5), `--tuples N` (default 40000),
//! `--window N` (default 512), `--cores N` (default 4), `--seed K`,
//! `--domain N`, `--skew S` (zipf exponent, default 1.0), `--replan`.

use query::prelude::*;
use streamcore::workload::{KeyDist, WorkloadSpec};
use streamcore::StreamTag;

#[derive(Debug, Clone)]
struct Opts {
    queries: usize,
    tuples: usize,
    window: usize,
    cores: usize,
    seed: u64,
    domain: u32,
    skew: f64,
    replan: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            queries: 5,
            tuples: 40_000,
            window: 512,
            cores: 4,
            seed: 42,
            domain: 64,
            skew: 1.0,
            replan: false,
        }
    }
}

impl Opts {
    fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = std::env::args().skip(1);
        fn value<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
            v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {flag} expects a value");
                std::process::exit(2);
            })
        }
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--queries" => opts.queries = value("--queries", args.next()),
                "--tuples" => opts.tuples = value("--tuples", args.next()),
                "--window" => opts.window = value("--window", args.next()),
                "--cores" => opts.cores = value("--cores", args.next()),
                "--seed" => opts.seed = value("--seed", args.next()),
                "--domain" => opts.domain = value("--domain", args.next()),
                "--skew" => opts.skew = value("--skew", args.next()),
                "--replan" => opts.replan = true,
                other => {
                    eprintln!("error: unknown flag `{other}`");
                    eprintln!(
                        "usage: queries [--queries N] [--tuples N] [--window N] [--cores N] \
                         [--seed K] [--domain N] [--skew S] [--replan]"
                    );
                    std::process::exit(2);
                }
            }
        }
        if opts.queries < 4 {
            eprintln!("error: --queries must be at least 4 (concurrency demo)");
            std::process::exit(2);
        }
        opts
    }
}

fn catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog
        .register_spec("trades=sym:32,qty:32")
        .expect("trades schema");
    catalog
        .register_spec("quotes=sym:32,px:32")
        .expect("quotes schema");
    catalog
}

/// The standing-query fleet: index `i` cycles through join templates
/// that share the one `trades`⋈`quotes` engine group, with the last
/// slot reserved for an inline windowed aggregate (so the demo shows
/// both execution paths). Thresholds are spread over the payload
/// domain (payloads are sequence numbers) so every query selects a
/// different, non-trivial slice.
fn fleet(opts: &Opts) -> Vec<(String, LogicalPlan)> {
    let w = opts.window;
    let join = |filtered| {
        let base = LogicalPlan::source("trades").join(LogicalPlan::source("quotes"), "sym", w);
        match filtered {
            Some((field, value)) => base.filter(field, CmpOp::Gt, value),
            None => base,
        }
    };
    (0..opts.queries)
        .map(|i| {
            if i == opts.queries - 1 {
                let plan = LogicalPlan::source("trades").aggregate(
                    AggFunc::Sum,
                    Some("qty"),
                    w.min(256),
                    WindowKind::Tumbling,
                );
                return (format!("q{i}-qty-sum"), plan);
            }
            let threshold = (opts.tuples as u64 * (i as u64 + 1)) / (opts.queries as u64 + 1);
            match i % 4 {
                0 => (format!("q{i}-all-pairs"), join(None)),
                1 => (format!("q{i}-big-qty"), join(Some(("qty", threshold)))),
                2 => (
                    format!("q{i}-px-view"),
                    join(Some(("px", threshold))).project(["qty", "px"]),
                ),
                _ => (format!("q{i}-sym-only"), join(None).project(["sym", "px"])),
            }
        })
        .collect()
}

/// Runs `fleet` concurrently in one runtime over `inputs`, optionally
/// re-planning the joined group halfway through. Returns the final
/// per-query reports plus the handoff accounting, if one happened.
fn run_shared(
    opts: &Opts,
    fleet: &[(String, LogicalPlan)],
    inputs: &[(StreamTag, streamcore::Tuple)],
) -> (Vec<query::QueryReport>, Option<query::HandoffReport>) {
    let mut runtime = QueryRuntime::new(catalog(), RuntimeConfig::new(opts.cores));
    for (id, plan) in fleet {
        let engine = runtime.admit(id, plan).unwrap_or_else(|e| {
            eprintln!("error: admitting `{id}`: {e}");
            std::process::exit(1);
        });
        eprintln!("admitted {id} -> {engine}: {plan}");
    }
    eprintln!(
        "{} queries share {} engine group(s)",
        fleet.len(),
        runtime.group_count()
    );

    let halfway = inputs.len() / 2;
    let mut handoff = None;
    for (seq, &(tag, tuple)) in inputs.iter().enumerate() {
        if opts.replan && seq == halfway {
            let target = fleet
                .iter()
                .map(|(id, _)| id)
                .find(|id| runtime.engine_of(id) != Some(query::EngineKind::Inline))
                .expect("at least one joined query")
                .clone();
            let report = runtime.replan(&target, Objective::MinLatency).unwrap_or_else(|e| {
                eprintln!("error: re-plan failed: {e}");
                std::process::exit(1);
            });
            eprintln!("re-plan @tuple {seq}: {report}");
            if !report.lossless() {
                eprintln!("error: handoff lost tuples: {report}");
                std::process::exit(1);
            }
            handoff = Some(report);
        }
        let stream = match tag {
            StreamTag::R => "trades",
            StreamTag::S => "quotes",
        };
        runtime.push(stream, tuple).unwrap_or_else(|e| {
            eprintln!("error: push @tuple {seq}: {e}");
            std::process::exit(1);
        });
        // Poll mid-run so rows stream out incrementally, as a live
        // dashboard would; finish() drains whatever remains.
        if seq % 4096 == 4095 {
            runtime.poll().unwrap_or_else(|e| {
                eprintln!("error: poll: {e}");
                std::process::exit(1);
            });
        }
    }
    let reports = runtime.finish().unwrap_or_else(|e| {
        eprintln!("error: finish: {e}");
        std::process::exit(1);
    });
    (reports, handoff)
}

/// Runs a single query alone over the same workload — the reference the
/// shared run must match exactly.
fn run_solo(
    opts: &Opts,
    id: &str,
    plan: &LogicalPlan,
    inputs: &[(StreamTag, streamcore::Tuple)],
) -> Vec<Vec<u64>> {
    let mut runtime = QueryRuntime::new(catalog(), RuntimeConfig::new(opts.cores));
    runtime.admit(id, plan).expect("solo admit");
    for &(tag, tuple) in inputs {
        let stream = match tag {
            StreamTag::R => "trades",
            StreamTag::S => "quotes",
        };
        runtime.push(stream, tuple).expect("solo push");
    }
    let mut reports = runtime.finish().expect("solo finish");
    reports.remove(0).rows
}

fn sorted(mut rows: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    rows.sort_unstable();
    rows
}

fn main() {
    let opts = Opts::from_args();
    let fleet = fleet(&opts);
    let inputs: Vec<(StreamTag, streamcore::Tuple)> = WorkloadSpec::new(
        opts.tuples,
        KeyDist::Zipf {
            domain: opts.domain,
            s: opts.skew,
        },
    )
    .with_seed(opts.seed)
    .generate()
    .collect();

    let (reports, handoff) = run_shared(&opts, &fleet, &inputs);

    let mut table = bench::Table::new(
        format!(
            "Standing queries — {} concurrent on {} cores, window {}, zipf(s={}) over {} keys",
            opts.queries, opts.cores, opts.window, opts.skew, opts.domain
        ),
        &["query", "engine", "matches in", "rows", "re-plans", "vs solo run"],
    );

    let mut failures = 0usize;
    let mut run_manifest = bench::obsout::manifest("queries");
    run_manifest.config("queries", opts.queries);
    run_manifest.config("tuples", opts.tuples);
    run_manifest.config("window", opts.window);
    run_manifest.config("cores", opts.cores);
    run_manifest.config("seed", opts.seed);
    run_manifest.config("zipf_domain", opts.domain);
    run_manifest.config("zipf_s", opts.skew);
    run_manifest.config("replan", opts.replan);

    for report in &reports {
        let (id, plan) = fleet
            .iter()
            .find(|(id, _)| *id == report.id)
            .expect("report for an admitted query");
        let reference = run_solo(&opts, id, plan, &inputs);
        let exact = sorted(report.rows.clone()) == sorted(reference.clone());
        if !exact {
            failures += 1;
            eprintln!(
                "MISMATCH {id}: shared run produced {} rows, solo reference {} rows",
                report.rows.len(),
                reference.len()
            );
        }
        table.row(vec![
            report.id.clone(),
            report.engine.to_string(),
            report.matches_in.to_string(),
            report.rows_emitted.to_string(),
            report.replans.to_string(),
            if exact { "exact".into() } else { "MISMATCH".into() },
        ]);
        run_manifest.counter(format!("query.{id}.rows"), report.rows_emitted);
        bench::obsout::emit(&report.manifest);
    }

    if let Some(h) = &handoff {
        run_manifest.config("handoff", h.to_string());
        run_manifest.counter("handoff.drained", h.drained);
        run_manifest.counter("handoff.residual", h.residual);
        run_manifest.counter("handoff.duplicates_discarded", h.duplicates_discarded);
    }
    run_manifest.counter("verify.mismatches", failures as u64);
    bench::obsout::emit(&run_manifest);

    println!("{table}");
    match failures {
        0 => println!(
            "all {} queries exact vs solo reference runs{}",
            reports.len(),
            if opts.replan { " (with one live re-plan)" } else { "" }
        ),
        n => {
            eprintln!("error: {n} quer{} diverged from solo reference", if n == 1 { "y" } else { "ies" });
            std::process::exit(1);
        }
    }
}
