//! Regenerates the Fig. 6 deployment comparison plus a live re-query run.
fn main() {
    println!("{}", bench::deployment_paths());
    println!("{}", bench::live_requery());
}
