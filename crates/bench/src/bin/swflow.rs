//! Ablation: software uni-flow (SplitJoin) vs software bi-flow (handshake
//! join) throughput on this host — the Fig. 14b comparison, in software.
//! Run with --release.

use joinsw::handshake::HandshakeConfig;
use joinsw::harness::{measure_handshake_throughput, measure_throughput};
use joinsw::splitjoin::SplitJoinConfig;

fn main() {
    let mut t = bench::Table::new(
        "Ablation — software uni-flow vs bi-flow throughput (4 threads)",
        &["window", "uni-flow Mt/s", "bi-flow Mt/s", "uni/bi"],
    );
    for exp in [10u32, 12, 14] {
        let window = 1usize << exp;
        let tuples = (40_000_000 / window as u64).clamp(500, 8_192);
        let uni = measure_throughput(SplitJoinConfig::new(4, window), tuples, 1 << 20)
            .million_per_second();
        let bi =
            measure_handshake_throughput(HandshakeConfig::new(4, window), tuples, 1 << 20)
                .million_per_second();
        t.row(vec![
            format!("2^{exp}"),
            format!("{uni:.5}"),
            format!("{bi:.5}"),
            format!("{:.1}x", uni / bi),
        ]);
    }
    t.note(
        "both flows do the same total comparisons per tuple; in software they land \
         near parity at large windows — the paper's 'in theory, both models are \
         similar in their parallelization concept'. The hardware gap of Fig. 14b \
         comes from bi-flow's coordination discipline, not the flow model itself.",
    );
    println!("{t}");
}
