//! Ablation: software uni-flow (SplitJoin) vs software bi-flow (handshake
//! join) throughput on this host — the Fig. 14b comparison, in software.
//! Run with --release.
//!
//! Accepts `--batch N` (both flows run their data paths at that batch
//! size), `--windows LO..HI`, and `--trace [N]` (export worker/core span
//! rings from the first window to `target/obs/swflow.trace.json`).
//! Measured points are upserted into `BENCH_swjoin.json`.

use joinsw::handshake::HandshakeConfig;
use joinsw::harness::{
    measure_handshake_throughput, measure_handshake_throughput_outcome, measure_throughput,
    measure_throughput_outcome,
};
use joinsw::splitjoin::SplitJoinConfig;

use bench::swjoin::{SwJoinEntry, SwRunOpts};

fn main() {
    let opts = SwRunOpts::from_args();
    let mut traced = !opts.setup_trace();
    let batch = opts.batch_size;
    let windows = opts.windows.clone().unwrap_or(10..=14);
    let mut t = bench::Table::new(
        "Ablation — software uni-flow vs bi-flow throughput (4 threads)",
        &["window", "uni-flow Mt/s", "bi-flow Mt/s", "uni/bi"],
    );
    let mut entries = Vec::new();
    let entry = |variant: &str, window: usize, tuples: u64, mtps: f64| SwJoinEntry {
        figure: "swflow".into(),
        variant: variant.into(),
        cores: 4,
        window,
        batch_size: batch,
        tuples,
        metric: "throughput_mtps".into(),
        value: mtps,
        mode: "measured".into(),
    };
    for exp in windows.step_by(2) {
        let window = 1usize << exp;
        let tuples = (40_000_000 / window as u64).clamp(500, 8_192);
        // Under `--trace`, the first window's runs also donate their span
        // rings to the exported timeline; later windows run untouched.
        let (uni, bi) = if !traced {
            traced = true;
            let (uni, outcome) = measure_throughput_outcome(
                SplitJoinConfig::new(4, window).with_batch_size(batch),
                tuples,
                1 << 20,
            )
            .expect("swflow run failed");
            bench::obsout::harvest(outcome.trace);
            let (bi, outcome) = measure_handshake_throughput_outcome(
                HandshakeConfig::new(4, window).with_batch_size(batch),
                tuples,
                1 << 20,
            )
            .expect("swflow run failed");
            bench::obsout::harvest(outcome.trace);
            (uni, bi)
        } else {
            (
                measure_throughput(
                    SplitJoinConfig::new(4, window).with_batch_size(batch),
                    tuples,
                    1 << 20,
                )
                .expect("swflow run failed"),
                measure_handshake_throughput(
                    HandshakeConfig::new(4, window).with_batch_size(batch),
                    tuples,
                    1 << 20,
                )
                .expect("swflow run failed"),
            )
        };
        let uni = uni.million_per_second();
        let bi = bi.million_per_second();
        entries.push(entry("splitjoin", window, tuples, uni));
        entries.push(entry("handshake", window, tuples, bi));
        t.row(vec![
            format!("2^{exp}"),
            format!("{uni:.5}"),
            format!("{bi:.5}"),
            format!("{:.1}x", uni / bi),
        ]);
    }
    t.note(format!("data-path batch size: {batch}"));
    t.note(
        "both flows do the same total comparisons per tuple; in software they land \
         near parity at large windows — the paper's 'in theory, both models are \
         similar in their parallelization concept'. The hardware gap of Fig. 14b \
         comes from bi-flow's coordination discipline, not the flow model itself.",
    );
    println!("{t}");
    bench::swjoin::record(&entries);
    bench::obsout::emit_harvest("swflow");
}
