//! Before/after baseline for the batched SplitJoin data path. Run with
//! --release.
//!
//! Measures the same 4-core workload twice — once with the unbatched
//! message-per-tuple distribution (`batch_size = 1`, the data path this
//! repo shipped before batching) and once with the batched default — and
//! records both points plus their ratio into `BENCH_swjoin.json`. The
//! committed copy of that file at the repo root is the recorded
//! before/after evidence; regenerate it with
//! `cargo run --release -p bench --bin swjoin_baseline` (optionally
//! `--cores`, `--windows`, `--batch` to vary the sweep).

use joinsw::harness::{host_parallelism, measure_throughput_outcome};
use joinsw::splitjoin::SplitJoinConfig;

use bench::swjoin::{SwJoinEntry, SwRunOpts};

fn main() {
    let opts = SwRunOpts::from_args();
    let cores = opts.cores.clone().unwrap_or_else(|| vec![4]);
    let windows = opts.windows.clone().unwrap_or(8..=12);
    let batched = opts.batch_size;
    let tuples = 20_000u64;
    let mut t = bench::Table::new(
        "Batched vs unbatched SplitJoin data path (measured wall-clock)",
        &["cores", "window", "batch=1 Mt/s", &format!("batch={batched} Mt/s"), "speedup"],
    );
    let mut entries = Vec::new();
    for &n in &cores {
        for exp in windows.clone() {
            let window = 1usize << exp;
            let mut point = |batch: usize| {
                let (rate, outcome) = measure_throughput_outcome(
                    SplitJoinConfig::new(n, window).with_batch_size(batch),
                    tuples,
                    1 << 20,
                )
                .expect("swjoin_baseline run failed");
                let mtps = rate.million_per_second();
                entries.push(SwJoinEntry {
                    figure: "fig14d".into(),
                    variant: "splitjoin".into(),
                    cores: n,
                    window,
                    batch_size: batch,
                    tuples,
                    metric: "throughput_mtps".into(),
                    value: mtps,
                    mode: "measured".into(),
                });
                (mtps, outcome.batch_sizes.total())
            };
            let (slow, slow_msgs) = point(1);
            let (fast, fast_msgs) = point(batched);
            t.row(vec![
                n.to_string(),
                format!("2^{exp}"),
                format!("{slow:.5}"),
                format!("{fast:.5}"),
                format!("{:.2}x", fast / slow),
            ]);
            eprintln!(
                "cores={n} window=2^{exp}: {slow_msgs} batch messages unbatched, \
                 {fast_msgs} batched"
            );
        }
    }
    t.note(format!(
        "host parallelism: {}; both variants run the same threads on the same \
         workload, so the ratio isolates the data-path cost",
        host_parallelism()
    ));
    println!("{t}");
    bench::swjoin::record(&entries);
}
