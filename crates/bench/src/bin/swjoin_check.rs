//! Validates a `BENCH_swjoin.json` artifact and gates it against the
//! committed baseline (CI bench-smoke gate).
//!
//! Usage: `swjoin_check [path] [--baseline PATH] [--tolerance PCT]`.
//!
//! `path` defaults to the artifact in the manifest directory
//! (`target/obs/BENCH_swjoin.json`, or `$ACCEL_OBS_DIR`). The file must
//! exist, parse as schema-1 JSON, and hold entries; a per-figure summary
//! is printed. When the artifact carries `kernel` figure entries, the
//! blocked-vs-scalar counting speedup is gated: at every window >= 2^10
//! the blocked kernel must be at least 2x the scalar kernel measured in
//! the same run. Then every point is compared against the matching point
//! in the baseline — the committed `BENCH_swjoin.json` at the repo root
//! unless `--baseline` overrides it — and the run fails when throughput
//! fell (or latency rose) more than the tolerance, default 10%. A
//! baseline figure with no entries at all in the fresh run fails the
//! check outright: unmatched points are skipped individually, so a
//! silently-dropped figure would otherwise pass vacuously. The
//! host's parallelism is printed next to the baseline's, with a warning
//! on mismatch (a differently-sized host silently skews comparisons). A
//! missing baseline only warns: fresh checkouts and pruned worktrees
//! must not fail CI.

use std::path::PathBuf;

use bench::swjoin::{default_path, missing_figures, regressions, SwJoinDoc};

/// The committed before/after evidence this repo gates against.
const BASELINE: &str = "BENCH_swjoin.json";

struct Opts {
    path: PathBuf,
    baseline: PathBuf,
    tolerance: f64,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        path: default_path(),
        baseline: PathBuf::from(BASELINE),
        tolerance: 10.0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                let v = args.get(i).ok_or("--baseline requires a value")?;
                opts.baseline = PathBuf::from(v);
            }
            "--tolerance" => {
                i += 1;
                let v = args.get(i).ok_or("--tolerance requires a value")?;
                opts.tolerance = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| *t >= 0.0)
                    .ok_or_else(|| format!("--tolerance must be a non-negative percent, got `{v}`"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            path => positional.push(path.to_string()),
        }
        i += 1;
    }
    match positional.len() {
        0 => {}
        1 => opts.path = PathBuf::from(&positional[0]),
        _ => return Err(format!("at most one path, got {positional:?}")),
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: swjoin_check [path] [--baseline PATH] [--tolerance PCT]");
            std::process::exit(2);
        }
    };
    if !opts.path.exists() {
        eprintln!("error: {} does not exist", opts.path.display());
        std::process::exit(1);
    }
    let doc = match SwJoinDoc::load(&opts.path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if doc.entries.is_empty() {
        eprintln!("error: {} holds no entries", opts.path.display());
        std::process::exit(1);
    }
    println!("{}: {} entries OK", opts.path.display(), doc.entries.len());
    let mut figures: Vec<&str> = doc.entries.iter().map(|e| e.figure.as_str()).collect();
    figures.sort_unstable();
    figures.dedup();
    for figure in figures {
        let rows: Vec<_> = doc.entries.iter().filter(|e| e.figure == figure).collect();
        let batches: Vec<usize> = {
            let mut b: Vec<usize> = rows.iter().map(|e| e.batch_size).collect();
            b.sort_unstable();
            b.dedup();
            b
        };
        println!(
            "  {figure}: {} points, batch sizes {batches:?}",
            rows.len()
        );
    }

    // Kernel speedup gate: within this run (same host, same cores, same
    // batch), blocked counting must be >= 2x scalar counting at every
    // window from 2^10 up. Below 2^10 the window fits hot cache either
    // way and the tile win shrinks; batches under 8 probes never tile.
    let mut kernel_failures = Vec::new();
    let mut kernel_gated = 0usize;
    for s in doc
        .entries
        .iter()
        .filter(|e| e.figure == "kernel" && e.variant == "scalar_count")
    {
        let Some(b) = doc.entries.iter().find(|e| {
            e.figure == "kernel"
                && e.variant == "blocked_count"
                && e.cores == s.cores
                && e.window == s.window
                && e.batch_size == s.batch_size
                && e.metric == s.metric
        }) else {
            continue;
        };
        if s.window < 1 << 10 || s.batch_size < 8 {
            continue;
        }
        kernel_gated += 1;
        if b.value < 2.0 * s.value {
            kernel_failures.push(format!(
                "window {} cores {} batch {}: blocked {:.5} < 2x scalar {:.5} ({:.2}x)",
                s.window,
                s.cores,
                s.batch_size,
                b.value,
                s.value,
                b.value / s.value
            ));
        }
    }
    if !kernel_failures.is_empty() {
        eprintln!(
            "error: blocked kernel misses the 2x counting speedup at {} point(s):",
            kernel_failures.len()
        );
        for f in &kernel_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if kernel_gated > 0 {
        println!("kernel gate: blocked >= 2x scalar counting at {kernel_gated} point(s) (windows >= 2^10)");
    }

    if !opts.baseline.exists() {
        eprintln!(
            "warning: baseline {} missing; regression gate skipped",
            opts.baseline.display()
        );
        return;
    }
    let baseline = match SwJoinDoc::load(&opts.baseline) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: baseline {e}");
            std::process::exit(1);
        }
    };
    // Surface host-size drift before any comparison: the committed
    // baseline was recorded on a specific host width, and throughput
    // points measured on a different width are not like-for-like.
    let host = joinsw::harness::host_parallelism() as u64;
    match baseline.host_parallelism {
        Some(p) if p == host => {
            println!("host_parallelism: {host} (matches baseline)");
        }
        Some(p) => eprintln!(
            "warning: this host has parallelism {host} but baseline {} was recorded \
             with {p}; throughput comparisons may be skewed",
            opts.baseline.display()
        ),
        None => eprintln!(
            "warning: baseline {} records no host_parallelism; this host has {host}",
            opts.baseline.display()
        ),
    }
    // A figure in the baseline with no entries at all in the fresh run
    // would pass the point-by-point gate vacuously (unmatched points are
    // skipped); that is a coverage regression, not a tolerable sweep
    // difference, and it fails loudly here.
    let dropped = missing_figures(&baseline, &doc);
    if !dropped.is_empty() {
        eprintln!(
            "error: baseline {} has figure(s) the fresh run never produced: {}",
            opts.baseline.display(),
            dropped.join(", ")
        );
        eprintln!(
            "  (the regression gate would otherwise skip them silently; \
             re-run the missing figure binaries or prune the baseline)"
        );
        std::process::exit(1);
    }
    let (compared, found) = regressions(&baseline, &doc, opts.tolerance);
    if found.is_empty() {
        println!(
            "baseline {}: {compared} matching point(s) within {}%",
            opts.baseline.display(),
            opts.tolerance
        );
        return;
    }
    // Baseline provenance first: a gate trip on a differently-sized (or
    // simply older) host is the most common false alarm, so put the
    // facts needed to judge that next to the failure.
    eprintln!(
        "error: {} point(s) regressed beyond {}% vs {} (baseline git_rev {}, \
         host_parallelism {}; this host {}):",
        found.len(),
        opts.tolerance,
        opts.baseline.display(),
        baseline.git_rev.as_deref().unwrap_or("unknown"),
        baseline
            .host_parallelism
            .map_or_else(|| "unknown".to_string(), |p| p.to_string()),
        joinsw::harness::host_parallelism(),
    );
    for r in &found {
        eprintln!(
            "  {}: {:.5} -> {:.5} ({:.1}% worse)",
            r.point, r.baseline, r.candidate, r.worse_pct
        );
    }
    std::process::exit(1);
}
