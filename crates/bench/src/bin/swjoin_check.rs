//! Validates a `BENCH_swjoin.json` artifact (CI bench-smoke gate).
//!
//! Usage: `swjoin_check [path]` — defaults to the artifact in the
//! manifest directory (`target/obs/BENCH_swjoin.json`, or
//! `$ACCEL_OBS_DIR`). Exits non-zero when the file is missing, is not
//! valid schema-1 JSON, or holds no entries; prints a per-figure summary
//! otherwise.

use bench::swjoin::{default_path, SwJoinDoc};

fn main() {
    let path = std::env::args()
        .nth(1)
        .map_or_else(default_path, std::path::PathBuf::from);
    if !path.exists() {
        eprintln!("error: {} does not exist", path.display());
        std::process::exit(1);
    }
    let doc = match SwJoinDoc::load(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if doc.entries.is_empty() {
        eprintln!("error: {} holds no entries", path.display());
        std::process::exit(1);
    }
    println!("{}: {} entries OK", path.display(), doc.entries.len());
    let mut figures: Vec<&str> = doc.entries.iter().map(|e| e.figure.as_str()).collect();
    figures.sort_unstable();
    figures.dedup();
    for figure in figures {
        let rows: Vec<_> = doc.entries.iter().filter(|e| e.figure == figure).collect();
        let batches: Vec<usize> = {
            let mut b: Vec<usize> = rows.iter().map(|e| e.batch_size).collect();
            b.sort_unstable();
            b.dedup();
            b
        };
        println!(
            "  {figure}: {} points, batch sizes {batches:?}",
            rows.len()
        );
    }
}
