//! Hardware-side figures: 14a, 14b, 14c (throughput), 15 (latency),
//! 17 (clock frequency), and the Section V power table.

use std::time::Instant;

use hwsim::devices::{XC5VLX50T, XC7VX485T, XCVU9P};
use hwsim::{estimate_fmax, Device, ParSimulator, ParStats, Simulator};
use joinhw::harness::{
    self, biflow_throughput_model, prefill_planted, prefill_steady_state, run_latency,
    run_latency_with, run_throughput, run_throughput_observed, run_throughput_with,
    uniflow_throughput_model, LatencyRun, ThroughputRun,
};
use obs::provenance::ProvenanceTracker;
use obs::{Histogram, Registry, RunManifest};
use joinhw::{DesignParams, FlowModel, JoinAlgorithm, NetworkKind};
use streamcore::{StreamTag, Tuple};

use crate::table::Table;

/// Key domain used in throughput runs: large enough that matches are rare
/// and the gathering network never bottlenecks the input (the paper's
/// throughput figures measure *input* throughput).
const THROUGHPUT_KEY_DOMAIN: u32 = 1 << 20;

/// Picks a measurement length that keeps each simulated point under a few
/// million cycles.
fn tuples_for(sub_window: usize) -> u64 {
    (2_000_000 / (sub_window as u64 + 1)).clamp(64, 512)
}

/// Runs one cycle-accurate throughput point and converts to M tuples/s.
#[cfg(test)]
fn measure_mtps(params: &DesignParams, clock_mhz: f64) -> f64 {
    measure_observed_traced(params, false, &mut None)
        .0
        .at_clock(clock_mhz)
        .million_per_second()
}

/// One cycle-accurate throughput point plus its service-gap histogram
/// (cycles between consecutive input acceptances). After the run, the
/// join's span rings go to the crate harvest when `rings` is set and
/// its provenance breakdown merges into `prov` — a no-op side channel
/// unless [`obs::trace::enabled`].
fn measure_observed_traced(
    params: &DesignParams,
    rings: bool,
    prov: &mut Option<ProvenanceTracker>,
) -> (ThroughputRun, Histogram) {
    let mut join = harness::build(params);
    prefill_steady_state(join.as_mut(), params.window_size);
    let out = run_throughput_observed(
        &mut Simulator::new(),
        join.as_mut(),
        tuples_for(params.sub_window()),
        THROUGHPUT_KEY_DOMAIN,
    );
    harvest_join(join.as_mut(), rings, prov);
    out
}

/// Harvests a finished join's observability side channel: span rings go
/// to the crate-wide harvest (only when `rings` — one representative
/// point per series keeps exports bounded), the per-stage provenance
/// breakdown merges into the figure-wide accumulator `prov`.
fn harvest_join(
    join: &mut dyn harness::StreamJoin,
    rings: bool,
    prov: &mut Option<ProvenanceTracker>,
) {
    if !obs::trace::enabled() {
        return;
    }
    if rings {
        crate::obsout::harvest(join.take_trace());
    }
    if let Some(p) = join.take_provenance() {
        match prov.as_mut() {
            Some(acc) => acc.merge(&p),
            None => *prov = Some(p),
        }
    }
}

/// Records an accumulated provenance breakdown (when tracing produced
/// one) into the manifest, in cycles.
fn record_provenance(m: &mut RunManifest, prov: &Option<ProvenanceTracker>) {
    if let Some(p) = prov {
        p.record_into(m, "cycles");
    }
}

/// Records one throughput point's counters under `{key}` in `m`.
fn record_run(m: &mut RunManifest, key: &str, run: &ThroughputRun) {
    m.counter(format!("{key}tuples"), run.tuples);
    m.counter(format!("{key}cycles"), run.cycles);
    m.counter(format!("{key}results"), run.results);
}

/// Fig. 14a — uni-flow throughput vs join cores on Virtex-5 @100 MHz for
/// windows 2^11 and 2^13. Linear scaling; infeasible points marked.
pub fn fig14a() -> Table {
    fig14a_run().0
}

/// [`fig14a`] plus its run manifest: per-point tuple/cycle/result
/// counters and the merged service-gap histogram.
pub fn fig14a_run() -> (Table, RunManifest) {
    let mut m = crate::obsout::manifest("fig14a");
    m.config("device", "XC5VLX50T");
    m.config("target_clock_mhz", 100);
    let mut gaps_all = Histogram::new();
    let mut prov = None;
    let mut t = Table::new(
        "Fig. 14a — uni-flow throughput on Virtex-5 (100 MHz)",
        &["cores", "window", "model Mt/s", "measured Mt/s"],
    );
    for &window in &[1usize << 11, 1 << 13] {
        for &cores in &[2u32, 4, 8, 16, 32, 64] {
            let params = DesignParams::new(FlowModel::UniFlow, cores, window);
            match params.synthesize_at(&XC5VLX50T, 100.0) {
                Ok(report) => {
                    let clock = report.clock.mhz();
                    let model = uniflow_throughput_model(window, cores, clock) / 1e6;
                    let (run, gaps) = measure_observed_traced(&params, cores == 2, &mut prov);
                    let measured = run.at_clock(clock).million_per_second();
                    record_run(&mut m, &format!("c{cores}.w2e{}.", window.ilog2()), &run);
                    gaps_all.merge(&gaps);
                    t.row(vec![
                        cores.to_string(),
                        format!("2^{}", window.ilog2()),
                        format!("{model:.4}"),
                        format!("{measured:.4}"),
                    ]);
                }
                Err(e) => t.row(vec![
                    cores.to_string(),
                    format!("2^{}", window.ilog2()),
                    "n/a".into(),
                    format!("does not fit: {e}"),
                ]),
            }
        }
    }
    t.note("paper: linear speedup with cores; window 2^13 infeasible at 32/64 cores");
    m.histogram("service_gap_cycles", gaps_all);
    record_provenance(&mut m, &prov);
    (t, m)
}

/// Fig. 14b — uni-flow vs bi-flow throughput at 16 cores on Virtex-5
/// @100 MHz across window sizes 2^7–2^13.
pub fn fig14b() -> Table {
    fig14b_run().0
}

/// [`fig14b`] plus its run manifest: per-point counters for both flow
/// models and a service-gap histogram per model.
pub fn fig14b_run() -> (Table, RunManifest) {
    let mut m = crate::obsout::manifest("fig14b");
    m.config("device", "XC5VLX50T");
    m.config("target_clock_mhz", 100);
    m.config("cores", 16);
    let mut uni_gaps = Histogram::new();
    let mut bi_gaps = Histogram::new();
    let mut prov = None;
    let mut t = Table::new(
        "Fig. 14b — uni-flow vs bi-flow at 16 cores, Virtex-5 (100 MHz)",
        &["window", "uni Mt/s", "bi Mt/s", "uni/bi"],
    );
    let cores = 16u32;
    for exp in 7..=13u32 {
        let window = 1usize << exp;
        let uni = DesignParams::new(FlowModel::UniFlow, cores, window);
        let bi = DesignParams::new(FlowModel::BiFlow, cores, window);
        let (uni_run, gaps) = measure_observed_traced(&uni, exp == 7, &mut prov);
        let uni_mtps = uni_run.at_clock(100.0).million_per_second();
        record_run(&mut m, &format!("uni.w2e{exp}."), &uni_run);
        uni_gaps.merge(&gaps);
        let bi_cell = match bi.synthesize_at(&XC5VLX50T, 100.0) {
            Ok(_) => {
                let (bi_run, gaps) = measure_biflow_run(&bi, exp == 7, &mut prov);
                record_run(&mut m, &format!("bi.w2e{exp}."), &bi_run);
                bi_gaps.merge(&gaps);
                format!("{:.4}", bi_run.at_clock(100.0).million_per_second())
            }
            Err(_) => "does not fit".to_string(),
        };
        let ratio = match bi_cell.parse::<f64>() {
            Ok(b) if b > 0.0 => format!("{:.1}x", uni_mtps / b),
            _ => "-".to_string(),
        };
        t.row(vec![
            format!("2^{exp}"),
            format!("{uni_mtps:.4}"),
            bi_cell,
            ratio,
        ]);
    }
    t.note("paper: nearly an order of magnitude uni-flow advantage; bi-flow 2^13 infeasible");
    t.note(format!(
        "analytic models at 2^10: uni {:.3} vs bi {:.3} Mt/s",
        uniflow_throughput_model(1 << 10, cores, 100.0) / 1e6,
        biflow_throughput_model(1 << 10, cores, 100.0) / 1e6
    ));
    m.histogram("uni_service_gap_cycles", uni_gaps);
    m.histogram("bi_service_gap_cycles", bi_gaps);
    record_provenance(&mut m, &prov);
    (t, m)
}

fn measure_biflow_run(
    params: &DesignParams,
    rings: bool,
    prov: &mut Option<ProvenanceTracker>,
) -> (ThroughputRun, Histogram) {
    let mut join = harness::build(params);
    prefill_steady_state(join.as_mut(), params.window_size);
    // Bi-flow service time scales with the total window; keep runs short.
    let tuples = (1_500_000
        / (joinhw::harness::biflow_service_cycles(params.window_size, params.num_cores)
            as u64
            + 1))
        .clamp(16, 256);
    let out = run_throughput_observed(
        &mut Simulator::new(),
        join.as_mut(),
        tuples,
        THROUGHPUT_KEY_DOMAIN,
    );
    harvest_join(join.as_mut(), rings, prov);
    out
}

/// One throughput point timed under both engines.
struct TimedRun {
    run: ThroughputRun,
    /// Service-gap histogram of the sequential run (the parallel run is
    /// cycle-identical, so one histogram describes both).
    gaps: Histogram,
    seq_wall: f64,
    /// Parallel wall clock and per-worker utilization, when `threads > 1`.
    par: Option<(f64, ParStats)>,
}

/// One throughput point timed under both engines: the sequential
/// [`ThroughputRun`] (with its wall-clock cost), and — when `threads > 1`
/// — the identical run on a [`ParSimulator`] pool, with the pool's
/// per-worker busy/wait accounting. Panics if the two engines disagree,
/// which would break the parallel layer's cycle-exact contract.
fn measure_run_timed(
    params: &DesignParams,
    threads: usize,
    rings: bool,
    prov: &mut Option<ProvenanceTracker>,
) -> TimedRun {
    let tuples = tuples_for(params.sub_window());
    let mut join = harness::build(params);
    prefill_steady_state(join.as_mut(), params.window_size);
    let seq_start = Instant::now();
    let (seq, gaps) =
        run_throughput_observed(&mut Simulator::new(), join.as_mut(), tuples, THROUGHPUT_KEY_DOMAIN);
    let seq_wall = seq_start.elapsed().as_secs_f64();
    // Harvest from the sequential run only; the parallel run is
    // cycle-identical, so folding both in would double-count samples.
    harvest_join(join.as_mut(), rings, prov);
    if threads <= 1 {
        return TimedRun { run: seq, gaps, seq_wall, par: None };
    }
    let mut join = harness::build(params);
    prefill_steady_state(join.as_mut(), params.window_size);
    let mut engine = ParSimulator::new(threads);
    let par_start = Instant::now();
    let par = run_throughput_with(&mut engine, join.as_mut(), tuples, THROUGHPUT_KEY_DOMAIN);
    let par_wall = par_start.elapsed().as_secs_f64();
    assert_eq!(seq, par, "parallel engine must be cycle-exact");
    let stats = engine.take_stats().expect("parallel run records stats");
    TimedRun { run: seq, gaps, seq_wall, par: Some((par_wall, stats)) }
}

/// Fig. 14c — uni-flow throughput with 512 join cores on Virtex-7
/// @300 MHz (scalable networks) across windows 2^11–2^18.
pub fn fig14c() -> Table {
    fig14c_run().0
}

/// [`fig14c`] plus its run manifest: per-point counters and the merged
/// service-gap histogram.
pub fn fig14c_run() -> (Table, RunManifest) {
    let mut m = crate::obsout::manifest("fig14c");
    m.config("device", "XC7VX485T");
    m.config("target_clock_mhz", 300);
    m.config("cores", 512);
    m.config("network", "scalable");
    let mut gaps_all = Histogram::new();
    let mut prov = None;
    let mut t = Table::new(
        "Fig. 14c — uni-flow, 512 cores, Virtex-7 (300 MHz, scalable networks)",
        &["window", "model Mt/s", "measured Mt/s"],
    );
    let cores = 512u32;
    for exp in 11..=18u32 {
        let window = 1usize << exp;
        let params = DesignParams::new(FlowModel::UniFlow, cores, window)
            .with_network(NetworkKind::Scalable);
        match params.synthesize_at(&XC7VX485T, 300.0) {
            Ok(_) => {
                let model = uniflow_throughput_model(window, cores, 300.0) / 1e6;
                let (run, gaps) = measure_observed_traced(&params, exp == 11, &mut prov);
                let measured = run.at_clock(300.0).million_per_second();
                record_run(&mut m, &format!("w2e{exp}."), &run);
                gaps_all.merge(&gaps);
                t.row(vec![
                    format!("2^{exp}"),
                    format!("{model:.3}"),
                    format!("{measured:.3}"),
                ]);
            }
            Err(e) => t.row(vec![format!("2^{exp}"), "n/a".into(), format!("{e}")]),
        }
    }
    t.note("paper: ~2 orders of magnitude over the Virtex-5 realization at window 2^13");
    m.histogram("service_gap_cycles", gaps_all);
    record_provenance(&mut m, &prov);
    (t, m)
}

/// [`fig14c`] with each point also simulated on a `threads`-wide
/// [`ParSimulator`] pool: the measured throughput must match the
/// sequential engine exactly (the runs are cycle-identical); the extra
/// columns report the simulation's wall-clock cost per engine and the
/// resulting speedup. Backs the `fig14c` binary's `--threads` knob.
pub fn fig14c_threads(threads: usize) -> Table {
    fig14c_threads_run(threads).0
}

/// [`fig14c_threads`] plus its run manifest. Beyond the sequential
/// counters and service-gap histogram, each point records the parallel
/// engine's per-worker utilization (`w2e{exp}.par.worker.N.busy_cycles`
/// / `wait_cycles` / `busy_ns` / `wait_ns`) — the per-shard accounting
/// that shows where the simulation pool spends its time.
pub fn fig14c_threads_run(threads: usize) -> (Table, RunManifest) {
    // 0 = host auto (ACCEL_THREADS, else available parallelism), the same
    // resolution `ParSimulator::new(0)` would apply; resolve it up front so
    // the `threads <= 1` sequential-only guard sees the real pool width.
    let threads = if threads == 0 { ParSimulator::auto().threads() } else { threads };
    let mut m = crate::obsout::manifest("fig14c");
    m.set_threads(threads);
    m.config("device", "XC7VX485T");
    m.config("target_clock_mhz", 300);
    m.config("cores", 512);
    m.config("network", "scalable");
    let mut gaps_all = Histogram::new();
    let mut prov = None;
    let mut t = Table::new(
        "Fig. 14c — uni-flow, 512 cores, Virtex-7 (300 MHz, scalable networks)",
        &["window", "model Mt/s", "measured Mt/s", "seq wall s", "par wall s", "speedup"],
    );
    let cores = 512u32;
    let mut seq_total = 0.0f64;
    let mut par_total = 0.0f64;
    for exp in 11..=18u32 {
        let window = 1usize << exp;
        let params = DesignParams::new(FlowModel::UniFlow, cores, window)
            .with_network(NetworkKind::Scalable);
        match params.synthesize_at(&XC7VX485T, 300.0) {
            Ok(_) => {
                let model = uniflow_throughput_model(window, cores, 300.0) / 1e6;
                let timed = measure_run_timed(&params, threads, exp == 11, &mut prov);
                let (run, seq_wall) = (timed.run, timed.seq_wall);
                let measured = run.at_clock(300.0).million_per_second();
                let key = format!("w2e{exp}.");
                record_run(&mut m, &key, &run);
                gaps_all.merge(&timed.gaps);
                seq_total += seq_wall;
                let (par_cell, speedup_cell) = match timed.par {
                    Some((p, mut stats)) => {
                        par_total += p;
                        let mut reg = Registry::new();
                        stats.observe(&mut reg, &format!("{key}par."));
                        m.record_registry(&reg);
                        if exp == 11 {
                            crate::obsout::harvest(stats.rings.drain(..));
                        }
                        (format!("{p:.3}"), format!("{:.2}x", seq_wall / p))
                    }
                    None => ("-".into(), "-".into()),
                };
                t.row(vec![
                    format!("2^{exp}"),
                    format!("{model:.3}"),
                    format!("{measured:.3}"),
                    format!("{seq_wall:.3}"),
                    par_cell,
                    speedup_cell,
                ]);
            }
            Err(e) => t.row(vec![
                format!("2^{exp}"),
                "n/a".into(),
                format!("{e}"),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    if threads > 1 && par_total > 0.0 {
        t.note(format!(
            "--threads {threads}: total simulation wall clock {seq_total:.2}s sequential vs \
             {par_total:.2}s parallel ({:.2}x); throughput columns are engine-invariant \
             (cycle-exact)",
            seq_total / par_total
        ));
    } else {
        t.note("run with --threads N to time the parallel simulation engine");
    }
    m.histogram("service_gap_cycles", gaps_all);
    record_provenance(&mut m, &prov);
    (t, m)
}

/// Fig. 15 — uni-flow hardware latency versus join cores, in cycles and
/// microseconds, for the paper's three series.
pub fn fig15() -> Table {
    fig15_run().0
}

/// [`fig15`] plus its run manifest: per-point latency-cycle counters and
/// a histogram of all measured probe latencies (in cycles).
pub fn fig15_run() -> (Table, RunManifest) {
    let mut m = crate::obsout::manifest("fig15");
    let mut latencies = Histogram::new();
    let mut prov = None;
    let mut t = Table::new(
        "Fig. 15 — uni-flow latency (planted match per core)",
        &["series", "cores", "cycles", "clock MHz", "latency us"],
    );
    let series: [(&str, &Device, NetworkKind, usize, Option<f64>); 3] = [
        ("W 2^18 (V7)", &XC7VX485T, NetworkKind::Lightweight, 1 << 18, None),
        ("W 2^18 (V7s)", &XC7VX485T, NetworkKind::Scalable, 1 << 18, Some(300.0)),
        ("W 2^13 (V5)", &XC5VLX50T, NetworkKind::Lightweight, 1 << 13, Some(100.0)),
    ];
    for (s, (name, device, network, window, fixed_clock)) in series.into_iter().enumerate() {
        m.config(format!("series.{s}"), name);
        for exp in 1..=9u32 {
            let cores = 1u32 << exp;
            let params =
                DesignParams::new(FlowModel::UniFlow, cores, window).with_network(network);
            let report = match fixed_clock {
                Some(mhz) => params.synthesize_at(device, mhz),
                None => params.synthesize(device),
            };
            let Ok(report) = report else {
                continue; // beyond the device's capacity for this series
            };
            let mut join = harness::build(&params);
            prefill_planted(join.as_mut(), &params, 7);
            let run = run_latency(
                join.as_mut(),
                (StreamTag::R, Tuple::new(7, u32::MAX)),
                20_000_000,
            )
            .expect("latency probe quiesces");
            harvest_join(join.as_mut(), exp == 1, &mut prov);
            let cycles = run.cycles_to_last_result;
            m.counter(format!("s{s}.c{cores}.latency_cycles"), cycles);
            latencies.record_value(cycles);
            let mhz = report.clock.mhz();
            t.row(vec![
                name.to_string(),
                cores.to_string(),
                cycles.to_string(),
                format!("{mhz:.0}"),
                format!("{:.2}", cycles as f64 / mhz),
            ]);
        }
    }
    t.note("paper: cycles similar across networks; lightweight loses in time via clock drop");
    m.histogram("latency_cycles", latencies);
    record_provenance(&mut m, &prov);
    (t, m)
}

/// One latency point under both engines; panics if the parallel engine
/// is not cycle-exact. Returns the run, the sequential wall clock, and —
/// when `threads > 1` — the parallel wall clock with the pool's
/// per-worker utilization.
fn measure_latency_timed(
    params: &DesignParams,
    threads: usize,
    rings: bool,
    prov: &mut Option<ProvenanceTracker>,
) -> (LatencyRun, f64, Option<(f64, ParStats)>) {
    const PROBE_KEY: u32 = 7;
    const MAX_CYCLES: u64 = 20_000_000;
    let probe = (StreamTag::R, Tuple::new(PROBE_KEY, u32::MAX));
    let mut join = harness::build(params);
    prefill_planted(join.as_mut(), params, PROBE_KEY);
    let seq_start = Instant::now();
    let seq = run_latency(join.as_mut(), probe, MAX_CYCLES).expect("latency probe quiesces");
    let seq_wall = seq_start.elapsed().as_secs_f64();
    // Harvest from the sequential run only; the parallel run is
    // cycle-identical, so folding both in would double-count samples.
    harvest_join(join.as_mut(), rings, prov);
    if threads <= 1 {
        return (seq, seq_wall, None);
    }
    let mut join = harness::build(params);
    prefill_planted(join.as_mut(), params, PROBE_KEY);
    let mut engine = ParSimulator::new(threads);
    let par_start = Instant::now();
    let par = run_latency_with(&mut engine, join.as_mut(), probe, MAX_CYCLES)
        .expect("latency probe quiesces");
    let par_wall = par_start.elapsed().as_secs_f64();
    assert_eq!(seq, par, "parallel engine must be cycle-exact");
    let stats = engine.take_stats().expect("parallel run records stats");
    (seq, seq_wall, Some((par_wall, stats)))
}

/// [`fig15`] with each point also simulated on a `threads`-wide
/// [`ParSimulator`] pool; cycle counts are engine-invariant and the
/// extra columns report simulation wall clock and speedup. Backs the
/// `fig15` binary's `--threads` knob.
pub fn fig15_threads(threads: usize) -> Table {
    fig15_threads_run(threads).0
}

/// [`fig15_threads`] plus its run manifest: per-point latency counters,
/// the latency histogram, and per-worker utilization of the parallel
/// engine at each point (`s{series}.c{cores}.par.worker.N.*`).
pub fn fig15_threads_run(threads: usize) -> (Table, RunManifest) {
    // 0 = host auto; see `fig14c_threads`.
    let threads = if threads == 0 { ParSimulator::auto().threads() } else { threads };
    let mut m = crate::obsout::manifest("fig15");
    m.set_threads(threads);
    let mut latencies = Histogram::new();
    let mut prov = None;
    let mut t = Table::new(
        "Fig. 15 — uni-flow latency (planted match per core)",
        &["series", "cores", "cycles", "latency us", "seq wall s", "par wall s", "speedup"],
    );
    let series: [(&str, &Device, NetworkKind, usize, Option<f64>); 3] = [
        ("W 2^18 (V7)", &XC7VX485T, NetworkKind::Lightweight, 1 << 18, None),
        ("W 2^18 (V7s)", &XC7VX485T, NetworkKind::Scalable, 1 << 18, Some(300.0)),
        ("W 2^13 (V5)", &XC5VLX50T, NetworkKind::Lightweight, 1 << 13, Some(100.0)),
    ];
    let mut seq_total = 0.0f64;
    let mut par_total = 0.0f64;
    for (s, (name, device, network, window, fixed_clock)) in series.into_iter().enumerate() {
        m.config(format!("series.{s}"), name);
        for exp in 1..=9u32 {
            let cores = 1u32 << exp;
            let params =
                DesignParams::new(FlowModel::UniFlow, cores, window).with_network(network);
            let report = match fixed_clock {
                Some(mhz) => params.synthesize_at(device, mhz),
                None => params.synthesize(device),
            };
            let Ok(report) = report else {
                continue; // beyond the device's capacity for this series
            };
            let (run, seq_wall, par_wall) =
                measure_latency_timed(&params, threads, exp == 1, &mut prov);
            seq_total += seq_wall;
            let (par_cell, speedup_cell) = match par_wall {
                Some((p, mut stats)) => {
                    par_total += p;
                    let mut reg = Registry::new();
                    stats.observe(&mut reg, &format!("s{s}.c{cores}.par."));
                    m.record_registry(&reg);
                    if exp == 1 {
                        crate::obsout::harvest(stats.rings.drain(..));
                    }
                    (format!("{p:.3}"), format!("{:.2}x", seq_wall / p))
                }
                None => ("-".into(), "-".into()),
            };
            let cycles = run.cycles_to_last_result;
            m.counter(format!("s{s}.c{cores}.latency_cycles"), cycles);
            latencies.record_value(cycles);
            let mhz = report.clock.mhz();
            t.row(vec![
                name.to_string(),
                cores.to_string(),
                cycles.to_string(),
                format!("{:.2}", cycles as f64 / mhz),
                format!("{seq_wall:.3}"),
                par_cell,
                speedup_cell,
            ]);
        }
    }
    if threads > 1 && par_total > 0.0 {
        t.note(format!(
            "--threads {threads}: total simulation wall clock {seq_total:.2}s sequential vs \
             {par_total:.2}s parallel ({:.2}x); cycle counts are engine-invariant (cycle-exact)",
            seq_total / par_total
        ));
    } else {
        t.note("run with --threads N to time the parallel simulation engine");
    }
    m.histogram("latency_cycles", latencies);
    record_provenance(&mut m, &prov);
    (t, m)
}

/// Fig. 17 — maximum clock frequency versus join cores for the three
/// series (pure timing-model sweep).
pub fn fig17() -> Table {
    fig17_run().0
}

/// [`fig17`] plus its run manifest; a pure timing-model sweep, so the
/// estimated fmax per point lands in the config map (floats, no cycle
/// counters to record).
pub fn fig17_run() -> (Table, RunManifest) {
    let mut m = crate::obsout::manifest("fig17");
    let mut t = Table::new(
        "Fig. 17 — clock frequency vs join cores",
        &["series", "cores", "fmax MHz"],
    );
    for exp in 1..=9u32 {
        let cores = 1u32 << exp;
        let v7l = DesignParams::new(FlowModel::UniFlow, cores, 1 << 18);
        let fmax = estimate_fmax(&XC7VX485T, &v7l.timing_profile()).mhz();
        m.config(format!("v7_lightweight.c{cores}.fmax_mhz"), format!("{fmax:.1}"));
        t.row(vec!["W 2^18 (V7)".into(), cores.to_string(), format!("{fmax:.1}")]);
        let v7s = v7l.with_network(NetworkKind::Scalable);
        let fmax = estimate_fmax(&XC7VX485T, &v7s.timing_profile()).mhz();
        m.config(format!("v7_scalable.c{cores}.fmax_mhz"), format!("{fmax:.1}"));
        t.row(vec!["W 2^18 (V7s)".into(), cores.to_string(), format!("{fmax:.1}")]);
        if cores <= 16 {
            let v5 = DesignParams::new(FlowModel::UniFlow, cores, 1 << 13);
            let fmax = estimate_fmax(&XC5VLX50T, &v5.timing_profile()).mhz();
            m.config(format!("v5_lightweight.c{cores}.fmax_mhz"), format!("{fmax:.1}"));
            t.row(vec!["W 2^13 (V5)".into(), cores.to_string(), format!("{fmax:.1}")]);
        }
    }
    t.note("paper: V7 lightweight drops with fan-out; V7 scalable flat ~300; V5 flat, bump at 16");
    (t, m)
}

/// Section V power table — bi-flow vs uni-flow at 16 cores, window 2^13,
/// on the Virtex-5 at 100 MHz, plus a core-count sweep.
pub fn power() -> Table {
    power_run().0
}

/// [`power`] plus its run manifest; model estimates (floats) land in the
/// config map.
pub fn power_run() -> (Table, RunManifest) {
    let mut m = crate::obsout::manifest("power");
    m.config("device", "XC5VLX50T");
    m.config("clock_mhz", 100);
    let mut t = Table::new(
        "Power — Virtex-5 @100 MHz (synthesis-model estimates)",
        &["flow", "cores", "window", "total mW", "saving"],
    );
    for &(cores, window) in &[(16u32, 1usize << 13), (8, 1 << 12), (4, 1 << 11)] {
        let mut totals = Vec::new();
        for flow in [FlowModel::BiFlow, FlowModel::UniFlow] {
            let params = DesignParams::new(flow, cores, window);
            let power = hwsim::PowerModel::calibrated().report(
                &XC5VLX50T,
                params.resources(&XC5VLX50T),
                hwsim::Frequency::from_mhz(100.0),
                params.activity(),
            );
            totals.push(power.total_mw());
            m.config(
                format!("{flow}.c{cores}.w2e{}.total_mw", window.ilog2()),
                format!("{:.2}", power.total_mw()),
            );
            t.row(vec![
                flow.to_string(),
                cores.to_string(),
                format!("2^{}", window.ilog2()),
                format!("{:.2}", power.total_mw()),
                String::new(),
            ]);
        }
        let saving = 100.0 * (1.0 - totals[1] / totals[0]);
        m.config(
            format!("c{cores}.w2e{}.saving_pct", window.ilog2()),
            format!("{saving:.1}"),
        );
        t.row(vec![
            "-".into(),
            cores.to_string(),
            format!("2^{}", window.ilog2()),
            "-".into(),
            format!("{saving:.1}%"),
        ]);
    }
    t.note("paper anchor: bi-flow 1647.53 mW vs uni-flow 800.35 mW at 16 cores, window 2^13 (>50% saving)");
    (t, m)
}

/// Ablation — tree fan-out of the scalable networks (paper future work:
/// "other fan-out sizes (e.g., 1→4) could be interesting to explore").
/// Wider trees are shallower (lower latency in cycles) but each stage
/// drives more loads (lower clock), so the best wall-clock latency is a
/// genuine trade-off.
pub fn fanout_ablation() -> Table {
    let mut t = Table::new(
        "Ablation — scalable-network tree fan-out (64 cores, window 2^12, Virtex-7)",
        &["fan-out", "tree depth", "latency cycles", "fmax MHz", "latency us"],
    );
    let cores = 64u32;
    let window = 1usize << 12;
    for fanout in [2u32, 4, 8] {
        let params = DesignParams::new(FlowModel::UniFlow, cores, window)
            .with_network(NetworkKind::Scalable)
            .with_fanout(fanout);
        let report = params.synthesize(&XC7VX485T).expect("fits");
        let mut join = harness::build(&params);
        prefill_planted(join.as_mut(), &params, 7);
        let run = run_latency(
            join.as_mut(),
            (StreamTag::R, Tuple::new(7, u32::MAX)),
            10_000_000,
        )
        .expect("quiesces");
        let depth = (cores as f64).log(fanout as f64).round() as u32 + 1;
        let cycles = run.cycles_to_last_result;
        t.row(vec![
            fanout.to_string(),
            depth.to_string(),
            cycles.to_string(),
            format!("{:.1}", report.clock.mhz()),
            format!("{:.2}", cycles as f64 / report.clock.mhz()),
        ]);
    }
    t.note("shallower trees save cycles; wider stages cost clock frequency");
    t
}

/// Ablation — join algorithm inside the cores (paper: "without posing any
/// limitation on the chosen join algorithm, e.g., nested-loop join or
/// hash join"). Hash cores probe only the matching bucket, turning the
/// scan-bound design into an input-bound one at low selectivity — at the
/// price of index memory and an equi-join-only restriction.
pub fn hashjoin_ablation() -> Table {
    let mut t = Table::new(
        "Ablation — nested-loop vs hash join cores (16 cores, Virtex-5, 100 MHz)",
        &["window", "key domain", "nested Mt/s", "hash Mt/s", "speedup"],
    );
    for &(window, domain) in &[
        (1usize << 10, 1u32 << 16),
        (1 << 12, 1 << 16),
        (1 << 12, 64),
        (1 << 13, 1 << 16),
    ] {
        let mut rates = Vec::new();
        for algorithm in [JoinAlgorithm::NestedLoop, JoinAlgorithm::Hash] {
            let params = DesignParams::new(FlowModel::UniFlow, 16, window)
                .with_algorithm(algorithm);
            let mut join = harness::build(&params);
            prefill_steady_state(join.as_mut(), window);
            let tuples = tuples_for(params.sub_window()).max(256);
            let run = run_throughput(join.as_mut(), tuples, domain);
            rates.push(run.at_clock(100.0).million_per_second());
        }
        t.row(vec![
            format!("2^{}", window.ilog2()),
            domain.to_string(),
            format!("{:.4}", rates[0]),
            format!("{:.4}", rates[1]),
            format!("{:.0}x", rates[1] / rates[0]),
        ]);
    }
    t.note("prefilled windows hold distinct keys; live keys drawn from the domain");
    t.note("hash cores cost index memory: compare `synthesize` reports per algorithm");
    t
}

/// Projection — the paper's conclusion points at cloud FPGAs ("Amazon …
/// FPGAs … Xilinx UltraScale+ VU9P"). Re-running the synthesis model on
/// that part predicts what the Fig. 14c experiment would become on an
/// AWS F1 instance: the largest realizable (cores × window) uni-flow
/// designs and their model throughput. Pure out-of-sample prediction —
/// no calibration anchors touch this device.
pub fn cloudscale_projection() -> Table {
    let mut t = Table::new(
        "Projection — uni-flow on the AWS F1 FPGA (XCVU9P, scalable networks)",
        &["cores", "max window", "fmax MHz", "model Mt/s at max window"],
    );
    for exp in [9u32, 10, 11, 12] {
        let cores = 1u32 << exp;
        // Largest power-of-two window that fits.
        let mut max_window = None;
        for wexp in (10..=26u32).rev() {
            let params = DesignParams::new(FlowModel::UniFlow, cores, 1usize << wexp)
                .with_network(NetworkKind::Scalable);
            if let Ok(report) = params.synthesize(&XCVU9P) {
                max_window = Some((wexp, report.clock.mhz()));
                break;
            }
        }
        match max_window {
            Some((wexp, mhz)) => {
                let model =
                    uniflow_throughput_model(1usize << wexp, cores, mhz) / 1e6;
                t.row(vec![
                    cores.to_string(),
                    format!("2^{wexp}"),
                    format!("{mhz:.0}"),
                    format!("{model:.3}"),
                ]);
            }
            None => t.row(vec![
                cores.to_string(),
                "none".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t.note("paper evaluation peaked at 512 cores x 2^18 on the VC707 (0.59 Mt/s model)");
    t
}

/// Ablation — original vs low-latency handshake join: how many of the
/// strict-semantics results each variant reports on a finite stream, and
/// in how many cycles. The deferral of the original flow is exactly what
/// motivated the low-latency variant the paper's bi-flow design uses.
pub fn deferral_ablation() -> Table {
    use hwsim::Simulator;
    use joinhw::biflow::{BiFlowJoin, BiflowVariant};
    use joinhw::JoinOperator;
    use streamcore::workload::{KeyDist, WorkloadSpec};

    let mut t = Table::new(
        "Ablation — handshake-join variant vs result deferral (4 cores, window 64)",
        &["variant", "results", "reference", "coverage", "cycles"],
    );
    let inputs: Vec<_> = WorkloadSpec::new(1_200, KeyDist::Uniform { domain: 8 })
        .generate()
        .collect();
    // Strict reference count via the uni-flow design (verified exact).
    let reference = {
        let params = DesignParams::new(FlowModel::UniFlow, 4, 64);
        let mut join = harness::build(&params);
        let mut sim = Simulator::new();
        let mut idx = 0;
        while idx < inputs.len() {
            let (tag, tuple) = inputs[idx];
            if join.offer(tag, tuple) {
                idx += 1;
            }
            sim.step(join.as_mut());
        }
        while !join.quiescent() {
            sim.step(join.as_mut());
        }
        join.drain_results().len()
    };
    for (name, variant) in [
        ("low-latency", BiflowVariant::LowLatency),
        ("original", BiflowVariant::Original),
    ] {
        let params = DesignParams::new(FlowModel::BiFlow, 4, 64);
        let mut join = BiFlowJoin::new(&params).with_variant(variant);
        join.program(JoinOperator::equi(4));
        let mut sim = Simulator::new();
        let mut idx = 0;
        let mut results = 0usize;
        while idx < inputs.len() {
            let (tag, tuple) = inputs[idx];
            if join.offer(tag, tuple) {
                idx += 1;
            }
            sim.step(&mut join);
            results += join.drain_results().len();
        }
        while !join.quiescent() {
            sim.step(&mut join);
        }
        results += join.drain_results().len();
        t.row(vec![
            name.to_string(),
            results.to_string(),
            reference.to_string(),
            format!("{:.1}%", 100.0 * results as f64 / reference as f64),
            sim.cycle().to_string(),
        ]);
    }
    t.note("original handshake join defers matches until tuples physically meet; a finite stream strands the rest");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferral_ablation_shows_the_gap() {
        let t = deferral_ablation();
        assert_eq!(t.len(), 2);
        let low: f64 = t.cell(0, 3).unwrap().trim_end_matches('%').parse().unwrap();
        let orig: f64 = t.cell(1, 3).unwrap().trim_end_matches('%').parse().unwrap();
        assert!((99.0..=100.0).contains(&low), "low-latency coverage {low}");
        assert!(orig < low, "original should defer: {orig} vs {low}");
    }

    #[test]
    fn hash_cores_are_dramatically_faster_at_low_selectivity() {
        let nested = DesignParams::new(FlowModel::UniFlow, 4, 1 << 8);
        let hashed = nested.with_algorithm(JoinAlgorithm::Hash);
        let a = measure_mtps(&nested, 100.0);
        let b = measure_mtps(&hashed, 100.0);
        assert!(b > 10.0 * a, "hash {b} vs nested {a}");
    }

    #[test]
    fn tuples_for_is_bounded() {
        assert_eq!(tuples_for(1), 512);
        assert_eq!(tuples_for(1 << 17), 64);
    }

    #[test]
    fn fig17_has_all_series() {
        let t = fig17();
        // 9 core counts x 2 V7 series + 4 V5 points.
        assert_eq!(t.len(), 9 * 2 + 4);
    }

    #[test]
    fn power_table_reports_over_50_percent_saving() {
        let t = power();
        let saving_cell = t.cell(2, 4).unwrap();
        let saving: f64 = saving_cell.trim_end_matches('%').parse().unwrap();
        assert!(saving > 50.0, "saving {saving}%");
    }

    #[test]
    fn small_throughput_point_is_sane() {
        // A miniature fig14a point: model and simulation agree.
        let params = DesignParams::new(FlowModel::UniFlow, 4, 1 << 8);
        let measured = measure_mtps(&params, 100.0);
        let model = uniflow_throughput_model(1 << 8, 4, 100.0) / 1e6;
        assert!((measured - model).abs() / model < 0.15, "{measured} vs {model}");
    }
}
