//! Kernel figure: scalar vs blocked probe kernels on the software
//! SplitJoin.
//!
//! Not a paper figure — this sweep documents the repo's own software
//! optimization: the blocked batch×window compare tiles
//! ([`streamcore::kernel`]) against the per-tuple scalar sweep, over the
//! window range where the committed fig14d baseline falls off its cache
//! cliff (2^8..2^14), in both counting-only and materializing modes.
//! Both kernels run the same deterministic workload on the same core
//! count, so the ratio isolates the kernel itself; `swjoin_check`
//! enforces the ≥2x counting-mode win at windows ≥ 2^10 against these
//! entries.
//!
//! Honors the shared CLI options ([`SwRunOpts`](crate::swjoin::SwRunOpts)):
//! `--batch` (blocked tiles need at least 8 probes per batch to engage),
//! `--windows` for the exponent range, and `--samples` for the
//! best-of-N run count per point (default 3).

use joinsw::config::Kernel;
use joinsw::harness::{host_parallelism, measure_throughput_collecting, PARALLEL_EFFICIENCY};
use joinsw::splitjoin::{SplitJoin, SplitJoinConfig};
use obs::RunManifest;

use crate::swjoin::{SwJoinEntry, SwRunOpts};
use crate::table::Table;

const KEY_DOMAIN: u32 = 1 << 20;

/// Comparison budget per point, matching `swfigs`: tuples per run are
/// derived from it so every window costs similar wall-clock time. The
/// clamp ceiling is much higher than the fig14d sweep's because this
/// figure feeds a hard CI gate (`swjoin_check`'s 2x counting check) —
/// millisecond-scale runs on a loaded host swing 3x in either
/// direction, so each timed segment here runs tens of milliseconds.
const COMPARISON_BUDGET: u64 = 100_000_000;

/// Best-of-N runs per point. Worker threads share cores with the OS, so
/// scheduler interference only ever *depresses* a throughput sample;
/// taking the max of a few short runs recovers the undisturbed rate.
const DEFAULT_SAMPLES: usize = 3;

fn tuples_for(window: usize) -> u64 {
    (COMPARISON_BUDGET / window as u64).clamp(1_024, 65_536)
}

/// Kernel figure over the default window range 2^8..2^14.
pub fn kernel_figure() -> Table {
    kernel_figure_windows(8..=14)
}

/// [`kernel_figure`] plus its run manifest and the measured points for
/// `BENCH_swjoin.json`.
pub fn kernel_run_opts(opts: &SwRunOpts) -> (Table, RunManifest, Vec<SwJoinEntry>) {
    let mut m = crate::obsout::manifest("kernel");
    m.config("host_parallelism", host_parallelism());
    m.config("parallel_efficiency", PARALLEL_EFFICIENCY);
    m.config("batch_size", opts.batch_size);
    let mut entries = Vec::new();
    let t = kernel_into(opts, Some(&mut m), Some(&mut entries));
    (t, m, entries)
}

/// Kernel figure over a custom window-exponent range (tests use a small
/// one).
pub fn kernel_figure_windows(exponents: std::ops::RangeInclusive<u32>) -> Table {
    let opts = SwRunOpts { windows: Some(exponents), ..SwRunOpts::default() };
    kernel_into(&opts, None, None)
}

fn kernel_into(
    opts: &SwRunOpts,
    mut manifest: Option<&mut RunManifest>,
    mut entries: Option<&mut Vec<SwJoinEntry>>,
) -> Table {
    let exponents = opts.windows.clone().unwrap_or(8..=14);
    let batch = opts.batch_size;
    let samples = opts.samples.unwrap_or(DEFAULT_SAMPLES).max(1);
    let mut t = Table::new(
        "Kernel — scalar vs blocked probe kernels, SplitJoin throughput (M tuples/s)",
        &[
            "window",
            "scalar count",
            "blocked count",
            "speedup",
            "scalar mat",
            "blocked mat",
            "speedup",
        ],
    );
    // One core for both kernels: the ratio is the kernel's own win, with
    // no parallel-scaling model in the quotient.
    let variants: [(&str, Kernel, bool); 4] = [
        ("scalar_count", Kernel::Scalar, true),
        ("blocked_count", Kernel::Blocked, true),
        ("scalar_mat", Kernel::Scalar, false),
        ("blocked_mat", Kernel::Blocked, false),
    ];
    for exp in exponents {
        let window = 1usize << exp;
        let tuples = tuples_for(window);
        let mut mtps = [0f64; 4];
        for (i, (name, kernel, counting)) in variants.iter().enumerate() {
            let mut config = SplitJoinConfig::new(1, window)
                .with_batch_size(batch)
                .with_kernel(*kernel);
            if *counting {
                config = config.counting_only();
            }
            // Materializing variants keep `collect_results` on, so the
            // timed segment runs bitmask-then-emit with a live
            // collector; counting variants time popcount-only tiles.
            let rate = (0..samples)
                .map(|_| {
                    measure_throughput_collecting::<SplitJoin>(
                        config.clone(),
                        tuples,
                        KEY_DOMAIN,
                    )
                    .expect("kernel figure run failed")
                    .0
                    .million_per_second()
                })
                .fold(0f64, f64::max);
            mtps[i] = rate;
            if let Some(m) = manifest.as_deref_mut() {
                m.config(format!("w2e{exp}.{name}_mtps"), format!("{rate:.5}"));
            }
            if let Some(e) = entries.as_deref_mut() {
                e.push(SwJoinEntry {
                    figure: "kernel".into(),
                    variant: (*name).into(),
                    cores: 1,
                    window,
                    batch_size: batch,
                    tuples,
                    metric: "throughput_mtps".into(),
                    value: rate,
                    mode: "measured".into(),
                });
            }
        }
        if let Some(m) = manifest.as_deref_mut() {
            m.counter(format!("w2e{exp}.tuples"), tuples);
        }
        t.row(vec![
            format!("2^{exp}"),
            format!("{:.5}", mtps[0]),
            format!("{:.5}", mtps[1]),
            format!("{:.2}x", mtps[1] / mtps[0]),
            format!("{:.5}", mtps[2]),
            format!("{:.5}", mtps[3]),
            format!("{:.2}x", mtps[3] / mtps[2]),
        ]);
    }
    t.note(format!("distribution batch size: {batch} (blocked tiles engage at >= 8 probes/batch)"));
    t.note("counting mode: popcount-only tiles; materializing mode: bitmask-then-emit pairs");
    t.note("both kernels measured single-core on identical workloads — the ratio is the kernel's");
    t.note(format!(
        "each point is the best of {samples} run(s): scheduler noise only depresses a rate"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_figure_emits_four_variants_per_window() {
        let opts = SwRunOpts {
            batch_size: 64,
            cores: None,
            windows: Some(8..=9),
            samples: Some(1),
            trace: None,
            live: None,
            live_port: None,
        };
        let mut entries = Vec::new();
        let t = kernel_into(&opts, None, Some(&mut entries));
        assert_eq!(t.len(), 2);
        assert_eq!(entries.len(), 8);
        assert!(entries.iter().all(|e| e.figure == "kernel"));
        assert!(entries.iter().all(|e| e.metric == "throughput_mtps"));
        assert!(entries.iter().all(|e| e.cores == 1));
        for v in ["scalar_count", "blocked_count", "scalar_mat", "blocked_mat"] {
            assert_eq!(entries.iter().filter(|e| e.variant == v).count(), 2, "{v}");
        }
    }
}
