//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section V).
//!
//! Each figure has a binary (`cargo run -p bench --release --bin fig14a`,
//! …); [`all`] returns every table for the combined `all_figures` binary,
//! whose output backs `EXPERIMENTS.md`.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig14a` | uni-flow HW throughput vs cores (Virtex-5) |
//! | `fig14b` | uni-flow vs bi-flow HW throughput vs window |
//! | `fig14c` | uni-flow HW throughput, 512 cores (Virtex-7) |
//! | `fig14d` | software SplitJoin throughput |
//! | `fig15`  | uni-flow HW latency |
//! | `fig16`  | software SplitJoin latency |
//! | `fig17`  | clock frequency vs cores |
//! | `power`  | Section V power comparison |
//! | `reconfig` | Fig. 6 deployment paths + live re-query |
//! | `precision` | ablation: handshake ordering precision vs drift |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hwfigs;
pub mod obsout;
mod reconfigfig;
mod swfigs;
pub mod swjoin;
mod table;

pub use hwfigs::{
    cloudscale_projection, deferral_ablation, fanout_ablation, fig14a, fig14a_run, fig14b,
    fig14b_run, fig14c, fig14c_run, fig14c_threads, fig14c_threads_run, fig15, fig15_run,
    fig15_threads, fig15_threads_run, fig17, fig17_run, hashjoin_ablation, power, power_run,
};
pub use reconfigfig::{deployment_paths, live_requery};
pub use swfigs::{
    fig14d, fig14d_run, fig14d_run_opts, fig14d_windows, fig16, fig16_config, fig16_run,
    fig16_run_opts,
};
pub use table::Table;

use joinsw::baseline::reference_join;
use joinsw::handshake::{HandshakeConfig, HandshakeJoin};
use streamcore::workload::{KeyDist, WorkloadSpec};
use streamcore::JoinPredicate;

/// Ablation: the software handshake chain's ordering-precision knob
/// (in-flight wave depth) versus result drift from strict semantics.
pub fn precision_ablation() -> Table {
    let mut t = Table::new(
        "Ablation — handshake ordering precision (in-flight depth) vs result drift",
        &["channel capacity", "results", "reference", "drift"],
    );
    let inputs: Vec<_> = WorkloadSpec::new(6_000, KeyDist::Uniform { domain: 16 })
        .generate()
        .collect();
    let window = 256;
    let want = reference_join(&inputs, window, JoinPredicate::Equi).len() as f64;
    for capacity in [2usize, 8, 32, 128] {
        let join = HandshakeJoin::spawn(
            HandshakeConfig::new(4, window).with_channel_capacity(capacity),
        );
        for &(tag, tuple) in &inputs {
            join.process(tag, tuple);
        }
        join.flush();
        let got = join.shutdown().result_count as f64;
        t.row(vec![
            capacity.to_string(),
            format!("{got}"),
            format!("{want}"),
            format!("{:.2}%", 100.0 * (got - want).abs() / want),
        ]);
    }
    t.note("SplitJoin's 'adjustable ordering precision': shallower buffers = stricter semantics");
    t
}

/// Parses a `--threads N` (or `--threads=N`) flag from the process
/// arguments. `None` when absent; `Some(0)` means "size from the host"
/// (`hwsim::ParSimulator::new(0)` resolves it).
pub fn threads_from_args() -> Option<usize> {
    fn bad(got: &str) -> ! {
        eprintln!("error: --threads requires a non-negative integer (0 = host auto), got `{got}`");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if arg == "--threads" {
            let v = args.get(i + 1).map(String::as_str).unwrap_or("");
            return Some(v.parse().unwrap_or_else(|_| bad(v)));
        }
        if let Some(v) = arg.strip_prefix("--threads=") {
            return Some(v.parse().unwrap_or_else(|_| bad(v)));
        }
    }
    None
}

/// Every figure and table, in paper order.
pub fn all() -> Vec<Table> {
    vec![
        fig14a(),
        fig14b(),
        fig14c(),
        fig14d(),
        fig15(),
        fig16(),
        fig17(),
        power(),
        deployment_paths(),
        live_requery(),
        precision_ablation(),
        fanout_ablation(),
        hashjoin_ablation(),
        deferral_ablation(),
        cloudscale_projection(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_ablation_produces_four_points() {
        let t = precision_ablation();
        assert_eq!(t.len(), 4);
    }
}
