//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section V).
//!
//! Each figure has a binary (`cargo run -p bench --release --bin fig14a`,
//! …); [`all`] returns every table for the combined `all_figures` binary,
//! whose output backs `EXPERIMENTS.md`.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig14a` | uni-flow HW throughput vs cores (Virtex-5) |
//! | `fig14b` | uni-flow vs bi-flow HW throughput vs window |
//! | `fig14c` | uni-flow HW throughput, 512 cores (Virtex-7) |
//! | `fig14d` | software SplitJoin throughput |
//! | `fig15`  | uni-flow HW latency |
//! | `fig16`  | software SplitJoin latency |
//! | `fig17`  | clock frequency vs cores |
//! | `kernel` | scalar vs blocked probe kernels (software SplitJoin) |
//! | `partition` | broadcast vs hash-partitioned dispatch + zipf occupancy |
//! | `power`  | Section V power comparison |
//! | `reconfig` | Fig. 6 deployment paths + live re-query |
//! | `precision` | ablation: handshake ordering precision vs drift |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hwfigs;
mod kernelfigs;
pub mod obsout;
mod partfigs;
mod reconfigfig;
mod swfigs;
pub mod swjoin;
mod table;

pub use hwfigs::{
    cloudscale_projection, deferral_ablation, fanout_ablation, fig14a, fig14a_run, fig14b,
    fig14b_run, fig14c, fig14c_run, fig14c_threads, fig14c_threads_run, fig15, fig15_run,
    fig15_threads, fig15_threads_run, fig17, fig17_run, hashjoin_ablation, power, power_run,
};
pub use kernelfigs::{kernel_figure, kernel_figure_windows, kernel_run_opts};
pub use partfigs::partition_run_opts;
pub use reconfigfig::{deployment_paths, live_requery};
pub use swfigs::{
    fig14d, fig14d_run, fig14d_run_opts, fig14d_windows, fig16, fig16_config, fig16_run,
    fig16_run_opts,
};
pub use table::Table;

use joinsw::baseline::reference_join;
use joinsw::handshake::{HandshakeConfig, HandshakeJoin};
use streamcore::workload::{KeyDist, WorkloadSpec};
use streamcore::JoinPredicate;

/// Ablation: the software handshake chain's ordering-precision knob
/// (in-flight wave depth) versus result drift from strict semantics.
pub fn precision_ablation() -> Table {
    let mut t = Table::new(
        "Ablation — handshake ordering precision (in-flight depth) vs result drift",
        &["channel capacity", "results", "reference", "drift"],
    );
    let inputs: Vec<_> = WorkloadSpec::new(6_000, KeyDist::Uniform { domain: 16 })
        .generate()
        .collect();
    let window = 256;
    let want = reference_join(&inputs, window, JoinPredicate::Equi).len() as f64;
    for capacity in [2usize, 8, 32, 128] {
        let join = HandshakeJoin::spawn(
            HandshakeConfig::new(4, window).with_channel_capacity(capacity),
        );
        for &(tag, tuple) in &inputs {
            join.process(tag, tuple).expect("handshake chain died");
        }
        join.flush().expect("handshake chain died");
        let got = join.shutdown().expect("handshake chain died").result_count as f64;
        t.row(vec![
            capacity.to_string(),
            format!("{got}"),
            format!("{want}"),
            format!("{:.2}%", 100.0 * (got - want).abs() / want),
        ]);
    }
    t.note("SplitJoin's 'adjustable ordering precision': shallower buffers = stricter semantics");
    t
}

/// Parses a `--threads N` (or `--threads=N`) flag from the process
/// arguments. `None` when absent; `Some(0)` means "size from the host"
/// (`hwsim::ParSimulator::new(0)` resolves it).
pub fn threads_from_args() -> Option<usize> {
    fn bad(got: &str) -> ! {
        eprintln!("error: --threads requires a non-negative integer (0 = host auto), got `{got}`");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if arg == "--threads" {
            let v = args.get(i + 1).map(String::as_str).unwrap_or("");
            return Some(v.parse().unwrap_or_else(|_| bad(v)));
        }
        if let Some(v) = arg.strip_prefix("--threads=") {
            return Some(v.parse().unwrap_or_else(|_| bad(v)));
        }
    }
    None
}

/// Parses a `--trace [N]` (or `--trace=N`) flag from the process
/// arguments: enable span tracing with 1-in-`N` provenance sampling.
/// Bare `--trace` samples every 64th tuple; `None` when absent.
///
/// The figure binaries pass the parsed period to [`obs::trace::enable`]
/// before measuring and export the harvested rings afterwards (see
/// [`obsout::take_harvest`]); tracing never changes measured cycle
/// counts or results, only what gets recorded on the side.
pub fn trace_from_args() -> Option<u64> {
    fn bad(got: &str) -> ! {
        eprintln!("error: --trace takes an optional positive integer sample period, got `{got}`");
        std::process::exit(2);
    }
    let parse = |v: &str| v.parse::<u64>().ok().filter(|&n| n > 0).unwrap_or_else(|| bad(v));
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        if arg == "--trace" {
            return Some(match args.get(i + 1) {
                Some(v) if !v.starts_with('-') => parse(v),
                _ => 64,
            });
        }
        if let Some(v) = arg.strip_prefix("--trace=") {
            return Some(parse(v));
        }
    }
    None
}

/// [`trace_from_args`] plus the side effect every figure binary wants:
/// when `--trace` is present, turns tracing on via [`obs::trace::enable`].
/// Returns whether tracing was requested. Without the `obs` feature the
/// enable call is a no-op and no spans are ever recorded.
pub fn trace_setup() -> bool {
    match trace_from_args() {
        Some(n) => {
            obs::trace::enable(n);
            true
        }
        None => false,
    }
}

/// Every figure and table, in paper order.
pub fn all() -> Vec<Table> {
    vec![
        fig14a(),
        fig14b(),
        fig14c(),
        fig14d(),
        fig15(),
        fig16(),
        fig17(),
        power(),
        deployment_paths(),
        live_requery(),
        precision_ablation(),
        fanout_ablation(),
        hashjoin_ablation(),
        deferral_ablation(),
        cloudscale_projection(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_ablation_produces_four_points() {
        let t = precision_ablation();
        assert_eq!(t.len(), 4);
    }
}
