//! Manifest emission for the figure binaries.
//!
//! Every `fig*` binary prints its human-readable [`Table`](crate::Table)
//! to stdout and, in addition, writes a machine-readable
//! [`obs::RunManifest`] — git revision, thread count,
//! configuration, counters, and latency histograms — so runs can be
//! diffed and archived. Manifests land in `target/obs/<name>.json` (or
//! `$ACCEL_OBS_DIR` when set); see `EXPERIMENTS.md` for the schema.

use std::sync::Mutex;

use obs::trace::{TraceRing, TraceSet};
use obs::RunManifest;

/// Span rings harvested by the figure functions while tracing is
/// enabled, awaiting export by the binary (see [`take_harvest`]).
static HARVEST: Mutex<Vec<TraceRing>> = Mutex::new(Vec::new());

/// Stashes harvested span rings for the running figure. Figure
/// functions call this after a measured point; the binary drains the
/// collection once with [`take_harvest`] and writes it via
/// [`emit_trace`].
pub fn harvest(rings: impl IntoIterator<Item = TraceRing>) {
    HARVEST.lock().expect("harvest lock").extend(rings);
}

/// Drains every harvested ring into a trace set named after the figure.
pub fn take_harvest(figure: &str) -> TraceSet {
    let mut set = TraceSet::new(figure);
    set.extend(HARVEST.lock().expect("harvest lock").drain(..));
    set
}

/// Writes a Chrome-trace/Perfetto export of `set` to the default
/// manifest directory, reporting the path on stderr. A no-op when the
/// set holds no rings; a failure to write is a warning, never a failed
/// run.
/// Drains the harvest into a [`TraceSet`] named `figure` and writes it
/// out — the one-call exit path for figure binaries. Does nothing when
/// no rings were harvested (tracing off, or the figure has none).
pub fn emit_harvest(figure: &str) {
    emit_trace(&take_harvest(figure));
}

/// Writes a non-empty [`TraceSet`] next to the run manifests and prints
/// where it landed; write failures warn instead of aborting the run.
pub fn emit_trace(set: &TraceSet) {
    if set.is_empty() {
        return;
    }
    match set.write_default() {
        Ok(path) => eprintln!("trace: {}", path.display()),
        Err(e) => eprintln!("warning: trace `{}` not written: {e}", set.name()),
    }
}

/// Starts a manifest for the named figure. The git revision is stamped
/// by the manifest itself; callers add config, counters, and histograms.
pub fn manifest(figure: &str) -> RunManifest {
    RunManifest::new(figure)
}

/// Writes `m` to the default manifest directory, reporting the path on
/// stderr. A failure to write is a warning, never a failed run: the
/// table on stdout is the primary artifact.
pub fn emit(m: &RunManifest) {
    match m.write_default() {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("warning: manifest `{}` not written: {e}", m.name()),
    }
}
