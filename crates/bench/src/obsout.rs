//! Manifest emission for the figure binaries.
//!
//! Every `fig*` binary prints its human-readable [`Table`](crate::Table)
//! to stdout and, in addition, writes a machine-readable
//! [`obs::RunManifest`] — git revision, thread count,
//! configuration, counters, and latency histograms — so runs can be
//! diffed and archived. Manifests land in `target/obs/<name>.json` (or
//! `$ACCEL_OBS_DIR` when set); see `EXPERIMENTS.md` for the schema.

use std::sync::Mutex;
use std::time::Duration;

use obs::trace::{TraceRing, TraceSet};
use obs::RunManifest;

/// Span rings harvested by the figure functions while tracing is
/// enabled, awaiting export by the binary (see [`take_harvest`]).
static HARVEST: Mutex<Vec<TraceRing>> = Mutex::new(Vec::new());

/// Stashes harvested span rings for the running figure. Figure
/// functions call this after a measured point; the binary drains the
/// collection once with [`take_harvest`] and writes it via
/// [`emit_trace`].
pub fn harvest(rings: impl IntoIterator<Item = TraceRing>) {
    HARVEST.lock().expect("harvest lock").extend(rings);
}

/// Drains every harvested ring into a trace set named after the figure.
pub fn take_harvest(figure: &str) -> TraceSet {
    let mut set = TraceSet::new(figure);
    set.extend(HARVEST.lock().expect("harvest lock").drain(..));
    set
}

/// Writes a Chrome-trace/Perfetto export of `set` to the default
/// manifest directory, reporting the path on stderr. A no-op when the
/// set holds no rings; a failure to write is a warning, never a failed
/// run.
/// Drains the harvest into a [`TraceSet`] named `figure` and writes it
/// out — the one-call exit path for figure binaries. Does nothing when
/// no rings were harvested (tracing off, or the figure has none).
pub fn emit_harvest(figure: &str) {
    emit_trace(&take_harvest(figure));
}

/// Writes a non-empty [`TraceSet`] next to the run manifests and prints
/// where it landed; write failures warn instead of aborting the run.
pub fn emit_trace(set: &TraceSet) {
    if set.is_empty() {
        return;
    }
    match set.write_default() {
        Ok(path) => eprintln!("trace: {}", path.display()),
        Err(e) => eprintln!("warning: trace `{}` not written: {e}", set.name()),
    }
}

/// Starts a manifest for the named figure. The git revision is stamped
/// by the manifest itself; callers add config, counters, and histograms.
pub fn manifest(figure: &str) -> RunManifest {
    RunManifest::new(figure)
}

/// Writes `m` to the default manifest directory, reporting the path on
/// stderr. A failure to write is a warning, never a failed run: the
/// table on stdout is the primary artifact.
pub fn emit(m: &RunManifest) {
    match m.write_default() {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("warning: manifest `{}` not written: {e}", m.name()),
    }
}

/// A figure binary's live-telemetry session: the armed global
/// [`obs::live`] plane, a background sampler streaming
/// `target/obs/<figure>.series.jsonl`, and (when a port was requested) a
/// Prometheus-style scrape endpoint. Construct with [`live_start`],
/// tear down with [`LiveRun::finish`] — dropping without `finish` still
/// stops the sampler, it just skips the stderr summary.
#[derive(Debug)]
pub struct LiveRun {
    sampler: Option<obs::live::Sampler>,
    server: Option<obs::scrape::ScrapeServer>,
}

/// Arms the live plane and starts the sampler (and scrape endpoint,
/// when `port` is given — `0` binds an ephemeral port, printed on
/// stderr as `live scrape: <addr>`). Call *before* spawning engines:
/// the hot layers only register their live gauges when the plane is
/// armed at spawn. Failures to open the series file or bind the socket
/// are warnings, never failed runs.
pub fn live_start(figure: &str, interval_ms: u64, port: Option<u16>) -> LiveRun {
    obs::live::set_active(true);
    let reg = obs::live::global().clone();
    let cfg = obs::live::SamplerConfig {
        interval: Duration::from_millis(interval_ms.max(1)),
        ..Default::default()
    };
    let mut header = obs::series::SeriesHeader::new(figure, interval_ms.max(1));
    header.config("figure", figure);
    let sampler = match obs::series::SeriesWriter::create(obs::default_dir(), header) {
        Ok(writer) => obs::live::Sampler::start_with_series(reg.clone(), cfg, writer),
        Err(e) => {
            eprintln!("warning: series for `{figure}` not started: {e}; sampling in memory");
            obs::live::Sampler::start(reg.clone(), cfg)
        }
    };
    let server = port.and_then(|p| match obs::scrape::serve(reg, p) {
        Ok(server) => {
            eprintln!("live scrape: {}", server.addr());
            Some(server)
        }
        Err(e) => {
            eprintln!("warning: scrape endpoint not started: {e}");
            None
        }
    });
    LiveRun { sampler: Some(sampler), server }
}

impl LiveRun {
    /// Stops the sampler (flushing the series artifact) and the scrape
    /// endpoint, disarms the plane, and reports what was produced on
    /// stderr.
    pub fn finish(mut self) {
        if let Some(sampler) = self.sampler.take() {
            let report = sampler.stop();
            if let Some(e) = report.series_error {
                eprintln!("warning: series write failed mid-run: {e}");
            }
            match report.series_path {
                Some(path) => {
                    eprintln!("series: {} ({} samples)", path.display(), report.ticks)
                }
                None => eprintln!("live sampling: {} snapshots (no series file)", report.ticks),
            }
        }
        if let Some(server) = self.server.take() {
            eprintln!("live scrape: {} requests served", server.scrapes());
            server.stop();
        }
        obs::live::set_active(false);
    }
}
