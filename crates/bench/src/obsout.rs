//! Manifest emission for the figure binaries.
//!
//! Every `fig*` binary prints its human-readable [`Table`](crate::Table)
//! to stdout and, in addition, writes a machine-readable
//! [`obs::RunManifest`] — git revision, thread count,
//! configuration, counters, and latency histograms — so runs can be
//! diffed and archived. Manifests land in `target/obs/<name>.json` (or
//! `$ACCEL_OBS_DIR` when set); see `EXPERIMENTS.md` for the schema.

use obs::RunManifest;

/// Starts a manifest for the named figure. The git revision is stamped
/// by the manifest itself; callers add config, counters, and histograms.
pub fn manifest(figure: &str) -> RunManifest {
    RunManifest::new(figure)
}

/// Writes `m` to the default manifest directory, reporting the path on
/// stderr. A failure to write is a warning, never a failed run: the
/// table on stdout is the primary artifact.
pub fn emit(m: &RunManifest) {
    match m.write_default() {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("warning: manifest `{}` not written: {e}", m.name()),
    }
}
