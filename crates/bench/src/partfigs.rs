//! Partitioned-dispatch (PanJoin mode) figures: broadcast vs hash
//! speedup and skew-rebalance occupancy.
//!
//! Two sweeps, both published under figure `partition` in
//! `BENCH_swjoin.json`:
//!
//! 1. **Speedup** — wall-clock throughput of the same SplitJoin at the
//!    same core count, broadcast vs [`Partitioning::Hash`], across
//!    windows 2^16–2^20. Broadcast ships every probe to every worker and
//!    each worker scans its whole sub-window; hash dispatch routes each
//!    probe to the single partition owner, which walks only the matching
//!    key chain. The per-probe work drops from `O(window)` to
//!    `O(matches)`, so the ratio grows with the window.
//! 2. **Occupancy** — a zipf(s=1.0, domain 8) feed with *no* warm-up
//!    prefill, measuring [`PartitionStats::balance`] (max/mean live
//!    occupancy over live workers, `occupancy_ratio` in the artifact)
//!    with the hot-key splitter enabled versus disabled (`nosplit`, the
//!    splitter's threshold pushed out of reach). A rebalanced run keeps
//!    the ratio low; the nosplit run shows the skew the sketch removes.
//!
//! Both honor the shared CLI options ([`SwRunOpts`]): `--batch`,
//! `--cores` (first value is the sweep's core count), and `--windows`
//! reshape the speedup sweep. The walkthrough in
//! `docs/PARTITIONING.md` reproduces these numbers step by step.

use joinsw::config::Partitioning;
use joinsw::harness::{host_parallelism, measure_throughput_outcome};
use joinsw::splitjoin::{SplitJoin, SplitJoinConfig};
use joinsw::streamjoin::JoinSummary;
use obs::RunManifest;
use streamcore::workload::{KeyDist, WorkloadSpec};

use crate::swjoin::{SwJoinEntry, SwRunOpts};
use crate::table::Table;

const KEY_DOMAIN: u32 = 1 << 20;

/// Skew exponent of the occupancy sweep: classic Zipf, the paper's
/// "few sensors dominate" regime.
const ZIPF_S: f64 = 1.0;
/// Distinct keys in the occupancy sweep — few enough that one owner
/// would hold a third of both windows without hot splitting.
const ZIPF_DOMAIN: u32 = 8;
/// Window of the occupancy sweep.
const ZIPF_WINDOW: usize = 1 << 12;
/// Sketch warm-up for the occupancy sweep: promote after this many
/// routed tuples instead of the production default, so a 3-window feed
/// rebalances early enough to show up in final occupancy.
const ZIPF_HOT_SAMPLE: u64 = 256;

/// Comparison budget per broadcast point (matches the fig14d budget
/// shape); the partitioned arm replays the same tuple count so the two
/// rates divide cleanly.
const COMPARISON_BUDGET: u64 = 100_000_000;

fn tuples_for(window: usize) -> u64 {
    (COMPARISON_BUDGET / window as u64).clamp(8, 4_096)
}

fn throughput_entry(
    variant: &str,
    cores: usize,
    window: usize,
    batch_size: usize,
    tuples: u64,
    mtps: f64,
) -> SwJoinEntry {
    SwJoinEntry {
        figure: "partition".into(),
        variant: variant.into(),
        cores,
        window,
        batch_size,
        tuples,
        metric: "throughput_mtps".into(),
        value: mtps,
        mode: "measured".into(),
    }
}

/// The partition figure with CLI options applied, returning the
/// speedup and occupancy tables, the run manifest, and the measured
/// points for `BENCH_swjoin.json`.
pub fn partition_run_opts(opts: &SwRunOpts) -> (Vec<Table>, RunManifest, Vec<SwJoinEntry>) {
    let mut m = crate::obsout::manifest("partition");
    m.config("host_parallelism", host_parallelism());
    m.config("batch_size", opts.batch_size);
    let mut entries = Vec::new();
    let speedup = speedup_sweep(opts, &mut m, &mut entries);
    let occupancy = occupancy_sweep(opts, &mut m, &mut entries);
    (vec![speedup, occupancy], m, entries)
}

fn sweep_cores(opts: &SwRunOpts) -> usize {
    opts.cores
        .as_ref()
        .and_then(|c| c.first().copied())
        .unwrap_or(4)
}

/// Broadcast vs hash-partitioned wall-clock throughput, windows
/// 2^16–2^20 (or `--windows`), at one core count.
fn speedup_sweep(
    opts: &SwRunOpts,
    m: &mut RunManifest,
    entries: &mut Vec<SwJoinEntry>,
) -> Table {
    let exponents = opts.windows.clone().unwrap_or(16..=20);
    let cores = sweep_cores(opts);
    let batch = opts.batch_size;
    let mut t = Table::new(
        format!(
            "Partition figure — broadcast vs hash dispatch, {cores} cores (M tuples/s)"
        ),
        &["window", "broadcast", "partitioned", "speedup"],
    );
    m.config("speedup.cores", cores);
    for exp in exponents {
        let window = 1usize << exp;
        let tuples = tuples_for(window);
        // Both arms pin their dispatch mode explicitly: the A/B must
        // hold even when `ACCEL_SW_PARTITIONING=hash` flips the default.
        let broadcast = measure_throughput_outcome(
            SplitJoinConfig::new(cores, window)
                .with_batch_size(batch)
                .with_partitioning(Partitioning::Broadcast),
            tuples,
            KEY_DOMAIN,
        )
        .expect("partition broadcast run failed")
        .0
        .million_per_second();
        let partitioned = measure_throughput_outcome(
            SplitJoinConfig::new(cores, window)
                .with_batch_size(batch)
                .with_partitioning(Partitioning::Hash),
            tuples,
            KEY_DOMAIN,
        )
        .expect("partition hash run failed")
        .0
        .million_per_second();
        let speedup = partitioned / broadcast;
        m.config(format!("w2e{exp}.broadcast_mtps"), format!("{broadcast:.5}"));
        m.config(
            format!("w2e{exp}.partitioned_mtps"),
            format!("{partitioned:.5}"),
        );
        m.config(format!("w2e{exp}.speedup"), format!("{speedup:.1}"));
        entries.push(throughput_entry(
            "broadcast",
            cores,
            window,
            batch,
            tuples,
            broadcast,
        ));
        entries.push(throughput_entry(
            "partitioned",
            cores,
            window,
            batch,
            tuples,
            partitioned,
        ));
        t.row(vec![
            format!("2^{exp}"),
            format!("{broadcast:.5}"),
            format!("{partitioned:.5}"),
            format!("{speedup:.1}x"),
        ]);
    }
    t.note(
        "both columns wall-clock on this host; broadcast probes scan the \
         whole sub-window, hash probes walk one key chain",
    );
    t.note(format!("distribution batch size: {batch}"));
    t
}

/// Runs one occupancy-sweep arm and returns the final
/// max/mean-occupancy ratio and the number of hot splits.
fn occupancy_arm(config: SplitJoinConfig, inputs: &[(streamcore::StreamTag, streamcore::Tuple)]) -> (f64, u64) {
    let batch = config.batch_size;
    let join = SplitJoin::spawn(config);
    for chunk in inputs.chunks(batch.max(1)) {
        join.process_batch(chunk).expect("occupancy feed failed");
    }
    join.flush().expect("occupancy flush failed");
    let outcome = join.shutdown().expect("occupancy shutdown failed");
    assert!(!outcome.fault().degraded(), "occupancy run degraded");
    let stats = outcome
        .partition_stats
        .expect("hash dispatch reports partition stats");
    (stats.balance(), stats.hot_splits)
}

/// Skew sweep: zipf(1.0) over 8 keys, no warm-up prefill, splitter on
/// vs off, measuring the final max/mean live-occupancy ratio.
fn occupancy_sweep(
    opts: &SwRunOpts,
    m: &mut RunManifest,
    entries: &mut Vec<SwJoinEntry>,
) -> Table {
    let cores = sweep_cores(opts);
    let batch = opts.batch_size;
    let tuples = 3 * ZIPF_WINDOW;
    let inputs: Vec<_> = WorkloadSpec::new(
        tuples,
        KeyDist::Zipf {
            domain: ZIPF_DOMAIN,
            s: ZIPF_S,
        },
    )
    .with_seed(7)
    .generate()
    .collect();
    let base = SplitJoinConfig::new(cores, ZIPF_WINDOW)
        .with_batch_size(batch)
        .with_partitioning(Partitioning::Hash)
        .counting_only();
    let (split_ratio, hot_splits) =
        occupancy_arm(base.clone().with_hot_sample(ZIPF_HOT_SAMPLE), &inputs);
    // Threshold out of reach: the sketch never promotes, owners keep
    // every tuple of their keys.
    let (nosplit_ratio, nosplit_hot) =
        occupancy_arm(base.with_hot_key_factor(1e9), &inputs);
    assert_eq!(nosplit_hot, 0, "nosplit arm must not split");
    assert!(hot_splits > 0, "split arm should promote at least one key");
    let mut t = Table::new(
        format!(
            "Partition figure — zipf(s={ZIPF_S}) occupancy ratio (max/mean), \
             {cores} cores, window 2^12"
        ),
        &["variant", "occupancy max/mean", "hot splits"],
    );
    for (variant, ratio, splits) in [
        ("partitioned", split_ratio, hot_splits),
        ("nosplit", nosplit_ratio, nosplit_hot),
    ] {
        m.config(format!("zipf.{variant}.occupancy_ratio"), format!("{ratio:.3}"));
        m.counter(format!("zipf.{variant}.hot_splits"), splits);
        entries.push(SwJoinEntry {
            figure: "partition".into(),
            variant: variant.into(),
            cores,
            window: ZIPF_WINDOW,
            batch_size: batch,
            tuples: tuples as u64,
            metric: "occupancy_ratio".into(),
            value: ratio,
            mode: "measured".into(),
        });
        t.row(vec![
            variant.into(),
            format!("{ratio:.3}"),
            splits.to_string(),
        ]);
    }
    t.note(format!(
        "zipf feed: {tuples} tuples over {ZIPF_DOMAIN} keys, no warm-up \
         prefill, sketch warm-up {ZIPF_HOT_SAMPLE} tuples; lower is flatter"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_speedup_sweep_shows_partitioned_ahead() {
        let opts = SwRunOpts {
            cores: Some(vec![2]),
            windows: Some(10..=11),
            ..SwRunOpts::default()
        };
        let mut m = crate::obsout::manifest("partition-test");
        let mut entries = Vec::new();
        let t = speedup_sweep(&opts, &mut m, &mut entries);
        assert_eq!(t.len(), 2);
        assert_eq!(entries.len(), 4);
        for pair in entries.chunks(2) {
            let (b, p) = (&pair[0], &pair[1]);
            assert_eq!(b.variant, "broadcast");
            assert_eq!(p.variant, "partitioned");
            assert!(
                p.value > b.value,
                "hash dispatch should beat broadcast even at 2^{}: {} vs {}",
                b.window.trailing_zeros(),
                p.value,
                b.value
            );
        }
    }

    #[test]
    fn occupancy_sweep_rebalances_the_zipf_feed() {
        let opts = SwRunOpts {
            cores: Some(vec![4]),
            ..SwRunOpts::default()
        };
        let mut m = crate::obsout::manifest("partition-test");
        let mut entries = Vec::new();
        let t = occupancy_sweep(&opts, &mut m, &mut entries);
        assert_eq!(t.len(), 2);
        let split = entries.iter().find(|e| e.variant == "partitioned").unwrap();
        let nosplit = entries.iter().find(|e| e.variant == "nosplit").unwrap();
        assert_eq!(split.metric, "occupancy_ratio");
        assert!(
            split.value < nosplit.value,
            "hot splitting should flatten occupancy: {} vs {}",
            split.value,
            nosplit.value
        );
        assert!(split.value < 2.0, "rebalanced ratio {} >= 2", split.value);
    }
}
