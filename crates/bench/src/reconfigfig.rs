//! Fig. 6 — the deployment-pipeline comparison: synthesis-per-query vs
//! FQP runtime remapping, with a live reconfiguration measurement.

use std::time::Instant;

use fqp::assign::{assign, remove};
use fqp::fabric::Fabric;
use fqp::plan::{bind, Catalog};
use fqp::query::Query;
use fqp::reconfig::DeploymentPath;
use streamcore::{Field, Record, Schema};

use crate::table::Table;

/// The modeled step-by-step comparison of Fig. 6.
pub fn deployment_paths() -> Table {
    let mut t = Table::new(
        "Fig. 6 — query deployment paths",
        &["path", "step", "min", "max", "halts?"],
    );
    for (name, path) in [
        ("hardware redesign", DeploymentPath::HardwareRedesign),
        ("re-synthesis", DeploymentPath::ReSynthesis),
        ("FQP remap", DeploymentPath::FqpRemap),
    ] {
        for s in path.steps() {
            t.row(vec![
                name.to_string(),
                s.name.to_string(),
                format!("{:?}", s.min),
                format!("{:?}", s.max),
                if s.halts_system { "HALT" } else { "live" }.to_string(),
            ]);
        }
        t.row(vec![
            name.to_string(),
            "TOTAL".to_string(),
            format!("{:?}", path.min_total()),
            format!("{:?}", path.max_total()),
            if path.requires_halt() { "HALT" } else { "live" }.to_string(),
        ]);
    }
    t
}

/// Deploys, swaps, and removes queries on a live fabric while records
/// stream through — measuring real FQP reconfiguration latency and
/// demonstrating that no halt is needed.
pub fn live_requery() -> Table {
    let mut t = Table::new(
        "FQP live re-query (measured on this host)",
        &["action", "duration", "records in flight"],
    );
    let mut catalog = Catalog::new();
    catalog.register(
        "readings",
        Schema::new(vec![
            Field::new("sensor", 32).unwrap(),
            Field::new("value", 32).unwrap(),
        ])
        .unwrap(),
    );
    let mut fabric = Fabric::new(8);

    let q1 = bind(
        &Query::parse("SELECT value FROM readings WHERE value > 90").unwrap(),
        &catalog,
    )
    .unwrap();
    let start = Instant::now();
    let h1 = assign(&q1, &mut fabric).unwrap();
    t.row(vec![
        "deploy query 1".into(),
        format!("{:?}", start.elapsed()),
        "0".into(),
    ]);

    // Stream records, then add a second query mid-stream.
    for i in 0..1_000u64 {
        fabric
            .push("readings", Record::new(vec![i % 10, i % 200]))
            .unwrap();
    }
    let q2 = bind(
        &Query::parse("SELECT sensor FROM readings WHERE value < 5").unwrap(),
        &catalog,
    )
    .unwrap();
    let start = Instant::now();
    let h2 = assign(&q2, &mut fabric).unwrap();
    t.row(vec![
        "deploy query 2 (mid-stream)".into(),
        format!("{:?}", start.elapsed()),
        "1000".into(),
    ]);

    for i in 0..1_000u64 {
        fabric
            .push("readings", Record::new(vec![i % 10, i % 200]))
            .unwrap();
    }
    let start = Instant::now();
    remove(&h1, &mut fabric).unwrap();
    t.row(vec![
        "remove query 1 (mid-stream)".into(),
        format!("{:?}", start.elapsed()),
        "2000".into(),
    ]);

    let collected = fabric.take_sink(h2.sink).unwrap().len();
    t.note(format!(
        "query 2 collected {collected} results; no records were dropped at any point"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_table_has_totals_for_each_path() {
        let t = deployment_paths();
        let rendered = t.to_string();
        assert_eq!(rendered.matches("TOTAL").count(), 3);
        assert!(rendered.contains("FQP remap"));
    }

    #[test]
    fn live_requery_collects_results_without_drops() {
        let t = live_requery();
        assert_eq!(t.len(), 3);
        let rendered = t.to_string();
        assert!(rendered.contains("results"));
    }
}
