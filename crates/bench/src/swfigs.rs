//! Software-side figures: 14d (throughput) and 16 (latency).
//!
//! The paper measured these on a 32-core Dell R820. This reproduction's
//! default environment is a single-CPU container, so the harness measures
//! what the host *can* measure honestly — single-core rates and real
//! multi-thread coordination overhead — and models the multi-core scaling
//! with the calibrated efficiency factor from
//! [`joinsw::harness::PARALLEL_EFFICIENCY`]. On a many-core host the same
//! binaries measure the multi-thread numbers directly.
//!
//! Both figures honor the shared CLI options
//! ([`SwRunOpts`](crate::swjoin::SwRunOpts)): `--batch` selects the
//! distribution batch size, `--cores`/`--windows`/`--samples` reshape the
//! sweep. Besides the human-readable table and the run manifest, every
//! measured point is returned as a
//! [`SwJoinEntry`](crate::swjoin::SwJoinEntry) for `BENCH_swjoin.json`.

use std::time::Duration;

use joinsw::harness::{
    host_parallelism, measure_latency_hist, measure_latency_outcome, measure_throughput,
    measure_throughput_outcome, modeled_throughput, PARALLEL_EFFICIENCY,
};
use joinsw::splitjoin::SplitJoinConfig;
use obs::{Histogram, RunManifest};

use crate::swjoin::{SwJoinEntry, SwRunOpts};
use crate::table::Table;

const KEY_DOMAIN: u32 = 1 << 20;

/// Total comparison budget per measured point; tuples per run are derived
/// from it so every window size costs roughly the same wall-clock time.
const COMPARISON_BUDGET: u64 = 100_000_000;

fn tuples_for(window: usize) -> u64 {
    (COMPARISON_BUDGET / window as u64).clamp(8, 4_096)
}

fn throughput_entry(
    cores: usize,
    window: usize,
    batch_size: usize,
    tuples: u64,
    mtps: f64,
    measured: bool,
) -> SwJoinEntry {
    SwJoinEntry {
        figure: "fig14d".into(),
        variant: "splitjoin".into(),
        cores,
        window,
        batch_size,
        tuples,
        metric: "throughput_mtps".into(),
        value: mtps,
        mode: if measured { "measured" } else { "modeled" }.into(),
    }
}

/// Fig. 14d — software uni-flow (SplitJoin) throughput for 16 and 28 join
/// cores across windows 2^16–2^23.
pub fn fig14d() -> Table {
    fig14d_windows(16..=23)
}

/// [`fig14d`] plus its run manifest: single-core rates are wall-clock
/// measurements (floats), so they land in the config map along with the
/// host parallelism that decides measured-vs-modeled multi-core columns.
pub fn fig14d_run() -> (Table, RunManifest) {
    let (t, m, _) = fig14d_run_opts(&SwRunOpts::default());
    (t, m)
}

/// [`fig14d_run`] with CLI options applied — custom core counts, window
/// exponent range, and batch size — also returning the measured points
/// for `BENCH_swjoin.json`.
pub fn fig14d_run_opts(opts: &SwRunOpts) -> (Table, RunManifest, Vec<SwJoinEntry>) {
    let mut m = crate::obsout::manifest("fig14d");
    m.config("host_parallelism", host_parallelism());
    m.config("parallel_efficiency", PARALLEL_EFFICIENCY);
    m.config("batch_size", opts.batch_size);
    let mut entries = Vec::new();
    let t = fig14d_into(opts, Some(&mut m), Some(&mut entries));
    (t, m, entries)
}

/// Fig. 14d over a custom window-exponent range (tests use a small one).
pub fn fig14d_windows(exponents: std::ops::RangeInclusive<u32>) -> Table {
    let opts = SwRunOpts {
        windows: Some(exponents),
        ..SwRunOpts::default()
    };
    fig14d_into(&opts, None, None)
}

fn fig14d_into(
    opts: &SwRunOpts,
    mut manifest: Option<&mut RunManifest>,
    mut entries: Option<&mut Vec<SwJoinEntry>>,
) -> Table {
    let exponents = opts.windows.clone().unwrap_or(16..=23);
    let cores = opts.cores.clone().unwrap_or_else(|| vec![16, 28]);
    let batch = opts.batch_size;
    let mut headers: Vec<String> =
        vec!["window".into(), "1 core (measured)".into()];
    headers.extend(cores.iter().map(|n| format!("{n} cores")));
    let mut t = Table::new(
        "Fig. 14d — software SplitJoin throughput (M tuples/s)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let max_cores = cores.iter().copied().max().unwrap_or(1);
    let direct = host_parallelism() >= max_cores;
    // Harvest worker span rings from one representative point (the
    // widest sweep config at the first window) to keep exports bounded.
    let mut traced = !obs::trace::enabled();
    for exp in exponents {
        let window = 1usize << exp;
        let tuples = tuples_for(window);
        if !traced {
            // One extra multi-worker run, purely for its timeline.
            traced = true;
            let (_, outcome) = measure_throughput_outcome(
                SplitJoinConfig::new(max_cores, window).with_batch_size(batch),
                tuples,
                KEY_DOMAIN,
            )
            .expect("fig14d trace run failed");
            crate::obsout::harvest(outcome.trace);
        }
        let single = measure_throughput(
            SplitJoinConfig::new(1, window).with_batch_size(batch),
            tuples,
            KEY_DOMAIN,
        )
        .expect("fig14d single-core run failed");
        if let Some(e) = entries.as_deref_mut() {
            e.push(throughput_entry(
                1,
                window,
                batch,
                tuples,
                single.million_per_second(),
                true,
            ));
        }
        if let Some(m) = manifest.as_deref_mut() {
            m.config(
                format!("w2e{exp}.single_mtps"),
                format!("{:.5}", single.million_per_second()),
            );
            m.counter(format!("w2e{exp}.tuples"), tuples);
        }
        let mut row = vec![
            format!("2^{exp}"),
            format!("{:.5}", single.million_per_second()),
        ];
        for &n in &cores {
            let mtps = if direct {
                measure_throughput(
                    SplitJoinConfig::new(n, window).with_batch_size(batch),
                    tuples * 8,
                    KEY_DOMAIN,
                )
                .expect("fig14d multi-core run failed")
                .per_second()
                    / 1e6
            } else {
                modeled_throughput(single, n) / 1e6
            };
            if let Some(m) = manifest.as_deref_mut() {
                m.config(format!("w2e{exp}.c{n}_mtps"), format!("{mtps:.5}"));
            }
            if let Some(e) = entries.as_deref_mut() {
                e.push(throughput_entry(n, window, batch, tuples, mtps, direct));
            }
            row.push(format!("{mtps:.5}"));
        }
        t.row(row);
    }
    if direct {
        t.note("multi-core columns measured directly on this host");
    } else {
        t.note(format!(
            "host has {} hardware thread(s): multi-core columns modeled as \
             N x {PARALLEL_EFFICIENCY} x single-core rate (see DESIGN.md)",
            host_parallelism()
        ));
    }
    t.note(format!("distribution batch size: {batch}"));
    t.note("paper: peak at 28 of 32 cores; ~0.1 Mt/s at window 2^18 on the R820");
    t
}

/// Fig. 16 — software uni-flow latency versus join cores for windows
/// 2^17–2^19.
pub fn fig16() -> Table {
    fig16_config(&[12, 16, 20, 24, 28, 32], &[17, 18, 19], 9)
}

/// [`fig16`] plus its run manifest: per-point p50 latencies in the
/// config map and the merged distribution of every measured flush-barrier
/// sample as a `latency_ns` histogram.
pub fn fig16_run() -> (Table, RunManifest) {
    let (t, m, _) = fig16_run_opts(&SwRunOpts::default());
    (t, m)
}

/// [`fig16_run`] with CLI options applied, also returning the measured
/// points for `BENCH_swjoin.json`.
pub fn fig16_run_opts(opts: &SwRunOpts) -> (Table, RunManifest, Vec<SwJoinEntry>) {
    let mut m = crate::obsout::manifest("fig16");
    m.config("host_parallelism", host_parallelism());
    m.config("parallel_efficiency", PARALLEL_EFFICIENCY);
    m.config("batch_size", opts.batch_size);
    let cores = opts.cores.clone().unwrap_or_else(|| vec![12, 16, 20, 24, 28, 32]);
    let window_exps: Vec<u32> = opts
        .windows
        .clone()
        .map_or_else(|| vec![17, 18, 19], |r| r.collect());
    let samples = opts.samples.unwrap_or(9);
    let mut entries = Vec::new();
    let t = fig16_config_into(
        &cores,
        &window_exps,
        samples,
        opts.batch_size,
        Some(&mut m),
        Some(&mut entries),
    );
    (t, m, entries)
}

/// Fig. 16 with custom core counts, window exponents, and sample count.
pub fn fig16_config(cores: &[usize], window_exps: &[u32], samples: usize) -> Table {
    fig16_config_into(
        cores,
        window_exps,
        samples,
        joinsw::default_batch_size(),
        None,
        None,
    )
}

fn fig16_config_into(
    cores: &[usize],
    window_exps: &[u32],
    samples: usize,
    batch: usize,
    mut manifest: Option<&mut RunManifest>,
    mut entries: Option<&mut Vec<SwJoinEntry>>,
) -> Table {
    let mut t = Table::new(
        "Fig. 16 — software SplitJoin latency",
        &["window", "cores", "latency"],
    );
    let mut all_samples = Histogram::new();
    let direct = host_parallelism() >= cores.iter().copied().max().unwrap_or(1);
    // Under `--trace`, harvest worker span rings from the first measured
    // point only (bounded export size); later points run untouched.
    let mut traced = !obs::trace::enabled();
    let mut measure = |config: SplitJoinConfig, samples: usize| {
        if !traced {
            traced = true;
            let (s, hist, outcome) = measure_latency_outcome(config, samples, KEY_DOMAIN)
                .expect("fig16 trace run failed");
            crate::obsout::harvest(outcome.trace);
            (s, hist)
        } else {
            measure_latency_hist(config, samples, KEY_DOMAIN)
                .expect("fig16 run failed")
        }
    };
    let latency_entry = |n: usize, window: usize, p50: Duration, measured: bool| {
        SwJoinEntry {
            figure: "fig16".into(),
            variant: "splitjoin".into(),
            cores: n,
            window,
            batch_size: batch,
            tuples: samples as u64,
            metric: "latency_p50_ns".into(),
            value: p50.as_nanos() as f64,
            mode: if measured { "measured" } else { "modeled" }.into(),
        }
    };
    for &exp in window_exps {
        let window = 1usize << exp;
        if direct {
            for &n in cores {
                let (s, hist) = measure(
                    SplitJoinConfig::new(n, window).with_batch_size(batch),
                    samples,
                );
                all_samples.merge(&hist);
                if let Some(m) = manifest.as_deref_mut() {
                    m.config(format!("w2e{exp}.c{n}.p50"), format!("{:?}", s.p50));
                }
                if let Some(e) = entries.as_deref_mut() {
                    e.push(latency_entry(n, window, s.p50, true));
                }
                t.row(vec![
                    format!("2^{exp}"),
                    n.to_string(),
                    format!("{:?}", s.p50),
                ]);
            }
        } else {
            // Hybrid model: real single-core scan time for this window plus
            // real N-thread flush-barrier overhead, scan divided by N.
            let (lat1, hist) = measure(
                SplitJoinConfig::new(1, window).with_batch_size(batch),
                samples,
            );
            all_samples.merge(&hist);
            for &n in cores {
                let (overhead, hist) = measure(
                    SplitJoinConfig::new(n, n).with_batch_size(batch),
                    samples,
                );
                all_samples.merge(&hist);
                let scan = lat1.p50.saturating_sub(overhead.p50);
                let modeled = overhead.p50
                    + Duration::from_nanos(
                        (scan.as_nanos() as f64 / (n as f64 * PARALLEL_EFFICIENCY)) as u64,
                    );
                if let Some(m) = manifest.as_deref_mut() {
                    m.config(format!("w2e{exp}.c{n}.p50_modeled"), format!("{modeled:?}"));
                }
                if let Some(e) = entries.as_deref_mut() {
                    e.push(latency_entry(n, window, modeled, false));
                }
                t.row(vec![
                    format!("2^{exp}"),
                    n.to_string(),
                    format!("{modeled:?}"),
                ]);
            }
        }
    }
    if let Some(m) = manifest {
        m.histogram("latency_ns", all_samples);
    }
    if !direct {
        t.note(format!(
            "host has {} hardware thread(s): latency = measured N-thread barrier \
             overhead + measured single-core scan / (N x {PARALLEL_EFFICIENCY})",
            host_parallelism()
        ));
    }
    t.note("paper: 50-100+ ms on the R820; latency falls with cores, grows with window");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_budget_inverts_window() {
        assert!(tuples_for(1 << 16) > tuples_for(1 << 20));
        assert_eq!(tuples_for(1 << 30), 8);
    }

    #[test]
    fn small_fig14d_sweep_shows_window_scaling() {
        let t = fig14d_windows(10..=12);
        assert_eq!(t.len(), 3);
        let first: f64 = t.cell(0, 1).unwrap().parse().unwrap();
        let last: f64 = t.cell(2, 1).unwrap().parse().unwrap();
        assert!(
            first > 1.5 * last,
            "4x window should clearly reduce throughput: {first} vs {last}"
        );
    }

    #[test]
    fn fig14d_opts_emit_entries_per_core_column() {
        let opts = SwRunOpts {
            batch_size: 64,
            cores: Some(vec![2]),
            windows: Some(10..=11),
            samples: None,
            trace: None,
            live: None,
            live_port: None,
        };
        let mut entries = Vec::new();
        let t = fig14d_into(&opts, None, Some(&mut entries));
        assert_eq!(t.len(), 2);
        // Per window: the measured single-core point plus one per column.
        assert_eq!(entries.len(), 4);
        assert!(entries.iter().all(|e| e.batch_size == 64));
        assert!(entries.iter().all(|e| e.metric == "throughput_mtps"));
        assert!(entries.iter().any(|e| e.cores == 2));
    }

    #[test]
    fn small_fig16_point_produces_rows() {
        let t = fig16_config(&[2, 4], &[12], 3);
        assert_eq!(t.len(), 2);
    }
}
