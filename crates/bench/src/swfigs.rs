//! Software-side figures: 14d (throughput) and 16 (latency).
//!
//! The paper measured these on a 32-core Dell R820. This reproduction's
//! default environment is a single-CPU container, so the harness measures
//! what the host *can* measure honestly — single-core rates and real
//! multi-thread coordination overhead — and models the multi-core scaling
//! with the calibrated efficiency factor from
//! [`joinsw::harness::PARALLEL_EFFICIENCY`]. On a many-core host the same
//! binaries measure the multi-thread numbers directly.

use std::time::Duration;

use joinsw::harness::{
    host_parallelism, measure_latency_hist, measure_throughput,
    modeled_throughput, PARALLEL_EFFICIENCY,
};
use joinsw::splitjoin::SplitJoinConfig;
use obs::{Histogram, RunManifest};

use crate::table::Table;

const KEY_DOMAIN: u32 = 1 << 20;

/// Total comparison budget per measured point; tuples per run are derived
/// from it so every window size costs roughly the same wall-clock time.
const COMPARISON_BUDGET: u64 = 100_000_000;

fn tuples_for(window: usize) -> u64 {
    (COMPARISON_BUDGET / window as u64).clamp(8, 4_096)
}

/// Fig. 14d — software uni-flow (SplitJoin) throughput for 16 and 28 join
/// cores across windows 2^16–2^23.
pub fn fig14d() -> Table {
    fig14d_windows(16..=23)
}

/// [`fig14d`] plus its run manifest: single-core rates are wall-clock
/// measurements (floats), so they land in the config map along with the
/// host parallelism that decides measured-vs-modeled multi-core columns.
pub fn fig14d_run() -> (Table, RunManifest) {
    let mut m = crate::obsout::manifest("fig14d");
    m.config("host_parallelism", host_parallelism());
    m.config("parallel_efficiency", PARALLEL_EFFICIENCY);
    let t = fig14d_windows_into(16..=23, Some(&mut m));
    (t, m)
}

/// Fig. 14d over a custom window-exponent range (tests use a small one).
pub fn fig14d_windows(exponents: std::ops::RangeInclusive<u32>) -> Table {
    fig14d_windows_into(exponents, None)
}

fn fig14d_windows_into(
    exponents: std::ops::RangeInclusive<u32>,
    mut manifest: Option<&mut RunManifest>,
) -> Table {
    let mut t = Table::new(
        "Fig. 14d — software SplitJoin throughput (M tuples/s)",
        &["window", "1 core (measured)", "16 cores", "28 cores"],
    );
    let direct = host_parallelism() >= 28;
    for exp in exponents {
        let window = 1usize << exp;
        let single =
            measure_throughput(SplitJoinConfig::new(1, window), tuples_for(window), KEY_DOMAIN);
        let (c16, c28) = if direct {
            let m16 = measure_throughput(
                SplitJoinConfig::new(16, window),
                tuples_for(window) * 8,
                KEY_DOMAIN,
            )
            .per_second();
            let m28 = measure_throughput(
                SplitJoinConfig::new(28, window),
                tuples_for(window) * 8,
                KEY_DOMAIN,
            )
            .per_second();
            (m16, m28)
        } else {
            (
                modeled_throughput(single, 16),
                modeled_throughput(single, 28),
            )
        };
        if let Some(m) = manifest.as_deref_mut() {
            m.config(format!("w2e{exp}.single_mtps"), format!("{:.5}", single.million_per_second()));
            m.config(format!("w2e{exp}.c16_mtps"), format!("{:.5}", c16 / 1e6));
            m.config(format!("w2e{exp}.c28_mtps"), format!("{:.5}", c28 / 1e6));
            m.counter(format!("w2e{exp}.tuples"), tuples_for(window));
        }
        t.row(vec![
            format!("2^{exp}"),
            format!("{:.5}", single.million_per_second()),
            format!("{:.5}", c16 / 1e6),
            format!("{:.5}", c28 / 1e6),
        ]);
    }
    if direct {
        t.note("multi-core columns measured directly on this host");
    } else {
        t.note(format!(
            "host has {} hardware thread(s): multi-core columns modeled as \
             N x {PARALLEL_EFFICIENCY} x single-core rate (see DESIGN.md)",
            host_parallelism()
        ));
    }
    t.note("paper: peak at 28 of 32 cores; ~0.1 Mt/s at window 2^18 on the R820");
    t
}

/// Fig. 16 — software uni-flow latency versus join cores for windows
/// 2^17–2^19.
pub fn fig16() -> Table {
    fig16_config(&[12, 16, 20, 24, 28, 32], &[17, 18, 19], 9)
}

/// [`fig16`] plus its run manifest: per-point p50 latencies in the
/// config map and the merged distribution of every measured flush-barrier
/// sample as a `latency_ns` histogram.
pub fn fig16_run() -> (Table, RunManifest) {
    let mut m = crate::obsout::manifest("fig16");
    m.config("host_parallelism", host_parallelism());
    m.config("parallel_efficiency", PARALLEL_EFFICIENCY);
    let t = fig16_config_into(&[12, 16, 20, 24, 28, 32], &[17, 18, 19], 9, Some(&mut m));
    (t, m)
}

/// Fig. 16 with custom core counts, window exponents, and sample count.
pub fn fig16_config(cores: &[usize], window_exps: &[u32], samples: usize) -> Table {
    fig16_config_into(cores, window_exps, samples, None)
}

fn fig16_config_into(
    cores: &[usize],
    window_exps: &[u32],
    samples: usize,
    mut manifest: Option<&mut RunManifest>,
) -> Table {
    let mut t = Table::new(
        "Fig. 16 — software SplitJoin latency",
        &["window", "cores", "latency"],
    );
    let mut all_samples = Histogram::new();
    let direct = host_parallelism() >= cores.iter().copied().max().unwrap_or(1);
    for &exp in window_exps {
        let window = 1usize << exp;
        if direct {
            for &n in cores {
                let (s, hist) =
                    measure_latency_hist(SplitJoinConfig::new(n, window), samples, KEY_DOMAIN);
                all_samples.merge(&hist);
                if let Some(m) = manifest.as_deref_mut() {
                    m.config(format!("w2e{exp}.c{n}.p50"), format!("{:?}", s.p50));
                }
                t.row(vec![
                    format!("2^{exp}"),
                    n.to_string(),
                    format!("{:?}", s.p50),
                ]);
            }
        } else {
            // Hybrid model: real single-core scan time for this window plus
            // real N-thread flush-barrier overhead, scan divided by N.
            let (lat1, hist) =
                measure_latency_hist(SplitJoinConfig::new(1, window), samples, KEY_DOMAIN);
            all_samples.merge(&hist);
            for &n in cores {
                let (overhead, hist) =
                    measure_latency_hist(SplitJoinConfig::new(n, n), samples, KEY_DOMAIN);
                all_samples.merge(&hist);
                let scan = lat1.p50.saturating_sub(overhead.p50);
                let modeled = overhead.p50
                    + Duration::from_nanos(
                        (scan.as_nanos() as f64 / (n as f64 * PARALLEL_EFFICIENCY)) as u64,
                    );
                if let Some(m) = manifest.as_deref_mut() {
                    m.config(format!("w2e{exp}.c{n}.p50_modeled"), format!("{modeled:?}"));
                }
                t.row(vec![
                    format!("2^{exp}"),
                    n.to_string(),
                    format!("{modeled:?}"),
                ]);
            }
        }
    }
    if let Some(m) = manifest {
        m.histogram("latency_ns", all_samples);
    }
    if !direct {
        t.note(format!(
            "host has {} hardware thread(s): latency = measured N-thread barrier \
             overhead + measured single-core scan / (N x {PARALLEL_EFFICIENCY})",
            host_parallelism()
        ));
    }
    t.note("paper: 50-100+ ms on the R820; latency falls with cores, grows with window");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_budget_inverts_window() {
        assert!(tuples_for(1 << 16) > tuples_for(1 << 20));
        assert_eq!(tuples_for(1 << 30), 8);
    }

    #[test]
    fn small_fig14d_sweep_shows_window_scaling() {
        let t = fig14d_windows(10..=12);
        assert_eq!(t.len(), 3);
        let first: f64 = t.cell(0, 1).unwrap().parse().unwrap();
        let last: f64 = t.cell(2, 1).unwrap().parse().unwrap();
        assert!(
            first > 1.5 * last,
            "4x window should clearly reduce throughput: {first} vs {last}"
        );
    }

    #[test]
    fn small_fig16_point_produces_rows() {
        let t = fig16_config(&[2, 4], &[12], 3);
        assert_eq!(t.len(), 2);
    }
}
