//! The machine-readable software-join benchmark artifact,
//! `BENCH_swjoin.json`, plus the CLI options shared by the software
//! figure binaries (`fig14d`, `fig16`, `swflow`, `swjoin_baseline`).
//!
//! Every software-join run appends (upserts) its measured points into a
//! single JSON document so before/after comparisons — unbatched versus
//! batched data path, core sweeps, window sweeps — live side by side in
//! one file that CI can validate (`swjoin_check`) and the repo can commit
//! as a baseline. Schema (version 1):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "git_rev": "abc1234",
//!   "host_parallelism": 1,
//!   "entries": [
//!     {
//!       "figure": "fig14d",
//!       "variant": "splitjoin",
//!       "cores": 4,
//!       "window": 4096,
//!       "batch_size": 256,
//!       "tuples": 4096,
//!       "metric": "throughput_mtps",
//!       "value": 1.234,
//!       "mode": "measured"
//!     }
//!   ]
//! }
//! ```
//!
//! `metric` is `throughput_mtps` (million tuples/s), `latency_p50_ns`,
//! or `occupancy_ratio` (max-over-mean partition occupancy from the
//! partitioned-dispatch skew sweep — dimensionless, lower is better);
//! `mode` records whether the point was measured wall-clock (`measured`)
//! or derived from the calibrated scaling model (`modeled`, see
//! `joinsw::harness::modeled_throughput`). Entries are keyed by
//! `(figure, variant, cores, window, batch_size, metric)`: re-running a
//! configuration replaces its row instead of appending a duplicate.

use std::path::{Path, PathBuf};

use joinsw::harness::host_parallelism;
use joinsw::default_batch_size;
use obs::json::Json;

/// One measured (or modeled) software-join data point.
#[derive(Debug, Clone, PartialEq)]
pub struct SwJoinEntry {
    /// Which experiment produced the point (`fig14d`, `fig16`, `swflow`).
    pub figure: String,
    /// The system variant (`splitjoin`, `handshake`).
    pub variant: String,
    /// Join cores (threads).
    pub cores: usize,
    /// Window size in tuples.
    pub window: usize,
    /// Distribution batch size the point was taken at.
    pub batch_size: usize,
    /// Input tuples in the timed segment (samples for latency metrics).
    pub tuples: u64,
    /// `throughput_mtps`, `latency_p50_ns`, or `occupancy_ratio`.
    pub metric: String,
    /// The measured value, in the metric's unit.
    pub value: f64,
    /// `measured` (wall-clock) or `modeled` (calibrated scaling model).
    pub mode: String,
}

impl SwJoinEntry {
    /// The upsert identity of this entry.
    fn key(&self) -> (String, String, usize, usize, usize, String) {
        (
            self.figure.clone(),
            self.variant.clone(),
            self.cores,
            self.window,
            self.batch_size,
            self.metric.clone(),
        )
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("figure".into(), Json::Str(self.figure.clone())),
            ("variant".into(), Json::Str(self.variant.clone())),
            ("cores".into(), Json::UInt(self.cores as u64)),
            ("window".into(), Json::UInt(self.window as u64)),
            ("batch_size".into(), Json::UInt(self.batch_size as u64)),
            ("tuples".into(), Json::UInt(self.tuples)),
            ("metric".into(), Json::Str(self.metric.clone())),
            ("value".into(), Json::Float(self.value)),
            ("mode".into(), Json::Str(self.mode.clone())),
        ])
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let str_field = |name: &str| -> Result<String, String> {
            j.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry missing string field `{name}`"))
        };
        let uint_field = |name: &str| -> Result<u64, String> {
            j.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("entry missing integer field `{name}`"))
        };
        let value = match j.get("value") {
            Some(&Json::Float(f)) => f,
            Some(&Json::UInt(n)) => n as f64,
            Some(&Json::Int(n)) => n as f64,
            _ => return Err("entry missing numeric field `value`".into()),
        };
        let metric = str_field("metric")?;
        if !["throughput_mtps", "latency_p50_ns", "occupancy_ratio"].contains(&metric.as_str()) {
            return Err(format!("unknown metric `{metric}`"));
        }
        let mode = str_field("mode")?;
        if mode != "measured" && mode != "modeled" {
            return Err(format!("unknown mode `{mode}`"));
        }
        Ok(Self {
            figure: str_field("figure")?,
            variant: str_field("variant")?,
            cores: uint_field("cores")? as usize,
            window: uint_field("window")? as usize,
            batch_size: uint_field("batch_size")? as usize,
            tuples: uint_field("tuples")?,
            metric,
            value,
            mode,
        })
    }
}

/// The `BENCH_swjoin.json` document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwJoinDoc {
    /// All recorded data points.
    pub entries: Vec<SwJoinEntry>,
    /// Git revision the document was written at (`None` for documents
    /// assembled in memory) — baseline provenance for gate output.
    pub git_rev: Option<String>,
    /// `available_parallelism` of the host that wrote the document —
    /// the first thing to compare when a throughput gate trips.
    pub host_parallelism: Option<u64>,
}

impl SwJoinDoc {
    /// Parses a document, validating the schema.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed JSON, a wrong or
    /// missing schema version, or an invalid entry.
    pub fn parse(text: &str) -> Result<Self, String> {
        let j = Json::parse(text)?;
        match j.get("schema").and_then(Json::as_u64) {
            Some(1) => {}
            Some(v) => return Err(format!("unsupported schema version {v}")),
            None => return Err("missing `schema` version".into()),
        }
        let entries = j
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("missing `entries` array")?
            .iter()
            .map(SwJoinEntry::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            entries,
            git_rev: j.get("git_rev").and_then(Json::as_str).map(str::to_string),
            host_parallelism: j.get("host_parallelism").and_then(Json::as_u64),
        })
    }

    /// Loads the document at `path`; a missing file is an empty document.
    ///
    /// # Errors
    ///
    /// Returns a message when the file exists but cannot be read or
    /// parsed.
    pub fn load(path: &Path) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Self::default());
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Inserts `entry`, replacing any existing entry with the same
    /// `(figure, variant, cores, window, batch_size, metric)` key.
    pub fn upsert(&mut self, entry: SwJoinEntry) {
        match self.entries.iter_mut().find(|e| e.key() == entry.key()) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// Serializes the document (schema 1, current git revision and host
    /// parallelism stamped at write time).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::UInt(1)),
            ("git_rev".into(), Json::Str(obs::git_rev().to_string())),
            (
                "host_parallelism".into(),
                Json::UInt(host_parallelism() as u64),
            ),
            (
                "entries".into(),
                Json::Arr(self.entries.iter().map(SwJoinEntry::to_json).collect()),
            ),
        ])
    }

    /// Writes the document to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, format!("{}\n", self.to_json()))
    }
}

/// One point that got worse between two `BENCH_swjoin.json` documents,
/// found by [`regressions`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Human-readable point identity
    /// (`figure/variant cores=N window=W batch=B metric`).
    pub point: String,
    /// The baseline value.
    pub baseline: f64,
    /// The candidate value.
    pub candidate: f64,
    /// How much worse the candidate is, in percent (always positive).
    pub worse_pct: f64,
}

/// Compares `candidate` against `baseline` point by point (matched on
/// the upsert key) and returns `(points compared, regressions beyond
/// tolerance)`. Direction follows the metric: lower `throughput_mtps`
/// is a regression, higher `latency_p50_ns` or `occupancy_ratio` is.
/// Points present on only one side are ignored — sweeps legitimately
/// cover different ranges. That leniency is *per point* only: a whole
/// figure present in the baseline but absent from the candidate means
/// the fresh run silently dropped coverage, and callers must surface it
/// via [`missing_figures`] instead of letting the gate pass vacuously.
#[must_use]
pub fn regressions(
    baseline: &SwJoinDoc,
    candidate: &SwJoinDoc,
    tolerance_pct: f64,
) -> (usize, Vec<Regression>) {
    let mut compared = 0;
    let mut out = Vec::new();
    for base in &baseline.entries {
        let Some(cand) = candidate.entries.iter().find(|e| e.key() == base.key()) else {
            continue;
        };
        compared += 1;
        let worse_pct = if base.value == 0.0 {
            0.0
        } else if base.metric == "latency_p50_ns" || base.metric == "occupancy_ratio" {
            100.0 * (cand.value - base.value) / base.value
        } else {
            100.0 * (base.value - cand.value) / base.value
        };
        if worse_pct > tolerance_pct {
            out.push(Regression {
                point: format!(
                    "{}/{} cores={} window={} batch={} {}",
                    base.figure, base.variant, base.cores, base.window,
                    base.batch_size, base.metric,
                ),
                baseline: base.value,
                candidate: cand.value,
                worse_pct,
            });
        }
    }
    (compared, out)
}

/// Figures with entries in `baseline` but none at all in `candidate`,
/// sorted. [`regressions`] skips unmatched *points* (sweeps cover
/// different ranges), which means a figure the fresh run never produced
/// would otherwise pass the gate with zero comparisons — exactly the
/// silent failure mode a coverage regression causes. `swjoin_check`
/// fails when this is non-empty.
#[must_use]
pub fn missing_figures(baseline: &SwJoinDoc, candidate: &SwJoinDoc) -> Vec<String> {
    let mut missing: Vec<String> = baseline
        .entries
        .iter()
        .map(|e| e.figure.clone())
        .filter(|figure| !candidate.entries.iter().any(|e| &e.figure == figure))
        .collect();
    missing.sort_unstable();
    missing.dedup();
    missing
}

/// The default artifact path: `BENCH_swjoin.json` in the manifest
/// directory (`target/obs/`, or `$ACCEL_OBS_DIR`).
#[must_use]
pub fn default_path() -> PathBuf {
    obs::default_dir().join("BENCH_swjoin.json")
}

/// Upserts `entries` into the document at the default path, reporting
/// the outcome on stderr. Like manifest emission, a write failure is a
/// warning, never a failed run.
pub fn record(entries: &[SwJoinEntry]) {
    let path = default_path();
    let mut doc = match SwJoinDoc::load(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("warning: {e}; starting a fresh document");
            SwJoinDoc::default()
        }
    };
    for entry in entries {
        doc.upsert(entry.clone());
    }
    match doc.write(&path) {
        Ok(()) => eprintln!("swjoin bench: {}", path.display()),
        Err(e) => eprintln!("warning: {} not written: {e}", path.display()),
    }
}

/// CLI options shared by the software figure binaries.
///
/// Flags (all optional; each binary applies its own defaults):
///
/// * `--batch N` — distribution batch size ([`default_batch_size`] when
///   absent, itself overridable via `ACCEL_SW_BATCH`).
/// * `--cores A,B,...` — join-core counts to run.
/// * `--windows LO..HI` — inclusive window exponent range (`10..12`
///   means windows 2^10, 2^11, 2^12).
/// * `--samples N` — latency samples per point (fig16).
/// * `--trace [N]` — enable span tracing with 1-in-`N` provenance
///   sampling (`64` when the period is omitted); harvested rings are
///   written as a Perfetto trace next to the manifest.
/// * `--live [MS]` — arm the live telemetry plane and sample it every
///   `MS` milliseconds (`25` when omitted) into
///   `target/obs/<figure>.series.jsonl`.
/// * `--live-port PORT` — additionally serve a read-only Prometheus-style
///   scrape endpoint on `127.0.0.1:PORT` (`0` = ephemeral, printed on
///   stderr). Implies `--live`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwRunOpts {
    /// Distribution batch size.
    pub batch_size: usize,
    /// Join-core counts, `None` when the binary's default applies.
    pub cores: Option<Vec<usize>>,
    /// Inclusive window exponent range, `None` for the default sweep.
    pub windows: Option<std::ops::RangeInclusive<u32>>,
    /// Latency samples per point, `None` for the default.
    pub samples: Option<usize>,
    /// Span-tracing sample period, `None` when tracing is off.
    pub trace: Option<u64>,
    /// Live-plane sampling interval in milliseconds, `None` when the
    /// plane stays unarmed.
    pub live: Option<u64>,
    /// Scrape-endpoint port (implies `live`); `Some(0)` binds ephemeral.
    pub live_port: Option<u16>,
}

impl Default for SwRunOpts {
    fn default() -> Self {
        Self {
            batch_size: default_batch_size(),
            cores: None,
            windows: None,
            samples: None,
            trace: None,
            live: None,
            live_port: None,
        }
    }
}

impl SwRunOpts {
    /// Parses the process arguments, exiting with status 2 and a message
    /// on stderr when a flag is malformed.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse(&args) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--batch N] [--cores A,B,...] [--windows LO..HI] [--samples N] \
                     [--trace [N]] [--live [MS]] [--live-port PORT]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Applies the `--trace` flag: enables span tracing at the parsed
    /// sampling period for the whole process. Returns whether tracing
    /// was requested (the binary then exports the harvest at exit).
    pub fn setup_trace(&self) -> bool {
        if let Some(n) = self.trace {
            obs::trace::enable(n);
        }
        self.trace.is_some()
    }

    /// Applies the `--live` / `--live-port` flags: arms the live plane,
    /// starts the background sampler (series artifact named after
    /// `figure`) and, when a port was given, the scrape endpoint.
    /// Returns `None` when live telemetry was not requested; the binary
    /// calls [`LiveRun::finish`](crate::obsout::LiveRun::finish) after
    /// the figure completes.
    #[must_use]
    pub fn setup_live(&self, figure: &str) -> Option<crate::obsout::LiveRun> {
        let interval_ms = self.live.or(self.live_port.map(|_| 25))?;
        Some(crate::obsout::live_start(figure, interval_ms, self.live_port))
    }

    /// Parses an argument list (`from_args` without the process exit).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed flag.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Self::default();
        let mut i = 0;
        // Accept both `--flag value` and `--flag=value`.
        let value_of = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
            let arg = &args[*i];
            if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                return Ok(v.to_string());
            }
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        while i < args.len() {
            let arg = args[i].clone();
            if arg == "--batch" || arg.starts_with("--batch=") {
                let v = value_of(args, &mut i, "--batch")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--batch requires a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err("--batch must be positive".into());
                }
                opts.batch_size = n;
            } else if arg == "--cores" || arg.starts_with("--cores=") {
                let v = value_of(args, &mut i, "--cores")?;
                let cores = v
                    .split(',')
                    .map(|c| {
                        c.trim().parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(
                            || format!("--cores requires positive integers, got `{v}`"),
                        )
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if cores.is_empty() {
                    return Err("--cores requires at least one value".into());
                }
                opts.cores = Some(cores);
            } else if arg == "--windows" || arg.starts_with("--windows=") {
                let v = value_of(args, &mut i, "--windows")?;
                let (lo, hi) = v
                    .split_once("..")
                    .ok_or_else(|| format!("--windows requires LO..HI, got `{v}`"))?;
                let hi = hi.strip_prefix('=').unwrap_or(hi); // tolerate 10..=12
                let lo: u32 = lo
                    .trim()
                    .parse()
                    .map_err(|_| format!("--windows requires LO..HI, got `{v}`"))?;
                let hi: u32 = hi
                    .trim()
                    .parse()
                    .map_err(|_| format!("--windows requires LO..HI, got `{v}`"))?;
                if lo > hi || hi > 30 {
                    return Err(format!("--windows range `{v}` is empty or too large"));
                }
                opts.windows = Some(lo..=hi);
            } else if arg == "--samples" || arg.starts_with("--samples=") {
                let v = value_of(args, &mut i, "--samples")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--samples requires a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err("--samples must be positive".into());
                }
                opts.samples = Some(n);
            } else if let Some(v) = arg.strip_prefix("--trace=") {
                let n = v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("--trace takes a positive integer sample period, got `{v}`")
                })?;
                opts.trace = Some(n);
            } else if arg == "--trace" {
                // The period is optional: consume the next argument only
                // when it is a bare number; default to sampling 1-in-64.
                opts.trace = match args.get(i + 1) {
                    Some(v) if !v.starts_with('-') => {
                        let n = v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                            format!("--trace takes a positive integer sample period, got `{v}`")
                        })?;
                        i += 1;
                        Some(n)
                    }
                    _ => Some(64),
                };
            } else if let Some(v) = arg.strip_prefix("--live=") {
                let n = v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("--live takes a positive interval in milliseconds, got `{v}`")
                })?;
                opts.live = Some(n);
            } else if arg == "--live" {
                // The interval is optional, same shape as `--trace`.
                opts.live = match args.get(i + 1) {
                    Some(v) if !v.starts_with('-') => {
                        let n = v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                            format!("--live takes a positive interval in milliseconds, got `{v}`")
                        })?;
                        i += 1;
                        Some(n)
                    }
                    _ => Some(25),
                };
            } else if arg == "--live-port" || arg.starts_with("--live-port=") {
                let v = value_of(args, &mut i, "--live-port")?;
                let port: u16 = v
                    .parse()
                    .map_err(|_| format!("--live-port requires a port number, got `{v}`"))?;
                opts.live_port = Some(port);
            } else {
                return Err(format!("unknown flag `{arg}`"));
            }
            i += 1;
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> SwJoinEntry {
        SwJoinEntry {
            figure: "fig14d".into(),
            variant: "splitjoin".into(),
            cores: 4,
            window: 4_096,
            batch_size: 256,
            tuples: 4_096,
            metric: "throughput_mtps".into(),
            value: 1.25,
            mode: "measured".into(),
        }
    }

    #[test]
    fn document_round_trips() {
        let mut doc = SwJoinDoc::default();
        doc.upsert(sample_entry());
        let mut latency = sample_entry();
        latency.metric = "latency_p50_ns".into();
        latency.value = 125_000.0;
        doc.upsert(latency);
        let back = SwJoinDoc::parse(&doc.to_json().to_string()).unwrap();
        assert_eq!(back.entries, doc.entries);
        assert_eq!(back.entries.len(), 2);
        // Serialization stamps provenance; parsing recovers it.
        assert!(back.git_rev.is_some());
        assert_eq!(back.host_parallelism, Some(host_parallelism() as u64));
    }

    #[test]
    fn occupancy_ratio_is_a_valid_metric_and_higher_is_worse() {
        let mut doc = SwJoinDoc::default();
        let mut occ = sample_entry();
        occ.figure = "partition".into();
        occ.metric = "occupancy_ratio".into();
        occ.value = 1.3;
        doc.upsert(occ.clone());
        let back = SwJoinDoc::parse(&doc.to_json().to_string()).unwrap();
        assert_eq!(back.entries, doc.entries);
        let base = SwJoinDoc { entries: vec![occ.clone()], ..Default::default() };
        let mut worse = occ.clone();
        worse.value = 2.6; // doubled imbalance
        let cand = SwJoinDoc { entries: vec![worse], ..Default::default() };
        let (compared, found) = regressions(&base, &cand, 20.0);
        assert_eq!(compared, 1);
        assert_eq!(found.len(), 1, "higher occupancy ratio must regress");
        let mut better = occ;
        better.value = 1.05;
        let cand = SwJoinDoc { entries: vec![better], ..Default::default() };
        assert_eq!(regressions(&base, &cand, 20.0).1, vec![]);
    }

    #[test]
    fn upsert_replaces_matching_key() {
        let mut doc = SwJoinDoc::default();
        doc.upsert(sample_entry());
        let mut faster = sample_entry();
        faster.value = 2.5;
        doc.upsert(faster);
        assert_eq!(doc.entries.len(), 1);
        assert_eq!(doc.entries[0].value, 2.5);
        let mut batch1 = sample_entry();
        batch1.batch_size = 1;
        doc.upsert(batch1);
        assert_eq!(doc.entries.len(), 2, "different batch size is a new row");
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(SwJoinDoc::parse("{}").is_err(), "missing schema");
        assert!(
            SwJoinDoc::parse(r#"{"schema": 2, "entries": []}"#).is_err(),
            "future schema"
        );
        assert!(
            SwJoinDoc::parse(r#"{"schema": 1}"#).is_err(),
            "missing entries"
        );
        let bad_metric = r#"{"schema": 1, "entries": [{"figure": "f", "variant": "v",
            "cores": 1, "window": 2, "batch_size": 1, "tuples": 3,
            "metric": "bogus", "value": 1.0, "mode": "measured"}]}"#;
        assert!(SwJoinDoc::parse(bad_metric).is_err(), "unknown metric");
        assert!(SwJoinDoc::parse(r#"{"schema": 1, "entries": []}"#).is_ok());
    }

    #[test]
    fn opts_parse_all_flags() {
        let args: Vec<String> = ["--batch", "64", "--cores", "2,4", "--windows", "10..12"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = SwRunOpts::parse(&args).unwrap();
        assert_eq!(opts.batch_size, 64);
        assert_eq!(opts.cores, Some(vec![2, 4]));
        assert_eq!(opts.windows, Some(10..=12));
        let eq_style = SwRunOpts::parse(&["--samples=5".to_string()]).unwrap();
        assert_eq!(eq_style.samples, Some(5));
    }

    #[test]
    fn opts_parse_trace_flag_forms() {
        let with_period =
            SwRunOpts::parse(&["--trace".to_string(), "16".to_string()]).unwrap();
        assert_eq!(with_period.trace, Some(16));
        let eq_style = SwRunOpts::parse(&["--trace=8".to_string()]).unwrap();
        assert_eq!(eq_style.trace, Some(8));
        // Bare `--trace` defaults to 64, including before another flag.
        let bare = SwRunOpts::parse(&["--trace".to_string()]).unwrap();
        assert_eq!(bare.trace, Some(64));
        let before_flag = SwRunOpts::parse(&[
            "--trace".to_string(),
            "--batch".to_string(),
            "32".to_string(),
        ])
        .unwrap();
        assert_eq!(before_flag.trace, Some(64));
        assert_eq!(before_flag.batch_size, 32);
        assert!(SwRunOpts::parse(&["--trace".to_string(), "0".to_string()]).is_err());
        assert!(SwRunOpts::parse(&["--trace=x".to_string()]).is_err());
    }

    #[test]
    fn opts_parse_live_flag_forms() {
        let with_interval =
            SwRunOpts::parse(&["--live".to_string(), "50".to_string()]).unwrap();
        assert_eq!(with_interval.live, Some(50));
        assert_eq!(with_interval.live_port, None);
        let eq_style = SwRunOpts::parse(&["--live=10".to_string()]).unwrap();
        assert_eq!(eq_style.live, Some(10));
        // Bare `--live` defaults to 25 ms, including before another flag.
        let bare = SwRunOpts::parse(&["--live".to_string()]).unwrap();
        assert_eq!(bare.live, Some(25));
        let before_flag = SwRunOpts::parse(&[
            "--live".to_string(),
            "--batch".to_string(),
            "32".to_string(),
        ])
        .unwrap();
        assert_eq!(before_flag.live, Some(25));
        assert_eq!(before_flag.batch_size, 32);
        // `--live-port` alone implies live sampling in `setup_live`
        // (port 0 = ephemeral); parsing keeps the fields independent.
        let port_only = SwRunOpts::parse(&["--live-port".to_string(), "0".to_string()]).unwrap();
        assert_eq!(port_only.live, None);
        assert_eq!(port_only.live_port, Some(0));
        let both =
            SwRunOpts::parse(&["--live=5".to_string(), "--live-port=9091".to_string()]).unwrap();
        assert_eq!((both.live, both.live_port), (Some(5), Some(9091)));
        assert!(SwRunOpts::parse(&["--live".to_string(), "0".to_string()]).is_err());
        assert!(SwRunOpts::parse(&["--live=x".to_string()]).is_err());
        assert!(SwRunOpts::parse(&["--live-port".to_string(), "70000".to_string()]).is_err());
        assert!(SwRunOpts::parse(&["--live-port".to_string()]).is_err());
    }

    fn point(figure: &str, metric: &str, value: f64) -> SwJoinEntry {
        SwJoinEntry {
            figure: figure.into(),
            variant: "splitjoin".into(),
            cores: 4,
            window: 1024,
            batch_size: 256,
            tuples: 1000,
            metric: metric.into(),
            value,
            mode: "measured".into(),
        }
    }

    #[test]
    fn regressions_flag_slower_throughput_beyond_tolerance() {
        let base = SwJoinDoc { entries: vec![point("fig14d", "throughput_mtps", 2.0)], ..Default::default() };
        let ok = SwJoinDoc { entries: vec![point("fig14d", "throughput_mtps", 1.7)], ..Default::default() };
        let bad = SwJoinDoc { entries: vec![point("fig14d", "throughput_mtps", 1.5)], ..Default::default() };
        assert_eq!(regressions(&base, &ok, 20.0), (1, vec![]));
        let (compared, found) = regressions(&base, &bad, 20.0);
        assert_eq!(compared, 1);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].worse_pct, 25.0);
        assert!(found[0].point.contains("fig14d/splitjoin"));
    }

    #[test]
    fn regressions_treat_higher_latency_as_worse_and_faster_as_fine() {
        let base = SwJoinDoc {
            entries: vec![
                point("fig16", "latency_p50_ns", 1000.0),
                point("fig14d", "throughput_mtps", 1.0),
            ],
            ..Default::default()
        };
        // Latency doubled (worse); throughput doubled (better).
        let cand = SwJoinDoc {
            entries: vec![
                point("fig16", "latency_p50_ns", 2000.0),
                point("fig14d", "throughput_mtps", 2.0),
            ],
            ..Default::default()
        };
        let (compared, found) = regressions(&base, &cand, 20.0);
        assert_eq!(compared, 2);
        assert_eq!(found.len(), 1);
        assert!(found[0].point.contains("latency_p50_ns"));
    }

    #[test]
    fn regressions_ignore_points_present_on_one_side_only() {
        let base = SwJoinDoc { entries: vec![point("fig14d", "throughput_mtps", 2.0)], ..Default::default() };
        let cand = SwJoinDoc { entries: vec![point("swflow", "throughput_mtps", 0.1)], ..Default::default() };
        assert_eq!(regressions(&base, &cand, 0.0), (0, vec![]));
    }

    #[test]
    fn missing_figures_name_baseline_figures_the_fresh_run_dropped() {
        let base = SwJoinDoc {
            entries: vec![
                point("fig14d", "throughput_mtps", 2.0),
                point("kernel", "throughput_mtps", 5.0),
                point("kernel", "latency_p50_ns", 900.0),
            ],
            ..Default::default()
        };
        // The fresh run covers fig14d (a different point of it is fine)
        // but produced nothing at all for `kernel`.
        let mut narrower = point("fig14d", "throughput_mtps", 2.0);
        narrower.window = 2048;
        let cand = SwJoinDoc { entries: vec![narrower], ..Default::default() };
        assert_eq!(missing_figures(&base, &cand), vec!["kernel".to_string()]);
        assert_eq!(missing_figures(&base, &base), Vec::<String>::new());
        // An *extra* candidate figure is not a coverage loss.
        assert_eq!(missing_figures(&cand, &base), Vec::<String>::new());
    }

    #[test]
    fn opts_reject_malformed_flags() {
        for bad in [
            vec!["--batch", "0"],
            vec!["--batch", "x"],
            vec!["--cores", ""],
            vec!["--windows", "12..10"],
            vec!["--windows", "10"],
            vec!["--frobnicate"],
            vec!["--batch"],
        ] {
            let args: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
            assert!(SwRunOpts::parse(&args).is_err(), "should reject {bad:?}");
        }
    }
}
