//! Minimal aligned-table printing for the figure binaries.

use std::fmt;

/// A titled, column-aligned table of experiment results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Appends a free-form footnote.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column) for assertions.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(String::as_str)
    }

    /// Renders the table as RFC-4180-ish CSV (quotes cells containing
    /// commas or quotes). Notes are omitted; the title becomes a comment
    /// line.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = format!("# {}\n", self.title);
        let render = |cells: &[String]| {
            cells.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        };
        out.push_str(&render(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render(row));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns_and_notes() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("note: hello"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, 1), Some("2000"));
        assert_eq!(t.cell(9, 0), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_and_renders() {
        let mut t = Table::new("fig", &["x", "y"]);
        t.row(vec!["1,5".into(), "plain".into()]);
        t.row(vec!["quote\"d".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(
            csv,
            "# fig\nx,y\n\"1,5\",plain\n\"quote\"\"d\",2\n"
        );
    }
}
