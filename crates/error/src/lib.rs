//! Workspace error vocabulary for the software join runtimes.
//!
//! The software joins (`joinsw`) run real OS threads connected by bounded
//! channels, so every data-path operation can observe a failed or
//! saturated peer. [`JoinError`] is the one enum all of those surfaces
//! return: `SplitJoin::process`, `HandshakeJoin::flush`, `shutdown`, and
//! the generic `StreamJoin` trait all speak it, which is what lets the
//! measurement harness and the fault-injection suite be generic over the
//! engine.
//!
//! [`WorkerStats`] lives here (rather than in `joinsw`) because
//! [`JoinError::WorkerPanicked`] carries the panicked worker's statistics
//! snapshot — the stats a pre-fault-model `shutdown` used to lose by
//! re-panicking on `JoinHandle::join`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Statistics reported by each join worker (at shutdown, or as a
/// best-effort snapshot when the worker is lost mid-run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tuples this worker received.
    pub tuples_seen: u64,
    /// Tuples this worker stored into a sub-window.
    pub stored: u64,
    /// Window comparisons (probe candidates visited).
    pub comparisons: u64,
    /// Matches emitted.
    pub matches: u64,
}

/// Failures a software join runtime can report instead of panicking.
///
/// The pre-fault-model data path called `.expect("worker alive")` on every
/// channel operation; these variants replace those panics. Losing a worker
/// mid-stream is *not* automatically an error — the SplitJoin coordinator
/// re-partitions over the survivors and reports the damage in its
/// `FaultReport` — so `WorkerLost` only surfaces when degradation is
/// impossible (e.g. a severed handshake chain, or no survivors remain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinError {
    /// A worker thread exited (or its channel disconnected) and the
    /// operation could not be completed by rerouting around it.
    WorkerLost {
        /// Core position of the lost worker.
        worker: usize,
    },
    /// A worker thread panicked. Carries the statistics it had published
    /// before dying, so shutdown no longer loses them by re-panicking.
    WorkerPanicked {
        /// Core position of the panicked worker.
        worker: usize,
        /// The worker's last published statistics snapshot.
        stats_so_far: WorkerStats,
    },
    /// The result-collector thread panicked; collected matches are gone.
    CollectorPanicked,
    /// A worker's input channel stayed full with no heartbeat progress
    /// for the whole supervision deadline: the worker is alive but wedged
    /// (or the stall outlasted the bounded backoff).
    Saturated {
        /// Core position of the saturated worker.
        worker: usize,
        /// How long the supervised send waited before giving up.
        waited_ms: u64,
    },
    /// Every worker is gone; the join cannot make progress at all.
    AllWorkersLost,
    /// A mid-run result drain timed out: workers reported handing off
    /// more results than the collector ever received. Indicates a
    /// wedged collector thread (a panicked collector surfaces as
    /// [`JoinError::CollectorPanicked`] at shutdown instead).
    DrainStalled {
        /// Results the workers successfully handed to their lanes.
        expected: u64,
        /// Results the collector had actually received at the deadline.
        received: u64,
    },
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::WorkerLost { worker } => {
                write!(f, "join worker {worker} was lost mid-operation")
            }
            JoinError::WorkerPanicked { worker, stats_so_far } => write!(
                f,
                "join worker {worker} panicked after seeing {} tuples \
                 ({} stored, {} matches)",
                stats_so_far.tuples_seen, stats_so_far.stored, stats_so_far.matches
            ),
            JoinError::CollectorPanicked => {
                write!(f, "result collector thread panicked")
            }
            JoinError::Saturated { worker, waited_ms } => write!(
                f,
                "join worker {worker} made no progress for {waited_ms} ms \
                 with a full input channel"
            ),
            JoinError::AllWorkersLost => write!(f, "all join workers are gone"),
            JoinError::DrainStalled { expected, received } => write!(
                f,
                "result drain stalled: workers handed off {expected} results \
                 but the collector received only {received}"
            ),
        }
    }
}

impl std::error::Error for JoinError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_worker_position() {
        let e = JoinError::WorkerLost { worker: 3 };
        assert!(e.to_string().contains("worker 3"));
        let e = JoinError::Saturated { worker: 1, waited_ms: 250 };
        assert!(e.to_string().contains("250 ms"));
    }

    #[test]
    fn worker_panicked_preserves_stats() {
        let stats = WorkerStats { tuples_seen: 42, stored: 10, comparisons: 99, matches: 7 };
        let e = JoinError::WorkerPanicked { worker: 2, stats_so_far: stats };
        match e {
            JoinError::WorkerPanicked { worker, stats_so_far } => {
                assert_eq!(worker, 2);
                assert_eq!(stats_so_far, stats);
            }
            other => panic!("unexpected variant {other:?}"),
        }
        assert!(
            JoinError::WorkerPanicked { worker: 2, stats_so_far: stats }
                .to_string()
                .contains("42 tuples")
        );
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(JoinError::AllWorkersLost, JoinError::AllWorkersLost);
        assert_ne!(
            JoinError::WorkerLost { worker: 0 },
            JoinError::WorkerLost { worker: 1 }
        );
    }
}
