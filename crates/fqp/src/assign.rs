//! Query assignment: mapping bound plans onto the fabric at runtime.
//!
//! This is the paper's open problem #1/#2 in miniature: given a plan and
//! the pool of free OP-Blocks, pick blocks, program them, and wire them —
//! with a cost model (blocks used, pipeline hops) that an optimizer could
//! minimize. The greedy assigner here allocates one block per operator in
//! pipeline order, which reproduces the paper's Fig. 7 layout: two queries
//! sharing the product stream occupy four OP-Blocks.

use std::error::Error;
use std::fmt;

use crate::fabric::{Fabric, FabricError, SinkId, Target};
use crate::opblock::{BlockId, BlockProgram, Port};
use crate::plan::{Plan, PlanOp};

/// A deployed query: which blocks it occupies and where its results
/// arrive. Returned by [`assign`]; pass to [`remove`] for dynamic query
/// removal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryHandle {
    /// Blocks programmed for this query, in pipeline order.
    pub blocks: Vec<BlockId>,
    /// Sink collecting the query's results.
    pub sink: SinkId,
    /// Estimated deployment cost.
    pub cost: AssignmentCost,
}

/// The assigner's cost model (open problem #2): resources consumed and
/// latency added by a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssignmentCost {
    /// OP-Blocks occupied.
    pub blocks_used: usize,
    /// Pipeline hops from stream entry to sink (lower = lower latency).
    pub pipeline_hops: usize,
}

/// Errors raised during assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignError {
    /// Not enough idle blocks for the plan.
    InsufficientBlocks {
        /// Blocks the plan needs.
        required: usize,
        /// Idle blocks available.
        available: usize,
    },
    /// The fabric rejected a reconfiguration step.
    Fabric(FabricError),
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::InsufficientBlocks {
                required,
                available,
            } => write!(
                f,
                "plan needs {required} OP-Blocks but only {available} are idle"
            ),
            AssignError::Fabric(e) => write!(f, "fabric error: {e}"),
        }
    }
}

impl Error for AssignError {}

impl From<FabricError> for AssignError {
    fn from(e: FabricError) -> Self {
        AssignError::Fabric(e)
    }
}

/// Deploys `plan` onto `fabric`: allocates idle blocks, programs them,
/// binds the input streams, and wires the pipeline to a fresh sink.
///
/// # Errors
///
/// Returns [`AssignError::InsufficientBlocks`] when the idle pool is too
/// small; the fabric is left unchanged in that case.
pub fn assign(plan: &Plan, fabric: &mut Fabric) -> Result<QueryHandle, AssignError> {
    let required = plan.block_count();
    let available = fabric.idle_blocks();
    if available < required {
        return Err(AssignError::InsufficientBlocks {
            required,
            available,
        });
    }

    // Allocate blocks, one per operator (or a single passthrough).
    let mut blocks = Vec::with_capacity(required);
    for _ in 0..required {
        let id = fabric.find_idle().expect("counted above");
        // Reserve immediately so find_idle moves on.
        fabric.reprogram(id, BlockProgram::Passthrough)?;
        blocks.push(id);
    }

    // Program each block for its operator.
    let programs: Vec<BlockProgram> = if plan.ops.is_empty() {
        vec![BlockProgram::Passthrough]
    } else {
        plan.ops.iter().map(op_to_program).collect()
    };
    for (id, prog) in blocks.iter().zip(&programs) {
        fabric.reprogram(*id, prog.clone())?;
    }

    // Wire: primary stream -> first block; chain left-port to left-port;
    // the join block's right port receives the secondary stream directly.
    fabric.bind_stream(&plan.primary, blocks[0], Port::Left);
    for (i, prog) in programs.iter().enumerate() {
        if let BlockProgram::Join { .. } = prog {
            let stream = plan
                .secondary
                .as_deref()
                .expect("join implies a secondary stream");
            fabric.bind_stream(stream, blocks[i], Port::Right);
        }
    }
    let sink = fabric.add_sink();
    for w in blocks.windows(2) {
        fabric.connect(w[0], Target::Block(w[1], Port::Left))?;
    }
    fabric.connect(*blocks.last().expect("non-empty"), Target::Sink(sink))?;

    Ok(QueryHandle {
        cost: AssignmentCost {
            blocks_used: blocks.len(),
            pipeline_hops: blocks.len() + 1,
        },
        blocks,
        sink,
    })
}

/// Removes a deployed query, returning its blocks to the idle pool.
///
/// # Errors
///
/// Propagates fabric errors for stale handles.
pub fn remove(handle: &QueryHandle, fabric: &mut Fabric) -> Result<(), AssignError> {
    for &id in &handle.blocks {
        fabric.release(id)?;
    }
    Ok(())
}

fn op_to_program(op: &PlanOp) -> BlockProgram {
    match op {
        PlanOp::Select { conditions } => BlockProgram::Select {
            conditions: conditions.clone(),
        },
        PlanOp::SelectTable { atoms, table } => BlockProgram::TruthTableSelect {
            atoms: atoms.clone(),
            table: table.clone(),
        },
        PlanOp::Join {
            key_left,
            key_right,
            window,
        } => BlockProgram::Join {
            key_left: *key_left,
            key_right: *key_right,
            window: *window,
        },
        PlanOp::Project { fields } => BlockProgram::Project {
            fields: fields.clone(),
        },
        PlanOp::Aggregate {
            func,
            field,
            window,
            kind,
        } => BlockProgram::Aggregate {
            func: *func,
            field: *field,
            window: *window,
            kind: *kind,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{bind, Catalog};
    use crate::query::Query;
    use streamcore::{Field, Record, Schema};

    fn demo_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "customers",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("age", 8).unwrap(),
                Field::new("gender", 1).unwrap(),
            ])
            .unwrap(),
        );
        c.register(
            "products",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("price", 32).unwrap(),
            ])
            .unwrap(),
        );
        c
    }

    fn plan_of(text: &str) -> Plan {
        bind(&Query::parse(text).unwrap(), &demo_catalog()).unwrap()
    }

    #[test]
    fn fig7_two_queries_occupy_four_blocks() {
        // The paper's Fig. 7: two select→join queries over the shared
        // product stream, mapped onto four OP-Blocks.
        let q1 = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 1536",
        );
        let q2 = plan_of(
            "SELECT * FROM customers WHERE age > 25 AND gender = 1 \
             JOIN products ON product_id WINDOW 2048",
        );
        let mut fabric = Fabric::new(4);
        let h1 = assign(&q1, &mut fabric).unwrap();
        let h2 = assign(&q2, &mut fabric).unwrap();
        assert_eq!(h1.cost.blocks_used, 2);
        assert_eq!(h2.cost.blocks_used, 2);
        assert_eq!(fabric.idle_blocks(), 0);

        // Drive the shared streams: a 30-year-old female customer buying
        // product 7, which exists in the product stream.
        fabric.push("products", Record::new(vec![7, 100])).unwrap();
        fabric
            .push("customers", Record::new(vec![7, 30, 1]))
            .unwrap();
        let out1 = fabric.take_sink(h1.sink).unwrap();
        let out2 = fabric.take_sink(h2.sink).unwrap();
        assert_eq!(out1, vec![Record::new(vec![7, 30, 1, 7, 100])]);
        assert_eq!(out2, out1);

        // A 20-year-old male matches neither query.
        fabric
            .push("customers", Record::new(vec![7, 20, 0]))
            .unwrap();
        assert!(fabric.take_sink(h1.sink).unwrap().is_empty());
        assert!(fabric.take_sink(h2.sink).unwrap().is_empty());
    }

    #[test]
    fn insufficient_blocks_is_rejected_without_side_effects() {
        let q = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 16",
        );
        let mut fabric = Fabric::new(1);
        let err = assign(&q, &mut fabric).unwrap_err();
        assert_eq!(
            err,
            AssignError::InsufficientBlocks {
                required: 2,
                available: 1
            }
        );
        assert_eq!(fabric.idle_blocks(), 1);
    }

    #[test]
    fn remove_frees_blocks_for_new_queries() {
        let q = plan_of("SELECT * FROM customers WHERE age > 25");
        let mut fabric = Fabric::new(1);
        let h = assign(&q, &mut fabric).unwrap();
        assert_eq!(fabric.idle_blocks(), 0);
        remove(&h, &mut fabric).unwrap();
        assert_eq!(fabric.idle_blocks(), 1);
        // The slot is immediately reusable.
        assert!(assign(&q, &mut fabric).is_ok());
    }

    #[test]
    fn select_project_pipeline_executes_end_to_end() {
        let q = plan_of("SELECT age FROM customers WHERE age > 25");
        let mut fabric = Fabric::new(2);
        let h = assign(&q, &mut fabric).unwrap();
        assert_eq!(h.cost.blocks_used, 2);
        assert_eq!(h.cost.pipeline_hops, 3);
        fabric
            .push("customers", Record::new(vec![3, 40, 0]))
            .unwrap();
        fabric
            .push("customers", Record::new(vec![3, 20, 0]))
            .unwrap();
        assert_eq!(
            fabric.take_sink(h.sink).unwrap(),
            vec![Record::new(vec![40])]
        );
    }

    #[test]
    fn passthrough_query_uses_one_block() {
        let q = plan_of("SELECT * FROM customers");
        let mut fabric = Fabric::new(1);
        let h = assign(&q, &mut fabric).unwrap();
        assert_eq!(h.cost.blocks_used, 1);
        fabric
            .push("customers", Record::new(vec![1, 2, 3]))
            .unwrap();
        assert_eq!(fabric.take_sink(h.sink).unwrap().len(), 1);
    }
}
