//! The *active data path* (paper Section II): "each piece of data travels
//! from a source (data producer) to a destination (data consumer), passing
//! through the network and temporarily residing in storage and memory of
//! intermediate nodes. Usually, the actual data computation task is
//! performed close to the destination using CPUs. Instead, an active data
//! path distributes processing tasks along the entire length to various
//! network, storage, and memory components by making them 'active', i.e.,
//! coupled with an accelerator."
//!
//! [`DataPath`] models such a path as a chain of stages, each optionally
//! hosting an OP-Block. Records actually flow through the blocks, and the
//! path counts per-link traffic — so the benefit of pushing a filter
//! toward the source (the co-placement system model) is measured, not
//! asserted.

use std::fmt;

use streamcore::Record;

use crate::opblock::{BlockId, BlockProgram, OpBlock, Port};

/// What kind of component a stage is (where on the path it sits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// The data producer.
    Source,
    /// A network element (switch, NIC).
    Network,
    /// A storage node on the path.
    Storage,
    /// Memory of an intermediate host.
    Memory,
    /// The data consumer.
    Destination,
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StageKind::Source => "source",
            StageKind::Network => "network",
            StageKind::Storage => "storage",
            StageKind::Memory => "memory",
            StageKind::Destination => "destination",
        };
        f.write_str(s)
    }
}

/// One stage of the path.
#[derive(Debug, Clone)]
struct Stage {
    name: String,
    kind: StageKind,
    block: Option<OpBlock>,
    /// Records that arrived at this stage (traffic on the inbound link).
    inbound: u64,
}

/// A source-to-destination data path whose components can be made active.
///
/// # Example
///
/// ```
/// use fqp::datapath::{DataPath, StageKind};
/// use fqp::opblock::BlockProgram;
/// use fqp::plan::BoundCondition;
/// use fqp::query::CmpOp;
/// use streamcore::Record;
///
/// let mut path = DataPath::new();
/// path.add_stage("sensor hub", StageKind::Source);
/// path.add_stage("ToR switch", StageKind::Network);
/// path.add_stage("analytics host", StageKind::Destination);
///
/// // Make the switch active: filter at line rate on the data path.
/// path.activate(
///     1,
///     BlockProgram::Select {
///         conditions: vec![BoundCondition { field: 0, op: CmpOp::Gt, value: 90 }],
///     },
/// )?;
///
/// path.push(Record::new(vec![95]));
/// path.push(Record::new(vec![10]));
/// assert_eq!(path.delivered().len(), 1);
/// // Both records crossed source→switch, only one crossed switch→host.
/// assert_eq!(path.link_traffic(), vec![2, 1]);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataPath {
    stages: Vec<Stage>,
    delivered: Vec<Record>,
}

impl DataPath {
    /// Creates an empty path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a (passive) stage; returns its index.
    pub fn add_stage(&mut self, name: impl Into<String>, kind: StageKind) -> usize {
        self.stages.push(Stage {
            name: name.into(),
            kind,
            block: None,
            inbound: 0,
        });
        self.stages.len() - 1
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if the path has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Makes the stage at `index` active: couples it with an OP-Block
    /// running `program`.
    ///
    /// # Errors
    ///
    /// Returns an error string for out-of-range indices.
    pub fn activate(&mut self, index: usize, program: BlockProgram) -> Result<(), String> {
        let stage = self
            .stages
            .get_mut(index)
            .ok_or_else(|| format!("no stage at index {index}"))?;
        let mut block = OpBlock::new(BlockId(index));
        block.reprogram(program);
        stage.block = Some(block);
        Ok(())
    }

    /// Returns a stage to passive forwarding.
    ///
    /// # Errors
    ///
    /// Returns an error string for out-of-range indices.
    pub fn deactivate(&mut self, index: usize) -> Result<(), String> {
        let stage = self
            .stages
            .get_mut(index)
            .ok_or_else(|| format!("no stage at index {index}"))?;
        stage.block = None;
        Ok(())
    }

    /// Sends one record down the path. Each active stage transforms (or
    /// drops) the in-flight records; passive stages forward.
    ///
    /// # Panics
    ///
    /// Panics if the path has no stages.
    pub fn push(&mut self, record: Record) {
        assert!(!self.stages.is_empty(), "path has no stages");
        let mut in_flight = vec![record];
        for stage in &mut self.stages {
            stage.inbound += in_flight.len() as u64;
            if let Some(block) = stage.block.as_mut() {
                in_flight = in_flight
                    .into_iter()
                    .flat_map(|r| block.process(Port::Left, r))
                    .collect();
            }
            if in_flight.is_empty() {
                return;
            }
        }
        self.delivered.extend(in_flight);
    }

    /// Records that reached the destination (in arrival order).
    pub fn delivered(&self) -> &[Record] {
        &self.delivered
    }

    /// Removes and returns the delivered records.
    pub fn take_delivered(&mut self) -> Vec<Record> {
        std::mem::take(&mut self.delivered)
    }

    /// Traffic on each link: records that *left* stage `i` toward stage
    /// `i+1` (equivalently, arrived at stage `i+1`).
    pub fn link_traffic(&self) -> Vec<u64> {
        self.stages.iter().skip(1).map(|s| s.inbound).collect()
    }

    /// Total record-hops moved across all links — the data-movement cost
    /// an active placement minimizes.
    pub fn total_traffic(&self) -> u64 {
        self.link_traffic().iter().sum()
    }

    /// Per-stage `(name, kind, active?)` summary.
    pub fn stages(&self) -> Vec<(String, StageKind, bool)> {
        self.stages
            .iter()
            .map(|s| (s.name.clone(), s.kind, s.block.is_some()))
            .collect()
    }
}

/// Builds the canonical five-stage path of the paper's description.
pub fn canonical_path() -> DataPath {
    let mut p = DataPath::new();
    p.add_stage("producer", StageKind::Source);
    p.add_stage("switch", StageKind::Network);
    p.add_stage("storage node", StageKind::Storage);
    p.add_stage("host memory", StageKind::Memory);
    p.add_stage("consumer", StageKind::Destination);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::BoundCondition;
    use crate::query::CmpOp;

    fn hot_filter() -> BlockProgram {
        BlockProgram::Select {
            conditions: vec![BoundCondition {
                field: 0,
                op: CmpOp::Gt,
                value: 90,
            }],
        }
    }

    fn drive(path: &mut DataPath) {
        for v in 0..100u64 {
            path.push(Record::new(vec![v]));
        }
    }

    #[test]
    fn passive_path_delivers_everything_at_full_traffic() {
        let mut path = canonical_path();
        drive(&mut path);
        assert_eq!(path.delivered().len(), 100);
        assert_eq!(path.link_traffic(), vec![100, 100, 100, 100]);
        assert_eq!(path.total_traffic(), 400);
    }

    #[test]
    fn filtering_at_the_destination_saves_nothing_upstream() {
        let mut path = canonical_path();
        path.activate(4, hot_filter()).unwrap();
        drive(&mut path);
        assert_eq!(path.delivered().len(), 9); // 91..=99
        assert_eq!(path.link_traffic(), vec![100, 100, 100, 100]);
    }

    #[test]
    fn active_switch_cuts_downstream_traffic() {
        // The co-placement model: the same filter at the network element.
        let mut path = canonical_path();
        path.activate(1, hot_filter()).unwrap();
        drive(&mut path);
        assert_eq!(path.delivered().len(), 9);
        assert_eq!(path.link_traffic(), vec![100, 9, 9, 9]);
        // 400 -> 127 record-hops: the earlier the filter, the cheaper.
        assert_eq!(path.total_traffic(), 127);
    }

    #[test]
    fn earliest_placement_dominates_for_selective_filters() {
        let mut at_source = canonical_path();
        at_source.activate(0, hot_filter()).unwrap();
        let mut at_dest = canonical_path();
        at_dest.activate(4, hot_filter()).unwrap();
        drive(&mut at_source);
        drive(&mut at_dest);
        assert_eq!(at_source.delivered().len(), at_dest.delivered().len());
        assert!(at_source.total_traffic() < at_dest.total_traffic() / 5);
    }

    #[test]
    fn partial_computation_composes_along_the_path() {
        // Filter at the switch, project at the storage node: best-effort
        // partial computation distributed along the path.
        let mut path = canonical_path();
        path.activate(1, hot_filter()).unwrap();
        path.activate(2, BlockProgram::Project { fields: vec![0] })
            .unwrap();
        path.push(Record::new(vec![95, 1234]));
        path.push(Record::new(vec![50, 1234]));
        assert_eq!(path.delivered(), &[Record::new(vec![95])]);
    }

    #[test]
    fn deactivate_restores_passive_forwarding() {
        let mut path = canonical_path();
        path.activate(1, hot_filter()).unwrap();
        path.deactivate(1).unwrap();
        drive(&mut path);
        assert_eq!(path.delivered().len(), 100);
        assert!(path.stages().iter().all(|(_, _, active)| !active));
    }

    #[test]
    fn out_of_range_stage_errors() {
        let mut path = canonical_path();
        assert!(path.activate(9, hot_filter()).is_err());
        assert!(path.deactivate(9).is_err());
    }
}
