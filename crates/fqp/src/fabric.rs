//! The FQP fabric: a pool of OP-Blocks with runtime-reconfigurable
//! interconnect — the paper's *parametrized topology*.
//!
//! The set of blocks is fixed at "synthesis" (construction); everything
//! else — which operator each block runs, how blocks are wired, where
//! streams enter and results leave — changes at runtime in microseconds,
//! which is precisely what distinguishes FQP from synthesize-per-query
//! designs (Fig. 6).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use streamcore::Record;

use crate::opblock::{BlockId, BlockProgram, OpBlock, Port};

/// Identifier of an output sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SinkId(pub usize);

/// Destination of a block output or stream entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// An input port of another block.
    Block(BlockId, Port),
    /// An output sink.
    Sink(SinkId),
}

/// Errors raised by fabric reconfiguration or data push.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// A referenced block does not exist.
    UnknownBlock {
        /// The offending id.
        id: BlockId,
    },
    /// A referenced sink does not exist.
    UnknownSink {
        /// The offending id.
        id: SinkId,
    },
    /// The requested edge would create a cycle.
    CycleDetected {
        /// Source of the rejected edge.
        from: BlockId,
    },
    /// A record was pushed for a stream with no entry binding.
    UnknownStream {
        /// The stream name.
        stream: String,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UnknownBlock { id } => write!(f, "unknown block {id}"),
            FabricError::UnknownSink { id } => write!(f, "unknown sink #{}", id.0),
            FabricError::CycleDetected { from } => {
                write!(f, "edge from {from} would create a cycle")
            }
            FabricError::UnknownStream { stream } => {
                write!(f, "no entry binding for stream {stream:?}")
            }
        }
    }
}

impl Error for FabricError {}

/// The reconfigurable fabric.
///
/// # Example
///
/// ```
/// use fqp::fabric::{Fabric, Target};
/// use fqp::opblock::{BlockProgram, Port};
/// use streamcore::Record;
///
/// let mut fabric = Fabric::new(2);
/// let sink = fabric.add_sink();
/// let b = fabric.block_ids()[0];
/// fabric.reprogram(b, BlockProgram::Passthrough)?;
/// fabric.bind_stream("sensor", b, Port::Left);
/// fabric.connect(b, Target::Sink(sink))?;
/// fabric.push("sensor", Record::new(vec![42]))?;
/// assert_eq!(fabric.take_sink(sink)?, vec![Record::new(vec![42])]);
/// # Ok::<(), fqp::fabric::FabricError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fabric {
    blocks: Vec<OpBlock>,
    outputs: Vec<Vec<Target>>,
    entries: BTreeMap<String, Vec<(BlockId, Port)>>,
    sinks: Vec<Vec<Record>>,
}

impl Fabric {
    /// Creates a fabric of `num_blocks` idle OP-Blocks.
    pub fn new(num_blocks: usize) -> Self {
        Self {
            blocks: (0..num_blocks).map(|i| OpBlock::new(BlockId(i))).collect(),
            outputs: vec![Vec::new(); num_blocks],
            entries: BTreeMap::new(),
            sinks: Vec::new(),
        }
    }

    /// All block ids, in index order.
    pub fn block_ids(&self) -> Vec<BlockId> {
        (0..self.blocks.len()).map(BlockId).collect()
    }

    /// Number of blocks not currently programmed.
    pub fn idle_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_idle()).count()
    }

    /// Finds an unprogrammed block, if any.
    pub fn find_idle(&self) -> Option<BlockId> {
        self.blocks.iter().find(|b| b.is_idle()).map(OpBlock::id)
    }

    /// Immutable access to a block.
    pub fn block(&self, id: BlockId) -> Result<&OpBlock, FabricError> {
        self.blocks
            .get(id.0)
            .ok_or(FabricError::UnknownBlock { id })
    }

    /// Registers a new output sink.
    pub fn add_sink(&mut self) -> SinkId {
        self.sinks.push(Vec::new());
        SinkId(self.sinks.len() - 1)
    }

    /// (Re)programs a block — the micro-change path, effective
    /// immediately.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownBlock`] for an invalid id.
    pub fn reprogram(
        &mut self,
        id: BlockId,
        program: BlockProgram,
    ) -> Result<(), FabricError> {
        let block = self
            .blocks
            .get_mut(id.0)
            .ok_or(FabricError::UnknownBlock { id })?;
        block.reprogram(program);
        Ok(())
    }

    /// Adds an edge from a block's output — the macro-change path.
    /// Fan-out is allowed (one output may feed several consumers).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::CycleDetected`] if the edge would close a
    /// cycle, or [`FabricError::UnknownBlock`]/[`FabricError::UnknownSink`]
    /// for dangling endpoints.
    pub fn connect(&mut self, from: BlockId, to: Target) -> Result<(), FabricError> {
        if from.0 >= self.blocks.len() {
            return Err(FabricError::UnknownBlock { id: from });
        }
        match to {
            Target::Block(id, _) if id.0 >= self.blocks.len() => {
                return Err(FabricError::UnknownBlock { id });
            }
            Target::Sink(id) if id.0 >= self.sinks.len() => {
                return Err(FabricError::UnknownSink { id });
            }
            _ => {}
        }
        if let Target::Block(dest, _) = to {
            if dest == from || self.reaches(dest, from) {
                return Err(FabricError::CycleDetected { from });
            }
        }
        self.outputs[from.0].push(to);
        Ok(())
    }

    /// Removes every edge out of `from`.
    pub fn disconnect_all(&mut self, from: BlockId) -> Result<(), FabricError> {
        if from.0 >= self.blocks.len() {
            return Err(FabricError::UnknownBlock { id: from });
        }
        self.outputs[from.0].clear();
        Ok(())
    }

    /// Removes one specific edge (idempotent if absent).
    pub fn disconnect(&mut self, from: BlockId, to: Target) -> Result<(), FabricError> {
        if from.0 >= self.blocks.len() {
            return Err(FabricError::UnknownBlock { id: from });
        }
        self.outputs[from.0].retain(|t| *t != to);
        Ok(())
    }

    /// Returns a block to the idle pool: program cleared, output edges and
    /// stream bindings removed — dynamic query removal.
    pub fn release(&mut self, id: BlockId) -> Result<(), FabricError> {
        self.reprogram(id, BlockProgram::Idle)?;
        self.outputs[id.0].clear();
        for targets in self.entries.values_mut() {
            targets.retain(|(b, _)| *b != id);
        }
        Ok(())
    }

    /// Routes records arriving on `stream` into `(block, port)`. Multiple
    /// bindings fan the stream out (Fig. 7's shared product stream).
    pub fn bind_stream(&mut self, stream: impl Into<String>, block: BlockId, port: Port) {
        self.entries
            .entry(stream.into().to_ascii_lowercase())
            .or_default()
            .push((block, port));
    }

    /// `true` if `from` can reach `goal` through existing edges.
    fn reaches(&self, from: BlockId, goal: BlockId) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; self.blocks.len()];
        while let Some(b) = stack.pop() {
            if b == goal {
                return true;
            }
            if std::mem::replace(&mut seen[b.0], true) {
                continue;
            }
            for t in &self.outputs[b.0] {
                if let Target::Block(next, _) = t {
                    stack.push(*next);
                }
            }
        }
        false
    }

    /// Pushes one record into the fabric and runs it to quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownStream`] if no entry binding exists.
    pub fn push(&mut self, stream: &str, record: Record) -> Result<(), FabricError> {
        let entries = self
            .entries
            .get(&stream.to_ascii_lowercase())
            .filter(|e| !e.is_empty())
            .ok_or_else(|| FabricError::UnknownStream {
                stream: stream.to_string(),
            })?
            .clone();
        let mut work: Vec<(Target, Record)> = entries
            .into_iter()
            .map(|(b, p)| (Target::Block(b, p), record.clone()))
            .collect();
        while let Some((target, rec)) = work.pop() {
            match target {
                Target::Sink(id) => self.sinks[id.0].push(rec),
                Target::Block(id, port) => {
                    let outputs = self.blocks[id.0].process(port, rec);
                    for out in outputs {
                        for t in &self.outputs[id.0] {
                            work.push((*t, out.clone()));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Reorders a live Select block's conditions by their observed pass
    /// rates (statistics-driven micro re-optimization; see
    /// [`OpBlock::reoptimize_select`]). Returns `true` if the order
    /// changed.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownBlock`] for an invalid id.
    pub fn reoptimize_select(&mut self, id: BlockId) -> Result<bool, FabricError> {
        self.blocks
            .get_mut(id.0)
            .map(OpBlock::reoptimize_select)
            .ok_or(FabricError::UnknownBlock { id })
    }

    /// Removes and returns everything collected at `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownSink`] for an invalid id.
    pub fn take_sink(&mut self, sink: SinkId) -> Result<Vec<Record>, FabricError> {
        self.sinks
            .get_mut(sink.0)
            .map(std::mem::take)
            .ok_or(FabricError::UnknownSink { id: sink })
    }

    /// Renders the current topology as a Graphviz DOT document: stream
    /// entries, programmed blocks (labelled with their operator mnemonic),
    /// idle blocks, sinks, and every edge — the "Lego-like" composition
    /// made visible.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph fqp {\n  rankdir=LR;\n");
        for (stream, targets) in &self.entries {
            let _ = writeln!(
                out,
                "  \"stream_{stream}\" [shape=cds, label=\"{stream}\"];"
            );
            for (block, port) in targets {
                let _ = writeln!(
                    out,
                    "  \"stream_{stream}\" -> b{} [label=\"{:?}\"];",
                    block.0, port
                );
            }
        }
        for b in &self.blocks {
            let style = if b.is_idle() { ", style=dashed" } else { "" };
            let _ = writeln!(
                out,
                "  b{} [shape=box, label=\"#{} {}\"{}];",
                b.id().0,
                b.id().0,
                b.program().mnemonic(),
                style
            );
        }
        for i in 0..self.sinks.len() {
            let _ = writeln!(out, "  sink{i} [shape=doublecircle, label=\"sink {i}\"];");
        }
        for (from, targets) in self.outputs.iter().enumerate() {
            for t in targets {
                match t {
                    Target::Block(id, port) => {
                        let _ = writeln!(
                            out,
                            "  b{from} -> b{} [label=\"{:?}\"];",
                            id.0, port
                        );
                    }
                    Target::Sink(id) => {
                        let _ = writeln!(out, "  b{from} -> sink{};", id.0);
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::BoundCondition;
    use crate::query::CmpOp;

    fn rec(values: &[u64]) -> Record {
        Record::new(values.to_vec())
    }

    fn select_gt(field: usize, value: u64) -> BlockProgram {
        BlockProgram::Select {
            conditions: vec![BoundCondition {
                field,
                op: CmpOp::Gt,
                value,
            }],
        }
    }

    #[test]
    fn two_stage_pipeline_filters_then_projects() {
        let mut f = Fabric::new(2);
        let sink = f.add_sink();
        let (b0, b1) = (BlockId(0), BlockId(1));
        f.reprogram(b0, select_gt(0, 10)).unwrap();
        f.reprogram(b1, BlockProgram::Project { fields: vec![1] })
            .unwrap();
        f.bind_stream("in", b0, Port::Left);
        f.connect(b0, Target::Block(b1, Port::Left)).unwrap();
        f.connect(b1, Target::Sink(sink)).unwrap();

        f.push("in", rec(&[5, 100])).unwrap(); // filtered out
        f.push("in", rec(&[20, 200])).unwrap(); // passes, projected
        assert_eq!(f.take_sink(sink).unwrap(), vec![rec(&[200])]);
    }

    #[test]
    fn fan_out_duplicates_records_to_all_consumers() {
        let mut f = Fabric::new(3);
        let s1 = f.add_sink();
        let s2 = f.add_sink();
        let b = BlockId(0);
        f.reprogram(b, BlockProgram::Passthrough).unwrap();
        f.bind_stream("x", b, Port::Left);
        f.connect(b, Target::Sink(s1)).unwrap();
        f.connect(b, Target::Sink(s2)).unwrap();
        f.push("x", rec(&[1])).unwrap();
        assert_eq!(f.take_sink(s1).unwrap().len(), 1);
        assert_eq!(f.take_sink(s2).unwrap().len(), 1);
    }

    #[test]
    fn join_block_with_two_bound_streams() {
        let mut f = Fabric::new(1);
        let sink = f.add_sink();
        let b = BlockId(0);
        f.reprogram(
            b,
            BlockProgram::Join {
                key_left: 0,
                key_right: 0,
                window: 8,
            },
        )
        .unwrap();
        f.bind_stream("customers", b, Port::Left);
        f.bind_stream("products", b, Port::Right);
        f.connect(b, Target::Sink(sink)).unwrap();

        f.push("products", rec(&[7, 999])).unwrap();
        f.push("customers", rec(&[7, 31])).unwrap();
        let out = f.take_sink(sink).unwrap();
        assert_eq!(out, vec![rec(&[7, 31, 7, 999])]);
    }

    #[test]
    fn cycles_are_rejected() {
        let mut f = Fabric::new(3);
        let (a, b, c) = (BlockId(0), BlockId(1), BlockId(2));
        f.connect(a, Target::Block(b, Port::Left)).unwrap();
        f.connect(b, Target::Block(c, Port::Left)).unwrap();
        let err = f.connect(c, Target::Block(a, Port::Left)).unwrap_err();
        assert!(matches!(err, FabricError::CycleDetected { .. }));
        let err = f.connect(a, Target::Block(a, Port::Left)).unwrap_err();
        assert!(matches!(err, FabricError::CycleDetected { .. }));
    }

    #[test]
    fn release_returns_block_to_pool_and_unbinds() {
        let mut f = Fabric::new(1);
        let b = BlockId(0);
        f.reprogram(b, BlockProgram::Passthrough).unwrap();
        f.bind_stream("x", b, Port::Left);
        assert_eq!(f.idle_blocks(), 0);
        f.release(b).unwrap();
        assert_eq!(f.idle_blocks(), 1);
        assert!(matches!(
            f.push("x", rec(&[1])),
            Err(FabricError::UnknownStream { .. })
        ));
    }

    #[test]
    fn unknown_endpoints_are_reported() {
        let mut f = Fabric::new(1);
        assert!(matches!(
            f.connect(BlockId(5), Target::Sink(SinkId(0))),
            Err(FabricError::UnknownBlock { .. })
        ));
        assert!(matches!(
            f.connect(BlockId(0), Target::Sink(SinkId(3))),
            Err(FabricError::UnknownSink { .. })
        ));
        assert!(matches!(
            f.take_sink(SinkId(9)),
            Err(FabricError::UnknownSink { .. })
        ));
        assert!(matches!(
            f.push("ghost", rec(&[1])),
            Err(FabricError::UnknownStream { .. })
        ));
    }

    #[test]
    fn dot_export_covers_the_topology() {
        let mut f = Fabric::new(2);
        let sink = f.add_sink();
        f.reprogram(BlockId(0), select_gt(0, 5)).unwrap();
        f.bind_stream("readings", BlockId(0), Port::Left);
        f.connect(BlockId(0), Target::Block(BlockId(1), Port::Left))
            .unwrap();
        f.connect(BlockId(1), Target::Sink(sink)).unwrap();
        let dot = f.to_dot();
        assert!(dot.starts_with("digraph fqp {"), "{dot}");
        assert!(dot.contains("\"stream_readings\" -> b0"), "{dot}");
        assert!(dot.contains("#0 select"), "{dot}");
        assert!(dot.contains("style=dashed"), "idle block 1 dashed: {dot}");
        assert!(dot.contains("b0 -> b1"), "{dot}");
        assert!(dot.contains("b1 -> sink0;"), "{dot}");
    }

    #[test]
    fn find_idle_tracks_programming() {
        let mut f = Fabric::new(2);
        assert_eq!(f.find_idle(), Some(BlockId(0)));
        f.reprogram(BlockId(0), BlockProgram::Passthrough).unwrap();
        assert_eq!(f.find_idle(), Some(BlockId(1)));
        f.reprogram(BlockId(1), BlockProgram::Passthrough).unwrap();
        assert_eq!(f.find_idle(), None);
    }
}
