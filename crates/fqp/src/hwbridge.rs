//! Deploying FQP queries onto the hardware join fabric — what the paper's
//! FQP compiler does: "generates a dynamic mapping of queries onto the FQP
//! topology at runtime", here targeting the cycle-accurate uni-flow design
//! of [`joinhw`].
//!
//! [`deploy_to_hardware`] takes a bound select–join(–project) plan, runs
//! the synthesis-report model for the chosen device, programs a
//! [`UniFlowJoin`] with the plan's equi-join, and translates records to
//! and from the 64-bit tuple format of the hardware: the join key rides in
//! the tuple's key half, and the payload half indexes a record store kept
//! beside the fabric (the paper's parametrized-data-segment idea in its
//! simplest form: wide records stay in memory, the fabric sees fixed-width
//! tuples). Selections execute in the OP-Block in front of the fabric;
//! projections on the gathered results.

use std::error::Error;
use std::fmt;

use hwsim::{CapacityError, Device, Simulator};
use joinhw::harness::uniflow_throughput_model;
use joinhw::uniflow::UniFlowJoin;
use joinhw::{DesignParams, FlowModel, JoinOperator, SynthesisReport};
use streamcore::{Record, StreamTag, Tuple};

use crate::plan::{BoundCondition, Plan, PlanOp};

/// The selection OP-Block standing in front of the join fabric.
#[derive(Debug, Clone, Default)]
enum Filter {
    #[default]
    None,
    Conjunction(Vec<BoundCondition>),
    Table {
        atoms: Vec<BoundCondition>,
        table: Vec<bool>,
    },
}

impl Filter {
    fn accepts(&self, values: &[u64]) -> bool {
        match self {
            Filter::None => true,
            Filter::Conjunction(conds) => conds.iter().all(|c| c.eval(values)),
            Filter::Table { atoms, table } => {
                let mut mask = 0usize;
                for (i, c) in atoms.iter().enumerate() {
                    if c.eval(values) {
                        mask |= 1 << i;
                    }
                }
                table[mask]
            }
        }
    }
}

/// Errors raised while deploying or driving a hardware-mapped query.
#[derive(Debug, Clone, PartialEq)]
pub enum HwBridgeError {
    /// The plan contains an operator the join fabric cannot run.
    UnsupportedPlan {
        /// Which operator broke the mapping.
        op: String,
    },
    /// The plan has no join — there is nothing to accelerate.
    NoJoin,
    /// The design does not fit the device.
    DoesNotFit(CapacityError),
    /// A record's join key exceeds the fabric's 32-bit key lane.
    KeyTooWide {
        /// The offending value.
        value: u64,
    },
    /// A record was pushed for a stream the plan does not read.
    UnknownStream {
        /// The stream name.
        stream: String,
    },
}

impl fmt::Display for HwBridgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwBridgeError::UnsupportedPlan { op } => {
                write!(f, "operator {op} cannot run on the join fabric")
            }
            HwBridgeError::NoJoin => write!(f, "plan has no join to accelerate"),
            HwBridgeError::DoesNotFit(e) => write!(f, "design does not fit: {e}"),
            HwBridgeError::KeyTooWide { value } => {
                write!(f, "join key {value} exceeds the 32-bit tuple key lane")
            }
            HwBridgeError::UnknownStream { stream } => {
                write!(f, "plan does not read stream {stream:?}")
            }
        }
    }
}

impl Error for HwBridgeError {}

impl From<CapacityError> for HwBridgeError {
    fn from(e: CapacityError) -> Self {
        HwBridgeError::DoesNotFit(e)
    }
}

/// A query running on the simulated hardware join fabric.
pub struct HwDeployment {
    report: SynthesisReport,
    join: UniFlowJoin,
    sim: Simulator,
    primary: String,
    secondary: String,
    filter: Filter,
    key_left: usize,
    key_right: usize,
    project: Option<Vec<usize>>,
    left_records: Vec<Record>,
    right_records: Vec<Record>,
    accepted: u64,
    filtered: u64,
}

impl fmt::Debug for HwDeployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HwDeployment")
            .field("primary", &self.primary)
            .field("secondary", &self.secondary)
            .field("accepted", &self.accepted)
            .finish_non_exhaustive()
    }
}

/// Maps `plan` onto a uni-flow join design with `num_cores` cores on
/// `device`.
///
/// # Errors
///
/// Returns [`HwBridgeError::NoJoin`] for join-less plans,
/// [`HwBridgeError::UnsupportedPlan`] for aggregates, and
/// [`HwBridgeError::DoesNotFit`] when synthesis fails.
pub fn deploy_to_hardware(
    plan: &Plan,
    num_cores: u32,
    device: &Device,
) -> Result<HwDeployment, HwBridgeError> {
    let mut filter = Filter::None;
    let mut join_op = None;
    let mut project = None;
    for op in &plan.ops {
        match op {
            PlanOp::Select { conditions: c } => filter = Filter::Conjunction(c.clone()),
            PlanOp::SelectTable { atoms, table } => {
                filter = Filter::Table {
                    atoms: atoms.clone(),
                    table: table.clone(),
                };
            }
            PlanOp::Join {
                key_left,
                key_right,
                window,
            } => join_op = Some((*key_left, *key_right, *window)),
            PlanOp::Project { fields } => project = Some(fields.clone()),
            PlanOp::Aggregate { .. } => {
                return Err(HwBridgeError::UnsupportedPlan {
                    op: "aggregate".to_string(),
                });
            }
        }
    }
    let (key_left, key_right, window) = join_op.ok_or(HwBridgeError::NoJoin)?;

    let params = DesignParams::new(FlowModel::UniFlow, num_cores, window);
    let report = params.synthesize(device)?;
    let mut join = UniFlowJoin::new(&params);
    join.program(JoinOperator::equi(num_cores));

    Ok(HwDeployment {
        report,
        join,
        sim: Simulator::new(),
        primary: plan.primary.clone(),
        secondary: plan
            .secondary
            .clone()
            .expect("join implies a secondary stream"),
        filter,
        key_left,
        key_right,
        project,
        left_records: Vec::new(),
        right_records: Vec::new(),
        accepted: 0,
        filtered: 0,
    })
}

impl HwDeployment {
    /// The synthesis report of the deployed design.
    pub fn report(&self) -> &SynthesisReport {
        &self.report
    }

    /// Records accepted into the fabric so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Records dropped by the selection OP-Block in front of the fabric.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Clock cycles the fabric has run.
    pub fn cycles(&self) -> u64 {
        self.sim.cycle()
    }

    /// Pushes one record into the deployment.
    ///
    /// # Errors
    ///
    /// Returns [`HwBridgeError::UnknownStream`] or
    /// [`HwBridgeError::KeyTooWide`].
    pub fn push(&mut self, stream: &str, record: Record) -> Result<(), HwBridgeError> {
        let stream = stream.to_ascii_lowercase();
        let (tag, key_idx, store) = if stream == self.primary {
            // The selection OP-Block filters the primary stream before it
            // reaches the join fabric.
            if !self.filter.accepts(record.values()) {
                self.filtered += 1;
                return Ok(());
            }
            (StreamTag::R, self.key_left, &mut self.left_records)
        } else if stream == self.secondary {
            (StreamTag::S, self.key_right, &mut self.right_records)
        } else {
            return Err(HwBridgeError::UnknownStream { stream });
        };
        let key = record.get(key_idx).unwrap_or(0);
        let key: u32 = key
            .try_into()
            .map_err(|_| HwBridgeError::KeyTooWide { value: key })?;
        let payload = store.len() as u32;
        store.push(record);
        let tuple = Tuple::new(key, payload);
        while !self.join.offer(tag, tuple) {
            self.sim.step(&mut self.join);
        }
        self.sim.step(&mut self.join);
        self.accepted += 1;
        Ok(())
    }

    /// Runs the fabric to quiescence and returns the joined (and
    /// projected) records produced so far.
    pub fn finish(&mut self) -> Vec<Record> {
        while !self.join.quiescent() {
            self.sim.step(&mut self.join);
        }
        self.join
            .drain_results()
            .into_iter()
            .map(|m| {
                let left = &self.left_records[m.r.payload() as usize];
                let right = &self.right_records[m.s.payload() as usize];
                let mut values = left.values().to_vec();
                values.extend_from_slice(right.values());
                match &self.project {
                    Some(fields) => Record::new(
                        fields
                            .iter()
                            .filter_map(|&i| values.get(i).copied())
                            .collect(),
                    ),
                    None => Record::new(values),
                }
            })
            .collect()
    }

    /// Sustainable input throughput of this deployment at its synthesis
    /// clock, from the analytic model (tuples/second).
    pub fn throughput_estimate(&self) -> f64 {
        uniflow_throughput_model(
            self.report.params.window_size,
            self.report.params.num_cores,
            self.report.clock.mhz(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{bind, Catalog};
    use crate::query::Query;
    use hwsim::devices::XC7VX485T;
    use streamcore::{Field, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "customers",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("age", 8).unwrap(),
            ])
            .unwrap(),
        );
        c.register(
            "products",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("price", 32).unwrap(),
            ])
            .unwrap(),
        );
        c
    }

    fn plan_of(text: &str) -> Plan {
        bind(&Query::parse(text).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn hardware_results_match_the_software_fabric() {
        let plan = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 64",
        );

        // Software fabric execution.
        let mut fabric = crate::fabric::Fabric::new(4);
        let handle = crate::assign::assign(&plan, &mut fabric).unwrap();

        // Hardware deployment.
        let mut hw = deploy_to_hardware(&plan, 4, &XC7VX485T).unwrap();

        for pid in 0..8u64 {
            let product = Record::new(vec![pid, pid * 11]);
            fabric.push("products", product.clone()).unwrap();
            hw.push("products", product).unwrap();
        }
        for (pid, age) in [(1u64, 30u64), (1, 20), (5, 40), (9, 50)] {
            let customer = Record::new(vec![pid, age]);
            fabric.push("customers", customer.clone()).unwrap();
            hw.push("customers", customer).unwrap();
        }

        let mut sw: Vec<Record> = fabric.take_sink(handle.sink).unwrap();
        let mut hw_out = hw.finish();
        sw.sort_by_key(|r| r.values().to_vec());
        hw_out.sort_by_key(|r| r.values().to_vec());
        assert_eq!(hw_out, sw);
        assert_eq!(hw.filtered(), 1, "the under-age customer is filtered");
        assert!(!hw_out.is_empty());
    }

    #[test]
    fn projection_applies_to_hardware_results() {
        let plan = plan_of(
            "SELECT age, price FROM customers \
             JOIN products ON product_id WINDOW 16",
        );
        let mut hw = deploy_to_hardware(&plan, 2, &XC7VX485T).unwrap();
        hw.push("products", Record::new(vec![3, 99])).unwrap();
        hw.push("customers", Record::new(vec![3, 41])).unwrap();
        let out = hw.finish();
        assert_eq!(out, vec![Record::new(vec![41, 99])]);
    }

    #[test]
    fn joinless_and_aggregate_plans_are_rejected() {
        let select_only = plan_of("SELECT * FROM customers WHERE age > 5");
        assert_eq!(
            deploy_to_hardware(&select_only, 2, &XC7VX485T).unwrap_err(),
            HwBridgeError::NoJoin
        );
        let agg = plan_of("SELECT COUNT(*) FROM customers WINDOW 8");
        assert!(matches!(
            deploy_to_hardware(&agg, 2, &XC7VX485T),
            Err(HwBridgeError::UnsupportedPlan { .. })
        ));
    }

    #[test]
    fn oversized_designs_are_rejected_at_deploy_time() {
        let plan = plan_of(
            "SELECT * FROM customers JOIN products ON product_id WINDOW 4000000",
        );
        assert!(matches!(
            deploy_to_hardware(&plan, 16, &XC7VX485T),
            Err(HwBridgeError::DoesNotFit(_))
        ));
    }

    #[test]
    fn wide_keys_are_rejected_at_push_time() {
        // 64-bit key field in the schema; a value beyond u32 cannot ride
        // the tuple key lane.
        let mut c = Catalog::new();
        c.register(
            "a",
            Schema::new(vec![Field::new("k", 64).unwrap()]).unwrap(),
        );
        c.register(
            "b",
            Schema::new(vec![Field::new("k", 64).unwrap()]).unwrap(),
        );
        let plan = bind(
            &Query::parse("SELECT * FROM a JOIN b ON k WINDOW 8").unwrap(),
            &c,
        )
        .unwrap();
        let mut hw = deploy_to_hardware(&plan, 2, &XC7VX485T).unwrap();
        assert!(hw.push("a", Record::new(vec![7])).is_ok());
        assert_eq!(
            hw.push("a", Record::new(vec![1 << 40])).unwrap_err(),
            HwBridgeError::KeyTooWide { value: 1 << 40 }
        );
        assert!(matches!(
            hw.push("ghost", Record::new(vec![1])),
            Err(HwBridgeError::UnknownStream { .. })
        ));
    }

    #[test]
    fn deployment_exposes_synthesis_data() {
        let plan = plan_of("SELECT * FROM customers JOIN products ON product_id WINDOW 256");
        let hw = deploy_to_hardware(&plan, 8, &XC7VX485T).unwrap();
        assert!(hw.report().utilization.fits());
        assert!(hw.throughput_estimate() > 1e6);
        assert_eq!(hw.accepted(), 0);
        assert_eq!(hw.cycles(), 0);
    }
}
