//! The acceleration design landscape (paper Section II, Fig. 4) as a
//! typed model.
//!
//! The paper's first contribution is "a comprehensive formalization of the
//! acceleration landscape over distributed heterogeneous hardware". This
//! module encodes the four layers of that formalization — system model,
//! programming model, representational model, and algorithmic model — and
//! a catalog of the systems the paper classifies, with a query API for
//! navigating it.
//!
//! # Example
//!
//! ```
//! use fqp::landscape::{catalog, RepresentationalModel, SystemModel};
//!
//! // Which systems support runtime topology changes?
//! let dynamic: Vec<_> = catalog()
//!     .iter()
//!     .filter(|s| s.representation >= RepresentationalModel::ParametrizedTopology)
//!     .map(|s| s.name)
//!     .collect();
//! assert_eq!(dynamic, vec!["FQP"]);
//!
//! // Everything deployable standalone on an FPGA:
//! assert!(catalog()
//!     .iter()
//!     .any(|s| s.name == "Glacier" && s.system == SystemModel::Standalone));
//! ```

use std::fmt;

/// Deployment of an accelerator within the distributed system (top layer
/// of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemModel {
    /// The entire software stack is embedded on the accelerator.
    Standalone,
    /// The accelerator sits on the data path, performing partial or
    /// best-effort computation (e.g. between network and host).
    CoPlacement,
    /// The host offloads (partial) computation to the accelerator.
    CoProcessor,
}

/// How the accelerator is programmed (second layer of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgrammingModel {
    /// Hardware description languages: VHDL, Verilog, SystemC, TLM.
    HardwareDescription,
    /// General-purpose or parallel software languages and APIs: C, C++,
    /// Java, CUDA, OpenCL, OpenMP.
    Procedural,
    /// SQL-based declarative languages compiled to hardware ahead of time
    /// (the Glacier approach: query → final circuit).
    DeclarativeStatic,
    /// SQL-based declarative languages mapped onto a pre-synthesized
    /// fabric at runtime (the FQP approach).
    DeclarativeDynamic,
}

/// How data and control flow are realized on the fabric (third layer).
/// Ordered by increasing dynamism, as in the paper's narrative from
/// static circuits to parametrized topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RepresentationalModel {
    /// Fixed logic and hard-coded wiring; best performing, unchangeable.
    StaticCircuit,
    /// Selection/join conditions changeable at runtime without
    /// re-synthesis (skeleton automata, fpga-ToPSS, OP-Blocks, Ibex,
    /// Netezza, Q100's temporal/spatial instructions).
    ParametrizedCircuit,
    /// Schemas of varying size over a fixed wiring budget via vertical
    /// partitioning of query and data.
    ParametrizedDataSegments,
    /// Macro changes (query structure) and micro changes (operator
    /// conditions) both possible at runtime.
    ParametrizedTopology,
}

/// Parallelism patterns exploited by a design (bottom layer of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Same task over partitioned data (SIMD-style).
    Data,
    /// Independent concurrent tasks over replicated/partitioned data.
    Task,
    /// A task broken into a sequence of sub-tasks with data flowing
    /// through — "arguably the most important design pattern on hardware".
    Pipeline,
}

/// Data-flow discipline of a parallel stream join, where applicable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowDiscipline {
    /// Tuples flow in opposite directions through a chain (handshake
    /// join).
    BiDirectional,
    /// A single top-down flow into independent cores (SplitJoin).
    UniDirectional,
    /// Not a flow-based design.
    NotApplicable,
}

/// One classified system in the landscape.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemProfile {
    /// System name as used in the paper.
    pub name: &'static str,
    /// Deployment model.
    pub system: SystemModel,
    /// Programming model.
    pub programming: ProgrammingModel,
    /// Representational model (degree of runtime dynamism).
    pub representation: RepresentationalModel,
    /// Parallelism patterns exploited.
    pub parallelism: &'static [Parallelism],
    /// Flow discipline for stream joins.
    pub flow: FlowDiscipline,
    /// One-line description from the paper.
    pub note: &'static str,
}

impl fmt::Display for SystemProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:?} / {:?} / {:?} — {}",
            self.name, self.system, self.programming, self.representation, self.note
        )
    }
}

/// The catalog of systems the paper classifies (Fig. 4 and Section II).
pub fn catalog() -> &'static [SystemProfile] {
    use FlowDiscipline::*;
    use Parallelism::*;
    use ProgrammingModel::*;
    use RepresentationalModel::*;
    use SystemModel::*;
    const CATALOG: &[SystemProfile] = &[
        SystemProfile {
            name: "Glacier",
            system: Standalone,
            programming: DeclarativeStatic,
            representation: StaticCircuit,
            parallelism: &[Pipeline],
            flow: NotApplicable,
            note: "static compiler composing operator-based logic blocks into a final circuit",
        },
        SystemProfile {
            name: "FQP",
            system: Standalone,
            programming: DeclarativeDynamic,
            representation: ParametrizedTopology,
            parallelism: &[Data, Task, Pipeline],
            flow: UniDirectional,
            note: "online-programmable OP-Blocks composed into a reconfigurable topology",
        },
        SystemProfile {
            name: "fpga-ToPSS",
            system: Standalone,
            programming: HardwareDescription,
            representation: ParametrizedCircuit,
            parallelism: &[Data, Pipeline],
            flow: NotApplicable,
            note: "event processing hiding off-chip memory latency behind on-chip queries",
        },
        SystemProfile {
            name: "Skeleton automata",
            system: Standalone,
            programming: HardwareDescription,
            representation: ParametrizedCircuit,
            parallelism: &[Pipeline],
            flow: NotApplicable,
            note: "structural NFA skeletons in logic, XPath query conditions in memory",
        },
        SystemProfile {
            name: "Ibex",
            system: CoProcessor,
            programming: DeclarativeStatic,
            representation: ParametrizedCircuit,
            parallelism: &[Pipeline],
            flow: NotApplicable,
            note: "intelligent storage engine; software precomputes Boolean truth tables for hardware",
        },
        SystemProfile {
            name: "IBM Netezza",
            system: CoPlacement,
            programming: DeclarativeStatic,
            representation: ParametrizedCircuit,
            parallelism: &[Data, Pipeline],
            flow: NotApplicable,
            note: "commercial warehouse appliance offloading query computation on the data path",
        },
        SystemProfile {
            name: "Q100",
            system: CoProcessor,
            programming: DeclarativeStatic,
            representation: ParametrizedCircuit,
            parallelism: &[Pipeline, Task],
            flow: NotApplicable,
            note: "database processing unit with temporal/spatial instructions over pipelined SQL stages",
        },
        SystemProfile {
            name: "Handshake join",
            system: Standalone,
            programming: HardwareDescription,
            representation: StaticCircuit,
            parallelism: &[Data, Pipeline],
            flow: BiDirectional,
            note: "bi-directional data flow through a linear chain of join cores",
        },
        SystemProfile {
            name: "SplitJoin",
            system: Standalone,
            programming: HardwareDescription,
            representation: ParametrizedCircuit,
            parallelism: &[Data, Task],
            flow: UniDirectional,
            note: "top-down flow into independent join cores with round-robin storage",
        },
    ];
    CATALOG
}

/// Returns the catalog entry for `name`, if the paper classifies it.
pub fn find(name: &str) -> Option<&'static SystemProfile> {
    catalog().iter().find(|s| s.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_three_system_models() {
        for model in [
            SystemModel::Standalone,
            SystemModel::CoPlacement,
            SystemModel::CoProcessor,
        ] {
            assert!(
                catalog().iter().any(|s| s.system == model),
                "no system with {model:?}"
            );
        }
    }

    #[test]
    fn fqp_is_the_only_parametrized_topology() {
        let tops: Vec<_> = catalog()
            .iter()
            .filter(|s| s.representation == RepresentationalModel::ParametrizedTopology)
            .collect();
        assert_eq!(tops.len(), 1);
        assert_eq!(tops[0].name, "FQP");
    }

    #[test]
    fn representational_dynamism_is_ordered() {
        assert!(
            RepresentationalModel::StaticCircuit
                < RepresentationalModel::ParametrizedCircuit
        );
        assert!(
            RepresentationalModel::ParametrizedCircuit
                < RepresentationalModel::ParametrizedDataSegments
        );
        assert!(
            RepresentationalModel::ParametrizedDataSegments
                < RepresentationalModel::ParametrizedTopology
        );
    }

    #[test]
    fn flow_based_joins_are_classified() {
        assert_eq!(
            find("handshake join").unwrap().flow,
            FlowDiscipline::BiDirectional
        );
        assert_eq!(
            find("splitjoin").unwrap().flow,
            FlowDiscipline::UniDirectional
        );
    }

    #[test]
    fn find_is_case_insensitive_and_total() {
        assert!(find("FQP").is_some());
        assert!(find("fqp").is_some());
        assert!(find("nonexistent system").is_none());
    }

    #[test]
    fn every_entry_exploits_some_parallelism_and_has_a_note() {
        for s in catalog() {
            assert!(!s.parallelism.is_empty(), "{}", s.name);
            assert!(!s.note.is_empty(), "{}", s.name);
            assert!(!s.to_string().is_empty());
        }
    }
}
