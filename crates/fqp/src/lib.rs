//! The Flexible Query Processor (FQP): a runtime-reprogrammable stream
//! query fabric, plus the acceleration-landscape taxonomy of the paper's
//! Section II.
//!
//! FQP is the paper's answer to the central limitation of query-to-circuit
//! compilers: instead of synthesizing each query into a fixed design
//! (minutes to days, with the system halted), a *topology of
//! online-programmable blocks* is synthesized once; queries are then
//! mapped onto it at runtime in microseconds — the "Lego-like" connectable
//! stream processor of the paper's conclusion.
//!
//! The pipeline from text to running query:
//!
//! 1. [`query::Query::parse`] — parse the SQL-like dialect;
//! 2. [`plan::bind`] — bind against stream schemas ([`plan::Catalog`])
//!    into a pipeline of operators;
//! 3. [`assign::assign`] — allocate idle [`opblock::OpBlock`]s on a
//!    [`fabric::Fabric`], program them, and wire the pipeline;
//! 4. [`fabric::Fabric::push`] — stream records through;
//! 5. [`assign::remove`] / [`fabric::Fabric::reprogram`] — change or
//!    remove queries live ([`reconfig`] quantifies why this matters).
//!
//! # Where FQP sits in the landscape
//!
//! [`landscape`] encodes the paper's four-layer design-space
//! formalization (Section II, Fig. 4) — system, programming,
//! representational, and algorithmic models — and classifies FQP itself
//! alongside the other surveyed systems: a standalone/co-placed design
//! with a *parametrized topology* representation, the only class that
//! admits runtime query changes without resynthesis. `ARCHITECTURE.md`
//! at the workspace root maps every crate of this reproduction onto those
//! four layers.
//!
//! # Example
//!
//! ```
//! use fqp::assign::assign;
//! use fqp::fabric::Fabric;
//! use fqp::plan::{bind, Catalog};
//! use fqp::query::Query;
//! use streamcore::{Field, Record, Schema};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut catalog = Catalog::new();
//! catalog.register(
//!     "readings",
//!     Schema::new(vec![Field::new("sensor", 32)?, Field::new("value", 32)?])?,
//! );
//! let query = Query::parse("SELECT value FROM readings WHERE value > 90")?;
//! let plan = bind(&query, &catalog)?;
//!
//! let mut fabric = Fabric::new(8);
//! let handle = assign(&plan, &mut fabric)?;
//! fabric.push("readings", Record::new(vec![1, 95]))?;
//! fabric.push("readings", Record::new(vec![2, 50]))?;
//! assert_eq!(fabric.take_sink(handle.sink)?, vec![Record::new(vec![95])]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod datapath;
pub mod fabric;
pub mod hwbridge;
pub mod landscape;
pub mod manager;
pub mod opblock;
pub mod placement;
pub mod plan;
pub mod provision;
pub mod query;
pub mod reconfig;
pub mod virtualize;
