//! Multi-query management with inter-query operator sharing — the
//! paper's open problem #4: "generalize the query mapping from
//! single-query optimization to multi-query optimization to amortize the
//! execution cost across the shared processing of several queries",
//! in the spirit of the Rete-like global query plans it cites.
//!
//! [`QueryManager::deploy`] looks for an already-deployed query whose
//! operator pipeline starts with the same operators over the same streams
//! and reuses those blocks (fan-out on the last shared block); only the
//! differing suffix consumes fresh OP-Blocks. Shared blocks are
//! reference-counted so [`QueryManager::undeploy`] releases exactly the
//! blocks no surviving query needs.

use std::collections::HashMap;
use std::fmt;

use streamcore::Record;

use crate::assign::AssignError;
use crate::fabric::{Fabric, FabricError, SinkId, Target};
use crate::opblock::{BlockId, BlockProgram, Port};
use crate::plan::{Plan, PlanOp};

/// Identifier of a deployed query within a [`QueryManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Deployed {
    id: QueryId,
    primary: String,
    secondary: Option<String>,
    /// The full pipeline, programs included (shared prefix + own suffix).
    chain: Vec<(BlockId, BlockProgram)>,
    /// Index of the first block exclusively owned by this query.
    owned_from: usize,
    sink: SinkId,
}

/// Statistics about sharing across currently deployed queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingReport {
    /// Queries currently deployed.
    pub queries: usize,
    /// Distinct blocks in use.
    pub blocks_in_use: usize,
    /// Blocks a sharing-oblivious deployment would have used.
    pub blocks_without_sharing: usize,
}

impl SharingReport {
    /// Blocks saved by sharing.
    pub fn blocks_saved(&self) -> usize {
        self.blocks_without_sharing - self.blocks_in_use
    }
}

/// Deploys queries onto a fabric with operator sharing and reference
/// counting.
///
/// # Example
///
/// ```
/// use fqp::manager::QueryManager;
/// use fqp::plan::{bind, Catalog};
/// use fqp::query::Query;
/// use streamcore::{Field, Record, Schema};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut catalog = Catalog::new();
/// catalog.register(
///     "readings",
///     Schema::new(vec![Field::new("sensor", 32)?, Field::new("value", 32)?])?,
/// );
/// let hot = bind(&Query::parse("SELECT * FROM readings WHERE value > 90")?, &catalog)?;
///
/// let mut mgr = QueryManager::new(4);
/// let a = mgr.deploy(&hot)?;
/// let b = mgr.deploy(&hot)?; // identical: shares every block
/// assert_eq!(mgr.sharing_report().blocks_in_use, 1);
///
/// mgr.push("readings", Record::new(vec![1, 95]))?;
/// assert_eq!(mgr.take_results(a)?.len(), 1);
/// assert_eq!(mgr.take_results(b)?.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct QueryManager {
    fabric: Fabric,
    next_id: u64,
    deployed: Vec<Deployed>,
    refcounts: HashMap<BlockId, usize>,
}

impl QueryManager {
    /// Creates a manager over a fresh fabric of `num_blocks` OP-Blocks.
    pub fn new(num_blocks: usize) -> Self {
        Self {
            fabric: Fabric::new(num_blocks),
            next_id: 0,
            deployed: Vec::new(),
            refcounts: HashMap::new(),
        }
    }

    /// Read access to the underlying fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Deploys `plan`, sharing the longest matching operator prefix of an
    /// already-deployed query over the same streams.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError::InsufficientBlocks`] when the *unshared*
    /// suffix does not fit the idle pool (sharing reduces the
    /// requirement); the fabric is left unchanged in that case.
    pub fn deploy(&mut self, plan: &Plan) -> Result<QueryId, AssignError> {
        let programs: Vec<BlockProgram> = if plan.ops.is_empty() {
            vec![BlockProgram::Passthrough]
        } else {
            plan.ops.iter().map(op_to_program).collect()
        };

        // Longest shareable prefix across deployed queries.
        let shared: Vec<(BlockId, BlockProgram)> = self
            .deployed
            .iter()
            .filter(|d| d.primary == plan.primary)
            .map(|d| {
                let mut n = 0;
                while n < d.chain.len() && n < programs.len() {
                    if d.chain[n].1 != programs[n] {
                        break;
                    }
                    // Sharing a join block additionally requires the same
                    // secondary stream feeding its right port.
                    if matches!(programs[n], BlockProgram::Join { .. })
                        && d.secondary != plan.secondary
                    {
                        break;
                    }
                    n += 1;
                }
                d.chain[..n].to_vec()
            })
            .max_by_key(Vec::len)
            .unwrap_or_default();

        let suffix = &programs[shared.len()..];
        let available = self.fabric.idle_blocks();
        if available < suffix.len() {
            return Err(AssignError::InsufficientBlocks {
                required: suffix.len(),
                available,
            });
        }

        // Allocate and program the suffix.
        let mut chain = shared.clone();
        for prog in suffix {
            let id = self.fabric.find_idle().expect("counted above");
            self.fabric.reprogram(id, prog.clone())?;
            chain.push((id, prog.clone()));
        }

        // Wiring. The primary stream feeds the first block only when it
        // is newly allocated (a shared first block is already bound).
        if shared.is_empty() {
            self.fabric
                .bind_stream(&plan.primary, chain[0].0, Port::Left);
        }
        for (i, (id, prog)) in chain.iter().enumerate().skip(shared.len()) {
            if matches!(prog, BlockProgram::Join { .. }) {
                let stream = plan
                    .secondary
                    .as_deref()
                    .expect("join implies a secondary stream");
                self.fabric.bind_stream(stream, *id, Port::Right);
            }
            if i > 0 {
                self.fabric
                    .connect(chain[i - 1].0, Target::Block(*id, Port::Left))?;
            }
        }
        let sink = self.fabric.add_sink();
        self.fabric
            .connect(chain.last().expect("non-empty").0, Target::Sink(sink))?;

        // Reference counting over the whole chain.
        for (id, _) in &chain {
            *self.refcounts.entry(*id).or_insert(0) += 1;
        }

        let id = QueryId(self.next_id);
        self.next_id += 1;
        self.deployed.push(Deployed {
            id,
            primary: plan.primary.clone(),
            secondary: plan.secondary.clone(),
            owned_from: shared.len(),
            chain,
            sink,
        });
        Ok(id)
    }

    /// Removes a query, releasing every block no surviving query shares.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError`] wrapped in [`AssignError`] for stale ids.
    pub fn undeploy(&mut self, id: QueryId) -> Result<(), AssignError> {
        let pos = self
            .deployed
            .iter()
            .position(|d| d.id == id)
            .ok_or(AssignError::Fabric(FabricError::UnknownStream {
                stream: id.to_string(),
            }))?;
        let d = self.deployed.remove(pos);
        // Detach this query's private wiring from the shared prefix.
        if let Some((first_own, _)) = d.chain.get(d.owned_from) {
            if d.owned_from > 0 {
                self.fabric.disconnect(
                    d.chain[d.owned_from - 1].0,
                    Target::Block(*first_own, Port::Left),
                )?;
            }
        } else if let Some((last, _)) = d.chain.last() {
            // Entire chain shared: only the sink edge is private.
            self.fabric.disconnect(*last, Target::Sink(d.sink))?;
        }
        for (block, _) in d.chain.iter().rev() {
            let count = self.refcounts.get_mut(block).expect("refcounted");
            *count -= 1;
            if *count == 0 {
                self.refcounts.remove(block);
                self.fabric.release(*block)?;
            }
        }
        Ok(())
    }

    /// Pushes one record into the fabric.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownStream`] if no deployed query reads
    /// `stream`.
    pub fn push(&mut self, stream: &str, record: Record) -> Result<(), FabricError> {
        self.fabric.push(stream, record)
    }

    /// Removes and returns the results of one query.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown query ids.
    pub fn take_results(&mut self, id: QueryId) -> Result<Vec<Record>, FabricError> {
        let d = self
            .deployed
            .iter()
            .find(|d| d.id == id)
            .ok_or(FabricError::UnknownSink { id: SinkId(usize::MAX) })?;
        self.fabric.take_sink(d.sink)
    }

    /// Graphviz DOT rendering of the shared topology (see
    /// [`Fabric::to_dot`]) — shared prefix blocks show their fan-out to
    /// every dependent query's suffix.
    pub fn to_dot(&self) -> String {
        self.fabric.to_dot()
    }

    /// Sharing statistics across the deployed queries.
    pub fn sharing_report(&self) -> SharingReport {
        SharingReport {
            queries: self.deployed.len(),
            blocks_in_use: self.refcounts.len(),
            blocks_without_sharing: self.deployed.iter().map(|d| d.chain.len()).sum(),
        }
    }
}

fn op_to_program(op: &PlanOp) -> BlockProgram {
    match op {
        PlanOp::Select { conditions } => BlockProgram::Select {
            conditions: conditions.clone(),
        },
        PlanOp::SelectTable { atoms, table } => BlockProgram::TruthTableSelect {
            atoms: atoms.clone(),
            table: table.clone(),
        },
        PlanOp::Join {
            key_left,
            key_right,
            window,
        } => BlockProgram::Join {
            key_left: *key_left,
            key_right: *key_right,
            window: *window,
        },
        PlanOp::Project { fields } => BlockProgram::Project {
            fields: fields.clone(),
        },
        PlanOp::Aggregate {
            func,
            field,
            window,
            kind,
        } => BlockProgram::Aggregate {
            func: *func,
            field: *field,
            window: *window,
            kind: *kind,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{bind, Catalog};
    use crate::query::Query;
    use streamcore::{Field, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "customers",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("age", 8).unwrap(),
                Field::new("gender", 1).unwrap(),
            ])
            .unwrap(),
        );
        c.register(
            "products",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("price", 32).unwrap(),
            ])
            .unwrap(),
        );
        c.register(
            "returns",
            Schema::new(vec![Field::new("product_id", 32).unwrap()]).unwrap(),
        );
        c
    }

    fn plan_of(text: &str) -> Plan {
        bind(&Query::parse(text).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn common_select_prefix_is_shared() {
        // Same selection, different join windows: the select block is
        // shared, each query owns its join block -> 3 blocks, not 4.
        let q1 = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 1536",
        );
        let q2 = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 2048",
        );
        let mut mgr = QueryManager::new(3);
        let a = mgr.deploy(&q1).unwrap();
        let b = mgr.deploy(&q2).unwrap();
        let report = mgr.sharing_report();
        assert_eq!(report.blocks_in_use, 3);
        assert_eq!(report.blocks_without_sharing, 4);
        assert_eq!(report.blocks_saved(), 1);

        // Both queries see matching traffic.
        mgr.push("products", Record::new(vec![7, 10])).unwrap();
        mgr.push("customers", Record::new(vec![7, 40, 1])).unwrap();
        assert_eq!(mgr.take_results(a).unwrap().len(), 1);
        assert_eq!(mgr.take_results(b).unwrap().len(), 1);

        // The shared select still filters for both.
        mgr.push("customers", Record::new(vec![7, 20, 1])).unwrap();
        assert!(mgr.take_results(a).unwrap().is_empty());
        assert!(mgr.take_results(b).unwrap().is_empty());
    }

    #[test]
    fn identical_queries_share_everything() {
        let q = plan_of("SELECT * FROM customers WHERE age > 25");
        let mut mgr = QueryManager::new(1);
        let a = mgr.deploy(&q).unwrap();
        let b = mgr.deploy(&q).unwrap();
        assert_eq!(mgr.sharing_report().blocks_in_use, 1);
        mgr.push("customers", Record::new(vec![1, 30, 0])).unwrap();
        assert_eq!(mgr.take_results(a).unwrap().len(), 1);
        assert_eq!(mgr.take_results(b).unwrap().len(), 1);
    }

    #[test]
    fn undeploy_releases_only_unshared_blocks() {
        let q1 = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 64",
        );
        let q2 = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 128",
        );
        let mut mgr = QueryManager::new(3);
        let a = mgr.deploy(&q1).unwrap();
        let b = mgr.deploy(&q2).unwrap();
        mgr.undeploy(b).unwrap();
        // q2's join block is released; the shared select and q1's join
        // survive.
        assert_eq!(mgr.sharing_report().blocks_in_use, 2);
        assert_eq!(mgr.fabric().idle_blocks(), 1);
        mgr.push("products", Record::new(vec![3, 5])).unwrap();
        mgr.push("customers", Record::new(vec![3, 30, 0])).unwrap();
        assert_eq!(mgr.take_results(a).unwrap().len(), 1);

        mgr.undeploy(a).unwrap();
        assert_eq!(mgr.fabric().idle_blocks(), 3);
    }

    #[test]
    fn join_prefix_requires_matching_secondary_stream() {
        // Same operator shape but a different secondary stream: the join
        // must NOT be shared.
        let q1 = plan_of("SELECT * FROM customers JOIN products ON product_id WINDOW 64");
        let q2 = plan_of("SELECT * FROM customers JOIN returns ON product_id WINDOW 64");
        let mut mgr = QueryManager::new(2);
        mgr.deploy(&q1).unwrap();
        mgr.deploy(&q2).unwrap();
        assert_eq!(mgr.sharing_report().blocks_in_use, 2);
    }

    #[test]
    fn sharing_reduces_the_block_requirement() {
        let q1 = plan_of("SELECT * FROM customers WHERE age > 25");
        let q2 = plan_of("SELECT age FROM customers WHERE age > 25");
        // One block total is NOT enough for q2's projection…
        let mut mgr = QueryManager::new(1);
        mgr.deploy(&q1).unwrap();
        assert!(matches!(
            mgr.deploy(&q2),
            Err(AssignError::InsufficientBlocks { required: 1, available: 0 })
        ));
        // …but two are, because the select is shared.
        let mut mgr = QueryManager::new(2);
        let a = mgr.deploy(&q1).unwrap();
        let b = mgr.deploy(&q2).unwrap();
        assert_eq!(mgr.sharing_report().blocks_in_use, 2);
        mgr.push("customers", Record::new(vec![9, 50, 1])).unwrap();
        assert_eq!(mgr.take_results(a).unwrap()[0].values().len(), 3);
        assert_eq!(mgr.take_results(b).unwrap()[0].values(), &[50]);
    }

    #[test]
    fn unshared_streams_do_not_share() {
        let q1 = plan_of("SELECT * FROM customers WHERE product_id > 0");
        let q2 = plan_of("SELECT * FROM products WHERE product_id > 0");
        let mut mgr = QueryManager::new(2);
        mgr.deploy(&q1).unwrap();
        mgr.deploy(&q2).unwrap();
        assert_eq!(mgr.sharing_report().blocks_in_use, 2);
    }

    #[test]
    fn dot_export_shows_shared_fanout() {
        let q1 = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 64",
        );
        let q2 = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 128",
        );
        let mut mgr = QueryManager::new(3);
        mgr.deploy(&q1).unwrap();
        mgr.deploy(&q2).unwrap();
        let dot = mgr.to_dot();
        // The shared select (block 0) feeds both join blocks.
        assert!(dot.contains("b0 -> b1"), "{dot}");
        assert!(dot.contains("b0 -> b2"), "{dot}");
        assert!(dot.matches("sink").count() >= 2, "{dot}");
    }

    #[test]
    fn undeploy_unknown_id_errors() {
        let mut mgr = QueryManager::new(1);
        assert!(mgr.undeploy(QueryId(42)).is_err());
    }
}
