//! Online-Programmable Blocks (OP-Blocks): the runtime-reprogrammable
//! operator units of the FQP fabric.
//!
//! An OP-Block "implements selection, projection, and join operations,
//! where the conditions of each operator can seamlessly be adjusted at
//! runtime" — no re-synthesis, no halt. Each block has two input ports
//! (joins use both) and one output.

use std::collections::VecDeque;
use std::fmt;

use hwsim::Resources;
use streamcore::{Record, SlidingWindow};

use crate::plan::BoundCondition;
use crate::query::{AggFunc, WindowKind};

/// Identifier of a block within a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OP-Block#{}", self.0)
    }
}

/// Input port of a block. Single-input operators use [`Port::Left`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Primary input.
    Left,
    /// Secondary input (the probe side of a join's other stream).
    Right,
}

/// The operator a block is currently programmed to execute.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockProgram {
    /// Unprogrammed: drop all input (a freshly allocated block).
    Idle,
    /// Forward records unchanged.
    Passthrough,
    /// Emit only records satisfying every condition.
    Select {
        /// Conjunction of bound conditions.
        conditions: Vec<BoundCondition>,
    },
    /// Emit only records whose atom-outcome bitmask hits a `true` entry
    /// of the precomputed truth table (Ibex-style Boolean selection: all
    /// atoms evaluate in parallel, one table lookup decides).
    TruthTableSelect {
        /// Atomic comparisons, bit `i` of the mask from `atoms[i]`.
        atoms: Vec<BoundCondition>,
        /// `2^atoms.len()` precomputed outcomes.
        table: Vec<bool>,
    },
    /// Emit records containing only the listed fields, in order.
    Project {
        /// Field indices to keep.
        fields: Vec<usize>,
    },
    /// Sliding-window equi-join of the two input ports; emits the
    /// concatenation of the matching left and right records.
    Join {
        /// Key index in left-port records.
        key_left: usize,
        /// Key index in right-port records.
        key_right: usize,
        /// Per-port window capacity.
        window: usize,
    },
    /// Windowed aggregate: sliding windows emit one single-field record
    /// with the running aggregate per input record; tumbling windows emit
    /// one record per full window, then reset.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Aggregated field index (`None` for `COUNT`).
        field: Option<usize>,
        /// Window size.
        window: usize,
        /// Sliding or tumbling advancement.
        kind: WindowKind,
    },
}

impl BlockProgram {
    /// Short operator mnemonic (display / debugging).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BlockProgram::Idle => "idle",
            BlockProgram::Passthrough => "pass",
            BlockProgram::Select { .. } => "select",
            BlockProgram::TruthTableSelect { .. } => "select-table",
            BlockProgram::Project { .. } => "project",
            BlockProgram::Join { .. } => "join",
            BlockProgram::Aggregate { .. } => "aggregate",
        }
    }
}

/// Cumulative per-block counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Records consumed (both ports).
    pub records_in: u64,
    /// Records emitted.
    pub records_out: u64,
    /// Times the block has been reprogrammed.
    pub reprograms: u64,
}

/// One OP-Block instance.
#[derive(Debug, Clone)]
pub struct OpBlock {
    id: BlockId,
    program: BlockProgram,
    window_left: Option<SlidingWindow<Record>>,
    window_right: Option<SlidingWindow<Record>>,
    /// Aggregate state: retained values plus an incremental sum.
    agg_values: VecDeque<u64>,
    agg_sum: u128,
    /// Per-condition statistics for Select programs: (evaluated, passed),
    /// parallel to the condition list. The paper's open problem #2 asks
    /// "how to collect and store statistics during query execution while
    /// minimizing the impact" — these counters are what the re-optimizer
    /// consumes.
    cond_stats: Vec<(u64, u64)>,
    stats: BlockStats,
}

impl OpBlock {
    /// Creates an idle block.
    pub fn new(id: BlockId) -> Self {
        Self {
            id,
            program: BlockProgram::Idle,
            window_left: None,
            window_right: None,
            agg_values: VecDeque::new(),
            agg_sum: 0,
            cond_stats: Vec::new(),
            stats: BlockStats::default(),
        }
    }

    /// The block's identifier.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The current program.
    pub fn program(&self) -> &BlockProgram {
        &self.program
    }

    /// `true` if the block is free for assignment.
    pub fn is_idle(&self) -> bool {
        matches!(self.program, BlockProgram::Idle)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> BlockStats {
        self.stats
    }

    /// (Re)programs the block at runtime — the FQP micro-change path:
    /// takes effect immediately, clearing any join windows.
    pub fn reprogram(&mut self, program: BlockProgram) {
        if let BlockProgram::Join { window, .. } = &program {
            self.window_left = Some(SlidingWindow::new((*window).max(1)));
            self.window_right = Some(SlidingWindow::new((*window).max(1)));
        } else {
            self.window_left = None;
            self.window_right = None;
        }
        self.agg_values.clear();
        self.agg_sum = 0;
        self.cond_stats = match &program {
            BlockProgram::Select { conditions } => vec![(0, 0); conditions.len()],
            _ => Vec::new(),
        };
        self.program = program;
        self.stats.reprograms += 1;
    }

    /// Per-condition (evaluated, passed) counters of a Select program,
    /// parallel to its condition list.
    pub fn condition_stats(&self) -> &[(u64, u64)] {
        &self.cond_stats
    }

    /// Reorders a Select program's conditions by observed pass rate,
    /// cheapest filter first, so short-circuit evaluation does the least
    /// work — the statistics-driven micro re-optimization of the paper's
    /// open problem #2. Returns `true` if the order changed. Counters are
    /// reset so the next measurement window is clean. A conjunction is
    /// order-insensitive, so results are unchanged.
    pub fn reoptimize_select(&mut self) -> bool {
        let BlockProgram::Select { conditions } = &mut self.program else {
            return false;
        };
        let mut order: Vec<usize> = (0..conditions.len()).collect();
        order.sort_by(|&a, &b| {
            let rate = |i: usize| {
                let (eval, pass) = self.cond_stats[i];
                if eval == 0 {
                    1.0
                } else {
                    pass as f64 / eval as f64
                }
            };
            rate(a).partial_cmp(&rate(b)).expect("finite rates")
        });
        let changed = order.iter().enumerate().any(|(i, &o)| i != o);
        if changed {
            let reordered: Vec<_> = order.iter().map(|&i| conditions[i]).collect();
            *conditions = reordered;
        }
        for s in &mut self.cond_stats {
            *s = (0, 0);
        }
        changed
    }

    /// Processes one record arriving on `port`, returning the emitted
    /// records.
    pub fn process(&mut self, port: Port, record: Record) -> Vec<Record> {
        self.stats.records_in += 1;
        let out = match &self.program {
            BlockProgram::Idle => Vec::new(),
            BlockProgram::Passthrough => vec![record],
            BlockProgram::Select { conditions } => {
                // Short-circuit conjunction with per-condition statistics.
                let mut all = true;
                for (c, stat) in conditions.iter().zip(&mut self.cond_stats) {
                    stat.0 += 1;
                    if c.eval(record.values()) {
                        stat.1 += 1;
                    } else {
                        all = false;
                        break;
                    }
                }
                if all {
                    vec![record]
                } else {
                    Vec::new()
                }
            }
            BlockProgram::TruthTableSelect { atoms, table } => {
                // All atoms evaluate in parallel (no short-circuit): a
                // single lookup decides.
                let mut mask = 0usize;
                for (i, c) in atoms.iter().enumerate() {
                    if c.eval(record.values()) {
                        mask |= 1 << i;
                    }
                }
                if table[mask] {
                    vec![record]
                } else {
                    Vec::new()
                }
            }
            BlockProgram::Project { fields } => {
                let values = fields
                    .iter()
                    .filter_map(|&i| record.get(i))
                    .collect::<Vec<u64>>();
                vec![Record::new(values)]
            }
            BlockProgram::Join {
                key_left,
                key_right,
                ..
            } => {
                let (key_probe, key_stored) = match port {
                    Port::Left => (*key_left, *key_right),
                    Port::Right => (*key_right, *key_left),
                };
                let probe_key = record.get(key_probe);
                let (own, other) = match port {
                    Port::Left => (&mut self.window_left, &mut self.window_right),
                    Port::Right => (&mut self.window_right, &mut self.window_left),
                };
                let mut out = Vec::new();
                if let (Some(probe_key), Some(other)) = (probe_key, other.as_mut()) {
                    for stored in other.iter() {
                        if stored.get(key_stored) == Some(probe_key) {
                            // Output order is always left ++ right.
                            let pair = match port {
                                Port::Left => (&record, stored),
                                Port::Right => (stored, &record),
                            };
                            let mut values = pair.0.values().to_vec();
                            values.extend_from_slice(pair.1.values());
                            out.push(Record::new(values));
                        }
                    }
                }
                if let Some(own) = own.as_mut() {
                    own.insert(record);
                }
                out
            }
            BlockProgram::Aggregate {
                func,
                field,
                window,
                kind,
            } => {
                let value = match field {
                    Some(i) => record.get(*i).unwrap_or(0),
                    None => 1, // COUNT counts tuples
                };
                self.agg_values.push_back(value);
                self.agg_sum += value as u128;
                if self.agg_values.len() > *window {
                    let expired = self.agg_values.pop_front().expect("non-empty");
                    self.agg_sum -= expired as u128;
                }
                let emit = match kind {
                    WindowKind::Sliding => true,
                    WindowKind::Tumbling => self.agg_values.len() == *window,
                };
                if !emit {
                    Vec::new()
                } else {
                    let len = self.agg_values.len() as u64;
                    let result = match func {
                        AggFunc::Count => len,
                        AggFunc::Sum => self.agg_sum as u64,
                        AggFunc::Avg => (self.agg_sum / len.max(1) as u128) as u64,
                        AggFunc::Min => {
                            self.agg_values.iter().copied().min().unwrap_or(0)
                        }
                        AggFunc::Max => {
                            self.agg_values.iter().copied().max().unwrap_or(0)
                        }
                    };
                    if *kind == WindowKind::Tumbling {
                        self.agg_values.clear();
                        self.agg_sum = 0;
                    }
                    vec![Record::new(vec![result])]
                }
            }
        };
        self.stats.records_out += out.len() as u64;
        out
    }

    /// Synthesis-model resource cost of one OP-Block with `window`-sized
    /// join buffers (used by fabric sizing): the block logic plus two
    /// record windows of `record_bits` each.
    pub fn resource_cost(window: usize, record_bits: u64) -> Resources {
        // Control FSMs, comparators, and the programmable bridge ports.
        let logic = Resources {
            luts: 420,
            ffs: 360,
            bram18: 0,
        };
        logic + Resources::for_memory(window as u64 * record_bits) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::CmpOp;

    fn rec(values: &[u64]) -> Record {
        Record::new(values.to_vec())
    }

    #[test]
    fn idle_blocks_drop_everything() {
        let mut b = OpBlock::new(BlockId(0));
        assert!(b.is_idle());
        assert!(b.process(Port::Left, rec(&[1, 2])).is_empty());
        assert_eq!(b.stats().records_in, 1);
        assert_eq!(b.stats().records_out, 0);
    }

    #[test]
    fn select_filters_on_all_conditions() {
        let mut b = OpBlock::new(BlockId(1));
        b.reprogram(BlockProgram::Select {
            conditions: vec![
                BoundCondition { field: 1, op: CmpOp::Gt, value: 25 },
                BoundCondition { field: 2, op: CmpOp::Eq, value: 1 },
            ],
        });
        assert_eq!(b.process(Port::Left, rec(&[9, 30, 1])).len(), 1);
        assert!(b.process(Port::Left, rec(&[9, 30, 0])).is_empty());
        assert!(b.process(Port::Left, rec(&[9, 20, 1])).is_empty());
    }

    #[test]
    fn project_keeps_fields_in_order() {
        let mut b = OpBlock::new(BlockId(2));
        b.reprogram(BlockProgram::Project { fields: vec![2, 0] });
        let out = b.process(Port::Left, rec(&[10, 11, 12]));
        assert_eq!(out, vec![rec(&[12, 10])]);
    }

    #[test]
    fn join_emits_left_concat_right_regardless_of_probe_side() {
        let mut b = OpBlock::new(BlockId(3));
        b.reprogram(BlockProgram::Join {
            key_left: 0,
            key_right: 0,
            window: 4,
        });
        assert!(b.process(Port::Right, rec(&[7, 100])).is_empty());
        let out = b.process(Port::Left, rec(&[7, 55, 1]));
        assert_eq!(out, vec![rec(&[7, 55, 1, 7, 100])]);
        // Probe from the right against the stored left record.
        let out = b.process(Port::Right, rec(&[7, 200]));
        assert_eq!(out, vec![rec(&[7, 55, 1, 7, 200])]);
    }

    #[test]
    fn join_window_expires_oldest() {
        let mut b = OpBlock::new(BlockId(4));
        b.reprogram(BlockProgram::Join {
            key_left: 0,
            key_right: 0,
            window: 2,
        });
        for k in [1u64, 2, 3] {
            b.process(Port::Right, rec(&[k]));
        }
        // Key 1 has expired from the right window (capacity 2).
        assert!(b.process(Port::Left, rec(&[1])).is_empty());
        assert_eq!(b.process(Port::Left, rec(&[3])).len(), 1);
    }

    #[test]
    fn reprogramming_switches_operator_and_clears_windows() {
        let mut b = OpBlock::new(BlockId(5));
        b.reprogram(BlockProgram::Join {
            key_left: 0,
            key_right: 0,
            window: 4,
        });
        b.process(Port::Right, rec(&[1]));
        b.reprogram(BlockProgram::Passthrough);
        assert_eq!(b.process(Port::Left, rec(&[1])), vec![rec(&[1])]);
        // Back to a join: the old window contents are gone.
        b.reprogram(BlockProgram::Join {
            key_left: 0,
            key_right: 0,
            window: 4,
        });
        assert!(b.process(Port::Left, rec(&[1])).is_empty());
        assert_eq!(b.stats().reprograms, 3);
    }

    #[test]
    fn resource_cost_scales_with_window() {
        let small = OpBlock::resource_cost(16, 64);
        let large = OpBlock::resource_cost(4_096, 64);
        assert!(large.bram18 > small.bram18);
        assert!(small.luts >= 420);
    }

    #[test]
    fn aggregates_emit_running_values_over_the_window() {
        let mut b = OpBlock::new(BlockId(6));
        b.reprogram(BlockProgram::Aggregate {
            func: AggFunc::Sum,
            field: Some(0),
            window: 3,
            kind: WindowKind::Sliding,
        });
        let mut sums = Vec::new();
        for v in [10u64, 20, 30, 40] {
            sums.push(b.process(Port::Left, rec(&[v]))[0].values()[0]);
        }
        // Window 3: 10, 30, 60, then 20+30+40.
        assert_eq!(sums, vec![10, 30, 60, 90]);
    }

    #[test]
    fn count_min_max_avg_behave() {
        let cases: [(AggFunc, Vec<u64>); 4] = [
            (AggFunc::Count, vec![1, 2, 2, 2]),
            (AggFunc::Min, vec![5, 3, 3, 1]),
            (AggFunc::Max, vec![5, 5, 8, 8]),
            (AggFunc::Avg, vec![5, 4, 5, 4]),
        ];
        for (func, expected) in cases {
            let mut b = OpBlock::new(BlockId(7));
            b.reprogram(BlockProgram::Aggregate {
                func,
                field: Some(0),
                window: 2,
                kind: WindowKind::Sliding,
            });
            let mut got = Vec::new();
            for v in [5u64, 3, 8, 1] {
                got.push(b.process(Port::Left, rec(&[v]))[0].values()[0]);
            }
            assert_eq!(got, expected, "{func:?}");
        }
    }

    #[test]
    fn tumbling_windows_emit_once_per_full_window() {
        let mut b = OpBlock::new(BlockId(12));
        b.reprogram(BlockProgram::Aggregate {
            func: AggFunc::Sum,
            field: Some(0),
            window: 3,
            kind: WindowKind::Tumbling,
        });
        let mut emitted = Vec::new();
        for v in 1..=7u64 {
            for r in b.process(Port::Left, rec(&[v])) {
                emitted.push(r.values()[0]);
            }
        }
        // Windows [1,2,3] and [4,5,6]; the 7th input is still buffering.
        assert_eq!(emitted, vec![6, 15]);
    }

    #[test]
    fn reprogramming_clears_aggregate_state() {
        let mut b = OpBlock::new(BlockId(8));
        let count = BlockProgram::Aggregate {
            func: AggFunc::Count,
            field: None,
            window: 8,
            kind: WindowKind::Sliding,
        };
        b.reprogram(count.clone());
        b.process(Port::Left, rec(&[1]));
        b.process(Port::Left, rec(&[2]));
        b.reprogram(count);
        let out = b.process(Port::Left, rec(&[3]));
        assert_eq!(out[0].values()[0], 1, "state must reset on reprogram");
    }

    #[test]
    fn condition_stats_track_short_circuit_evaluation() {
        let mut b = OpBlock::new(BlockId(9));
        b.reprogram(BlockProgram::Select {
            conditions: vec![
                BoundCondition { field: 0, op: CmpOp::Gt, value: 50 }, // rarely true
                BoundCondition { field: 1, op: CmpOp::Gt, value: 0 },  // always true
            ],
        });
        for v in 0..100u64 {
            b.process(Port::Left, rec(&[v, 1]));
        }
        let stats = b.condition_stats();
        assert_eq!(stats[0], (100, 49)); // 51..=99 pass
        // Second condition only evaluated when the first passed.
        assert_eq!(stats[1], (49, 49));
    }

    #[test]
    fn reoptimize_orders_cheapest_filter_first() {
        let mut b = OpBlock::new(BlockId(10));
        // Condition order is pessimal: the always-true one first.
        b.reprogram(BlockProgram::Select {
            conditions: vec![
                BoundCondition { field: 1, op: CmpOp::Gt, value: 0 },  // pass rate ~1
                BoundCondition { field: 0, op: CmpOp::Gt, value: 90 }, // pass rate ~0.09
            ],
        });
        for v in 0..100u64 {
            b.process(Port::Left, rec(&[v, 1]));
        }
        let before: u64 = b.condition_stats().iter().map(|s| s.0).sum();
        assert_eq!(before, 200, "pessimal order evaluates both every time");
        assert!(b.reoptimize_select());
        // Same semantics, fewer evaluations.
        let mut passed = 0;
        for v in 0..100u64 {
            passed += b.process(Port::Left, rec(&[v, 1])).len();
        }
        assert_eq!(passed, 9);
        let after: u64 = b.condition_stats().iter().map(|s| s.0).sum();
        assert!(after < 120, "selective filter first: {after} evaluations");
        // Already-optimal order reports no change.
        assert!(!b.reoptimize_select());
    }

    #[test]
    fn reoptimize_is_a_noop_for_non_select_programs() {
        let mut b = OpBlock::new(BlockId(11));
        b.reprogram(BlockProgram::Passthrough);
        assert!(!b.reoptimize_select());
    }

    #[test]
    fn mnemonics_cover_all_programs() {
        assert_eq!(BlockProgram::Idle.mnemonic(), "idle");
        assert_eq!(BlockProgram::Passthrough.mnemonic(), "pass");
        assert_eq!(
            BlockProgram::Select { conditions: vec![] }.mnemonic(),
            "select"
        );
        assert_eq!(BlockProgram::Project { fields: vec![] }.mnemonic(), "project");
        assert_eq!(
            BlockProgram::Join { key_left: 0, key_right: 0, window: 1 }.mnemonic(),
            "join"
        );
    }
}
