//! Heterogeneous operator placement — the paper's open problem #5: "How
//! do we extend query execution on hardware to co-placement and/or
//! co-processor designs by distributing and orchestrating query execution
//! over heterogeneous hardware … such as CPUs, FPGAs, and GPUs?"
//!
//! A [`SiteProfile`] characterizes one execution site (per-operator
//! throughput, per-tuple latency, and the cost of crossing onto/off the
//! site, e.g. a PCIe hop). [`place`] assigns each pipeline operator to a
//! site by dynamic programming over the operator chain, minimizing
//! end-to-end latency or maximizing the bottleneck throughput. The result
//! maps back onto the landscape taxonomy: all operators on one
//! accelerator is the *standalone* model, a mix is *co-processor*.

use std::fmt;

use crate::landscape::SystemModel;
use crate::plan::{Plan, PlanOp};

/// Kind of execution site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// General-purpose processor.
    Cpu,
    /// FPGA fabric.
    Fpga,
    /// GPU.
    Gpu,
}

/// Performance profile of one execution site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteProfile {
    /// Human-readable name.
    pub name: String,
    /// Site kind.
    pub kind: SiteKind,
    /// Throughput for a selection/projection operator (tuples/s).
    pub filter_tps: f64,
    /// Throughput for a windowed join, per 1k window tuples (tuples/s) —
    /// larger windows scale it down linearly.
    pub join_tps_per_1k_window: f64,
    /// Throughput for a windowed aggregate (tuples/s).
    pub aggregate_tps: f64,
    /// Per-tuple processing latency on this site (µs).
    pub tuple_latency_us: f64,
    /// One-way transfer latency onto/off this site (µs); zero for the
    /// host CPU.
    pub transfer_latency_us: f64,
}

impl SiteProfile {
    /// Throughput of `op` on this site (tuples/s).
    pub fn op_throughput(&self, op: &PlanOp) -> f64 {
        match op {
            PlanOp::Select { .. } | PlanOp::SelectTable { .. } | PlanOp::Project { .. } => {
                self.filter_tps
            }
            PlanOp::Aggregate { .. } => self.aggregate_tps,
            PlanOp::Join { window, .. } => {
                self.join_tps_per_1k_window / (*window as f64 / 1_000.0).max(1e-3)
            }
        }
    }
}

/// Reference profiles, order-of-magnitude calibrated from this
/// reproduction's own measurements (software SplitJoin for the CPU, the
/// cycle-accurate uni-flow design for the FPGA) and a synthetic GPU with
/// high throughput but batch-transfer latency.
pub fn default_sites() -> Vec<SiteProfile> {
    vec![
        SiteProfile {
            name: "host CPU".into(),
            kind: SiteKind::Cpu,
            filter_tps: 50e6,
            join_tps_per_1k_window: 1.5e6,
            aggregate_tps: 30e6,
            tuple_latency_us: 1.0,
            transfer_latency_us: 0.0,
        },
        SiteProfile {
            name: "FPGA (uni-flow fabric)".into(),
            kind: SiteKind::Fpga,
            filter_tps: 300e6,
            join_tps_per_1k_window: 150e6,
            aggregate_tps: 300e6,
            tuple_latency_us: 5.0,
            transfer_latency_us: 2.0,
        },
        SiteProfile {
            name: "GPU".into(),
            kind: SiteKind::Gpu,
            filter_tps: 1_000e6,
            join_tps_per_1k_window: 40e6,
            aggregate_tps: 800e6,
            tuple_latency_us: 50.0,
            transfer_latency_us: 30.0,
        },
    ]
}

/// Optimization objective for [`place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize end-to-end per-tuple latency (transfers included).
    MinLatency,
    /// Maximize the pipeline's bottleneck throughput (latency as the
    /// tie-breaker).
    MaxThroughput,
}

/// A placement decision for one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Site index (into the input slice) per pipeline operator.
    pub sites: Vec<usize>,
    /// Estimated bottleneck throughput (tuples/s).
    pub throughput_tps: f64,
    /// Estimated end-to-end per-tuple latency (µs).
    pub latency_us: f64,
}

impl Placement {
    /// The landscape system model this placement realizes: everything on
    /// one accelerator is *standalone*; everything on the CPU is also
    /// standalone (software); a mix is the *co-processor* model.
    pub fn system_model(&self, sites: &[SiteProfile]) -> SystemModel {
        let kinds: Vec<SiteKind> = self.sites.iter().map(|&i| sites[i].kind).collect();
        let all_same = kinds.windows(2).all(|w| w[0] == w[1]);
        if all_same {
            SystemModel::Standalone
        } else {
            SystemModel::CoProcessor
        }
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sites {:?}: {:.2} M tuples/s, {:.1} us latency",
            self.sites,
            self.throughput_tps / 1e6,
            self.latency_us
        )
    }
}

/// Places each operator of `plan` on one of `sites`.
///
/// Dynamic programming over the operator chain: the state is (operator,
/// site); moving between sites pays both sites' transfer latencies. For
/// [`Objective::MaxThroughput`] the score is lexicographic:
/// bottleneck throughput first, latency second.
///
/// # Panics
///
/// Panics if `sites` is empty.
pub fn place(plan: &Plan, sites: &[SiteProfile], objective: Objective) -> Placement {
    assert!(!sites.is_empty(), "need at least one execution site");
    let ops: Vec<&PlanOp> = plan.ops.iter().collect();
    if ops.is_empty() {
        // A pass-through plan runs wherever ingest is cheapest: the host.
        return Placement {
            sites: vec![],
            throughput_tps: f64::INFINITY,
            latency_us: 0.0,
        };
    }

    // dp[s] = best (throughput, latency, path) ending with ops[i] on s.
    #[derive(Clone)]
    struct State {
        throughput: f64,
        latency: f64,
        path: Vec<usize>,
    }
    let better = |a: &State, b: &State| -> bool {
        match objective {
            Objective::MinLatency => a.latency < b.latency,
            Objective::MaxThroughput => {
                a.throughput > b.throughput
                    || (a.throughput == b.throughput && a.latency < b.latency)
            }
        }
    };

    let mut dp: Vec<State> = sites
        .iter()
        .enumerate()
        .map(|(s, p)| State {
            throughput: p.op_throughput(ops[0]),
            // Entering the first site from the data source.
            latency: p.transfer_latency_us + p.tuple_latency_us,
            path: vec![s],
        })
        .collect();

    for op in ops.iter().skip(1) {
        let mut next: Vec<Option<State>> = vec![None; sites.len()];
        for (s, profile) in sites.iter().enumerate() {
            for (prev_s, prev) in dp.iter().enumerate() {
                let hop = if prev_s == s {
                    0.0
                } else {
                    sites[prev_s].transfer_latency_us + profile.transfer_latency_us
                };
                let mut path = prev.path.clone();
                path.push(s);
                let cand = State {
                    throughput: prev.throughput.min(profile.op_throughput(op)),
                    latency: prev.latency + hop + profile.tuple_latency_us,
                    path,
                };
                if next[s].as_ref().is_none_or(|cur| better(&cand, cur)) {
                    next[s] = Some(cand);
                }
            }
        }
        dp = next.into_iter().map(|s| s.expect("filled")).collect();
    }

    let best = dp
        .into_iter()
        .reduce(|a, b| if better(&b, &a) { b } else { a })
        .expect("non-empty sites");
    Placement {
        sites: best.path,
        throughput_tps: best.throughput,
        latency_us: best.latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{bind, Catalog};
    use crate::query::Query;
    use streamcore::{Field, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "customers",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("age", 8).unwrap(),
            ])
            .unwrap(),
        );
        c.register(
            "products",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("price", 32).unwrap(),
            ])
            .unwrap(),
        );
        c
    }

    fn plan_of(text: &str) -> Plan {
        bind(&Query::parse(text).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn big_window_joins_prefer_the_fpga_for_throughput() {
        let plan = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 262144",
        );
        let sites = default_sites();
        let p = place(&plan, &sites, Objective::MaxThroughput);
        let join_site = sites[p.sites[1]].kind;
        assert_eq!(join_site, SiteKind::Fpga, "{p}");
        assert!(p.throughput_tps > 100e3);
    }

    #[test]
    fn latency_objective_avoids_expensive_hops() {
        let plan = plan_of("SELECT age FROM customers WHERE age > 25");
        let sites = default_sites();
        let p = place(&plan, &sites, Objective::MinLatency);
        // Two cheap filters: the host CPU wins (no transfer, 1 µs/op).
        assert!(p.sites.iter().all(|&s| sites[s].kind == SiteKind::Cpu), "{p}");
        assert!(p.latency_us <= 2.0 + 1e-9);
        assert_eq!(p.system_model(&sites), crate::landscape::SystemModel::Standalone);
    }

    #[test]
    fn mixed_placement_is_the_coprocessor_model() {
        // Force a mix: a site that is unbeatable for joins but terrible
        // for filters, plus a host.
        let sites = vec![
            SiteProfile {
                name: "host".into(),
                kind: SiteKind::Cpu,
                filter_tps: 100e6,
                join_tps_per_1k_window: 1e3,
                aggregate_tps: 100e6,
                tuple_latency_us: 1.0,
                transfer_latency_us: 0.0,
            },
            SiteProfile {
                name: "join engine".into(),
                kind: SiteKind::Fpga,
                filter_tps: 1e3,
                join_tps_per_1k_window: 500e6,
                aggregate_tps: 1e3,
                tuple_latency_us: 2.0,
                transfer_latency_us: 1.0,
            },
        ];
        let plan = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 8192",
        );
        let p = place(&plan, &sites, Objective::MaxThroughput);
        assert_eq!(p.sites, vec![0, 1]);
        assert_eq!(p.system_model(&sites), crate::landscape::SystemModel::CoProcessor);
        // Latency = host op (1) + hop onto the engine (0 + 1) + join (2).
        assert!((p.latency_us - 4.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn single_site_placement_is_trivially_consistent() {
        let plan = plan_of("SELECT * FROM customers WHERE age > 25");
        let sites = vec![default_sites().remove(0)];
        let p = place(&plan, &sites, Objective::MaxThroughput);
        assert_eq!(p.sites, vec![0]);
    }

    #[test]
    fn passthrough_plan_needs_no_placement() {
        let plan = plan_of("SELECT * FROM customers");
        let p = place(&plan, &default_sites(), Objective::MinLatency);
        assert!(p.sites.is_empty());
        assert_eq!(p.latency_us, 0.0);
    }

    #[test]
    fn aggregate_ops_use_the_aggregate_throughput() {
        let plan = plan_of("SELECT SUM(age) FROM customers WINDOW 64");
        let sites = default_sites();
        let p = place(&plan, &sites, Objective::MaxThroughput);
        // GPU has the highest aggregate throughput.
        assert_eq!(sites[p.sites[0]].kind, SiteKind::Gpu, "{p}");
    }
}
