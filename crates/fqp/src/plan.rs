//! Logical query plans: queries bound against stream schemas.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use streamcore::{Field, Schema};

use crate::query::{AggFunc, CmpOp, Condition, Projection, Query, WindowKind};

/// Registry of stream schemas known to the planner.
///
/// # Example
///
/// ```
/// use fqp::plan::Catalog;
/// use streamcore::{Field, Schema};
///
/// let mut catalog = Catalog::new();
/// catalog.register(
///     "trades",
///     Schema::new(vec![Field::new("symbol", 32)?, Field::new("price", 32)?])?,
/// );
/// assert!(catalog.schema("trades").is_some());
/// # Ok::<(), streamcore::SchemaError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    streams: BTreeMap<String, Schema>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a stream schema.
    pub fn register(&mut self, stream: impl Into<String>, schema: Schema) {
        self.streams.insert(stream.into().to_ascii_lowercase(), schema);
    }

    /// Registers a stream from a compact spec string:
    /// `name=field:width[,field:width...]` — the format the `accel` CLI
    /// accepts.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed piece.
    ///
    /// ```
    /// use fqp::plan::Catalog;
    ///
    /// let mut catalog = Catalog::new();
    /// catalog.register_spec("trades=symbol:32,price:32")?;
    /// assert_eq!(catalog.schema("trades").unwrap().arity(), 2);
    /// # Ok::<(), String>(())
    /// ```
    pub fn register_spec(&mut self, spec: &str) -> Result<(), String> {
        let (stream, fields) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad schema spec {spec:?} (want name=field:width,...)"))?;
        if stream.is_empty() {
            return Err(format!("bad schema spec {spec:?}: empty stream name"));
        }
        let mut parsed = Vec::new();
        for f in fields.split(',') {
            let (name, width) = f
                .split_once(':')
                .ok_or_else(|| format!("bad field spec {f:?} (want name:width)"))?;
            let width: u8 = width
                .parse()
                .map_err(|_| format!("bad field width in {f:?}"))?;
            parsed.push(Field::new(name, width).map_err(|e| e.to_string())?);
        }
        let schema = Schema::new(parsed).map_err(|e| e.to_string())?;
        self.register(stream, schema);
        Ok(())
    }

    /// Looks up a stream schema.
    pub fn schema(&self, stream: &str) -> Option<&Schema> {
        self.streams.get(&stream.to_ascii_lowercase())
    }

    /// Registered stream names, sorted.
    pub fn streams(&self) -> Vec<&str> {
        self.streams.keys().map(String::as_str).collect()
    }
}

/// A selection condition bound to a field index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoundCondition {
    /// Index into the record.
    pub field: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal operand.
    pub value: u64,
}

impl BoundCondition {
    /// Evaluates the condition on a record's field values.
    pub fn eval(&self, values: &[u64]) -> bool {
        values
            .get(self.field)
            .is_some_and(|&v| self.op.eval(v, self.value))
    }
}

/// One operator of a bound plan, in pipeline order.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Filter on a conjunction of bound conditions (applies to the
    /// primary stream).
    Select {
        /// The conjunction.
        conditions: Vec<BoundCondition>,
    },
    /// Filter on an arbitrary Boolean expression, compiled Ibex-style at
    /// planning time: the atoms are evaluated in parallel and the
    /// precomputed truth table decides — "precomputation of a truth table
    /// for Boolean expressions in software first" (paper, Section II).
    SelectTable {
        /// Atomic comparisons, in truth-table bit order.
        atoms: Vec<BoundCondition>,
        /// `2^atoms.len()` outcomes, indexed by the atom-result bitmask
        /// (atom `i` contributes bit `i`).
        table: Vec<bool>,
    },
    /// Windowed equi-join with the secondary stream.
    Join {
        /// Key index in the primary stream's records.
        key_left: usize,
        /// Key index in the secondary stream's records.
        key_right: usize,
        /// Per-stream window size.
        window: usize,
    },
    /// Keep only the listed output-record fields.
    Project {
        /// Indices into the (possibly joined) output record.
        fields: Vec<usize>,
    },
    /// Windowed aggregate over the primary stream: sliding windows emit
    /// one running value per input record, tumbling windows one value per
    /// full window.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// Aggregated field index (`None` for `COUNT`).
        field: Option<usize>,
        /// Window size.
        window: usize,
        /// Sliding or tumbling advancement.
        kind: WindowKind,
    },
}

/// A query bound against the catalog: the operator pipeline plus schemas.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The source query.
    pub query: Query,
    /// Primary stream name.
    pub primary: String,
    /// Secondary stream name (joins only).
    pub secondary: Option<String>,
    /// Operators in pipeline order: Select? → Join? → Project?.
    pub ops: Vec<PlanOp>,
    /// Schema of the records this plan emits.
    pub output_schema: Schema,
}

impl Plan {
    /// Number of operator blocks this plan occupies on a fabric.
    pub fn block_count(&self) -> usize {
        self.ops.len().max(1)
    }

    /// An `EXPLAIN`-style rendering of the bound pipeline.
    ///
    /// ```
    /// # use fqp::plan::{bind, Catalog};
    /// # use fqp::query::Query;
    /// # use streamcore::{Field, Schema};
    /// # let mut catalog = Catalog::new();
    /// # catalog.register("s", Schema::new(vec![Field::new("v", 32).unwrap()]).unwrap());
    /// let plan = bind(&Query::parse("SELECT * FROM s WHERE v > 9").unwrap(), &catalog).unwrap();
    /// let text = plan.explain();
    /// assert!(text.contains("Source: s"));
    /// assert!(text.contains("Select"));
    /// ```
    pub fn explain(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "Plan: {}", self.query);
        let _ = writeln!(out, "  Source: {}", self.primary);
        for op in &self.ops {
            match op {
                PlanOp::Select { conditions } => {
                    let named: Vec<String> = self
                        .query
                        .conditions
                        .iter()
                        .map(|c| c.to_string())
                        .collect();
                    let _ = writeln!(
                        out,
                        "  -> Select [{}] ({} bound condition(s))",
                        named.join(" AND "),
                        conditions.len()
                    );
                }
                PlanOp::SelectTable { atoms, table } => {
                    let expr = self
                        .query
                        .where_expr
                        .as_ref()
                        .expect("table op implies a boolean clause");
                    let _ = writeln!(
                        out,
                        "  -> Select [{expr}] (truth table: {} atoms, {} entries)",
                        atoms.len(),
                        table.len()
                    );
                }
                PlanOp::Join { window, .. } => {
                    let j = self.query.join.as_ref().expect("join op implies clause");
                    let _ = writeln!(
                        out,
                        "  -> Join {} ON {} WINDOW {window}",
                        j.stream, j.on
                    );
                }
                PlanOp::Project { .. } => {
                    // The projection defines the output schema, in order.
                    let names: Vec<&str> = self
                        .output_schema
                        .fields()
                        .iter()
                        .map(streamcore::Field::name)
                        .collect();
                    let _ = writeln!(out, "  -> Project [{}]", names.join(", "));
                }
                PlanOp::Aggregate { func, window, .. } => {
                    let a = self
                        .query
                        .aggregate
                        .as_ref()
                        .expect("aggregate op implies clause");
                    let _ = writeln!(
                        out,
                        "  -> Aggregate {func:?}({}) WINDOW {window}",
                        a.field.as_deref().unwrap_or("*")
                    );
                }
            }
        }
        let fields: Vec<String> = self
            .output_schema
            .fields()
            .iter()
            .map(|f| format!("{}:{}", f.name(), f.width_bits()))
            .collect();
        let _ = writeln!(out, "  Output: ({})", fields.join(", "));
        out
    }
}

/// Errors produced while binding a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// `FROM`/`JOIN` names a stream the catalog does not know.
    UnknownStream {
        /// The missing stream.
        stream: String,
    },
    /// A condition, join key, or projection names an unknown field.
    UnknownField {
        /// The missing field.
        field: String,
        /// The stream or record it was resolved against.
        context: String,
    },
    /// A Boolean `WHERE` clause has too many atomic comparisons for a
    /// precomputed truth table (the hardware stores `2^atoms` bits).
    TooManyAtoms {
        /// Atoms in the expression.
        atoms: usize,
        /// The supported maximum.
        max: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownStream { stream } => write!(f, "unknown stream {stream:?}"),
            PlanError::UnknownField { field, context } => {
                write!(f, "unknown field {field:?} in {context}")
            }
            PlanError::TooManyAtoms { atoms, max } => {
                write!(
                    f,
                    "boolean WHERE clause has {atoms} comparisons; truth tables \
                     support at most {max}"
                )
            }
        }
    }
}

/// Largest atom count a precomputed truth table supports (64 Ki entries).
pub const MAX_TRUTH_TABLE_ATOMS: usize = 16;

impl Error for PlanError {}

/// Binds `query` against `catalog`, producing an executable plan.
///
/// # Errors
///
/// Returns [`PlanError`] when a stream or field cannot be resolved.
pub fn bind(query: &Query, catalog: &Catalog) -> Result<Plan, PlanError> {
    let primary_schema = catalog
        .schema(&query.from)
        .ok_or_else(|| PlanError::UnknownStream {
            stream: query.from.clone(),
        })?;

    let mut ops = Vec::new();

    // Selection binds against the primary stream: plain conjunctions map
    // to a Select block; general Boolean clauses are compiled to a
    // precomputed truth table over their bound atoms.
    if !query.conditions.is_empty() {
        let mut bound = Vec::with_capacity(query.conditions.len());
        for c in &query.conditions {
            bound.push(bind_condition(c, primary_schema, &query.from)?);
        }
        ops.push(PlanOp::Select { conditions: bound });
    } else if let Some(expr) = &query.where_expr {
        let atom_refs = expr.atoms();
        if atom_refs.len() > MAX_TRUTH_TABLE_ATOMS {
            return Err(PlanError::TooManyAtoms {
                atoms: atom_refs.len(),
                max: MAX_TRUTH_TABLE_ATOMS,
            });
        }
        let mut atoms = Vec::with_capacity(atom_refs.len());
        for c in &atom_refs {
            atoms.push(bind_condition(c, primary_schema, &query.from)?);
        }
        // Software-side precomputation: enumerate every atom-outcome
        // combination once, at planning time.
        let n = atoms.len();
        let mut table = Vec::with_capacity(1 << n);
        for mask in 0u32..(1 << n) {
            let outcomes: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            table.push(expr.eval_with(&outcomes));
        }
        ops.push(PlanOp::SelectTable { atoms, table });
    }

    // Join: output record = primary fields ++ secondary fields, secondary
    // names suffixed on collision.
    let mut output_fields: Vec<Field> = primary_schema.fields().to_vec();
    let mut secondary = None;
    if let Some(j) = &query.join {
        let secondary_schema =
            catalog
                .schema(&j.stream)
                .ok_or_else(|| PlanError::UnknownStream {
                    stream: j.stream.clone(),
                })?;
        let key_left =
            primary_schema
                .index_of(&j.on)
                .ok_or_else(|| PlanError::UnknownField {
                    field: j.on.clone(),
                    context: query.from.clone(),
                })?;
        let key_right =
            secondary_schema
                .index_of(&j.on)
                .ok_or_else(|| PlanError::UnknownField {
                    field: j.on.clone(),
                    context: j.stream.clone(),
                })?;
        ops.push(PlanOp::Join {
            key_left,
            key_right,
            window: j.window,
        });
        for f in secondary_schema.fields() {
            let name = if output_fields.iter().any(|g| g.name() == f.name()) {
                format!("{}_{}", j.stream, f.name())
            } else {
                f.name().to_string()
            };
            output_fields.push(
                Field::new(name, f.width_bits()).expect("source width already valid"),
            );
        }
        secondary = Some(j.stream.clone());
    }

    // Aggregates replace the projection entirely (parser guarantees no
    // join alongside).
    if let Some(a) = &query.aggregate {
        let field = match &a.field {
            Some(name) => Some(primary_schema.index_of(name).ok_or_else(|| {
                PlanError::UnknownField {
                    field: name.clone(),
                    context: query.from.clone(),
                }
            })?),
            None => None,
        };
        ops.push(PlanOp::Aggregate {
            func: a.func,
            field,
            window: a.window,
            kind: a.kind,
        });
        let out_name = match &a.field {
            Some(f) => format!("{}_{}", a.func.to_string().to_ascii_lowercase(), f),
            None => "count".to_string(),
        };
        let output_schema =
            Schema::new(vec![Field::new(out_name, 64).expect("valid width")])
                .expect("one field");
        return Ok(Plan {
            query: query.clone(),
            primary: query.from.clone(),
            secondary: None,
            ops,
            output_schema,
        });
    }

    let joined_schema = Schema::new(output_fields).expect("at least one field");

    // Projection binds against the joined record.
    let output_schema = match &query.select {
        Projection::All => joined_schema,
        Projection::Fields(names) => {
            let mut idx = Vec::with_capacity(names.len());
            let mut fields = Vec::with_capacity(names.len());
            for n in names {
                let i = joined_schema
                    .index_of(n)
                    .ok_or_else(|| PlanError::UnknownField {
                        field: n.clone(),
                        context: "query output".to_string(),
                    })?;
                idx.push(i);
                fields.push(joined_schema.fields()[i].clone());
            }
            ops.push(PlanOp::Project { fields: idx });
            Schema::new(fields).expect("non-empty projection")
        }
    };

    Ok(Plan {
        query: query.clone(),
        primary: query.from.clone(),
        secondary,
        ops,
        output_schema,
    })
}

fn bind_condition(
    c: &Condition,
    schema: &Schema,
    stream: &str,
) -> Result<BoundCondition, PlanError> {
    let field = schema
        .index_of(&c.field)
        .ok_or_else(|| PlanError::UnknownField {
            field: c.field.clone(),
            context: stream.to_string(),
        })?;
    Ok(BoundCondition {
        field,
        op: c.op,
        value: c.value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "customers",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("age", 8).unwrap(),
                Field::new("gender", 1).unwrap(),
            ])
            .unwrap(),
        );
        c.register(
            "products",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("price", 32).unwrap(),
            ])
            .unwrap(),
        );
        c
    }

    fn parse(text: &str) -> Query {
        Query::parse(text).unwrap()
    }

    #[test]
    fn binds_fig7_query_into_select_join_pipeline() {
        let q = parse(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 1536",
        );
        let plan = bind(&q, &demo_catalog()).unwrap();
        assert_eq!(plan.ops.len(), 2);
        assert!(matches!(plan.ops[0], PlanOp::Select { .. }));
        assert!(
            matches!(plan.ops[1], PlanOp::Join { key_left: 0, key_right: 0, window: 1536 })
        );
        // Output: customers fields + products fields, collision renamed.
        let names: Vec<&str> = plan
            .output_schema
            .fields()
            .iter()
            .map(|f| f.name())
            .collect();
        assert_eq!(
            names,
            vec!["product_id", "age", "gender", "products_product_id", "price"]
        );
        assert_eq!(plan.secondary.as_deref(), Some("products"));
    }

    #[test]
    fn projection_binds_against_joined_record() {
        let q = parse(
            "SELECT age, price FROM customers \
             JOIN products ON product_id WINDOW 8",
        );
        let plan = bind(&q, &demo_catalog()).unwrap();
        // No WHERE: ops are Join then Project.
        assert_eq!(plan.ops.len(), 2);
        match &plan.ops[1] {
            PlanOp::Project { fields } => assert_eq!(fields, &vec![1, 4]),
            other => panic!("expected projection, got {other:?}"),
        }
        assert_eq!(plan.output_schema.arity(), 2);
    }

    #[test]
    fn select_only_query_has_single_op() {
        let q = parse("SELECT * FROM customers WHERE age >= 30");
        let plan = bind(&q, &demo_catalog()).unwrap();
        assert_eq!(plan.ops.len(), 1);
        assert_eq!(plan.block_count(), 1);
        assert!(plan.secondary.is_none());
    }

    #[test]
    fn unknown_stream_and_field_are_reported() {
        let cat = demo_catalog();
        let e = bind(&parse("SELECT * FROM nope"), &cat).unwrap_err();
        assert!(matches!(e, PlanError::UnknownStream { .. }));
        let e = bind(&parse("SELECT * FROM customers WHERE height > 1"), &cat).unwrap_err();
        assert!(matches!(e, PlanError::UnknownField { .. }));
        let e = bind(
            &parse("SELECT nope FROM customers JOIN products ON product_id WINDOW 4"),
            &cat,
        )
        .unwrap_err();
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn bound_condition_evaluates_on_values() {
        let c = BoundCondition {
            field: 1,
            op: CmpOp::Gt,
            value: 25,
        };
        assert!(c.eval(&[0, 30]));
        assert!(!c.eval(&[0, 20]));
        assert!(!c.eval(&[0])); // missing field never matches
    }

    #[test]
    fn aggregate_plan_binds_field_and_names_output() {
        let q = parse("SELECT AVG(age) FROM customers WHERE gender = 1 WINDOW 32");
        let plan = bind(&q, &demo_catalog()).unwrap();
        assert_eq!(plan.ops.len(), 2);
        assert!(matches!(
            plan.ops[1],
            PlanOp::Aggregate { field: Some(1), window: 32, .. }
        ));
        assert_eq!(plan.output_schema.fields()[0].name(), "avg_age");
        assert!(plan.secondary.is_none());

        let q = parse("SELECT COUNT(*) FROM customers WINDOW 8");
        let plan = bind(&q, &demo_catalog()).unwrap();
        assert!(matches!(
            plan.ops[0],
            PlanOp::Aggregate { field: None, window: 8, .. }
        ));
        assert_eq!(plan.output_schema.fields()[0].name(), "count");
    }

    #[test]
    fn aggregate_over_unknown_field_is_reported() {
        let q = parse("SELECT SUM(height) FROM customers WINDOW 8");
        let e = bind(&q, &demo_catalog()).unwrap_err();
        assert!(matches!(e, PlanError::UnknownField { .. }));
    }

    #[test]
    fn explain_renders_the_whole_pipeline() {
        let q = parse(
            "SELECT age, price FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 1536",
        );
        let plan = bind(&q, &demo_catalog()).unwrap();
        let text = plan.explain();
        assert!(text.contains("Source: customers"), "{text}");
        assert!(text.contains("Select [age > 25]"), "{text}");
        assert!(text.contains("Join products ON product_id WINDOW 1536"), "{text}");
        assert!(text.contains("Project [age, price]"), "{text}");
        assert!(text.contains("Output: (age:8, price:32)"), "{text}");
    }

    #[test]
    fn explain_renders_aggregates() {
        let q = parse("SELECT SUM(age) FROM customers WINDOW 64");
        let plan = bind(&q, &demo_catalog()).unwrap();
        let text = plan.explain();
        assert!(text.contains("Aggregate Sum(age) WINDOW 64"), "{text}");
        assert!(text.contains("Output: (sum_age:64)"), "{text}");
    }

    #[test]
    fn boolean_where_compiles_to_a_truth_table() {
        let q = parse("SELECT * FROM customers WHERE age > 60 OR gender = 1");
        let plan = bind(&q, &demo_catalog()).unwrap();
        assert_eq!(plan.ops.len(), 1);
        let PlanOp::SelectTable { atoms, table } = &plan.ops[0] else {
            panic!("expected a truth-table select, got {:?}", plan.ops[0]);
        };
        assert_eq!(atoms.len(), 2);
        assert_eq!(table.len(), 4);
        // OR truth table: only the all-false mask rejects.
        assert_eq!(table, &vec![false, true, true, true]);
        assert!(plan.explain().contains("truth table: 2 atoms, 4 entries"));
    }

    #[test]
    fn truth_table_respects_negation_and_grouping() {
        let q = parse("SELECT * FROM customers WHERE NOT (age > 60 OR gender = 1)");
        let plan = bind(&q, &demo_catalog()).unwrap();
        let PlanOp::SelectTable { table, .. } = &plan.ops[0] else {
            panic!("expected a truth-table select");
        };
        assert_eq!(table, &vec![true, false, false, false]);
    }

    #[test]
    fn too_many_atoms_are_rejected() {
        let clause = (0..17)
            .map(|i| format!("age > {i}"))
            .collect::<Vec<_>>()
            .join(" OR ");
        let q = parse(&format!("SELECT * FROM customers WHERE {clause}"));
        let err = bind(&q, &demo_catalog()).unwrap_err();
        assert!(matches!(err, PlanError::TooManyAtoms { atoms: 17, max: 16 }));
        assert!(err.to_string().contains("17"));
    }

    #[test]
    fn register_spec_parses_and_rejects() {
        let mut c = Catalog::new();
        c.register_spec("trades=symbol:32,price:32,qty:16").unwrap();
        let s = c.schema("trades").unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("qty"), Some(2));
        assert_eq!(c.streams(), vec!["trades"]);

        for bad in [
            "nofields",
            "=a:8",
            "s=a",
            "s=a:zero",
            "s=a:99",
            "s=a:8,a:8", // duplicate field
        ] {
            assert!(Catalog::new().register_spec(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn pass_through_plan_occupies_one_block() {
        let q = parse("SELECT * FROM customers");
        let plan = bind(&q, &demo_catalog()).unwrap();
        assert!(plan.ops.is_empty());
        assert_eq!(plan.block_count(), 1);
    }
}
