//! Fabric provisioning — the paper's open problem #3: "What is the best
//! initial topology given a sample query workload and a set of
//! application requirements known a priori?"
//!
//! Given the query plans an application expects to run, [`provision`]
//! sizes the OP-Block pool (with and without inter-query sharing),
//! estimates the FPGA resources of the synthesized fabric, and checks the
//! estimate against a device.

use hwsim::{CapacityError, Device, Resources, Utilization};

use crate::opblock::OpBlock;
use crate::plan::{Plan, PlanOp};

/// Fixed interconnect/bridge overhead of the fabric itself.
const FABRIC_OVERHEAD: Resources = Resources { luts: 800, ffs: 600, bram18: 0 };

/// Per-block programmable-bridge cost (ports, instruction decoder).
const BRIDGE_PER_BLOCK: Resources = Resources { luts: 90, ffs: 120, bram18: 0 };

/// A provisioning recommendation for a query workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricSpec {
    /// OP-Blocks needed when every query is deployed independently.
    pub blocks_unshared: usize,
    /// OP-Blocks needed with prefix sharing (what [`crate::manager`]
    /// achieves).
    pub blocks_shared: usize,
    /// Estimated resources of the shared-size fabric.
    pub resources: Resources,
    /// Utilization on the target device.
    pub utilization: Utilization,
}

impl FabricSpec {
    /// Blocks saved by sharing-aware deployment.
    pub fn blocks_saved(&self) -> usize {
        self.blocks_unshared - self.blocks_shared
    }
}

/// Block count with the prefix-sharing rule of
/// [`crate::manager::QueryManager`]: two plans share a pipeline prefix if
/// they read the same primary stream and their leading operators are
/// identical (joins additionally requiring the same secondary stream).
pub fn shared_block_count(plans: &[Plan]) -> usize {
    // Count distinct prefixes across all plans: each unique (primary,
    // secondary-if-join, ops[..=i]) prefix costs one block.
    let mut prefixes: Vec<(String, Option<String>, Vec<String>)> = Vec::new();
    let mut blocks = 0;
    for plan in plans {
        let ops: Vec<String> = if plan.ops.is_empty() {
            vec!["pass".to_string()]
        } else {
            plan.ops.iter().map(op_signature).collect()
        };
        for i in 0..ops.len() {
            let needs_secondary = matches!(plan.ops.get(i), Some(PlanOp::Join { .. }));
            let key = (
                plan.primary.clone(),
                if needs_secondary {
                    plan.secondary.clone()
                } else {
                    None
                },
                ops[..=i].to_vec(),
            );
            if !prefixes.contains(&key) {
                prefixes.push(key);
                blocks += 1;
            }
        }
    }
    blocks
}

fn op_signature(op: &PlanOp) -> String {
    format!("{op:?}")
}

/// Resource estimate for one plan's blocks, with `record_bits`-wide
/// records in the join/aggregate windows.
fn plan_resources(plan: &Plan, record_bits: u64) -> Resources {
    if plan.ops.is_empty() {
        return OpBlock::resource_cost(0, record_bits);
    }
    plan.ops
        .iter()
        .map(|op| {
            let window = match op {
                PlanOp::Join { window, .. } | PlanOp::Aggregate { window, .. } => *window,
                PlanOp::Select { .. }
                | PlanOp::SelectTable { .. }
                | PlanOp::Project { .. } => 0,
            };
            OpBlock::resource_cost(window, record_bits)
        })
        .sum()
}

/// Sizes a fabric for `plans` and checks it against `device`.
///
/// # Errors
///
/// Returns a [`CapacityError`] when even the shared-size fabric exceeds
/// the device.
///
/// # Example
///
/// ```
/// use fqp::plan::{bind, Catalog};
/// use fqp::provision::provision;
/// use fqp::query::Query;
/// use hwsim::devices;
/// use streamcore::{Field, Schema};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut catalog = Catalog::new();
/// catalog.register(
///     "readings",
///     Schema::new(vec![Field::new("sensor", 32)?, Field::new("value", 32)?])?,
/// );
/// let plan = bind(&Query::parse("SELECT * FROM readings WHERE value > 1")?, &catalog)?;
/// let spec = provision(&[plan], 64, &devices::XC7VX485T)?;
/// assert_eq!(spec.blocks_shared, 1);
/// assert!(spec.utilization.fits());
/// # Ok(())
/// # }
/// ```
pub fn provision(
    plans: &[Plan],
    record_bits: u64,
    device: &Device,
) -> Result<FabricSpec, CapacityError> {
    let blocks_unshared: usize = plans.iter().map(Plan::block_count).sum();
    let blocks_shared = shared_block_count(plans);

    // Resources of the shared fabric: sum per-plan block costs, then
    // subtract nothing — the shared estimate conservatively keeps each
    // unique prefix's cost once. We approximate by scaling the unshared
    // total by the sharing ratio; window-heavy blocks dominate either way.
    let unshared_total: Resources = plans
        .iter()
        .map(|p| plan_resources(p, record_bits))
        .sum();
    let scale = |v: u64| -> u64 {
        if blocks_unshared == 0 {
            0
        } else {
            v * blocks_shared as u64 / blocks_unshared as u64
        }
    };
    let resources = Resources {
        luts: scale(unshared_total.luts),
        ffs: scale(unshared_total.ffs),
        bram18: scale(unshared_total.bram18),
    } + BRIDGE_PER_BLOCK * blocks_shared as u64
        + FABRIC_OVERHEAD;
    resources.check_fits(device)?;
    Ok(FabricSpec {
        blocks_unshared,
        blocks_shared,
        resources,
        utilization: Utilization::new(resources, device),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{bind, Catalog};
    use crate::query::Query;
    use hwsim::devices::{XC5VLX50T, XC7VX485T};
    use streamcore::{Field, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "customers",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("age", 8).unwrap(),
            ])
            .unwrap(),
        );
        c.register(
            "products",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("price", 32).unwrap(),
            ])
            .unwrap(),
        );
        c
    }

    fn plan_of(text: &str) -> Plan {
        bind(&Query::parse(text).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn sharing_counts_match_the_query_manager_examples() {
        let q1 = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 1536",
        );
        let q2 = plan_of(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 2048",
        );
        assert_eq!(shared_block_count(std::slice::from_ref(&q1)), 2);
        assert_eq!(shared_block_count(&[q1.clone(), q2.clone()]), 3);
        assert_eq!(shared_block_count(&[q1.clone(), q1.clone()]), 2);

        let spec = provision(&[q1, q2], 64, &XC7VX485T).unwrap();
        assert_eq!(spec.blocks_unshared, 4);
        assert_eq!(spec.blocks_shared, 3);
        assert_eq!(spec.blocks_saved(), 1);
    }

    #[test]
    fn window_size_drives_resources() {
        let small = plan_of("SELECT * FROM customers JOIN products ON product_id WINDOW 64");
        let large =
            plan_of("SELECT * FROM customers JOIN products ON product_id WINDOW 16384");
        let s = provision(std::slice::from_ref(&small), 64, &XC7VX485T).unwrap();
        let l = provision(std::slice::from_ref(&large), 64, &XC7VX485T).unwrap();
        assert!(l.resources.bram18 > s.resources.bram18);
    }

    #[test]
    fn oversized_workload_is_rejected_by_small_device() {
        // Many big-window joins cannot fit the Virtex-5.
        let plans: Vec<Plan> = (0..24)
            .map(|i| {
                plan_of(&format!(
                    "SELECT * FROM customers WHERE age > {i} \
                     JOIN products ON product_id WINDOW 8192"
                ))
            })
            .collect();
        assert!(provision(&plans, 64, &XC5VLX50T).is_err());
        assert!(provision(&plans, 64, &XC7VX485T).is_ok());
    }

    #[test]
    fn empty_workload_is_trivially_provisioned() {
        let spec = provision(&[], 64, &XC5VLX50T).unwrap();
        assert_eq!(spec.blocks_shared, 0);
        assert_eq!(spec.blocks_unshared, 0);
        assert!(spec.utilization.fits());
    }

    #[test]
    fn passthrough_plans_count_one_block_each_stream() {
        let p1 = plan_of("SELECT * FROM customers");
        let p2 = plan_of("SELECT * FROM products");
        assert_eq!(shared_block_count(&[p1.clone(), p2]), 2);
        assert_eq!(shared_block_count(&[p1.clone(), p1]), 1);
    }
}
