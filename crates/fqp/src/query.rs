//! Continuous queries: AST and a small SQL-like parser.
//!
//! FQP consumes declarative queries and maps them onto the fabric at
//! runtime. The dialect covers what the paper's examples need (selection,
//! projection, windowed equi-join — Fig. 7):
//!
//! ```text
//! SELECT <field, ...|*> FROM <stream>
//!   [WHERE <field> <op> <value> [AND ...]]
//!   [JOIN <stream> ON <field> WINDOW <n>]
//! ```
//!
//! # Example
//!
//! ```
//! use fqp::query::Query;
//!
//! let q = Query::parse(
//!     "SELECT * FROM customers WHERE age > 25 JOIN products ON product_id WINDOW 1536",
//! )?;
//! assert_eq!(q.from, "customers");
//! assert_eq!(q.join.as_ref().unwrap().window, 1536);
//! # Ok::<(), fqp::query::ParseError>(())
//! ```

use std::error::Error;
use std::fmt;

/// Comparison operators usable in `WHERE` conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates `lhs op rhs`.
    pub fn eval(&self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One atomic comparison: `field op literal`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Condition {
    /// Field name (resolved against the stream schema at planning time).
    pub field: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal operand.
    pub value: u64,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.field, self.op, self.value)
    }
}

/// An arbitrary Boolean `WHERE` expression over atomic comparisons.
///
/// Pure conjunctions take the fast path through [`Query::conditions`];
/// anything with `OR`/`NOT`/parentheses lands here and is compiled to an
/// Ibex-style precomputed truth table at planning time ("precomputation
/// of a truth table for Boolean expressions in software first", the
/// paper's *Boolean formula precomputation* algorithmic pattern).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoolExpr {
    /// An atomic comparison.
    Atom(Condition),
    /// Conjunction of sub-expressions.
    And(Vec<BoolExpr>),
    /// Disjunction of sub-expressions.
    Or(Vec<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// The atomic conditions, in depth-first order (the order truth-table
    /// bits are assigned).
    pub fn atoms(&self) -> Vec<&Condition> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Condition>) {
        match self {
            BoolExpr::Atom(c) => out.push(c),
            BoolExpr::And(es) | BoolExpr::Or(es) => {
                for e in es {
                    e.collect_atoms(out);
                }
            }
            BoolExpr::Not(e) => e.collect_atoms(out),
        }
    }

    /// Evaluates the expression given per-atom outcomes in depth-first
    /// order. Used to precompute truth tables.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is shorter than the atom count.
    pub fn eval_with(&self, outcomes: &[bool]) -> bool {
        let mut idx = 0;
        self.eval_inner(outcomes, &mut idx)
    }

    fn eval_inner(&self, outcomes: &[bool], idx: &mut usize) -> bool {
        match self {
            BoolExpr::Atom(_) => {
                let v = outcomes[*idx];
                *idx += 1;
                v
            }
            BoolExpr::And(es) => {
                // No short-circuit: every atom consumes its slot, exactly
                // as the parallel hardware evaluation would.
                let mut all = true;
                for e in es {
                    all &= e.eval_inner(outcomes, idx);
                }
                all
            }
            BoolExpr::Or(es) => {
                let mut any = false;
                for e in es {
                    any |= e.eval_inner(outcomes, idx);
                }
                any
            }
            BoolExpr::Not(e) => !e.eval_inner(outcomes, idx),
        }
    }

    /// Flattens a pure conjunction of atoms, if that is what this is.
    pub fn as_conjunction(&self) -> Option<Vec<Condition>> {
        match self {
            BoolExpr::Atom(c) => Some(vec![c.clone()]),
            BoolExpr::And(es) => {
                let mut out = Vec::with_capacity(es.len());
                for e in es {
                    match e {
                        BoolExpr::Atom(c) => out.push(c.clone()),
                        _ => return None,
                    }
                }
                Some(out)
            }
            _ => None,
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Atom(c) => write!(f, "{c}"),
            BoolExpr::And(es) => {
                let parts: Vec<String> = es
                    .iter()
                    .map(|e| match e {
                        BoolExpr::Or(_) => format!("( {e} )"),
                        _ => e.to_string(),
                    })
                    .collect();
                write!(f, "{}", parts.join(" AND "))
            }
            BoolExpr::Or(es) => {
                let parts: Vec<String> = es.iter().map(|e| e.to_string()).collect();
                write!(f, "{}", parts.join(" OR "))
            }
            BoolExpr::Not(e) => match **e {
                BoolExpr::Atom(_) => write!(f, "NOT {e}"),
                _ => write!(f, "NOT ( {e} )"),
            },
        }
    }
}

/// The projection list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Projection {
    /// `SELECT *`
    All,
    /// `SELECT a, b, c`
    Fields(Vec<String>),
}

/// Windowed aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — tuples currently in the window.
    Count,
    /// `SUM(field)`.
    Sum,
    /// `MIN(field)`.
    Min,
    /// `MAX(field)`.
    Max,
    /// `AVG(field)` — integer average.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

/// How an aggregate's window advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// Slide by one: emit the running aggregate on every input.
    Sliding,
    /// Tumble: emit once per full window, then reset.
    Tumbling,
}

/// A windowed aggregate clause:
/// `SELECT SUM(field) FROM s … WINDOW n [TUMBLING]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggregateClause {
    /// The aggregate function.
    pub func: AggFunc,
    /// Aggregated field (`None` for `COUNT(*)`).
    pub field: Option<String>,
    /// Count-based window size.
    pub window: usize,
    /// Sliding (default) or tumbling advancement.
    pub kind: WindowKind,
}

/// A windowed equi-join clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinClause {
    /// The other stream.
    pub stream: String,
    /// Join key field (same name on both streams, as in the paper's
    /// "join over Product ID").
    pub on: String,
    /// Count-based sliding-window size (per stream).
    pub window: usize,
}

/// A parsed continuous query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// Projection list (ignored when `aggregate` is present).
    pub select: Projection,
    /// Primary input stream.
    pub from: String,
    /// Flat-conjunction `WHERE` clause (empty when absent or when the
    /// clause needs [`Query::where_expr`]).
    pub conditions: Vec<Condition>,
    /// General Boolean `WHERE` clause; `Some` exactly when the clause
    /// contains `OR`/`NOT`/grouping (then `conditions` is empty).
    pub where_expr: Option<BoolExpr>,
    /// Optional windowed join (mutually exclusive with `aggregate`).
    pub join: Option<JoinClause>,
    /// Optional windowed aggregate.
    pub aggregate: Option<AggregateClause>,
}

impl Query {
    /// Parses the FQP query dialect.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first offending token.
    pub fn parse(text: &str) -> Result<Query, ParseError> {
        Parser::new(text).query()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if let Some(a) = &self.aggregate {
            write!(f, "{}({})", a.func, a.field.as_deref().unwrap_or("*"))?;
        } else {
            match &self.select {
                Projection::All => write!(f, "*")?,
                Projection::Fields(fs) => write!(f, "{}", fs.join(", "))?,
            }
        }
        write!(f, " FROM {}", self.from)?;
        if let Some(expr) = &self.where_expr {
            write!(f, " WHERE {expr}")?;
        } else if !self.conditions.is_empty() {
            let conds: Vec<String> = self.conditions.iter().map(|c| c.to_string()).collect();
            write!(f, " WHERE {}", conds.join(" AND "))?;
        }
        if let Some(j) = &self.join {
            write!(f, " JOIN {} ON {} WINDOW {}", j.stream, j.on, j.window)?;
        }
        if let Some(a) = &self.aggregate {
            write!(f, " WINDOW {}", a.window)?;
            if a.kind == WindowKind::Tumbling {
                write!(f, " TUMBLING")?;
            }
        }
        Ok(())
    }
}

/// Error produced by [`Query::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser expected.
    pub expected: String,
    /// What it found instead (`<end>` at end of input).
    pub found: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {} but found {:?}", self.expected, self.found)
    }
}

impl Error for ParseError {}

struct Parser<'a> {
    tokens: Vec<&'a str>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        // Tokenize on whitespace; commas and parentheses become their own
        // tokens, except that aggregate heads like `COUNT(*)` stay whole.
        // Comparison operators are whitespace-separated or glued to their
        // operands.
        let mut tokens = Vec::new();
        for raw in text.split_whitespace() {
            if parse_agg_head(raw).is_some() {
                tokens.push(raw);
                continue;
            }
            let mut start = 0;
            for (i, c) in raw.char_indices() {
                if matches!(c, ',' | '(' | ')') {
                    if start < i {
                        tokens.push(&raw[start..i]);
                    }
                    tokens.push(&raw[i..i + 1]);
                    start = i + 1;
                }
            }
            if start < raw.len() {
                tokens.push(&raw[start..]);
            }
        }
        Self { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&'a str> {
        self.tokens.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<&'a str> {
        let t = self.peek();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: &str) -> ParseError {
        ParseError {
            expected: expected.to_string(),
            found: self.peek().unwrap_or("<end>").to_string(),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(&format!("keyword {kw}"))),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.eq_ignore_ascii_case(kw))
    }

    fn identifier(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(t)
                if t.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && t.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) =>
            {
                self.pos += 1;
                Ok(t.to_ascii_lowercase())
            }
            _ => Err(self.err(what)),
        }
    }

    fn number(&mut self, what: &str) -> Result<u64, ParseError> {
        match self.peek().and_then(|t| t.parse::<u64>().ok()) {
            Some(n) => {
                self.pos += 1;
                Ok(n)
            }
            None => Err(self.err(what)),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("SELECT")?;
        let agg_head = self.peek().and_then(parse_agg_head);
        let select = if agg_head.is_some() {
            self.pos += 1;
            Projection::All
        } else {
            self.projection()?
        };
        self.expect_kw("FROM")?;
        let from = self.identifier("stream name")?;
        let (conditions, where_expr) = if self.peek_kw("WHERE") {
            self.pos += 1;
            let expr = self.bool_expr()?;
            match expr.as_conjunction() {
                Some(conds) => (conds, None),
                None => (Vec::new(), Some(expr)),
            }
        } else {
            (Vec::new(), None)
        };
        let join = if self.peek_kw("JOIN") {
            if agg_head.is_some() {
                return Err(ParseError {
                    expected: "WINDOW clause (aggregates cannot be combined with JOIN)"
                        .to_string(),
                    found: "JOIN".to_string(),
                });
            }
            self.pos += 1;
            let stream = self.identifier("join stream name")?;
            self.expect_kw("ON")?;
            let on = self.identifier("join key field")?;
            self.expect_kw("WINDOW")?;
            let window = self.positive_window()?;
            Some(JoinClause { stream, on, window })
        } else {
            None
        };
        let aggregate = match agg_head {
            Some((func, field)) => {
                self.expect_kw("WINDOW")?;
                let window = self.positive_window()?;
                let kind = if self.peek_kw("TUMBLING") {
                    self.pos += 1;
                    WindowKind::Tumbling
                } else {
                    WindowKind::Sliding
                };
                Some(AggregateClause {
                    func,
                    field,
                    window,
                    kind,
                })
            }
            None => None,
        };
        if let Some(t) = self.peek() {
            return Err(ParseError {
                expected: "end of query".to_string(),
                found: t.to_string(),
            });
        }
        Ok(Query {
            select,
            from,
            conditions,
            where_expr,
            join,
            aggregate,
        })
    }

    /// `expr := term (OR term)*`
    fn bool_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut terms = vec![self.bool_term()?];
        while self.peek_kw("OR") {
            self.pos += 1;
            terms.push(self.bool_term()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            BoolExpr::Or(terms)
        })
    }

    /// `term := factor (AND factor)*`
    fn bool_term(&mut self) -> Result<BoolExpr, ParseError> {
        let mut factors = vec![self.bool_factor()?];
        while self.peek_kw("AND") {
            self.pos += 1;
            factors.push(self.bool_factor()?);
        }
        Ok(if factors.len() == 1 {
            factors.pop().expect("one factor")
        } else {
            BoolExpr::And(factors)
        })
    }

    /// `factor := NOT factor | '(' expr ')' | condition`
    fn bool_factor(&mut self) -> Result<BoolExpr, ParseError> {
        if self.peek_kw("NOT") {
            self.pos += 1;
            return Ok(BoolExpr::Not(Box::new(self.bool_factor()?)));
        }
        if self.peek() == Some("(") {
            self.pos += 1;
            let inner = self.bool_expr()?;
            if self.peek() != Some(")") {
                return Err(self.err("closing parenthesis"));
            }
            self.pos += 1;
            return Ok(inner);
        }
        Ok(BoolExpr::Atom(self.condition()?))
    }

    fn positive_window(&mut self) -> Result<usize, ParseError> {
        let window = self.number("window size")? as usize;
        if window == 0 {
            return Err(ParseError {
                expected: "positive window size".to_string(),
                found: "0".to_string(),
            });
        }
        Ok(window)
    }

    fn projection(&mut self) -> Result<Projection, ParseError> {
        if self.peek() == Some("*") {
            self.pos += 1;
            return Ok(Projection::All);
        }
        let mut fields = vec![self.identifier("projection field")?];
        while self.peek() == Some(",") {
            self.pos += 1;
            fields.push(self.identifier("projection field")?);
        }
        Ok(Projection::Fields(fields))
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        // Accept both "age > 25" and "age>25".
        let tok = self.next().ok_or_else(|| self.err("condition"))?;
        if let Some((field, op, value)) = split_glued_condition(tok) {
            return Ok(Condition { field, op, value });
        }
        let field = validate_ident(tok).ok_or_else(|| self.err("condition field"))?;
        let op = self.cmp_op()?;
        let value = self.number("condition literal")?;
        Ok(Condition { field, op, value })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Some("=") | Some("==") => CmpOp::Eq,
            Some("!=") | Some("<>") => CmpOp::Ne,
            Some("<") => CmpOp::Lt,
            Some("<=") => CmpOp::Le,
            Some(">") => CmpOp::Gt,
            Some(">=") => CmpOp::Ge,
            _ => return Err(self.err("comparison operator")),
        };
        self.pos += 1;
        Ok(op)
    }
}

/// Recognizes an aggregate head token like `COUNT(*)` or `sum(price)`.
fn parse_agg_head(tok: &str) -> Option<(AggFunc, Option<String>)> {
    let open = tok.find('(')?;
    if !tok.ends_with(')') {
        return None;
    }
    let func = match tok[..open].to_ascii_uppercase().as_str() {
        "COUNT" => AggFunc::Count,
        "SUM" => AggFunc::Sum,
        "MIN" => AggFunc::Min,
        "MAX" => AggFunc::Max,
        "AVG" => AggFunc::Avg,
        _ => return None,
    };
    let arg = &tok[open + 1..tok.len() - 1];
    let field = if arg == "*" {
        if func != AggFunc::Count {
            return None; // only COUNT takes `*`
        }
        None
    } else {
        Some(validate_ident(arg)?)
    };
    Some((func, field))
}

fn validate_ident(tok: &str) -> Option<String> {
    let ok = tok
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_')
        && tok.chars().next().is_some_and(|c| c.is_ascii_alphabetic());
    ok.then(|| tok.to_ascii_lowercase())
}

fn split_glued_condition(tok: &str) -> Option<(String, CmpOp, u64)> {
    for (sym, op) in [
        (">=", CmpOp::Ge),
        ("<=", CmpOp::Le),
        ("!=", CmpOp::Ne),
        ("<>", CmpOp::Ne),
        ("==", CmpOp::Eq),
        ("=", CmpOp::Eq),
        (">", CmpOp::Gt),
        ("<", CmpOp::Lt),
    ] {
        if let Some((lhs, rhs)) = tok.split_once(sym) {
            if lhs.is_empty() || rhs.is_empty() {
                continue;
            }
            let field = validate_ident(lhs)?;
            let value = rhs.parse().ok()?;
            return Some((field, op, value));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_fig7_queries() {
        // Query 1: Selection(Age>25) -> Join over ProductID, window 1536.
        let q1 = Query::parse(
            "SELECT * FROM customers WHERE age > 25 JOIN products ON product_id WINDOW 1536",
        )
        .unwrap();
        assert_eq!(q1.from, "customers");
        assert_eq!(q1.conditions.len(), 1);
        assert_eq!(q1.conditions[0].op, CmpOp::Gt);
        let j = q1.join.unwrap();
        assert_eq!(j.stream, "products");
        assert_eq!(j.on, "product_id");
        assert_eq!(j.window, 1536);

        // Query 2: Selection(Age>25 & Gender=female) -> window 2048.
        let q2 = Query::parse(
            "SELECT * FROM customers WHERE age > 25 AND gender = 1 \
             JOIN products ON product_id WINDOW 2048",
        )
        .unwrap();
        assert_eq!(q2.conditions.len(), 2);
        assert_eq!(q2.join.unwrap().window, 2048);
    }

    #[test]
    fn parses_projection_lists() {
        let q = Query::parse("SELECT a, b, c FROM s").unwrap();
        assert_eq!(
            q.select,
            Projection::Fields(vec!["a".into(), "b".into(), "c".into()])
        );
        assert!(q.conditions.is_empty());
        assert!(q.join.is_none());
    }

    #[test]
    fn parses_glued_conditions() {
        let q = Query::parse("SELECT * FROM s WHERE age>25 AND size<=9").unwrap();
        assert_eq!(q.conditions[0].op, CmpOp::Gt);
        assert_eq!(q.conditions[1].op, CmpOp::Le);
        assert_eq!(q.conditions[1].value, 9);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(Query::parse("select * from s where x = 1").is_ok());
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "FROM s",
            "SELECT FROM s",
            "SELECT * FROM",
            "SELECT * FROM s WHERE",
            "SELECT * FROM s WHERE x !! 3",
            "SELECT * FROM s JOIN t ON k WINDOW 0",
            "SELECT * FROM s trailing garbage",
            "SELECT * FROM s WHERE 3 > x",
        ] {
            assert!(Query::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_error_is_informative() {
        let err = Query::parse("SELECT * WHERE").unwrap_err();
        assert!(err.to_string().contains("FROM"));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let text = "SELECT a, b FROM customers WHERE age > 25 \
                    JOIN products ON product_id WINDOW 64";
        let q = Query::parse(text).unwrap();
        let q2 = Query::parse(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn parses_aggregate_queries() {
        let q = Query::parse("SELECT COUNT(*) FROM readings WINDOW 100").unwrap();
        let a = q.aggregate.as_ref().unwrap();
        assert_eq!(a.func, AggFunc::Count);
        assert_eq!(a.field, None);
        assert_eq!(a.window, 100);

        let q = Query::parse(
            "SELECT avg(value) FROM readings WHERE sensor = 3 WINDOW 64",
        )
        .unwrap();
        let a = q.aggregate.as_ref().unwrap();
        assert_eq!(a.func, AggFunc::Avg);
        assert_eq!(a.field.as_deref(), Some("value"));
        assert_eq!(q.conditions.len(), 1);

        for (text, func) in [
            ("SELECT SUM(v) FROM s WINDOW 4", AggFunc::Sum),
            ("SELECT MIN(v) FROM s WINDOW 4", AggFunc::Min),
            ("SELECT MAX(v) FROM s WINDOW 4", AggFunc::Max),
        ] {
            assert_eq!(Query::parse(text).unwrap().aggregate.unwrap().func, func);
        }
    }

    #[test]
    fn rejects_malformed_aggregates() {
        for bad in [
            "SELECT COUNT(*) FROM s",                        // missing WINDOW
            "SELECT SUM(*) FROM s WINDOW 4",                 // * only for COUNT
            "SELECT COUNT(*) FROM s JOIN t ON k WINDOW 4",   // agg + join
            "SELECT COUNT(*) FROM s WINDOW 0",               // zero window
        ] {
            assert!(Query::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn aggregate_display_round_trips() {
        for text in [
            "SELECT COUNT(*) FROM readings WINDOW 100",
            "SELECT SUM(value) FROM readings WHERE sensor > 1 WINDOW 8",
            "SELECT MAX(value) FROM readings WINDOW 16 TUMBLING",
        ] {
            let q = Query::parse(text).unwrap();
            assert_eq!(Query::parse(&q.to_string()).unwrap(), q);
        }
    }

    #[test]
    fn tumbling_keyword_selects_window_kind() {
        let q = Query::parse("SELECT COUNT(*) FROM s WINDOW 10 TUMBLING").unwrap();
        assert_eq!(q.aggregate.unwrap().kind, WindowKind::Tumbling);
        let q = Query::parse("SELECT COUNT(*) FROM s WINDOW 10").unwrap();
        assert_eq!(q.aggregate.unwrap().kind, WindowKind::Sliding);
    }

    #[test]
    fn parses_boolean_where_clauses() {
        let q = Query::parse("SELECT * FROM s WHERE a > 5 OR b < 3").unwrap();
        assert!(q.conditions.is_empty());
        let expr = q.where_expr.as_ref().unwrap();
        assert!(matches!(expr, BoolExpr::Or(es) if es.len() == 2));
        assert_eq!(expr.atoms().len(), 2);

        // AND binds tighter than OR.
        let q = Query::parse("SELECT * FROM s WHERE a > 5 OR b < 3 AND c = 1").unwrap();
        match q.where_expr.as_ref().unwrap() {
            BoolExpr::Or(es) => {
                assert!(matches!(es[0], BoolExpr::Atom(_)));
                assert!(matches!(&es[1], BoolExpr::And(fs) if fs.len() == 2));
            }
            other => panic!("expected OR at the top, got {other:?}"),
        }

        // Parentheses override precedence; glued parens tokenize.
        let q = Query::parse("SELECT * FROM s WHERE (a > 5 OR b < 3) AND c = 1").unwrap();
        assert!(matches!(q.where_expr.as_ref().unwrap(), BoolExpr::And(_)));
        let q2 = Query::parse("SELECT * FROM s WHERE ( a > 5 OR b < 3 ) AND c = 1").unwrap();
        assert_eq!(q.where_expr, q2.where_expr);

        // NOT.
        let q = Query::parse("SELECT * FROM s WHERE NOT a = 1").unwrap();
        assert!(matches!(q.where_expr.as_ref().unwrap(), BoolExpr::Not(_)));
    }

    #[test]
    fn pure_conjunctions_stay_on_the_fast_path() {
        let q = Query::parse("SELECT * FROM s WHERE a > 5 AND b < 3").unwrap();
        assert_eq!(q.conditions.len(), 2);
        assert!(q.where_expr.is_none());
        // Even when parenthesized as a whole.
        let q = Query::parse("SELECT * FROM s WHERE (a > 5)").unwrap();
        assert_eq!(q.conditions.len(), 1);
        assert!(q.where_expr.is_none());
    }

    #[test]
    fn boolean_where_display_round_trips() {
        for text in [
            "SELECT * FROM s WHERE a > 5 OR b < 3",
            "SELECT * FROM s WHERE (a > 5 OR b < 3) AND c = 1",
            "SELECT * FROM s WHERE NOT (a = 1 OR b = 2)",
            "SELECT * FROM s WHERE NOT a = 1 AND b = 2",
        ] {
            let q = Query::parse(text).unwrap();
            let q2 = Query::parse(&q.to_string()).unwrap();
            assert_eq!(q, q2, "{text} -> {q}");
        }
    }

    #[test]
    fn bool_expr_eval_with_follows_structure() {
        let q = Query::parse("SELECT * FROM s WHERE (a > 1 OR b > 1) AND NOT c > 1")
            .unwrap();
        let e = q.where_expr.unwrap();
        assert_eq!(e.atoms().len(), 3);
        // (t OR f) AND NOT f = true
        assert!(e.eval_with(&[true, false, false]));
        // (f OR f) AND NOT f = false
        assert!(!e.eval_with(&[false, false, false]));
        // (t OR t) AND NOT t = false
        assert!(!e.eval_with(&[true, true, true]));
    }

    #[test]
    fn rejects_malformed_boolean_clauses() {
        for bad in [
            "SELECT * FROM s WHERE (a > 1",
            "SELECT * FROM s WHERE a > 1 OR",
            "SELECT * FROM s WHERE NOT",
            "SELECT * FROM s WHERE ()",
        ] {
            assert!(Query::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn cmp_op_eval_table() {
        assert!(CmpOp::Eq.eval(3, 3) && !CmpOp::Eq.eval(3, 4));
        assert!(CmpOp::Ne.eval(3, 4) && !CmpOp::Ne.eval(3, 3));
        assert!(CmpOp::Lt.eval(3, 4) && !CmpOp::Lt.eval(4, 4));
        assert!(CmpOp::Le.eval(4, 4) && !CmpOp::Le.eval(5, 4));
        assert!(CmpOp::Gt.eval(5, 4) && !CmpOp::Gt.eval(4, 4));
        assert!(CmpOp::Ge.eval(4, 4) && !CmpOp::Ge.eval(3, 4));
    }
}
