//! Deployment-path cost model: standard synthesis-per-query vs FQP
//! runtime reprogramming (paper Fig. 6).
//!
//! The paper contrasts three ways of getting a changed query onto a
//! reconfigurable fabric:
//!
//! 1. **Hardware redesign** — change the hardware model by hand
//!    (hours–months), re-synthesize (minutes–days, NP-hard placement),
//!    halt the system, reprogram the FPGA (seconds–minutes), and resume —
//!    with costly data-flow control around the halt;
//! 2. **Re-synthesis of an existing design** — skip the redesign but keep
//!    the synthesis, halt, and reprogram steps;
//! 3. **FQP** — map new operators onto already-synthesized OP-Blocks
//!    (µs–ms) and apply them (µs), with no halt at all.
//!
//! [`DeploymentPath::steps`] provides the modeled duration breakdown used
//! by the `reconfig` bench; [`measure_fqp_reconfiguration`] measures the
//! real thing against the in-process fabric.

use std::time::{Duration, Instant};

use crate::fabric::{Fabric, FabricError};
use crate::opblock::{BlockId, BlockProgram};

/// One step of a deployment pipeline, with its modeled duration range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeploymentStep {
    /// Step name as in Fig. 6.
    pub name: &'static str,
    /// Lower bound on the step's duration.
    pub min: Duration,
    /// Upper bound on the step's duration.
    pub max: Duration,
    /// Whether normal system operation must halt during this step.
    pub halts_system: bool,
}

/// The three deployment paths of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeploymentPath {
    /// Hand-modify the hardware model, then synthesize and reprogram.
    HardwareRedesign,
    /// Re-synthesize an existing design for the new query set.
    ReSynthesis,
    /// FQP: remap operators onto the running fabric.
    FqpRemap,
}

const HOUR: Duration = Duration::from_secs(3_600);
const DAY: Duration = Duration::from_secs(24 * 3_600);

impl DeploymentPath {
    /// The pipeline steps of this path with modeled duration ranges
    /// (Fig. 6's annotations).
    pub fn steps(&self) -> Vec<DeploymentStep> {
        match self {
            DeploymentPath::HardwareRedesign => vec![
                DeploymentStep {
                    name: "apply changes in hardware model",
                    min: HOUR,
                    max: 90 * DAY,
                    halts_system: false,
                },
                DeploymentStep {
                    name: "synthesize (NP-hard place & route)",
                    min: Duration::from_secs(60),
                    max: 2 * DAY,
                    halts_system: false,
                },
                DeploymentStep {
                    name: "halt system & control data flow",
                    min: Duration::from_secs(1),
                    max: 10 * Duration::from_secs(60),
                    halts_system: true,
                },
                DeploymentStep {
                    name: "reprogram FPGA",
                    min: Duration::from_secs(1),
                    max: 2 * Duration::from_secs(60),
                    halts_system: true,
                },
                DeploymentStep {
                    name: "resume & replay dropped tuples",
                    min: Duration::from_secs(1),
                    max: 10 * Duration::from_secs(60),
                    halts_system: true,
                },
            ],
            DeploymentPath::ReSynthesis => {
                DeploymentPath::HardwareRedesign.steps()[1..].to_vec()
            }
            DeploymentPath::FqpRemap => vec![
                DeploymentStep {
                    name: "map new operators onto OP-Blocks",
                    min: Duration::from_micros(1),
                    max: Duration::from_millis(1),
                    halts_system: false,
                },
                DeploymentStep {
                    name: "apply operator instructions",
                    min: Duration::from_micros(1),
                    max: Duration::from_micros(100),
                    halts_system: false,
                },
            ],
        }
    }

    /// Best-case total duration.
    pub fn min_total(&self) -> Duration {
        self.steps().iter().map(|s| s.min).sum()
    }

    /// Worst-case total duration.
    pub fn max_total(&self) -> Duration {
        self.steps().iter().map(|s| s.max).sum()
    }

    /// `true` if the path requires halting stream processing.
    pub fn requires_halt(&self) -> bool {
        self.steps().iter().any(|s| s.halts_system)
    }
}

/// Reprograms `block` on a live fabric and returns the measured wall-clock
/// duration — the real counterpart of [`DeploymentPath::FqpRemap`].
///
/// # Errors
///
/// Propagates fabric errors for invalid block ids.
pub fn measure_fqp_reconfiguration(
    fabric: &mut Fabric,
    block: BlockId,
    program: BlockProgram,
) -> Result<Duration, FabricError> {
    let start = Instant::now();
    fabric.reprogram(block, program)?;
    Ok(start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::BoundCondition;
    use crate::query::CmpOp;
    use streamcore::Record;

    #[test]
    fn fqp_is_orders_of_magnitude_faster_even_best_case() {
        let fqp = DeploymentPath::FqpRemap.max_total();
        let resynth = DeploymentPath::ReSynthesis.min_total();
        let redesign = DeploymentPath::HardwareRedesign.min_total();
        assert!(resynth > 1_000 * fqp);
        assert!(redesign > resynth);
    }

    #[test]
    fn only_fqp_avoids_halting_the_system() {
        assert!(DeploymentPath::HardwareRedesign.requires_halt());
        assert!(DeploymentPath::ReSynthesis.requires_halt());
        assert!(!DeploymentPath::FqpRemap.requires_halt());
    }

    #[test]
    fn step_ranges_are_well_formed() {
        for path in [
            DeploymentPath::HardwareRedesign,
            DeploymentPath::ReSynthesis,
            DeploymentPath::FqpRemap,
        ] {
            for s in path.steps() {
                assert!(s.min <= s.max, "{}: min > max", s.name);
                assert!(!s.name.is_empty());
            }
        }
    }

    #[test]
    fn real_reconfiguration_is_sub_millisecond() {
        let mut fabric = Fabric::new(1);
        let d = measure_fqp_reconfiguration(
            &mut fabric,
            BlockId(0),
            BlockProgram::Select {
                conditions: vec![BoundCondition {
                    field: 0,
                    op: CmpOp::Gt,
                    value: 10,
                }],
            },
        )
        .unwrap();
        // Generous bound: the point is "not minutes".
        assert!(d < Duration::from_millis(50), "took {d:?}");
    }

    #[test]
    fn reconfiguration_applies_without_dropping_the_fabric() {
        // Change a live block's selection threshold between two records —
        // the "update the current join operator in real-time" property.
        let mut fabric = Fabric::new(1);
        let sink = fabric.add_sink();
        let b = BlockId(0);
        fabric
            .reprogram(
                b,
                BlockProgram::Select {
                    conditions: vec![BoundCondition {
                        field: 0,
                        op: CmpOp::Gt,
                        value: 100,
                    }],
                },
            )
            .unwrap();
        fabric.bind_stream("s", b, crate::opblock::Port::Left);
        fabric
            .connect(b, crate::fabric::Target::Sink(sink))
            .unwrap();
        fabric.push("s", Record::new(vec![50])).unwrap();
        assert!(fabric.take_sink(sink).unwrap().is_empty());

        measure_fqp_reconfiguration(
            &mut fabric,
            b,
            BlockProgram::Select {
                conditions: vec![BoundCondition {
                    field: 0,
                    op: CmpOp::Gt,
                    value: 10,
                }],
            },
        )
        .unwrap();
        fabric.push("s", Record::new(vec![50])).unwrap();
        assert_eq!(fabric.take_sink(sink).unwrap().len(), 1);
    }
}
