//! Distributing a query workload over multiple accelerator devices — the
//! paper's closing vision (Fig. 18): "superimpose FQP abstraction over
//! these heterogeneous compute nodes in order to hide their intricacy and
//! to virtualize the computation over them".
//!
//! [`distribute`] packs query plans onto a set of FPGAs using first-fit
//! decreasing over the provisioning estimates of [`crate::provision`]:
//! each device ends up with a fabric spec it can actually synthesize, and
//! queries that fit no device are reported rather than silently dropped.

use hwsim::Device;

use crate::plan::Plan;
use crate::provision::{provision, FabricSpec};

/// Result of distributing a workload over devices.
#[derive(Debug, Clone)]
pub struct Distribution {
    /// Plan indices assigned to each device (parallel to the input
    /// device slice).
    pub assignments: Vec<Vec<usize>>,
    /// Provisioning spec per device (for devices with assignments).
    pub specs: Vec<Option<FabricSpec>>,
    /// Plans that fit no device.
    pub unplaced: Vec<usize>,
}

impl Distribution {
    /// `true` when every plan found a home.
    pub fn is_complete(&self) -> bool {
        self.unplaced.is_empty()
    }

    /// Number of devices actually used.
    pub fn devices_used(&self) -> usize {
        self.assignments.iter().filter(|a| !a.is_empty()).count()
    }
}

/// Packs `plans` onto `devices` (first-fit decreasing by window volume).
///
/// # Example
///
/// ```
/// use fqp::plan::{bind, Catalog};
/// use fqp::query::Query;
/// use fqp::virtualize::distribute;
/// use hwsim::devices;
/// use streamcore::{Field, Schema};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut catalog = Catalog::new();
/// catalog.register(
///     "readings",
///     Schema::new(vec![Field::new("sensor", 32)?, Field::new("value", 32)?])?,
/// );
/// let plan = bind(&Query::parse("SELECT * FROM readings WHERE value > 5")?, &catalog)?;
/// let d = distribute(&[plan], 64, &[devices::XC5VLX50T]);
/// assert!(d.is_complete());
/// assert_eq!(d.devices_used(), 1);
/// # Ok(())
/// # }
/// ```
pub fn distribute(plans: &[Plan], record_bits: u64, devices: &[Device]) -> Distribution {
    // Heaviest plans first: total window volume dominates block RAM.
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(plan_weight(&plans[i])));

    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); devices.len()];
    let mut unplaced = Vec::new();
    for idx in order {
        let mut placed = false;
        for (d, device) in devices.iter().enumerate() {
            let mut candidate: Vec<Plan> = assignments[d]
                .iter()
                .map(|&i| plans[i].clone())
                .collect();
            candidate.push(plans[idx].clone());
            if provision(&candidate, record_bits, device).is_ok() {
                assignments[d].push(idx);
                placed = true;
                break;
            }
        }
        if !placed {
            unplaced.push(idx);
        }
    }
    unplaced.sort_unstable();

    let specs = assignments
        .iter()
        .zip(devices)
        .map(|(assigned, device)| {
            if assigned.is_empty() {
                return None;
            }
            let subset: Vec<Plan> = assigned.iter().map(|&i| plans[i].clone()).collect();
            Some(provision(&subset, record_bits, device).expect("checked during packing"))
        })
        .collect();

    Distribution {
        assignments,
        specs,
        unplaced,
    }
}

/// Rough resource weight: total window tuples across the plan's ops.
fn plan_weight(plan: &Plan) -> usize {
    use crate::plan::PlanOp;
    plan.ops
        .iter()
        .map(|op| match op {
            PlanOp::Join { window, .. } | PlanOp::Aggregate { window, .. } => *window,
            PlanOp::Select { .. }
            | PlanOp::SelectTable { .. }
            | PlanOp::Project { .. } => 1,
        })
        .sum::<usize>()
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{bind, Catalog};
    use crate::query::Query;
    use hwsim::devices::{XC5VLX50T, XC7VX485T};
    use streamcore::{Field, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "customers",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("age", 8).unwrap(),
            ])
            .unwrap(),
        );
        c.register(
            "products",
            Schema::new(vec![
                Field::new("product_id", 32).unwrap(),
                Field::new("price", 32).unwrap(),
            ])
            .unwrap(),
        );
        c
    }

    fn join_plan(age: u32, window: usize) -> Plan {
        bind(
            &Query::parse(&format!(
                "SELECT * FROM customers WHERE age > {age} \
                 JOIN products ON product_id WINDOW {window}"
            ))
            .unwrap(),
            &catalog(),
        )
        .unwrap()
    }

    #[test]
    fn small_workload_stays_on_one_device() {
        let plans = vec![join_plan(25, 512), join_plan(30, 1024)];
        let d = distribute(&plans, 64, &[XC5VLX50T, XC7VX485T]);
        assert!(d.is_complete());
        assert_eq!(d.devices_used(), 1);
    }

    #[test]
    fn overflow_spills_to_the_second_device() {
        // Three joins too big for the Virtex-5 plus three small ones.
        let mut plans: Vec<Plan> = (0..3).map(|i| join_plan(20 + i, 50_000)).collect();
        plans.extend((0..3).map(|i| join_plan(40 + i, 2_000)));
        let v5_only = distribute(&plans, 64, &[XC5VLX50T]);
        assert!(!v5_only.is_complete(), "the V5 cannot hold 50k-tuple windows");
        let both = distribute(&plans, 64, &[XC5VLX50T, XC7VX485T]);
        assert!(both.is_complete());
        assert_eq!(both.devices_used(), 2);
        // The big joins land on the Virtex-7 (second device).
        for &i in &both.assignments[1] {
            assert!(i < 3, "plan {i} should be a big join");
        }
        // Every plan appears exactly once.
        let mut all: Vec<usize> = both.assignments.concat();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn impossible_plans_are_reported_not_dropped() {
        let giant = join_plan(25, 3_000_000);
        let d = distribute(&[giant], 64, &[XC5VLX50T]);
        assert_eq!(d.unplaced, vec![0]);
        assert!(!d.is_complete());
        assert_eq!(d.devices_used(), 0);
    }

    #[test]
    fn specs_cover_exactly_the_used_devices() {
        let plans = vec![join_plan(25, 256)];
        let d = distribute(&plans, 64, &[XC5VLX50T, XC7VX485T]);
        assert!(d.specs[0].is_some());
        assert!(d.specs[1].is_none());
        assert!(d.specs[0].as_ref().unwrap().utilization.fits());
    }

    #[test]
    fn empty_workload_distributes_trivially() {
        let d = distribute(&[], 64, &[XC5VLX50T]);
        assert!(d.is_complete());
        assert_eq!(d.devices_used(), 0);
    }
}
