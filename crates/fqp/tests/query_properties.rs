//! Property-based tests of the query layer: parsing, binding, truth-table
//! compilation, and fabric deployment.

use fqp::assign::assign;
use fqp::fabric::Fabric;
use fqp::plan::{bind, Catalog};
use fqp::query::Query;
use proptest::prelude::*;
use streamcore::{Field, Record, Schema};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "s",
        Schema::new(vec![
            Field::new("a", 16).unwrap(),
            Field::new("b", 16).unwrap(),
        ])
        .unwrap(),
    );
    c.register(
        "t",
        Schema::new(vec![
            Field::new("a", 16).unwrap(),
            Field::new("c", 16).unwrap(),
        ])
        .unwrap(),
    );
    c
}

/// A strategy over syntactically valid WHERE clauses with known structure.
fn arb_clause() -> impl Strategy<Value = String> {
    let atom = (prop::sample::select(vec!["a", "b"]), 0u32..100)
        .prop_map(|(f, v)| format!("{f} > {v}"));
    atom.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("{x} AND {y}")),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| format!("{x} OR {y}")),
            inner.prop_map(|x| format!("NOT ( {x} )")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated WHERE clause parses, binds (unless too wide), and
    /// re-parses identically from its Display rendering.
    #[test]
    fn where_clauses_round_trip(clause in arb_clause()) {
        let text = format!("SELECT * FROM s WHERE {clause}");
        let q = Query::parse(&text).unwrap();
        let rendered = q.to_string();
        prop_assert_eq!(&Query::parse(&rendered).unwrap(), &q, "{}", rendered);
        match bind(&q, &catalog()) {
            Ok(plan) => prop_assert_eq!(plan.ops.len(), 1),
            Err(fqp::plan::PlanError::TooManyAtoms { atoms, .. }) => {
                prop_assert!(atoms > 16);
            }
            Err(other) => prop_assert!(false, "unexpected bind error {other}"),
        }
    }

    /// A bound selection — conjunction or truth table — agrees with naive
    /// evaluation of the original clause on random records.
    #[test]
    fn bound_selection_matches_naive_eval(clause in arb_clause(), records in prop::collection::vec((0u64..100, 0u64..100), 1..30)) {
        let text = format!("SELECT * FROM s WHERE {clause}");
        let q = Query::parse(&text).unwrap();
        let Ok(plan) = bind(&q, &catalog()) else {
            return Ok(()); // too many atoms: covered above
        };
        let mut fabric = Fabric::new(1);
        let handle = assign(&plan, &mut fabric).unwrap();
        for (a, b) in records {
            fabric.push("s", Record::new(vec![a, b])).unwrap();
            let passed = !fabric.take_sink(handle.sink).unwrap().is_empty();
            // Naive evaluation straight off the AST.
            let naive = match (&q.where_expr, q.conditions.is_empty()) {
                (Some(expr), _) => {
                    let outcomes: Vec<bool> = expr
                        .atoms()
                        .iter()
                        .map(|c| {
                            let v = if c.field == "a" { a } else { b };
                            c.op.eval(v, c.value)
                        })
                        .collect();
                    expr.eval_with(&outcomes)
                }
                (None, false) => q.conditions.iter().all(|c| {
                    let v = if c.field == "a" { a } else { b };
                    c.op.eval(v, c.value)
                }),
                (None, true) => true,
            };
            prop_assert_eq!(passed, naive, "record ({}, {}) under {}", a, b, text);
        }
    }

    /// Join queries deploy onto any fabric with enough blocks, and the
    /// handle always reports the plan's own block count.
    #[test]
    fn assignment_block_accounting(extra in 0usize..4, window in 1usize..64) {
        let text = format!("SELECT * FROM s JOIN t ON a WINDOW {window}");
        let plan = bind(&Query::parse(&text).unwrap(), &catalog()).unwrap();
        let mut fabric = Fabric::new(plan.block_count() + extra);
        let handle = assign(&plan, &mut fabric).unwrap();
        prop_assert_eq!(handle.blocks.len(), plan.block_count());
        prop_assert_eq!(fabric.idle_blocks(), extra);
        fqp::assign::remove(&handle, &mut fabric).unwrap();
        prop_assert_eq!(fabric.idle_blocks(), plan.block_count() + extra);
    }
}
