//! Plan → placement → reconfigure round-trips: placement is a pure,
//! deterministic function of `(plan, sites, objective)`; re-planning a
//! deployed query (undeploy + redeploy, the FQP runtime-remap path)
//! reproduces the original results exactly; and malformed queries are
//! rejected with typed [`PlanError`]s, never panics.

use fqp::manager::QueryManager;
use fqp::placement::{default_sites, place, Objective};
use fqp::plan::{bind, Catalog, Plan, PlanError, MAX_TRUTH_TABLE_ATOMS};
use fqp::query::Query;
use streamcore::Record;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register_spec("customers=product_id:32,age:8").unwrap();
    c.register_spec("products=product_id:32,price:32").unwrap();
    c
}

fn plan_of(text: &str) -> Plan {
    bind(&Query::parse(text).unwrap(), &catalog()).unwrap()
}

const JOIN_QUERY: &str =
    "SELECT * FROM customers WHERE age > 25 JOIN products ON product_id WINDOW 1024";

#[test]
fn placement_is_deterministic_across_repeated_calls() {
    let plan = plan_of(JOIN_QUERY);
    let sites = default_sites();
    for objective in [Objective::MaxThroughput, Objective::MinLatency] {
        let first = place(&plan, &sites, objective);
        for _ in 0..10 {
            let again = place(&plan, &sites, objective);
            assert_eq!(again.sites, first.sites, "{objective:?}: site choice drifted");
            assert_eq!(
                (again.throughput_tps, again.latency_us),
                (first.throughput_tps, first.latency_us),
                "{objective:?}: predicted figures drifted"
            );
        }
    }
}

#[test]
fn equal_plans_place_identically_regardless_of_origin() {
    // The same logical query arrives once via the text parser and once
    // re-parsed from its canonical rendering; binding must converge to
    // the same plan, and the same plan to the same placement.
    let parsed = Query::parse(JOIN_QUERY).unwrap();
    let reparsed = Query::parse(&parsed.to_string()).unwrap();
    let a = bind(&parsed, &catalog()).unwrap();
    let b = bind(&reparsed, &catalog()).unwrap();
    assert_eq!(a.ops, b.ops, "bind must be canonical over equivalent queries");
    let sites = default_sites();
    assert_eq!(
        place(&a, &sites, Objective::MaxThroughput).sites,
        place(&b, &sites, Objective::MaxThroughput).sites,
    );
}

#[test]
fn objective_flip_round_trips_to_the_original_placement() {
    // Re-planning is an involution: MaxThroughput -> MinLatency ->
    // MaxThroughput must land exactly where the first placement did,
    // or repeated re-plans would walk the system through drifting
    // configurations.
    let plan = plan_of(JOIN_QUERY);
    let sites = default_sites();
    let first = place(&plan, &sites, Objective::MaxThroughput);
    let flipped = place(&plan, &sites, Objective::MinLatency);
    let back = place(&plan, &sites, Objective::MaxThroughput);
    assert_eq!(back.sites, first.sites);
    assert_eq!(back.throughput_tps, first.throughput_tps);
    assert_eq!(back.latency_us, first.latency_us);
    // And the flip itself must actually trade throughput for latency
    // (distinct optima) for the round-trip to be meaningful.
    assert!(
        flipped.latency_us <= first.latency_us,
        "MinLatency placement may not be slower to respond than MaxThroughput's"
    );
}

#[test]
fn redeploying_a_query_reproduces_its_results_exactly() {
    // The FQP re-plan path: undeploy + redeploy onto the same fabric
    // (runtime block reprogramming, no halt). A fresh deployment of the
    // same plan over the same inputs must produce identical results.
    let plan = plan_of(JOIN_QUERY);
    let feed = |mgr: &mut QueryManager, id| {
        for k in 0..16u64 {
            mgr.push("products", Record::new(vec![k, 100 + k])).unwrap();
            mgr.push("customers", Record::new(vec![k, 30 + (k % 8)])).unwrap();
        }
        mgr.take_results(id).unwrap()
    };

    let mut mgr = QueryManager::new(4);
    let first_id = mgr.deploy(&plan).unwrap();
    let first = feed(&mut mgr, first_id);
    assert!(!first.is_empty(), "the probe workload must match");

    mgr.undeploy(first_id).unwrap();
    let second_id = mgr.deploy(&plan).unwrap();
    let second = feed(&mut mgr, second_id);
    assert_eq!(first, second, "redeployed query diverged from its first run");
}

#[test]
fn replanning_between_windows_keeps_the_narrow_results_a_subset() {
    // Re-plan to a wider window: every match the narrow deployment made
    // must survive (the wider window only admits more pairs).
    let narrow = plan_of("SELECT * FROM customers JOIN products ON product_id WINDOW 4");
    let wide = plan_of("SELECT * FROM customers JOIN products ON product_id WINDOW 1024");
    let feed = |mgr: &mut QueryManager, id| {
        for k in 0..32u64 {
            mgr.push("products", Record::new(vec![k % 8, k])).unwrap();
            mgr.push("customers", Record::new(vec![k % 8, k])).unwrap();
        }
        mgr.take_results(id).unwrap()
    };
    let mut mgr = QueryManager::new(4);
    let id = mgr.deploy(&narrow).unwrap();
    let narrow_rows = feed(&mut mgr, id);
    mgr.undeploy(id).unwrap();
    let id = mgr.deploy(&wide).unwrap();
    let wide_rows = feed(&mut mgr, id);
    assert!(narrow_rows.len() < wide_rows.len());
    for row in &narrow_rows {
        assert!(wide_rows.contains(row), "wider window lost {row:?}");
    }
}

#[test]
fn binding_rejects_malformed_queries_with_typed_errors() {
    let c = catalog();

    let unknown_stream = Query::parse("SELECT * FROM orders").unwrap();
    assert_eq!(
        bind(&unknown_stream, &c).unwrap_err(),
        PlanError::UnknownStream { stream: "orders".into() }
    );

    let unknown_join_stream =
        Query::parse("SELECT * FROM customers JOIN orders ON product_id WINDOW 8").unwrap();
    assert_eq!(
        bind(&unknown_join_stream, &c).unwrap_err(),
        PlanError::UnknownStream { stream: "orders".into() }
    );

    let unknown_field = Query::parse("SELECT * FROM customers WHERE height > 10").unwrap();
    assert!(matches!(
        bind(&unknown_field, &c).unwrap_err(),
        PlanError::UnknownField { ref field, .. } if field == "height"
    ));

    let unknown_projection = Query::parse("SELECT height FROM customers").unwrap();
    assert!(matches!(
        bind(&unknown_projection, &c).unwrap_err(),
        PlanError::UnknownField { ref field, .. } if field == "height"
    ));

    // One atom past the truth-table capacity, expressed with OR so the
    // clause cannot collapse into a plain conjunction.
    let clause = (0..=MAX_TRUTH_TABLE_ATOMS)
        .map(|i| format!("age > {i}"))
        .collect::<Vec<_>>()
        .join(" OR ");
    let too_wide = Query::parse(&format!("SELECT * FROM customers WHERE {clause}")).unwrap();
    assert_eq!(
        bind(&too_wide, &c).unwrap_err(),
        PlanError::TooManyAtoms { atoms: MAX_TRUTH_TABLE_ATOMS + 1, max: MAX_TRUTH_TABLE_ATOMS }
    );
}
