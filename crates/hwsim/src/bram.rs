//! A block-RAM model with port accounting and activity counters.

/// On-chip block RAM holding `capacity` words of type `T`.
///
/// Models a true-dual-port BRAM: at most two accesses (reads or writes in
/// any combination) per clock cycle, enforced with `debug_assert!` so that
/// release-mode sweeps pay no cost. Access counters feed the power model's
/// activity estimate.
///
/// Reads return data immediately; designs that depend on the one-cycle
/// synchronous-read latency of a real BRAM account for it in their FSM cycle
/// counts (the join-core processing FSM overlaps read and compare as a
/// two-stage pipeline, so sustained throughput is one word per cycle either
/// way).
///
/// # Example
///
/// ```
/// use hwsim::Bram;
///
/// let mut w: Bram<u64> = Bram::new(16);
/// w.begin_cycle();
/// w.write(3, 42);
/// assert_eq!(w.read(3), Some(&42)); // second port, same cycle
/// w.begin_cycle();
/// assert_eq!(w.read(4), None); // never written
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bram<T> {
    words: Vec<Option<T>>,
    ports_used: u8,
    stats: BramStats,
}

/// Cumulative access counters for a [`Bram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct BramStats {
    /// Total read accesses since construction (or the last stats reset).
    pub reads: u64,
    /// Total write accesses since construction (or the last stats reset).
    pub writes: u64,
    /// Total cycles observed via `begin_cycle`.
    pub cycles: u64,
}

impl BramStats {
    /// Fraction of cycles in which at least one port was active.
    ///
    /// Upper-bounded at 1.0; with dual-port access patterns the raw
    /// accesses-per-cycle may exceed one.
    pub fn activity(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let accesses = (self.reads + self.writes) as f64;
        (accesses / self.cycles as f64).min(1.0)
    }
}

impl<T> Bram<T> {
    /// Creates a BRAM with `capacity` addressable words, all unwritten.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bram capacity must be at least 1");
        let mut words = Vec::with_capacity(capacity);
        words.resize_with(capacity, || None);
        Self {
            words,
            ports_used: 0,
            stats: BramStats::default(),
        }
    }

    /// Number of addressable words.
    pub fn capacity(&self) -> usize {
        self.words.len()
    }

    /// Opens a new clock cycle: resets port accounting.
    pub fn begin_cycle(&mut self) {
        self.ports_used = 0;
        self.stats.cycles += 1;
    }

    /// Reads the word at `addr`, or `None` if that address was never
    /// written.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range. In debug builds, panics if more
    /// than two ports are used in one cycle.
    pub fn read(&mut self, addr: usize) -> Option<&T> {
        self.use_port();
        self.stats.reads += 1;
        self.words[addr].as_ref()
    }

    /// Writes `value` at `addr`, returning the previous word if present.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range. In debug builds, panics if more
    /// than two ports are used in one cycle.
    pub fn write(&mut self, addr: usize, value: T) -> Option<T> {
        self.use_port();
        self.stats.writes += 1;
        self.words[addr].replace(value)
    }

    /// Writes without port accounting; for pre-filling state before a
    /// measurement starts.
    pub fn load(&mut self, addr: usize, value: T) {
        self.words[addr] = Some(value);
    }

    /// Reads without port or activity accounting — a diagnostic view for
    /// tests and verification, not part of the modeled design.
    pub fn peek(&self, addr: usize) -> Option<&T> {
        self.words[addr].as_ref()
    }

    /// Cumulative access statistics.
    pub fn stats(&self) -> BramStats {
        self.stats
    }

    /// Resets access statistics (e.g. after warm-up, before measurement).
    pub fn reset_stats(&mut self) {
        self.stats = BramStats::default();
    }

    fn use_port(&mut self) {
        self.ports_used += 1;
        debug_assert!(
            self.ports_used <= 2,
            "more than two BRAM ports used in one cycle"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_back_what_was_written() {
        let mut b: Bram<u64> = Bram::new(8);
        b.begin_cycle();
        b.write(0, 10);
        b.write(7, 20);
        b.begin_cycle();
        assert_eq!(b.read(0), Some(&10));
        assert_eq!(b.read(7), Some(&20));
    }

    #[test]
    fn unwritten_address_reads_none() {
        let mut b: Bram<u64> = Bram::new(4);
        b.begin_cycle();
        assert_eq!(b.read(2), None);
    }

    #[test]
    fn write_returns_previous_value() {
        let mut b: Bram<u32> = Bram::new(2);
        b.begin_cycle();
        assert_eq!(b.write(0, 1), None);
        b.begin_cycle();
        assert_eq!(b.write(0, 2), Some(1));
    }

    #[test]
    #[should_panic(expected = "more than two BRAM ports")]
    #[cfg(debug_assertions)]
    fn third_port_access_panics_in_debug() {
        let mut b: Bram<u8> = Bram::new(4);
        b.begin_cycle();
        b.write(0, 1);
        b.read(0);
        b.read(1);
    }

    #[test]
    fn stats_track_accesses_and_cycles() {
        let mut b: Bram<u8> = Bram::new(4);
        for i in 0..10usize {
            b.begin_cycle();
            if i % 2 == 0 {
                b.write(i % 4, i as u8);
            }
        }
        let s = b.stats();
        assert_eq!(s.cycles, 10);
        assert_eq!(s.writes, 5);
        assert_eq!(s.reads, 0);
        assert!((s.activity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn activity_saturates_at_one() {
        let mut b: Bram<u8> = Bram::new(4);
        for _ in 0..5 {
            b.begin_cycle();
            b.read(0);
            b.write(1, 1);
        }
        assert!((b.stats().activity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn load_bypasses_port_accounting() {
        let mut b: Bram<u8> = Bram::new(4);
        b.load(0, 9);
        b.begin_cycle();
        assert_eq!(b.read(0), Some(&9));
        assert_eq!(b.stats().writes, 0);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut b: Bram<u8> = Bram::new(4);
        b.begin_cycle();
        b.write(0, 1);
        b.reset_stats();
        assert_eq!(b.stats(), BramStats::default());
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = Bram::<u8>::new(0);
    }
}
