//! FPGA device catalog.

use std::fmt;

use crate::Resources;

/// FPGA device family. Families differ in process node, achievable clock
/// frequency, and how small memories are preferentially mapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Xilinx Virtex-5 (65 nm). The paper's ML505 board.
    Virtex5,
    /// Xilinx Virtex-7 (28 nm). The paper's VC707 board.
    Virtex7,
    /// Xilinx UltraScale+ (16 nm). The cloud FPGA of the paper's
    /// conclusion (AWS EC2 F1).
    UltraScalePlus,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Family::Virtex5 => write!(f, "Virtex-5"),
            Family::Virtex7 => write!(f, "Virtex-7"),
            Family::UltraScalePlus => write!(f, "UltraScale+"),
        }
    }
}

/// An FPGA device: capacity and timing/power characteristics.
///
/// The two catalog entries ([`devices::XC5VLX50T`], [`devices::XC7VX485T`])
/// correspond to the boards used in the paper's evaluation (ML505 and
/// VC707).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Part name, e.g. `"XC5VLX50T"`.
    pub name: &'static str,
    /// Device family.
    pub family: Family,
    /// Number of 6-input LUTs.
    pub luts: u64,
    /// Number of flip-flops.
    pub ffs: u64,
    /// Number of 18 Kb block-RAM units (a 36 Kb BRAM counts as two).
    pub bram18: u64,
    /// Base (unloaded) maximum clock frequency in MHz for the kind of
    /// control-heavy streaming logic modeled here. Real designs derate from
    /// this with fan-out and routing congestion; see [`crate::estimate_fmax`].
    pub base_fmax_mhz: f64,
    /// Device static (leakage) power in milliwatts.
    pub static_power_mw: f64,
    /// Memories at or below this many bits map to distributed LUT-RAM;
    /// larger ones go to block RAM. Family-dependent: BRAM-rich 7-series
    /// parts push even small memories into block RAM, while the BRAM-poor
    /// Virtex-5 keeps more in LUT-RAM.
    pub lutram_threshold_bits: u64,
}

impl Device {
    /// Total device capacity as a [`Resources`] vector.
    pub fn capacity(&self) -> Resources {
        Resources {
            luts: self.luts,
            ffs: self.ffs,
            bram18: self.bram18,
        }
    }

    /// Bits of block RAM available (18,432 bits per BRAM18).
    pub fn bram_bits(&self) -> u64 {
        self.bram18 * crate::resources::BRAM18_BITS
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.family)
    }
}

/// The device catalog: the two parts used in the paper's evaluation.
pub mod devices {
    use super::{Device, Family};

    /// Virtex-5 XC5VLX50T — the FPGA on the ML505 evaluation platform.
    ///
    /// 28,800 6-LUTs / 28,800 FFs / 60×36 Kb BRAM (120 BRAM18).
    pub const XC5VLX50T: Device = Device {
        name: "XC5VLX50T",
        family: Family::Virtex5,
        luts: 28_800,
        ffs: 28_800,
        bram18: 120,
        // The paper clocks V5 designs at 100 MHz and notes up to ~190 MHz is
        // reachable with tighter constraints; 205 MHz models the unloaded
        // fabric limit before fan-out derating.
        base_fmax_mhz: 205.0,
        static_power_mw: 350.0,
        lutram_threshold_bits: 4_096,
    };

    /// Virtex-7 XC7VX485T — the FPGA on the VC707 evaluation board.
    ///
    /// 303,600 6-LUTs / 607,200 FFs / 1,030×36 Kb BRAM (2,060 BRAM18).
    pub const XC7VX485T: Device = Device {
        name: "XC7VX485T",
        family: Family::Virtex7,
        luts: 303_600,
        ffs: 607_200,
        bram18: 2_060,
        base_fmax_mhz: 355.0,
        static_power_mw: 240.0,
        lutram_threshold_bits: 1_024,
    };

    /// UltraScale+ XCVU9P — the FPGA behind AWS EC2 F1 instances, which
    /// the paper's conclusion singles out ("fabricated using a 16 nm
    /// process and with approximately 2.5 million logic elements").
    ///
    /// 1,182,240 6-LUTs / 2,364,480 FFs / 4,320 BRAM18, plus 960 UltraRAM
    /// blocks of 288 Kb modeled here as 15,360 additional BRAM18
    /// equivalents (window storage is bit-volume-bound either way).
    pub const XCVU9P: Device = Device {
        name: "XCVU9P",
        family: Family::UltraScalePlus,
        luts: 1_182_240,
        ffs: 2_364_480,
        bram18: 4_320 + 960 * 16,
        base_fmax_mhz: 520.0,
        static_power_mw: 3_000.0,
        lutram_threshold_bits: 1_024,
    };

    /// All catalog devices.
    pub const ALL: [Device; 3] = [XC5VLX50T, XC7VX485T, XCVU9P];
}

#[cfg(test)]
mod tests {
    use super::devices::{ALL, XC5VLX50T, XC7VX485T};
    use super::*;

    #[test]
    fn catalog_capacities_match_datasheets() {
        assert_eq!(XC5VLX50T.luts, 28_800);
        assert_eq!(XC5VLX50T.bram18, 120);
        assert_eq!(XC7VX485T.luts, 303_600);
        assert_eq!(XC7VX485T.bram18, 2_060);
    }

    #[test]
    fn bram_bits_accounting() {
        // 60 x 36Kb = 2,211,840 bits on the V5 part.
        assert_eq!(XC5VLX50T.bram_bits(), 120 * 18 * 1024);
    }

    #[test]
    fn v7_is_strictly_larger_and_faster_than_v5() {
        let (v5, v7) = (&XC5VLX50T, &XC7VX485T);
        assert!(v7.luts > v5.luts);
        assert!(v7.bram18 > v5.bram18);
        assert!(v7.base_fmax_mhz > v5.base_fmax_mhz);
    }

    #[test]
    fn display_forms() {
        assert_eq!(XC5VLX50T.to_string(), "XC5VLX50T (Virtex-5)");
        assert_eq!(Family::Virtex7.to_string(), "Virtex-7");
    }

    #[test]
    fn all_lists_every_device() {
        assert_eq!(ALL.len(), 3);
        assert!(ALL.iter().any(|d| d.family == Family::Virtex5));
        assert!(ALL.iter().any(|d| d.family == Family::Virtex7));
        assert!(ALL.iter().any(|d| d.family == Family::UltraScalePlus));
    }

    #[test]
    fn cloud_fpga_dwarfs_the_papers_boards() {
        use super::devices::XCVU9P;
        let (v7, vu9p) = (&XC7VX485T, &XCVU9P);
        assert!(vu9p.luts > 3 * v7.luts);
        assert!(vu9p.bram_bits() > 4 * v7.bram_bits());
        assert_eq!(vu9p.to_string(), "XCVU9P (UltraScale+)");
    }

    #[test]
    fn capacity_vector_matches_fields() {
        let c = XC7VX485T.capacity();
        assert_eq!(c.luts, XC7VX485T.luts);
        assert_eq!(c.ffs, XC7VX485T.ffs);
        assert_eq!(c.bram18, XC7VX485T.bram18);
    }
}
