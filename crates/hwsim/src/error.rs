//! Error types for the simulation kernel.

use std::error::Error;
use std::fmt;

/// Returned by [`crate::Fifo::push`] when the FIFO cannot accept another
/// element this cycle.
///
/// In hardware, pushing into a full FIFO silently drops data or corrupts
/// state; the simulator surfaces the condition instead so that designs can
/// assert their flow control is correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FifoFullError {
    /// Capacity of the FIFO that rejected the push.
    pub capacity: usize,
}

impl fmt::Display for FifoFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "push into full fifo (capacity {})", self.capacity)
    }
}

impl Error for FifoFullError {}

/// Returned when a design does not fit the selected device.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CapacityError {
    /// Human-readable description of the resource that overflowed.
    pub resource: &'static str,
    /// Amount required by the design.
    pub required: u64,
    /// Amount available on the device.
    pub available: u64,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "design requires {} {} but device provides {}",
            self.required, self.resource, self.available
        )
    }
}

impl Error for CapacityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_full_display() {
        let e = FifoFullError { capacity: 4 };
        assert_eq!(e.to_string(), "push into full fifo (capacity 4)");
    }

    #[test]
    fn capacity_error_display() {
        let e = CapacityError {
            resource: "BRAM18",
            required: 128,
            available: 120,
        };
        assert_eq!(
            e.to_string(),
            "design requires 128 BRAM18 but device provides 120"
        );
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FifoFullError>();
        assert_send_sync::<CapacityError>();
    }
}
