//! A registered hardware FIFO with two-phase (stage/commit) semantics.

use std::collections::VecDeque;

use crate::FifoFullError;

/// A fixed-capacity, registered FIFO.
///
/// Semantics match a synchronous hardware FIFO with registered flags:
///
/// * elements pushed in cycle *t* become poppable in cycle *t + 1*;
/// * the `full` indication ([`can_push`](Fifo::can_push)) is computed from
///   the occupancy at the start of the cycle — a pop in the same cycle does
///   *not* free space for a same-cycle push;
/// * [`can_pop`](Fifo::can_pop)/[`pop`](Fifo::pop) only see elements present
///   at the start of the cycle.
///
/// The [`begin_cycle`](Fifo::begin_cycle)/[`commit`](Fifo::commit) calls are
/// normally driven by the enclosing [`Component`](crate::Component).
///
/// # Example
///
/// ```
/// use hwsim::Fifo;
///
/// let mut f = Fifo::new(2);
/// f.begin_cycle();
/// f.push(1u8)?;
/// assert!(!f.can_pop()); // not visible until the clock edge
/// f.commit();
///
/// f.begin_cycle();
/// assert_eq!(f.pop(), Some(1));
/// f.commit();
/// # Ok::<(), hwsim::FifoFullError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    staged: Vec<T>,
    capacity: usize,
    start_len: usize,
}

impl<T> Fifo<T> {
    /// Creates an empty FIFO holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be at least 1");
        Self {
            items: VecDeque::with_capacity(capacity),
            staged: Vec::new(),
            capacity,
            start_len: 0,
        }
    }

    /// Maximum number of stored elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of elements currently poppable (cycle-start view minus pops
    /// already performed this cycle).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no element is poppable this cycle.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total occupancy including staged pushes (the occupancy the FIFO will
    /// report after the clock edge if nothing pops).
    pub fn committed_len(&self) -> usize {
        self.items.len() + self.staged.len()
    }

    /// Snapshots cycle-start occupancy. Call once per cycle before any
    /// `push`/`pop`. Elements pushed *between* cycles (e.g. by a testbench
    /// offering input) remain staged and latch at this cycle's commit.
    pub fn begin_cycle(&mut self) {
        self.start_len = self.items.len();
    }

    /// Returns `true` if a push is accepted this cycle: the registered
    /// `full` flag, based on cycle-start occupancy plus pushes already
    /// staged this cycle.
    pub fn can_push(&self) -> bool {
        self.start_len + self.staged.len() < self.capacity
    }

    /// Stages `value` for insertion at the next clock edge.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] if the FIFO's registered `full` flag is
    /// asserted; the element is returned to the caller via the error path
    /// untouched (the staged queue is unchanged).
    pub fn push(&mut self, value: T) -> Result<(), FifoFullError> {
        if !self.can_push() {
            return Err(FifoFullError {
                capacity: self.capacity,
            });
        }
        self.staged.push(value);
        Ok(())
    }

    /// Returns `true` if an element is poppable this cycle.
    pub fn can_pop(&self) -> bool {
        !self.items.is_empty()
    }

    /// Pops the oldest element present at the start of the cycle, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest poppable element without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Latches staged pushes, completing the clock cycle.
    pub fn commit(&mut self) {
        self.items.extend(self.staged.drain(..));
        // After the edge, occupancy snapshot becomes stale; refresh so that
        // sequences of commit() without an interleaved begin_cycle() (e.g.
        // during test setup) remain consistent.
        self.start_len = self.items.len();
    }

    /// Directly inserts an element, bypassing clocked semantics.
    ///
    /// Intended for test setup and for pre-filling windows before a
    /// measurement starts.
    ///
    /// # Panics
    ///
    /// Panics if the FIFO is already at capacity.
    pub fn load(&mut self, value: T) {
        assert!(
            self.items.len() < self.capacity,
            "load into full fifo (capacity {})",
            self.capacity
        );
        self.items.push_back(value);
        self.start_len = self.items.len();
    }

    /// Removes all elements and staged pushes.
    pub fn clear(&mut self) {
        self.items.clear();
        self.staged.clear();
        self.start_len = 0;
    }
}

impl<T> Extend<T> for Fifo<T> {
    /// Extends the FIFO via [`load`](Fifo::load) semantics (unclocked).
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields more elements than remaining capacity.
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.load(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle<T>(f: &mut Fifo<T>, body: impl FnOnce(&mut Fifo<T>)) {
        f.begin_cycle();
        body(f);
        f.commit();
    }

    #[test]
    fn push_not_visible_same_cycle() {
        let mut f = Fifo::new(4);
        f.begin_cycle();
        f.push(1u32).unwrap();
        assert!(!f.can_pop());
        assert_eq!(f.pop(), None);
        f.commit();
        f.begin_cycle();
        assert_eq!(f.pop(), Some(1));
    }

    #[test]
    fn full_flag_is_registered() {
        let mut f = Fifo::new(1);
        cycle(&mut f, |f| f.push(1u32).unwrap());
        // FIFO now holds one element; same-cycle pop does not free space.
        f.begin_cycle();
        assert_eq!(f.pop(), Some(1));
        assert!(!f.can_push(), "pop must not free space within the cycle");
        assert!(f.push(2).is_err());
        f.commit();
        // Next cycle the space is visible again.
        f.begin_cycle();
        assert!(f.can_push());
        f.push(2).unwrap();
        f.commit();
        f.begin_cycle();
        assert_eq!(f.pop(), Some(2));
    }

    #[test]
    fn capacity_respected_across_staged_pushes() {
        let mut f = Fifo::new(2);
        f.begin_cycle();
        f.push(1u8).unwrap();
        f.push(2u8).unwrap();
        assert!(f.push(3u8).is_err());
        f.commit();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn fifo_preserves_order() {
        let mut f = Fifo::new(8);
        cycle(&mut f, |f| {
            for i in 0..5u32 {
                f.push(i).unwrap();
            }
        });
        f.begin_cycle();
        let drained: Vec<_> = std::iter::from_fn(|| f.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn load_and_extend_bypass_clocking() {
        let mut f = Fifo::new(3);
        f.extend([1u8, 2, 3]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.front(), Some(&1));
    }

    #[test]
    #[should_panic(expected = "load into full fifo")]
    fn load_into_full_fifo_panics() {
        let mut f = Fifo::new(1);
        f.load(1u8);
        f.load(2u8);
    }

    #[test]
    fn clear_resets_everything() {
        let mut f = Fifo::new(4);
        f.begin_cycle();
        f.push(1u8).unwrap();
        f.clear();
        f.commit();
        assert!(f.is_empty());
        assert_eq!(f.committed_len(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn steady_state_throughput_one_per_cycle() {
        // A FIFO of depth >= 2 sustains one element per cycle.
        let mut f = Fifo::new(2);
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for _ in 0..100 {
            f.begin_cycle();
            if f.can_pop() {
                f.pop();
                popped += 1;
            }
            if f.can_push() {
                f.push(0u8).unwrap();
                pushed += 1;
            }
            f.commit();
        }
        assert!(popped >= 98, "popped only {popped} in 100 cycles");
        assert!(pushed >= 99);
    }
}
