//! Cycle-level synchronous hardware simulation kernel with FPGA device,
//! resource, timing, and power models.
//!
//! `hwsim` is the substrate on which the hardware designs of the
//! acceleration-landscape reproduction are built. It provides:
//!
//! * a **simulation kernel** ([`Component`], [`Simulator`]) implementing the
//!   classic two-phase synchronous-circuit discipline: every clock cycle,
//!   all components first *evaluate* (compute combinational outputs and
//!   stage register updates against the state at the start of the cycle)
//!   and then *commit* (latch the staged updates). Evaluation order never
//!   affects results;
//! * a **parallel scheduling layer** ([`par`]): designs that expose
//!   independent sub-trees via [`Sharded`] can be driven by a
//!   [`ParSimulator`] that evaluates shards across a persistent worker
//!   pool with a barrier per phase — cycle-exact with respect to the
//!   sequential [`Simulator`];
//! * **hardware building blocks**: registered FIFOs ([`Fifo`]), registers
//!   ([`Register`]), fixed delay lines ([`DelayLine`]), and a block-RAM
//!   model ([`Bram`]) with port accounting and activity counters;
//! * **synthesis-report models**: an FPGA device catalog ([`Device`],
//!   [`devices`]), LUT/FF/BRAM resource accounting ([`Resources`],
//!   [`Utilization`]), a fan-out-driven maximum-clock-frequency estimator
//!   ([`TimingProfile`], [`estimate_fmax`]) and a static + dynamic power
//!   model ([`PowerModel`]).
//!
//! The synthesis-report models are *models of a synthesis tool*, not
//! measurements: their constants are calibrated against the feasibility
//! matrix and data points reported in the ICDCS'17 paper (see `DESIGN.md`
//! at the repository root).
//!
//! # Example
//!
//! Simulate a two-stage pipeline built from FIFOs:
//!
//! ```
//! use hwsim::{Component, Fifo, Simulator};
//!
//! struct Pipeline {
//!     input: Fifo<u64>,
//!     output: Fifo<u64>,
//! }
//!
//! impl Component for Pipeline {
//!     fn begin_cycle(&mut self) {
//!         self.input.begin_cycle();
//!         self.output.begin_cycle();
//!     }
//!     fn eval(&mut self) {
//!         if self.input.can_pop() && self.output.can_push() {
//!             let v = self.input.pop().unwrap();
//!             self.output.push(v + 1).unwrap();
//!         }
//!     }
//!     fn commit(&mut self) {
//!         self.input.commit();
//!         self.output.commit();
//!     }
//! }
//!
//! let mut p = Pipeline { input: Fifo::new(4), output: Fifo::new(4) };
//! p.input.load(7);
//! let mut sim = Simulator::new();
//! sim.run(&mut p, 2);
//! assert_eq!(p.output.pop(), Some(8));
//! ```

// `deny` rather than `forbid`: the `par` module's worker pool hands shard
// pointers across threads and carries the crate's only `unsafe`, behind a
// module-local allow with documented invariants.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bram;
mod device;
mod error;
mod fifo;
pub mod par;
mod power;
mod reg;
mod resources;
mod sim;
mod timing;
mod trace;

pub use bram::{Bram, BramStats};
pub use device::{devices, Device, Family};
pub use error::{CapacityError, FifoFullError};
pub use fifo::Fifo;
pub use par::{Control, Engine, ParSimulator, ParStats, Shard, Sharded, WorkerStats};
pub use power::{PowerModel, PowerReport};
pub use reg::{DelayLine, Register};
pub use resources::{MemoryMapping, Resources, Utilization};
pub use resources::LUTRAM_THRESHOLD_BITS as LUTRAM_THRESHOLD_BITS_DEFAULT;
pub use sim::{Component, Simulator};
pub use timing::{estimate_fmax, Frequency, TimingProfile};
pub use trace::{SignalId, TraceRecorder};
