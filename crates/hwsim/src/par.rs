//! Parallel scheduling layer for the two-phase simulation kernel.
//!
//! The two-phase discipline ([`Component`]) guarantees that *sibling*
//! components — components that do not touch each other's state within a
//! phase — can evaluate in any order. [`ParSimulator`] exploits the
//! stronger corollary: siblings can evaluate *concurrently*. A design
//! exposes its independent sub-trees ("shards") through the [`Sharded`]
//! trait, and the parallel engine partitions them across a pool of worker
//! threads that stays alive for an entire [`run_driven`](Engine::run_driven)
//! call, amortizing thread start-up over the whole run.
//!
//! # Barrier schedule
//!
//! Every simulated cycle executes the same phase sequence, with a
//! rendezvous (`⊣`) after each parallel region:
//!
//! ```text
//! coord_begin_cycle → [shard begin_cycle ∥ …] ⊣
//! coord_eval_pre    → [shard eval        ∥ …] ⊣
//! coord_eval_post   →
//! coord_commit      → [shard commit      ∥ …] ⊣
//! ```
//!
//! Coordinator phases run exclusively on the driving thread; shard phases
//! run across the pool (the driving thread processes chunk 0 itself).
//! Because shards never share state with each other, and the coordinator
//! only touches shard state in its exclusive phases, every cross-thread
//! interaction is ordered by a barrier — the schedule is *cycle-exact*:
//! it produces bit-identical state evolution to the sequential
//! [`Simulator`] stepping the same design.
//!
//! # Why this is safe
//!
//! Shard references are re-borrowed from the design (via
//! [`Sharded::shards`]) immediately before each parallel region and
//! released at its barrier; the coordinator does not touch the design
//! while workers hold them. The pointer hand-off to worker threads is the
//! one place `unsafe` appears (see `SendPtr`), with disjointness
//! guaranteed by chunked partitioning and ordering guaranteed by the
//! barrier's release/acquire pairs.

#![allow(unsafe_code)]

use crate::sim::{Component, Simulator};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Driver verdict returned by a [`run_driven`](Engine::run_driven) tick
/// callback, controlling how the engine proceeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Simulate one cycle, then call the tick again.
    Continue,
    /// Stop before simulating another cycle.
    Stop,
    /// Simulate `n` cycles (at least one) without calling the tick —
    /// the batched drive mode. Only legal when the driver knows no
    /// observation or injection is needed inside the gap; per-cycle
    /// drivers (saturation offers, latency tracking) must use
    /// [`Control::Continue`] to stay cycle-exact.
    Skip(u64),
}

/// A unit of parallel work: an independent sub-tree of a design.
///
/// Automatically implemented for every `Component + Send` type. Shards
/// handed out by one [`Sharded::shards`] call must be mutually disjoint
/// (the borrow checker enforces this) and independent: a shard's
/// `begin_cycle`/`eval`/`commit` must not observe any other shard's
/// state.
pub trait Shard: Send {
    /// [`Component::begin_cycle`] for this shard.
    fn begin_cycle(&mut self);
    /// [`Component::eval`] for this shard.
    fn eval(&mut self);
    /// [`Component::commit`] for this shard.
    fn commit(&mut self);
}

impl<T: Component + Send> Shard for T {
    fn begin_cycle(&mut self) {
        Component::begin_cycle(self);
    }
    fn eval(&mut self) {
        Component::eval(self);
    }
    fn commit(&mut self) {
        Component::commit(self);
    }
}

/// A design that can expose parallel shards to a [`ParSimulator`].
///
/// The decomposition must be *exactly equivalent* to the plain
/// [`Component`] cycle:
///
/// * `begin_cycle()` ≡ `coord_begin_cycle()` + every shard's
///   `begin_cycle()` (any order — the states are disjoint);
/// * `eval()` ≡ `coord_eval_pre()`, then every shard's `eval()` (any
///   order), then `coord_eval_post()`;
/// * `commit()` ≡ `coord_commit()` + every shard's `commit()` (any
///   order).
///
/// Contract for implementors:
///
/// * [`coord_begin_cycle`](Sharded::coord_begin_cycle) and
///   [`coord_commit`](Sharded::coord_commit) must not touch shard state
///   (they may run while shards are mid-phase on other threads);
/// * [`coord_eval_pre`](Sharded::coord_eval_pre) and
///   [`coord_eval_post`](Sharded::coord_eval_post) run exclusively and
///   *may* touch shard state — this is where networks push into and pop
///   out of the shards' two-phase FIFOs;
/// * [`shards`](Sharded::shards) must report the same decomposition on
///   every call within one run.
///
/// Every method has a default forwarding to the sequential [`Component`]
/// implementation with an empty shard list, so `impl Sharded for T {}`
/// opts a design out of parallelism (a [`ParSimulator`] then degenerates
/// to the sequential schedule, still cycle-exact).
pub trait Sharded: Component {
    /// Begin-phase work for coordinator-owned state only.
    fn coord_begin_cycle(&mut self) {
        Component::begin_cycle(self);
    }

    /// Eval-phase work that must happen *before* shard evaluation
    /// (e.g. distribution networks staging pushes into shard FIFOs).
    fn coord_eval_pre(&mut self) {
        Component::eval(self);
    }

    /// Eval-phase work that must happen *after* shard evaluation
    /// (e.g. gathering networks collecting from shard FIFOs).
    fn coord_eval_post(&mut self) {}

    /// Commit-phase work for coordinator-owned state only.
    fn coord_commit(&mut self) {
        Component::commit(self);
    }

    /// The design's independent sub-trees. Empty (the default) means the
    /// design is driven entirely by the coordinator phases.
    fn shards(&mut self) -> Vec<&mut dyn Shard> {
        Vec::new()
    }
}

/// A simulation engine that can drive a [`Sharded`] design under a
/// driver callback. Implemented by the sequential [`Simulator`] and the
/// parallel [`ParSimulator`], so harnesses can be generic over both.
pub trait Engine {
    /// Clock cycles simulated so far.
    fn cycle(&self) -> u64;

    /// Drives `root` for at most `max_cycles` cycles. Before each cycle
    /// the `tick` callback runs on the driving thread (with every worker
    /// quiescent, so it may freely inspect and mutate the design) and
    /// decides how to proceed; see [`Control`]. Returns `true` if the
    /// tick stopped the run, `false` if the cycle budget ran out.
    fn run_driven<S: Sharded + ?Sized>(
        &mut self,
        root: &mut S,
        max_cycles: u64,
        tick: &mut dyn FnMut(&mut S, u64) -> Control,
    ) -> bool;
}

impl Engine for Simulator {
    fn cycle(&self) -> u64 {
        Simulator::cycle(self)
    }

    fn run_driven<S: Sharded + ?Sized>(
        &mut self,
        root: &mut S,
        max_cycles: u64,
        tick: &mut dyn FnMut(&mut S, u64) -> Control,
    ) -> bool {
        let mut free = 0u64;
        for _ in 0..max_cycles {
            if free == 0 {
                match tick(root, self.cycle()) {
                    Control::Stop => return true,
                    Control::Continue => free = 1,
                    Control::Skip(n) => free = n.max(1),
                }
            }
            self.step(root);
            free -= 1;
        }
        false
    }
}

/// Per-worker utilization accounting for one
/// [`run_driven`](Engine::run_driven) call (worker 0 is the driving
/// thread).
///
/// The cycle-domain fields are always collected — they are a handful of
/// integer adds per phase and deterministic, so the accounting identity
/// `busy_cycles + wait_cycles == ParStats::cycles` holds exactly for
/// every worker at any thread count. The `_ns` wall-clock fields need
/// `Instant` reads in the barrier hot path and are only collected with
/// the `obs` feature (the default); without it they read 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Simulated cycles in which this worker executed at least one shard
    /// phase.
    pub busy_cycles: u64,
    /// Simulated cycles in which this worker's chunk was empty in every
    /// phase (it only rendezvoused at the barriers).
    pub wait_cycles: u64,
    /// Total shard-phase executions (3 per shard per cycle in steady
    /// state) — unequal chunk sizes show up here as load imbalance.
    /// 0 under the sequential fallback, which does not decompose the
    /// design into shards.
    pub shards_executed: u64,
    /// Wall-clock nanoseconds spent executing shard phases (`obs` only).
    pub busy_ns: u64,
    /// Wall-clock nanoseconds spent waiting at phase barriers — for
    /// workers this includes the coordinator's exclusive phases (`obs`
    /// only).
    pub wait_ns: u64,
}

impl WorkerStats {
    /// Fraction of this worker's wall-clock spent executing shards
    /// (`busy_ns / (busy_ns + wait_ns)`), or `None` without timing data
    /// (`obs` feature off, or a zero-cycle run).
    #[must_use]
    pub fn utilization(&self) -> Option<f64> {
        let total = self.busy_ns + self.wait_ns;
        (total > 0).then(|| self.busy_ns as f64 / total as f64)
    }
}

/// Utilization report for the most recent
/// [`run_driven`](Engine::run_driven) call of a [`ParSimulator`] —
/// retrieved with [`ParSimulator::last_stats`] /
/// [`ParSimulator::take_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Worker threads used, including the driving thread. 1 means the
    /// sequential fallback ran (thread budget 1, or fewer than two
    /// shards).
    pub threads: usize,
    /// Simulated cycles covered by this report.
    pub cycles: u64,
    /// Wall-clock nanoseconds for the whole run (`obs` feature only).
    pub run_ns: u64,
    /// Wall-clock nanoseconds in the coordinator's exclusive phases —
    /// network pushes/pops, result gathering, shard staging (`obs` only).
    pub coord_ns: u64,
    /// Per-worker accounting; index 0 is the driving thread.
    pub workers: Vec<WorkerStats>,
    /// Per-worker wall-clock span rings (`sim.worker.N` tracks, one span
    /// per shard phase chunk), collected only while
    /// [`obs::trace::enabled`] — empty otherwise and under the
    /// sequential fallback.
    pub rings: Vec<obs::trace::TraceRing>,
}

impl ParStats {
    /// Fraction of the run's wall-clock spent in exclusive coordinator
    /// phases — the serial share that bounds parallel speedup (Amdahl).
    /// `None` without timing data.
    #[must_use]
    pub fn coordinator_share(&self) -> Option<f64> {
        (self.run_ns > 0).then(|| self.coord_ns as f64 / self.run_ns as f64)
    }

    /// Publishes the report into an [`obs::Registry`] under
    /// `{prefix}threads`, `{prefix}cycles`, `{prefix}run_ns`,
    /// `{prefix}coord_ns`, and `{prefix}worker.N.{busy_cycles,
    /// wait_cycles, shards_executed, busy_ns, wait_ns}`.
    pub fn observe(&self, reg: &mut obs::Registry, prefix: &str) {
        reg.record(format!("{prefix}threads"), self.threads as u64);
        reg.record(format!("{prefix}cycles"), self.cycles);
        reg.record(format!("{prefix}run_ns"), self.run_ns);
        reg.record(format!("{prefix}coord_ns"), self.coord_ns);
        for (i, w) in self.workers.iter().enumerate() {
            reg.record(format!("{prefix}worker.{i}.busy_cycles"), w.busy_cycles);
            reg.record(format!("{prefix}worker.{i}.wait_cycles"), w.wait_cycles);
            reg.record(
                format!("{prefix}worker.{i}.shards_executed"),
                w.shards_executed,
            );
            reg.record(format!("{prefix}worker.{i}.busy_ns"), w.busy_ns);
            reg.record(format!("{prefix}worker.{i}.wait_ns"), w.wait_ns);
        }
    }
}

/// A monotonic timestamp when the `obs` feature collects wall-clock
/// phase timings; a zero-sized unit otherwise, so call sites read the
/// same either way.
#[cfg(feature = "obs")]
type Stamp = std::time::Instant;
#[cfg(not(feature = "obs"))]
type Stamp = ();

#[cfg(feature = "obs")]
fn stamp() -> Stamp {
    std::time::Instant::now()
}
#[cfg(not(feature = "obs"))]
fn stamp() -> Stamp {}

#[cfg(feature = "obs")]
fn lap(since: Stamp) -> u64 {
    since.elapsed().as_nanos() as u64
}
#[cfg(not(feature = "obs"))]
fn lap(_since: Stamp) -> u64 {
    0
}

const OP_BEGIN: u64 = 0;
const OP_EVAL: u64 = 1;
const OP_COMMIT: u64 = 2;
const OP_EXIT: u64 = 3;

fn op_name(op: u64) -> &'static str {
    match op {
        OP_BEGIN => "begin",
        OP_EVAL => "eval",
        _ => "commit",
    }
}

/// A worker's span ring, allocated only when tracing is on at pool
/// start-up so the traced-off hot path carries a `None` check and
/// nothing else.
fn worker_ring(index: usize) -> Option<obs::trace::TraceRing> {
    obs::trace::enabled().then(|| {
        obs::trace::TraceRing::new(format!("sim.worker.{index}"), obs::trace::TimeDomain::Wall)
    })
}

/// A raw pointer to a shard that may cross a thread boundary.
///
/// Safety rests on the pool protocol, not the type: each pointer is
/// dereferenced by exactly one thread per phase (disjoint chunks), only
/// between a phase release and that thread's completion signal, while
/// the `&mut` borrow it was derived from is live on the coordinator.
#[derive(Clone, Copy)]
struct SendPtr(*mut dyn Shard);

// SAFETY: see `SendPtr` — exclusivity and ordering are enforced by the
// phase barriers in `Gate`.
unsafe impl Send for SendPtr {}

/// Shared state between the coordinator and the worker pool.
struct Gate {
    /// Bumped once per phase release; workers wait for it to change.
    epoch: AtomicU64,
    /// Which shard operation the current phase runs (`OP_*`).
    op: AtomicU64,
    /// Workers that have not finished the current phase.
    remaining: AtomicUsize,
    /// Workers that died to a panic (excluded from future phases so the
    /// run unwinds instead of deadlocking; the panic resurfaces when the
    /// thread scope joins).
    dead: AtomicUsize,
    /// Shard pointers for the current phase, re-staged every phase.
    jobs: Mutex<Vec<SendPtr>>,
    /// Per-worker utilization and span ring, published by each worker at
    /// `OP_EXIT` and collected by the coordinator after the pool joins.
    stats: Mutex<Vec<(usize, WorkerStats, Option<obs::trace::TraceRing>)>>,
    /// Pool size including the coordinator.
    threads: usize,
}

impl Gate {
    fn new(threads: usize) -> Self {
        Gate {
            epoch: AtomicU64::new(0),
            op: AtomicU64::new(OP_EXIT),
            remaining: AtomicUsize::new(0),
            dead: AtomicUsize::new(0),
            jobs: Mutex::new(Vec::new()),
            stats: Mutex::new(Vec::new()),
            threads,
        }
    }

    /// The job range worker `index` owns when `len` shards are staged.
    fn chunk(&self, len: usize, index: usize) -> (usize, usize) {
        (len * index / self.threads, len * (index + 1) / self.threads)
    }

    /// Stages the shard pointers for the next phase. Callable only while
    /// every worker is quiescent.
    fn stage(&self, shards: Vec<&mut dyn Shard>) {
        let mut jobs = self.jobs.lock().expect("pool poisoned");
        jobs.clear();
        jobs.extend(shards.into_iter().map(|s| {
            let ptr: *mut (dyn Shard + '_) = s;
            // SAFETY: pure lifetime erasure (identical layout); every use
            // of the pointer happens before the next exclusive access to
            // the design, i.e. while the erased borrow is still live.
            SendPtr(unsafe {
                std::mem::transmute::<*mut (dyn Shard + '_), *mut (dyn Shard + 'static)>(ptr)
            })
        }));
    }

    /// Releases the pool into a phase running `op` on every shard.
    fn release(&self, op: u64) {
        let live = self.threads - 1 - self.dead.load(Ordering::Acquire);
        self.remaining.store(live, Ordering::Release);
        self.op.store(op, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Runs worker `index`'s chunk of the current phase on this thread.
    /// Returns the number of shards executed.
    fn run_chunk(&self, index: usize, op: u64, scratch: &mut Vec<SendPtr>) -> usize {
        scratch.clear();
        {
            let jobs = self.jobs.lock().expect("pool poisoned");
            let (lo, hi) = self.chunk(jobs.len(), index);
            scratch.extend_from_slice(&jobs[lo..hi]);
        }
        for ptr in scratch.iter() {
            // SAFETY: `ptr` came from a `&mut dyn Shard` staged for this
            // phase; chunks are disjoint, so this thread has exclusive
            // access, and the release/acquire pair on `epoch` /
            // `remaining` orders the access against the coordinator.
            let shard = unsafe { &mut *ptr.0 };
            match op {
                OP_BEGIN => shard.begin_cycle(),
                OP_EVAL => shard.eval(),
                _ => shard.commit(),
            }
        }
        scratch.len()
    }

    /// Spins (then yields) until every worker finished the phase.
    fn wait_workers(&self) {
        spin_until(|| self.remaining.load(Ordering::Acquire) == 0);
    }
}

fn spin_until(cond: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            // On oversubscribed hosts (more workers than CPUs) this path
            // keeps barriers making progress instead of burning a quantum.
            std::thread::yield_now();
        }
    }
}

/// Marks the worker dead if its shard work panics, so the coordinator's
/// barriers keep functioning while the panic propagates to the scope
/// join.
struct WorkerPanicGuard<'a> {
    gate: &'a Gate,
    in_phase: bool,
}

impl Drop for WorkerPanicGuard<'_> {
    fn drop(&mut self) {
        if self.in_phase {
            self.gate.dead.fetch_add(1, Ordering::Release);
            self.gate.remaining.fetch_sub(1, Ordering::Release);
        }
    }
}

fn worker_loop(gate: &Gate, index: usize) {
    // The epoch at pool creation is 0; starting from the *current* value
    // instead would race with an early first release and miss the phase.
    let mut seen = 0u64;
    let mut scratch: Vec<SendPtr> = Vec::new();
    let mut guard = WorkerPanicGuard { gate, in_phase: false };
    let mut stats = WorkerStats::default();
    let mut ring = worker_ring(index);
    let mut cycle_had_work = false;
    loop {
        let waiting = stamp();
        spin_until(|| gate.epoch.load(Ordering::Acquire) != seen);
        stats.wait_ns += lap(waiting);
        seen = gate.epoch.load(Ordering::Acquire);
        let op = gate.op.load(Ordering::Acquire);
        if op == OP_EXIT {
            gate.stats.lock().expect("pool poisoned").push((index, stats, ring));
            return;
        }
        guard.in_phase = true;
        let busy = stamp();
        let span = ring.as_ref().map(|_| obs::trace::now_ns());
        let executed = gate.run_chunk(index, op, &mut scratch);
        if let (Some(ring), Some(t0)) = (ring.as_mut(), span) {
            let dur = obs::trace::now_ns().saturating_sub(t0);
            ring.record_arg(op_name(op), t0, dur, executed as u64);
        }
        stats.busy_ns += lap(busy);
        guard.in_phase = false;
        stats.shards_executed += executed as u64;
        cycle_had_work |= executed > 0;
        if op == OP_COMMIT {
            // The commit barrier closes the cycle; classify it. A run
            // only stops between cycles, so triples are never partial.
            if cycle_had_work {
                stats.busy_cycles += 1;
            } else {
                stats.wait_cycles += 1;
            }
            cycle_had_work = false;
        }
        gate.remaining.fetch_sub(1, Ordering::Release);
    }
}

/// Releases the pool for exit even when the coordinator unwinds, so the
/// thread scope can always join.
struct ShutdownGuard<'a>(&'a Gate);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.release(OP_EXIT);
    }
}

/// A drop-in parallel alternative to [`Simulator`] for [`Sharded`]
/// designs.
///
/// With `threads <= 1`, or for designs with fewer than two shards, it
/// runs the plain sequential [`Component`] schedule — zero threads, zero
/// barriers, bit-identical to [`Simulator`]. Otherwise it runs the
/// barrier schedule described in the [module docs](self), which is
/// cycle-exact by construction: every test configuration must produce
/// identical cycle counts, results, and statistics to the sequential
/// engine (see the cross-engine equivalence suite at the workspace
/// root).
#[derive(Debug, Clone)]
pub struct ParSimulator {
    threads: usize,
    cycle: u64,
    last_stats: Option<ParStats>,
}

impl ParSimulator {
    /// Creates an engine using up to `threads` OS threads per run
    /// (including the driving thread). `0` is treated as [`auto`](Self::auto).
    pub fn new(threads: usize) -> Self {
        if threads == 0 {
            Self::auto()
        } else {
            ParSimulator { threads, cycle: 0, last_stats: None }
        }
    }

    /// Creates an engine sized from the `ACCEL_THREADS` environment
    /// variable if set, else from the host's available parallelism.
    pub fn auto() -> Self {
        let threads = std::env::var("ACCEL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            });
        ParSimulator { threads, cycle: 0, last_stats: None }
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The number of clock cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Utilization report for the most recent
    /// [`run_driven`](Engine::run_driven) / [`run`](Self::run) /
    /// [`run_until`](Self::run_until) call. `None` before the first run.
    /// Each run replaces the previous report.
    pub fn last_stats(&self) -> Option<&ParStats> {
        self.last_stats.as_ref()
    }

    /// Takes ownership of the most recent utilization report, leaving
    /// `None`.
    pub fn take_stats(&mut self) -> Option<ParStats> {
        self.last_stats.take()
    }

    /// Advances the design by one clock cycle, sequentially (one cycle
    /// cannot amortize a pool; use [`run`](Self::run) or
    /// [`run_driven`](Engine::run_driven) for parallel execution).
    pub fn step<S: Sharded + ?Sized>(&mut self, root: &mut S) {
        root.begin_cycle();
        root.eval();
        root.commit();
        self.cycle += 1;
    }

    /// Advances the design by `cycles` clock cycles with the worker pool
    /// held for the whole batch (the batched drive mode).
    pub fn run<S: Sharded + ?Sized>(&mut self, root: &mut S, cycles: u64) {
        if cycles > 0 {
            self.run_driven(root, cycles, &mut |_, _| Control::Skip(cycles));
        }
    }

    /// Steps until `done` returns `true` (checked between cycles), or
    /// until `max_cycles` elapse. Returns `true` if the predicate fired.
    /// Matches [`Simulator::run_until`] exactly, cycle for cycle.
    pub fn run_until<S, F>(&mut self, root: &mut S, max_cycles: u64, mut done: F) -> bool
    where
        S: Sharded + ?Sized,
        F: FnMut(&S) -> bool,
    {
        let start = self.cycle;
        let fired = self.run_driven(root, max_cycles, &mut |r, c| {
            if c > start && done(r) {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        // The sequential engine checks the predicate after the final
        // cycle of the budget; the driven loop's tick runs only before
        // cycles, so mirror that last check here.
        fired || (self.cycle > start && done(root))
    }

    fn run_driven_sequential<S: Sharded + ?Sized>(
        &mut self,
        root: &mut S,
        max_cycles: u64,
        tick: &mut dyn FnMut(&mut S, u64) -> Control,
    ) -> bool {
        let start_cycle = self.cycle;
        let run_start = stamp();
        let mut stopped = false;
        let mut free = 0u64;
        for _ in 0..max_cycles {
            if free == 0 {
                match tick(root, self.cycle) {
                    Control::Stop => {
                        stopped = true;
                        break;
                    }
                    Control::Continue => free = 1,
                    Control::Skip(n) => free = n.max(1),
                }
            }
            root.begin_cycle();
            root.eval();
            root.commit();
            self.cycle += 1;
            free -= 1;
        }
        // The fallback is one fully-busy worker: the driving thread runs
        // every phase of every cycle and never waits.
        let cycles = self.cycle - start_cycle;
        let run_ns = lap(run_start);
        self.last_stats = Some(ParStats {
            threads: 1,
            cycles,
            run_ns,
            coord_ns: 0,
            workers: vec![WorkerStats {
                busy_cycles: cycles,
                wait_cycles: 0,
                shards_executed: 0,
                busy_ns: run_ns,
                wait_ns: 0,
            }],
            rings: Vec::new(),
        });
        publish_live(self.last_stats.as_ref().expect("just set"));
        stopped
    }

    fn run_driven_parallel<S: Sharded + ?Sized>(
        &mut self,
        root: &mut S,
        max_cycles: u64,
        tick: &mut dyn FnMut(&mut S, u64) -> Control,
        threads: usize,
    ) -> bool {
        let start_cycle = self.cycle;
        let run_start = stamp();
        let gate = Gate::new(threads);
        let mut coord = WorkerStats::default();
        let mut coord_ring = worker_ring(0);
        let mut coord_ns = 0u64;
        let stopped = std::thread::scope(|scope| {
            for index in 1..threads {
                let gate = &gate;
                scope.spawn(move || worker_loop(gate, index));
            }
            let _shutdown = ShutdownGuard(&gate);
            let mut scratch: Vec<SendPtr> = Vec::new();
            let mut free = 0u64;
            let mut stopped = false;
            for _ in 0..max_cycles {
                if free == 0 {
                    // Workers are quiescent here: the tick may inspect
                    // and mutate the whole design (offer tuples, drain
                    // results, test quiescence).
                    match tick(root, self.cycle) {
                        Control::Stop => {
                            stopped = true;
                            break;
                        }
                        Control::Continue => free = 1,
                        Control::Skip(n) => free = n.max(1),
                    }
                }
                let mut executed = 0usize;
                // Begin phase.
                let t = stamp();
                root.coord_begin_cycle();
                gate.stage(root.shards());
                coord_ns += lap(t);
                gate.release(OP_BEGIN);
                let t = stamp();
                let span = coord_ring.as_ref().map(|_| obs::trace::now_ns());
                let ran = gate.run_chunk(0, OP_BEGIN, &mut scratch);
                if let (Some(ring), Some(t0)) = (coord_ring.as_mut(), span) {
                    let dur = obs::trace::now_ns().saturating_sub(t0);
                    ring.record_arg("begin", t0, dur, ran as u64);
                }
                executed += ran;
                coord.busy_ns += lap(t);
                let t = stamp();
                gate.wait_workers();
                coord.wait_ns += lap(t);
                // Eval phase.
                let t = stamp();
                root.coord_eval_pre();
                gate.stage(root.shards());
                coord_ns += lap(t);
                gate.release(OP_EVAL);
                let t = stamp();
                let span = coord_ring.as_ref().map(|_| obs::trace::now_ns());
                let ran = gate.run_chunk(0, OP_EVAL, &mut scratch);
                if let (Some(ring), Some(t0)) = (coord_ring.as_mut(), span) {
                    let dur = obs::trace::now_ns().saturating_sub(t0);
                    ring.record_arg("eval", t0, dur, ran as u64);
                }
                executed += ran;
                coord.busy_ns += lap(t);
                let t = stamp();
                gate.wait_workers();
                coord.wait_ns += lap(t);
                let t = stamp();
                root.coord_eval_post();
                // Commit phase.
                root.coord_commit();
                gate.stage(root.shards());
                coord_ns += lap(t);
                gate.release(OP_COMMIT);
                let t = stamp();
                let span = coord_ring.as_ref().map(|_| obs::trace::now_ns());
                let ran = gate.run_chunk(0, OP_COMMIT, &mut scratch);
                if let (Some(ring), Some(t0)) = (coord_ring.as_mut(), span) {
                    let dur = obs::trace::now_ns().saturating_sub(t0);
                    ring.record_arg("commit", t0, dur, ran as u64);
                }
                executed += ran;
                coord.busy_ns += lap(t);
                let t = stamp();
                gate.wait_workers();
                coord.wait_ns += lap(t);
                coord.shards_executed += executed as u64;
                if executed > 0 {
                    coord.busy_cycles += 1;
                } else {
                    coord.wait_cycles += 1;
                }
                self.cycle += 1;
                free -= 1;
            }
            stopped
        });
        // The scope has joined every worker, so the published per-worker
        // stats are complete; slot them in by index (worker 0 is us).
        let mut workers = vec![WorkerStats::default(); threads];
        workers[0] = coord;
        let mut indexed_rings: Vec<(usize, obs::trace::TraceRing)> =
            coord_ring.into_iter().map(|r| (0, r)).collect();
        for (index, stats, ring) in gate.stats.into_inner().expect("pool poisoned") {
            workers[index] = stats;
            indexed_rings.extend(ring.map(|r| (index, r)));
        }
        indexed_rings.sort_by_key(|(index, _)| *index);
        self.last_stats = Some(ParStats {
            threads,
            cycles: self.cycle - start_cycle,
            run_ns: lap(run_start),
            coord_ns,
            workers,
            rings: indexed_rings.into_iter().map(|(_, r)| r).collect(),
        });
        publish_live(self.last_stats.as_ref().expect("just set"));
        stopped
    }
}

/// Publishes one finished drive segment into the process-global live
/// plane (`obs::live`) when it is armed: cumulative per-worker
/// busy/wait/shard counters plus a pool-wide `hwsim.par.utilization_pct`
/// gauge. Drive segments repeat (each `run`/`run_until` call is one), so
/// the counters accumulate across a simulation while the gauge tracks
/// the most recent segment. Costs one relaxed load when the plane is
/// unarmed.
fn publish_live(stats: &ParStats) {
    if !obs::live::active() {
        return;
    }
    let reg = obs::live::global();
    reg.counter("hwsim.par.cycles").add(stats.cycles);
    reg.gauge("hwsim.par.threads").set(stats.threads as u64);
    let (mut busy, mut wait) = (0u64, 0u64);
    for (i, w) in stats.workers.iter().enumerate() {
        busy += w.busy_ns;
        wait += w.wait_ns;
        reg.counter(&format!("hwsim.par.worker.{i}.busy_ns")).add(w.busy_ns);
        reg.counter(&format!("hwsim.par.worker.{i}.wait_ns")).add(w.wait_ns);
        reg.counter(&format!("hwsim.par.worker.{i}.shards")).add(w.shards_executed);
    }
    if let Some(pct) = (busy * 100).checked_div(busy + wait) {
        reg.gauge("hwsim.par.utilization_pct").set(pct);
    }
}

impl Default for ParSimulator {
    fn default() -> Self {
        Self::auto()
    }
}

impl Engine for ParSimulator {
    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn run_driven<S: Sharded + ?Sized>(
        &mut self,
        root: &mut S,
        max_cycles: u64,
        tick: &mut dyn FnMut(&mut S, u64) -> Control,
    ) -> bool {
        let threads = self.threads.min(root.shards().len());
        if threads <= 1 {
            self.run_driven_sequential(root, max_cycles, tick)
        } else {
            self.run_driven_parallel(root, max_cycles, tick, threads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Register;

    /// A bank of independent counters: the canonical sharded design.
    /// Each lane also records which cycles it observed, so tests can
    /// verify the schedule, not just the end state.
    struct Lane {
        reg: Register<u64>,
        evals: u64,
    }

    impl Component for Lane {
        fn begin_cycle(&mut self) {}
        fn eval(&mut self) {
            self.evals += 1;
            let next = self.reg.get() + 1;
            self.reg.set(next);
        }
        fn commit(&mut self) {
            self.reg.commit();
        }
    }

    struct Bank {
        lanes: Vec<Lane>,
        coord_pre: u64,
        coord_post: u64,
    }

    impl Bank {
        fn new(n: usize) -> Self {
            Bank {
                lanes: (0..n)
                    .map(|_| Lane { reg: Register::new(0), evals: 0 })
                    .collect(),
                coord_pre: 0,
                coord_post: 0,
            }
        }
    }

    impl Component for Bank {
        fn begin_cycle(&mut self) {}
        fn eval(&mut self) {
            self.coord_pre += 1;
            for lane in &mut self.lanes {
                Component::eval(lane);
            }
            self.coord_post += 1;
        }
        fn commit(&mut self) {
            for lane in &mut self.lanes {
                Component::commit(lane);
            }
        }
    }

    impl Sharded for Bank {
        fn coord_begin_cycle(&mut self) {}
        fn coord_eval_pre(&mut self) {
            self.coord_pre += 1;
        }
        fn coord_eval_post(&mut self) {
            self.coord_post += 1;
        }
        fn coord_commit(&mut self) {}
        fn shards(&mut self) -> Vec<&mut dyn Shard> {
            self.lanes.iter_mut().map(|l| l as &mut dyn Shard).collect()
        }
    }

    fn check_bank(bank: &Bank, cycles: u64) {
        for lane in &bank.lanes {
            assert_eq!(*lane.reg.get(), cycles);
            assert_eq!(lane.evals, cycles);
        }
        assert_eq!(bank.coord_pre, cycles);
        assert_eq!(bank.coord_post, cycles);
    }

    #[test]
    fn parallel_run_matches_sequential() {
        for threads in [1usize, 2, 3, 4, 8] {
            let mut bank = Bank::new(7);
            let mut sim = ParSimulator::new(threads);
            sim.run(&mut bank, 100);
            assert_eq!(sim.cycle(), 100);
            check_bank(&bank, 100);
        }
    }

    #[test]
    fn thread_budget_exceeding_shards_is_clamped() {
        let mut bank = Bank::new(2);
        let mut sim = ParSimulator::new(64);
        sim.run(&mut bank, 10);
        check_bank(&bank, 10);
    }

    #[test]
    fn driven_tick_sees_committed_state_every_cycle() {
        let mut bank = Bank::new(5);
        let mut sim = ParSimulator::new(4);
        let mut observed = Vec::new();
        sim.run_driven(&mut bank, 50, &mut |b: &mut Bank, cycle| {
            observed.push((cycle, *b.lanes[0].reg.get()));
            Control::Continue
        });
        // At each tick the lane value equals the cycle count: every
        // commit landed before the tick ran.
        assert_eq!(observed.len(), 50);
        for (cycle, value) in observed {
            assert_eq!(value, cycle);
        }
    }

    #[test]
    fn stop_ends_run_immediately() {
        let mut bank = Bank::new(4);
        let mut sim = ParSimulator::new(4);
        let stopped = sim.run_driven(&mut bank, 1_000, &mut |_, cycle| {
            if cycle == 17 { Control::Stop } else { Control::Continue }
        });
        assert!(stopped);
        assert_eq!(sim.cycle(), 17);
        check_bank(&bank, 17);
    }

    #[test]
    fn skip_batches_cycles_between_ticks() {
        let mut bank = Bank::new(4);
        let mut sim = ParSimulator::new(4);
        let mut ticks = 0u64;
        sim.run_driven(&mut bank, 100, &mut |_, _| {
            ticks += 1;
            Control::Skip(25)
        });
        assert_eq!(ticks, 4);
        check_bank(&bank, 100);
    }

    #[test]
    fn run_until_matches_sequential_semantics() {
        // Fire mid-run.
        let mut bank = Bank::new(3);
        let mut par = ParSimulator::new(3);
        let fired = par.run_until(&mut bank, 100, |b| *b.lanes[0].reg.get() == 7);
        assert!(fired);
        assert_eq!(par.cycle(), 7);

        // Budget exhaustion: predicate never fires.
        let mut bank = Bank::new(3);
        let mut par = ParSimulator::new(3);
        let fired = par.run_until(&mut bank, 5, |b| *b.lanes[0].reg.get() == 7);
        assert!(!fired);
        assert_eq!(par.cycle(), 5);

        // Fires exactly on the last budgeted cycle, like Simulator.
        let mut bank = Bank::new(3);
        let mut par = ParSimulator::new(3);
        let fired = par.run_until(&mut bank, 7, |b| *b.lanes[0].reg.get() == 7);
        assert!(fired);
    }

    #[test]
    fn unsharded_designs_fall_back_to_sequential() {
        struct Plain(Register<u64>);
        impl Component for Plain {
            fn begin_cycle(&mut self) {}
            fn eval(&mut self) {
                let next = self.0.get() + 1;
                self.0.set(next);
            }
            fn commit(&mut self) {
                self.0.commit();
            }
        }
        impl Sharded for Plain {}
        let mut plain = Plain(Register::new(0));
        let mut sim = ParSimulator::new(8);
        sim.run(&mut plain, 42);
        assert_eq!(*plain.0.get(), 42);
        assert_eq!(sim.cycle(), 42);
    }

    #[test]
    fn engine_trait_is_interchangeable() {
        fn drive<E: Engine>(engine: &mut E, bank: &mut Bank) -> u64 {
            engine.run_driven(bank, 1_000, &mut |b: &mut Bank, _| {
                if *b.lanes[0].reg.get() >= 13 { Control::Stop } else { Control::Continue }
            });
            engine.cycle()
        }
        let (mut a, mut b) = (Bank::new(4), Bank::new(4));
        let seq_cycles = drive(&mut Simulator::new(), &mut a);
        let par_cycles = drive(&mut ParSimulator::new(4), &mut b);
        assert_eq!(seq_cycles, par_cycles);
        assert_eq!(a.coord_pre, b.coord_pre);
    }

    #[test]
    fn stats_account_every_cycle_for_every_worker() {
        for threads in [1usize, 2, 3, 4] {
            let mut bank = Bank::new(7);
            let mut sim = ParSimulator::new(threads);
            assert!(sim.last_stats().is_none());
            sim.run(&mut bank, 50);
            let stats = sim.last_stats().expect("run recorded stats").clone();
            assert_eq!(stats.cycles, 50);
            assert_eq!(stats.threads, threads);
            assert_eq!(stats.workers.len(), if threads <= 1 { 1 } else { threads });
            for w in &stats.workers {
                assert_eq!(w.busy_cycles + w.wait_cycles, stats.cycles);
            }
            if threads > 1 {
                // Every shard runs all 3 phases of all 50 cycles exactly
                // once, across whichever workers own it.
                let total: u64 = stats.workers.iter().map(|w| w.shards_executed).sum();
                assert_eq!(total, 7 * 3 * 50);
            }
            let mut reg = obs::Registry::new();
            stats.observe(&mut reg, "par.");
            assert_eq!(reg.get("par.cycles"), Some(50));
            assert_eq!(reg.get("par.worker.0.wait_cycles"), Some(0));
            assert_eq!(sim.take_stats().as_ref(), Some(&stats));
            assert!(sim.last_stats().is_none());
        }
    }

    #[test]
    fn stats_replace_per_run_and_cover_stopped_runs() {
        let mut bank = Bank::new(4);
        let mut sim = ParSimulator::new(4);
        sim.run(&mut bank, 10);
        let stopped = sim.run_driven(&mut bank, 1_000, &mut |_, cycle| {
            if cycle == 13 { Control::Stop } else { Control::Continue }
        });
        assert!(stopped);
        // 10 cycles from the first run, stopped at absolute cycle 13.
        let stats = sim.last_stats().unwrap();
        assert_eq!(stats.cycles, 3);
        for w in &stats.workers {
            assert_eq!(w.busy_cycles + w.wait_cycles, 3);
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn tracing_collects_worker_rings_without_changing_results() {
        obs::trace::enable(1);
        let mut bank = Bank::new(7);
        let mut sim = ParSimulator::new(4);
        sim.run(&mut bank, 50);
        obs::trace::disable();
        check_bank(&bank, 50);
        let stats = sim.take_stats().unwrap();
        assert_eq!(stats.rings.len(), 4);
        assert_eq!(stats.rings[0].track(), "sim.worker.0");
        for ring in &stats.rings {
            assert!(!ring.is_empty(), "{} recorded no spans", ring.track());
            assert_eq!(ring.domain(), obs::trace::TimeDomain::Wall);
            for e in ring.events() {
                assert!(matches!(e.name, "begin" | "eval" | "commit"));
            }
        }
        // Tracing off: the next run collects no rings.
        let mut bank = Bank::new(7);
        sim.run(&mut bank, 10);
        assert!(sim.take_stats().unwrap().rings.is_empty());
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        struct Bomb(u64);
        impl Component for Bomb {
            fn begin_cycle(&mut self) {}
            fn eval(&mut self) {
                self.0 += 1;
                assert!(self.0 < 3, "shard exploded");
            }
            fn commit(&mut self) {}
        }
        struct Bombs(Vec<Bomb>);
        impl Component for Bombs {
            fn begin_cycle(&mut self) {}
            fn eval(&mut self) {
                for b in &mut self.0 {
                    Component::eval(b);
                }
            }
            fn commit(&mut self) {}
        }
        impl Sharded for Bombs {
            fn coord_begin_cycle(&mut self) {}
            fn coord_eval_pre(&mut self) {}
            fn coord_commit(&mut self) {}
            fn shards(&mut self) -> Vec<&mut dyn Shard> {
                self.0.iter_mut().map(|b| b as &mut dyn Shard).collect()
            }
        }
        let result = std::panic::catch_unwind(|| {
            let mut bombs = Bombs((0..4).map(Bomb).collect());
            let mut sim = ParSimulator::new(4);
            sim.run(&mut bombs, 100);
        });
        assert!(result.is_err(), "the shard panic must surface");
    }
}
