//! Static + dynamic power estimation — the power section of a synthesis
//! report.
//!
//! `P_total = P_static(device) + f · activity · Σ (resource · coefficient)`
//!
//! The per-resource coefficients are calibrated against the single power
//! pair the paper reports (bi-flow 1647.53 mW vs uni-flow 800.35 mW at 16
//! join cores, window 2^13) and then held fixed for every other
//! configuration; see `DESIGN.md` §6 and the calibration test in `joinhw`.

use std::fmt;

use crate::{Device, Frequency, Resources};

/// Coefficients of the dynamic-power model, in µW per MHz per unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Dynamic power per LUT (µW/MHz).
    pub lut_uw_per_mhz: f64,
    /// Dynamic power per flip-flop (µW/MHz).
    pub ff_uw_per_mhz: f64,
    /// Dynamic power per BRAM18 (µW/MHz).
    pub bram_uw_per_mhz: f64,
}

impl PowerModel {
    /// The calibrated model used throughout the reproduction.
    pub fn calibrated() -> Self {
        Self {
            lut_uw_per_mhz: 0.4814,
            ff_uw_per_mhz: 0.25,
            bram_uw_per_mhz: 15.49,
        }
    }

    /// Estimates power for a design using `resources` on `device`, clocked
    /// at `clock` with the given switching `activity` (fraction of cycles in
    /// which the average net toggles, in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside `[0, 1]`.
    pub fn report(
        &self,
        device: &Device,
        resources: Resources,
        clock: Frequency,
        activity: f64,
    ) -> PowerReport {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity must be within [0, 1], got {activity}"
        );
        let per_mhz = resources.luts as f64 * self.lut_uw_per_mhz
            + resources.ffs as f64 * self.ff_uw_per_mhz
            + resources.bram18 as f64 * self.bram_uw_per_mhz;
        let dynamic_mw = clock.mhz() * activity * per_mhz / 1_000.0;
        PowerReport {
            static_mw: device.static_power_mw,
            dynamic_mw,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// Estimated power split into static and dynamic components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerReport {
    /// Device leakage power in milliwatts.
    pub static_mw: f64,
    /// Switching power in milliwatts.
    pub dynamic_mw: f64,
}

impl PowerReport {
    /// Total power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.static_mw + self.dynamic_mw
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} mW (static {:.2} + dynamic {:.2})",
            self.total_mw(),
            self.static_mw,
            self.dynamic_mw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::XC5VLX50T;

    fn freq(mhz: f64) -> Frequency {
        Frequency::from_mhz(mhz)
    }

    #[test]
    fn zero_resources_cost_only_static_power() {
        let m = PowerModel::calibrated();
        let r = m.report(&XC5VLX50T, Resources::ZERO, freq(100.0), 1.0);
        assert_eq!(r.dynamic_mw, 0.0);
        assert_eq!(r.total_mw(), XC5VLX50T.static_power_mw);
    }

    #[test]
    fn dynamic_power_scales_linearly_with_frequency() {
        let m = PowerModel::calibrated();
        let res = Resources { luts: 1_000, ffs: 1_000, bram18: 10 };
        let p100 = m.report(&XC5VLX50T, res, freq(100.0), 1.0);
        let p200 = m.report(&XC5VLX50T, res, freq(200.0), 1.0);
        assert!((p200.dynamic_mw / p100.dynamic_mw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_power_scales_linearly_with_activity() {
        let m = PowerModel::calibrated();
        let res = Resources { luts: 1_000, ffs: 0, bram18: 0 };
        let full = m.report(&XC5VLX50T, res, freq(100.0), 1.0);
        let half = m.report(&XC5VLX50T, res, freq(100.0), 0.5);
        assert!((full.dynamic_mw / half.dynamic_mw - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "activity must be within")]
    fn activity_out_of_range_panics() {
        PowerModel::calibrated().report(&XC5VLX50T, Resources::ZERO, freq(1.0), 1.5);
    }

    #[test]
    fn display_formats_components() {
        let r = PowerReport { static_mw: 1.0, dynamic_mw: 2.5 };
        assert_eq!(r.to_string(), "3.50 mW (static 1.00 + dynamic 2.50)");
    }

    #[test]
    fn bigger_designs_burn_more_power() {
        let m = PowerModel::calibrated();
        let small = Resources { luts: 5_000, ffs: 5_000, bram18: 64 };
        let large = Resources { luts: 15_000, ffs: 12_000, bram18: 128 };
        let ps = m.report(&XC5VLX50T, small, freq(100.0), 1.0);
        let pl = m.report(&XC5VLX50T, large, freq(100.0), 1.0);
        assert!(pl.total_mw() > ps.total_mw());
    }
}
