//! Registers and delay lines: the sequential primitives of the kernel.

use std::collections::VecDeque;

/// A D-type register: reads return the value latched at the previous clock
/// edge; writes become visible only after [`commit`](Register::commit).
///
/// # Example
///
/// ```
/// use hwsim::Register;
///
/// let mut r = Register::new(1u32);
/// r.set(2);
/// assert_eq!(*r.get(), 1); // old value until the clock edge
/// r.commit();
/// assert_eq!(*r.get(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Register<T> {
    current: T,
    next: Option<T>,
}

impl<T> Register<T> {
    /// Creates a register holding `initial`.
    pub fn new(initial: T) -> Self {
        Self {
            current: initial,
            next: None,
        }
    }

    /// The value latched at the last clock edge.
    pub fn get(&self) -> &T {
        &self.current
    }

    /// Stages `value` to be latched at the next clock edge. A later `set`
    /// in the same cycle wins (last-write semantics, as in HDL processes).
    pub fn set(&mut self, value: T) {
        self.next = Some(value);
    }

    /// Returns `true` if a new value has been staged this cycle.
    pub fn is_staged(&self) -> bool {
        self.next.is_some()
    }

    /// Latches the staged value, if any.
    pub fn commit(&mut self) {
        if let Some(v) = self.next.take() {
            self.current = v;
        }
    }

    /// Consumes the register and returns the latched value.
    pub fn into_inner(self) -> T {
        self.current
    }
}

impl<T: Default> Default for Register<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// A fixed-length pipeline of registers: a value pushed in emerges
/// `depth` clock edges later.
///
/// Used to model pipelined wiring (e.g. the stages a tuple traverses in a
/// scalable distribution network) without instantiating full FIFOs.
///
/// # Example
///
/// ```
/// use hwsim::DelayLine;
///
/// let mut d: DelayLine<u8> = DelayLine::new(2);
/// d.push(Some(5));
/// d.commit();
/// assert_eq!(d.output(), None); // still in flight
/// d.push(None);
/// d.commit();
/// assert_eq!(d.output(), Some(&5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DelayLine<T> {
    stages: VecDeque<Option<T>>,
    staged_input: Option<Option<T>>,
}

impl<T> DelayLine<T> {
    /// Creates a delay line of `depth` register stages.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero: a zero-depth delay line is a wire, not a
    /// sequential element.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "delay line depth must be at least 1");
        let mut stages = VecDeque::with_capacity(depth);
        for _ in 0..depth {
            stages.push_back(None);
        }
        Self {
            stages,
            staged_input: None,
        }
    }

    /// Number of register stages.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Stages this cycle's input (use `None` for a bubble).
    pub fn push(&mut self, value: Option<T>) {
        self.staged_input = Some(value);
    }

    /// The value emerging from the final stage this cycle.
    pub fn output(&self) -> Option<&T> {
        self.stages.back().and_then(|s| s.as_ref())
    }

    /// Advances the pipeline by one clock edge. If no input was staged this
    /// cycle, a bubble enters the first stage.
    pub fn commit(&mut self) {
        let input = self.staged_input.take().unwrap_or(None);
        self.stages.pop_back();
        self.stages.push_front(input);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_basic_latching() {
        let mut r = Register::new(0u64);
        r.set(42);
        assert!(r.is_staged());
        assert_eq!(*r.get(), 0);
        r.commit();
        assert!(!r.is_staged());
        assert_eq!(*r.get(), 42);
    }

    #[test]
    fn register_last_write_wins() {
        let mut r = Register::new(0u64);
        r.set(1);
        r.set(2);
        r.commit();
        assert_eq!(*r.get(), 2);
    }

    #[test]
    fn register_commit_without_set_is_noop() {
        let mut r = Register::new(9u8);
        r.commit();
        assert_eq!(*r.get(), 9);
    }

    #[test]
    fn register_into_inner() {
        let r = Register::new(String::from("x"));
        assert_eq!(r.into_inner(), "x");
    }

    #[test]
    fn register_default() {
        let r: Register<u32> = Register::default();
        assert_eq!(*r.get(), 0);
    }

    #[test]
    fn delay_line_latency_matches_depth() {
        for depth in 1..6usize {
            let mut d: DelayLine<u32> = DelayLine::new(depth);
            d.push(Some(99));
            d.commit();
            let mut seen_after = 1;
            while d.output().is_none() {
                d.push(None);
                d.commit();
                seen_after += 1;
                assert!(seen_after <= depth, "value lost in delay line");
            }
            assert_eq!(seen_after, depth);
            assert_eq!(d.output(), Some(&99));
        }
    }

    #[test]
    fn delay_line_streams_back_to_back_values() {
        let mut d: DelayLine<u32> = DelayLine::new(3);
        let mut out = Vec::new();
        for i in 0..10u32 {
            d.push(Some(i));
            d.commit();
            if let Some(&v) = d.output() {
                out.push(v);
            }
        }
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn delay_line_bubble_when_no_push() {
        let mut d: DelayLine<u32> = DelayLine::new(1);
        d.push(Some(1));
        d.commit();
        assert_eq!(d.output(), Some(&1));
        d.commit(); // no push: bubble
        assert_eq!(d.output(), None);
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn delay_line_zero_depth_panics() {
        let _ = DelayLine::<u8>::new(0);
    }
}
