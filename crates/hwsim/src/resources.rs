//! FPGA resource accounting: LUTs, flip-flops, and block RAM.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

use crate::{CapacityError, Device};

/// Usable bits in one BRAM18 unit.
pub const BRAM18_BITS: u64 = 18 * 1024;

/// Memories at or below this many bits map to distributed LUT-RAM; larger
/// memories map to block RAM. (One SLICEM LUT stores 32 bits of
/// quad-port distributed RAM in this model.)
pub const LUTRAM_THRESHOLD_BITS: u64 = 4_096;

/// Bits of distributed RAM provided by one LUT.
pub const LUTRAM_BITS_PER_LUT: u64 = 32;

/// A vector of FPGA resources.
///
/// Supports addition and scalar multiplication so per-component costs
/// compose naturally:
///
/// ```
/// use hwsim::Resources;
///
/// let core = Resources { luts: 300, ffs: 280, bram18: 2 };
/// let sixteen_cores = core * 16;
/// assert_eq!(sixteen_cores.luts, 4_800);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Resources {
    /// 6-input lookup tables (includes LUTs used as distributed RAM).
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// 18 Kb block-RAM units.
    pub bram18: u64,
}

impl Resources {
    /// The zero resource vector.
    pub const ZERO: Resources = Resources {
        luts: 0,
        ffs: 0,
        bram18: 0,
    };

    /// Resource cost of a memory of `bits` bits under the default
    /// mapping threshold ([`LUTRAM_THRESHOLD_BITS`]). Device-aware callers
    /// should prefer [`Resources::for_memory_on`].
    ///
    /// * at or below the threshold: distributed RAM, costing `bits / 32`
    ///   LUTs (rounded up);
    /// * larger: `⌈bits / 18,432⌉` BRAM18 units.
    pub fn for_memory(bits: u64) -> Resources {
        Self::for_memory_with(bits, LUTRAM_THRESHOLD_BITS)
    }

    /// Resource cost of a memory of `bits` bits using `device`'s
    /// family-specific LUT-RAM threshold (see `DESIGN.md` §6).
    pub fn for_memory_on(bits: u64, device: &Device) -> Resources {
        Self::for_memory_with(bits, device.lutram_threshold_bits)
    }

    /// Resource cost with an explicit LUT-RAM/BRAM threshold.
    pub fn for_memory_with(bits: u64, threshold_bits: u64) -> Resources {
        if bits == 0 {
            return Resources::ZERO;
        }
        if bits <= threshold_bits {
            Resources {
                luts: bits.div_ceil(LUTRAM_BITS_PER_LUT),
                ffs: 0,
                bram18: 0,
            }
        } else {
            Resources {
                luts: 0,
                ffs: 0,
                bram18: bits.div_ceil(BRAM18_BITS),
            }
        }
    }

    /// How a memory maps under the default threshold; device-aware callers
    /// should prefer [`Resources::memory_mapping_on`].
    pub fn memory_mapping(bits: u64) -> MemoryMapping {
        Self::memory_mapping_with(bits, LUTRAM_THRESHOLD_BITS)
    }

    /// How a memory maps on `device`.
    pub fn memory_mapping_on(bits: u64, device: &Device) -> MemoryMapping {
        Self::memory_mapping_with(bits, device.lutram_threshold_bits)
    }

    /// Mapping decision with an explicit threshold.
    pub fn memory_mapping_with(bits: u64, threshold_bits: u64) -> MemoryMapping {
        if bits == 0 || bits <= threshold_bits {
            MemoryMapping::LutRam
        } else {
            MemoryMapping::BlockRam
        }
    }

    /// Checks whether this requirement fits within `device`.
    ///
    /// # Errors
    ///
    /// Returns a [`CapacityError`] naming the first overflowing resource
    /// (LUTs, then FFs, then BRAM18).
    pub fn check_fits(&self, device: &Device) -> Result<(), CapacityError> {
        let cap = device.capacity();
        if self.luts > cap.luts {
            return Err(CapacityError {
                resource: "LUTs",
                required: self.luts,
                available: cap.luts,
            });
        }
        if self.ffs > cap.ffs {
            return Err(CapacityError {
                resource: "FFs",
                required: self.ffs,
                available: cap.ffs,
            });
        }
        if self.bram18 > cap.bram18 {
            return Err(CapacityError {
                resource: "BRAM18",
                required: self.bram18,
                available: cap.bram18,
            });
        }
        Ok(())
    }

    /// `true` if the requirement fits within `device`.
    pub fn fits(&self, device: &Device) -> bool {
        self.check_fits(device).is_ok()
    }
}

/// Where a memory is physically mapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryMapping {
    /// Distributed RAM built from SLICEM LUTs.
    LutRam,
    /// Dedicated block RAM.
    BlockRam,
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            bram18: self.bram18 + rhs.bram18,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for Resources {
    type Output = Resources;
    fn mul(self, rhs: u64) -> Resources {
        Resources {
            luts: self.luts * rhs,
            ffs: self.ffs * rhs,
            bram18: self.bram18 * rhs,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, Add::add)
    }
}

/// Resource usage of a design relative to a device's capacity — the
/// utilization section of a synthesis report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Resources the design requires.
    pub used: Resources,
    /// Capacity of the target device.
    pub available: Resources,
}

impl Utilization {
    /// Builds a utilization report for `used` on `device`.
    pub fn new(used: Resources, device: &Device) -> Self {
        Self {
            used,
            available: device.capacity(),
        }
    }

    /// LUT utilization in percent.
    pub fn lut_percent(&self) -> f64 {
        percent(self.used.luts, self.available.luts)
    }

    /// Flip-flop utilization in percent.
    pub fn ff_percent(&self) -> f64 {
        percent(self.used.ffs, self.available.ffs)
    }

    /// BRAM utilization in percent.
    pub fn bram_percent(&self) -> f64 {
        percent(self.used.bram18, self.available.bram18)
    }

    /// `true` if every resource fits.
    pub fn fits(&self) -> bool {
        self.used.luts <= self.available.luts
            && self.used.ffs <= self.available.ffs
            && self.used.bram18 <= self.available.bram18
    }
}

fn percent(used: u64, avail: u64) -> f64 {
    if avail == 0 {
        if used == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * used as f64 / avail as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::XC5VLX50T;

    #[test]
    fn memory_mapping_threshold() {
        assert_eq!(
            Resources::memory_mapping(LUTRAM_THRESHOLD_BITS),
            MemoryMapping::LutRam
        );
        assert_eq!(
            Resources::memory_mapping(LUTRAM_THRESHOLD_BITS + 1),
            MemoryMapping::BlockRam
        );
    }

    #[test]
    fn small_memory_costs_luts() {
        let r = Resources::for_memory(2_048);
        assert_eq!(r, Resources { luts: 64, ffs: 0, bram18: 0 });
    }

    #[test]
    fn large_memory_costs_bram_rounded_up() {
        // 32 Kb -> 2 BRAM18 (18 Kb each).
        let r = Resources::for_memory(32 * 1024);
        assert_eq!(r.bram18, 2);
        assert_eq!(r.luts, 0);
        // Exactly one BRAM18 worth of bits -> 1 unit.
        assert_eq!(Resources::for_memory(BRAM18_BITS).bram18, 1);
        // One bit more -> 2 units.
        assert_eq!(Resources::for_memory(BRAM18_BITS + 1).bram18, 2);
    }

    #[test]
    fn zero_memory_is_free() {
        assert_eq!(Resources::for_memory(0), Resources::ZERO);
    }

    #[test]
    fn arithmetic_composes() {
        let a = Resources { luts: 1, ffs: 2, bram18: 3 };
        let b = Resources { luts: 10, ffs: 20, bram18: 30 };
        assert_eq!(a + b, Resources { luts: 11, ffs: 22, bram18: 33 });
        assert_eq!(a * 4, Resources { luts: 4, ffs: 8, bram18: 12 });
        let total: Resources = [a, b, a].into_iter().sum();
        assert_eq!(total, Resources { luts: 12, ffs: 24, bram18: 36 });
    }

    #[test]
    fn check_fits_reports_first_overflow() {
        let too_many_brams = Resources { luts: 0, ffs: 0, bram18: 121 };
        let err = too_many_brams.check_fits(&XC5VLX50T).unwrap_err();
        assert_eq!(err.resource, "BRAM18");
        assert_eq!(err.required, 121);
        assert_eq!(err.available, 120);
        assert!(!too_many_brams.fits(&XC5VLX50T));
    }

    #[test]
    fn utilization_percentages() {
        let u = Utilization::new(
            Resources { luts: 14_400, ffs: 0, bram18: 60 },
            &XC5VLX50T,
        );
        assert!((u.lut_percent() - 50.0).abs() < 1e-9);
        assert!((u.bram_percent() - 50.0).abs() < 1e-9);
        assert!(u.fits());
    }

    #[test]
    fn exact_capacity_fits() {
        let u = Utilization::new(XC5VLX50T.capacity(), &XC5VLX50T);
        assert!(u.fits());
        assert!(XC5VLX50T.capacity().fits(&XC5VLX50T));
    }
}
