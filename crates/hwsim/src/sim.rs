//! The two-phase synchronous simulation kernel.

/// A clocked hardware component.
///
/// Components follow the two-phase synchronous-circuit discipline. Each
/// simulated clock cycle proceeds as:
///
/// 1. [`begin_cycle`](Component::begin_cycle) — snapshot cycle-start state
///    (FIFO occupancies, register outputs);
/// 2. [`eval`](Component::eval) — compute combinational logic against the
///    snapshot and *stage* register/FIFO updates;
/// 3. [`commit`](Component::commit) — latch staged updates.
///
/// Because `eval` only observes cycle-start state and only stages updates,
/// the order in which sibling components evaluate never changes behaviour —
/// the same property a real netlist has.
///
/// Composite components forward all three calls to their children.
pub trait Component {
    /// Snapshot cycle-start state. Called exactly once per cycle, before
    /// [`eval`](Component::eval).
    fn begin_cycle(&mut self);

    /// Compute combinational outputs and stage sequential updates.
    fn eval(&mut self);

    /// Latch staged updates, completing the clock cycle.
    fn commit(&mut self);
}

/// Drives a [`Component`] through clock cycles and tracks simulated time.
///
/// # Example
///
/// ```
/// use hwsim::{Component, Register, Simulator};
///
/// struct Counter(Register<u64>);
/// impl Component for Counter {
///     fn begin_cycle(&mut self) {}
///     fn eval(&mut self) {
///         let next = self.0.get() + 1;
///         self.0.set(next);
///     }
///     fn commit(&mut self) {
///         self.0.commit();
///     }
/// }
///
/// let mut c = Counter(Register::new(0));
/// let mut sim = Simulator::new();
/// sim.run(&mut c, 10);
/// assert_eq!(*c.0.get(), 10);
/// assert_eq!(sim.cycle(), 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Simulator {
    cycle: u64,
}

impl Simulator {
    /// Creates a simulator at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of clock cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances the design by one clock cycle.
    pub fn step<C: Component + ?Sized>(&mut self, root: &mut C) {
        root.begin_cycle();
        root.eval();
        root.commit();
        self.cycle += 1;
    }

    /// Advances the design by `cycles` clock cycles.
    pub fn run<C: Component + ?Sized>(&mut self, root: &mut C, cycles: u64) {
        for _ in 0..cycles {
            self.step(root);
        }
    }

    /// Steps the design until `done` returns `true`, or until `max_cycles`
    /// additional cycles have elapsed. The predicate is evaluated after each
    /// cycle. Returns `true` if the predicate fired.
    pub fn run_until<C, F>(&mut self, root: &mut C, max_cycles: u64, mut done: F) -> bool
    where
        C: Component + ?Sized,
        F: FnMut(&C) -> bool,
    {
        for _ in 0..max_cycles {
            self.step(root);
            if done(root) {
                return true;
            }
        }
        false
    }

    /// Runs `cycles` clock cycles, invoking `sampler` after each one with
    /// the design and a recorder already positioned at the new cycle —
    /// the convenient way to capture a waveform (see
    /// [`TraceRecorder`](crate::TraceRecorder)).
    pub fn run_traced<C, F>(
        &mut self,
        root: &mut C,
        cycles: u64,
        trace: &mut crate::TraceRecorder,
        mut sampler: F,
    ) where
        C: Component + ?Sized,
        F: FnMut(&C, &mut crate::TraceRecorder),
    {
        for _ in 0..cycles {
            self.step(root);
            trace.set_cycle(self.cycle);
            sampler(root, trace);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Register;

    struct Counter(Register<u64>);

    impl Component for Counter {
        fn begin_cycle(&mut self) {}
        fn eval(&mut self) {
            let next = self.0.get() + 1;
            self.0.set(next);
        }
        fn commit(&mut self) {
            self.0.commit();
        }
    }

    #[test]
    fn step_advances_one_cycle() {
        let mut c = Counter(Register::new(0));
        let mut sim = Simulator::new();
        sim.step(&mut c);
        assert_eq!(sim.cycle(), 1);
        assert_eq!(*c.0.get(), 1);
    }

    #[test]
    fn run_advances_many_cycles() {
        let mut c = Counter(Register::new(0));
        let mut sim = Simulator::new();
        sim.run(&mut c, 1000);
        assert_eq!(sim.cycle(), 1000);
        assert_eq!(*c.0.get(), 1000);
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut c = Counter(Register::new(0));
        let mut sim = Simulator::new();
        let fired = sim.run_until(&mut c, 100, |c| *c.0.get() == 7);
        assert!(fired);
        assert_eq!(sim.cycle(), 7);
    }

    #[test]
    fn run_until_gives_up_after_max_cycles() {
        let mut c = Counter(Register::new(0));
        let mut sim = Simulator::new();
        let fired = sim.run_until(&mut c, 5, |c| *c.0.get() == 7);
        assert!(!fired);
        assert_eq!(sim.cycle(), 5);
    }

    #[test]
    fn run_traced_samples_every_cycle() {
        let mut c = Counter(Register::new(0));
        let mut sim = Simulator::new();
        let mut trace = crate::TraceRecorder::new();
        let sig = trace.signal("count", 8);
        sim.run_traced(&mut c, 5, &mut trace, |counter, t| {
            t.sample(sig, *counter.0.get());
        });
        // The counter changes every cycle: five change events.
        assert_eq!(trace.change_count(), 5);
        assert!(trace.to_vcd().contains("#5"));
    }

    #[test]
    fn register_update_is_not_visible_within_cycle() {
        // A register written during eval must still read its old value
        // until commit.
        struct TwoReads {
            r: Register<u32>,
            observed: Vec<u32>,
        }
        impl Component for TwoReads {
            fn begin_cycle(&mut self) {}
            fn eval(&mut self) {
                self.r.set(self.r.get() + 1);
                self.observed.push(*self.r.get());
            }
            fn commit(&mut self) {
                self.r.commit();
            }
        }
        let mut c = TwoReads {
            r: Register::new(0),
            observed: Vec::new(),
        };
        let mut sim = Simulator::new();
        sim.run(&mut c, 3);
        // eval observes the value at the start of each cycle.
        assert_eq!(c.observed, vec![0, 1, 2]);
    }
}
