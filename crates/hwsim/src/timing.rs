//! Maximum-clock-frequency estimation — the timing section of a synthesis
//! report.
//!
//! Real synthesis tools derive fmax from the critical path: levels of logic
//! plus net delay, where net delay grows with fan-out (a broadcast net
//! loading N inputs is slow) and routing congestion. The model here keeps
//! exactly those two knobs:
//!
//! ```text
//! fmax = base_fmax / (1 + k_logic·(levels − 1) + k_fanout·ln(max_fanout / 2))
//! ```
//!
//! with `k_fanout` family-dependent: Virtex-7 runs closer to its fabric
//! limit and is therefore *more* sensitive to large fan-outs than Virtex-5,
//! exactly the effect the paper reports in its scalability evaluation
//! (Fig. 17). A small deterministic "heuristic noise" term models the
//! synthesis tool's placement heuristics; the single +9 MHz anchor for a
//! 16-way fan-out on Virtex-5 reproduces the bump the paper attributes to
//! "heuristic mapping algorithms adopted by the synthesis tool".

use std::fmt;

use crate::{Device, Family};

/// Logic-level sensitivity: fractional period added per extra level.
const K_LOGIC: f64 = 0.036_67;

/// Fan-out sensitivity per family (fractional period per ln of fan-out).
const K_FANOUT_V5: f64 = 0.03;
const K_FANOUT_V7: f64 = 0.12;

/// Amplitude of the deterministic heuristic-noise term, in MHz.
const NOISE_AMPLITUDE_MHZ: f64 = 4.0;

/// The paper reports a clock-frequency *increase* at 16 join cores on
/// Virtex-5 caused by the tool's heuristic mapping; this anchor reproduces
/// it.
const V5_FANOUT16_BONUS_MHZ: f64 = 9.0;

/// A clock frequency.
///
/// ```
/// use hwsim::Frequency;
///
/// let f = Frequency::from_mhz(100.0);
/// assert_eq!(f.mhz(), 100.0);
/// assert_eq!(f.period_ns(), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not finite and positive.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz > 0.0, "frequency must be positive");
        Self(mhz)
    }

    /// The frequency in megahertz.
    pub fn mhz(&self) -> f64 {
        self.0
    }

    /// The frequency in hertz.
    pub fn hz(&self) -> f64 {
        self.0 * 1e6
    }

    /// The clock period in nanoseconds.
    pub fn period_ns(&self) -> f64 {
        1_000.0 / self.0
    }

    /// Converts a cycle count at this frequency to microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.0
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MHz", self.0)
    }
}

/// Critical-path characteristics of a design, as consumed by
/// [`estimate_fmax`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingProfile {
    /// Largest combinational broadcast fan-out on any net (e.g. the number
    /// of join cores fed directly by a lightweight distribution network).
    pub max_fanout: u64,
    /// Levels of logic on the critical path. Pipelined (scalable) networks
    /// trade fan-out for extra levels.
    pub logic_levels: u32,
}

impl TimingProfile {
    /// A profile for simple registered logic: fan-out 2, four levels.
    pub fn baseline() -> Self {
        Self {
            max_fanout: 2,
            logic_levels: 4,
        }
    }
}

/// Estimates the post-route maximum clock frequency of a design with the
/// given timing profile on `device`.
///
/// # Example
///
/// ```
/// use hwsim::{devices, estimate_fmax, TimingProfile};
///
/// // A 512-way broadcast slows a Virtex-7 design far below its base fmax.
/// let wide = estimate_fmax(&devices::XC7VX485T, &TimingProfile { max_fanout: 512, logic_levels: 4 });
/// let narrow = estimate_fmax(&devices::XC7VX485T, &TimingProfile::baseline());
/// assert!(wide < narrow);
/// ```
pub fn estimate_fmax(device: &Device, profile: &TimingProfile) -> Frequency {
    let fanout = profile.max_fanout.max(2) as f64;
    let k_fanout = match device.family {
        Family::Virtex5 => K_FANOUT_V5,
        // Newer high-frequency fabrics run close to their limit and are
        // correspondingly fan-out-sensitive (the Fig. 17 effect).
        Family::Virtex7 | Family::UltraScalePlus => K_FANOUT_V7,
    };
    let levels = profile.logic_levels.max(1) as f64;
    let derate = 1.0 + K_LOGIC * (levels - 1.0) + k_fanout * (fanout / 2.0).ln();
    let mut mhz = device.base_fmax_mhz / derate;
    mhz += heuristic_noise(device, profile);
    if device.family == Family::Virtex5 && profile.max_fanout == 16 {
        mhz += V5_FANOUT16_BONUS_MHZ;
    }
    Frequency::from_mhz(mhz)
}

/// Deterministic pseudo-noise in `[-NOISE_AMPLITUDE, +NOISE_AMPLITUDE)` MHz,
/// keyed on the device and profile so repeated "synthesis runs" agree.
fn heuristic_noise(device: &Device, profile: &TimingProfile) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in device.name.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h = (h ^ profile.max_fanout).wrapping_mul(0x1000_0000_01b3);
    h = (h ^ profile.logic_levels as u64).wrapping_mul(0x1000_0000_01b3);
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    (unit * 2.0 - 1.0) * NOISE_AMPLITUDE_MHZ
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{XC5VLX50T, XC7VX485T};

    fn lightweight(n: u64) -> TimingProfile {
        TimingProfile {
            max_fanout: n,
            logic_levels: 4,
        }
    }

    fn scalable() -> TimingProfile {
        TimingProfile {
            max_fanout: 2,
            logic_levels: 6,
        }
    }

    #[test]
    fn frequency_conversions() {
        let f = Frequency::from_mhz(250.0);
        assert_eq!(f.hz(), 250e6);
        assert_eq!(f.period_ns(), 4.0);
        assert_eq!(f.cycles_to_us(500), 2.0);
        assert_eq!(f.to_string(), "250.0 MHz");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_mhz(0.0);
    }

    #[test]
    fn estimation_is_deterministic() {
        let a = estimate_fmax(&XC7VX485T, &lightweight(64));
        let b = estimate_fmax(&XC7VX485T, &lightweight(64));
        assert_eq!(a, b);
    }

    #[test]
    fn v7_lightweight_drops_with_fanout() {
        // Fig. 17: V7 lightweight frequency falls as join cores increase.
        let mut prev = f64::INFINITY;
        for n in [2u64, 8, 32, 128, 512] {
            let f = estimate_fmax(&XC7VX485T, &lightweight(n)).mhz();
            assert!(
                f < prev + 2.0 * 4.0, // allow noise-sized wiggle
                "fmax should trend down: {f} after {prev}"
            );
            prev = f;
        }
        let wide = estimate_fmax(&XC7VX485T, &lightweight(512)).mhz();
        assert!(
            (180.0..230.0).contains(&wide),
            "512-core lightweight V7 should land near 200 MHz, got {wide}"
        );
    }

    #[test]
    fn v7_scalable_stays_near_300() {
        // Fig. 17: the scalable network holds ~300 MHz regardless of size.
        let f = estimate_fmax(&XC7VX485T, &scalable()).mhz();
        assert!(
            (290.0..315.0).contains(&f),
            "scalable V7 should hold ~300 MHz, got {f}"
        );
    }

    #[test]
    fn v5_is_insensitive_to_fanout() {
        // Fig. 17: no significant drop on V5 between 2 and 16 cores.
        let f2 = estimate_fmax(&XC5VLX50T, &lightweight(2)).mhz();
        let f16 = estimate_fmax(&XC5VLX50T, &lightweight(16)).mhz();
        let drop = (f2 - f16) / f2;
        assert!(drop < 0.10, "V5 drop should be small, got {:.1}%", drop * 100.0);
        // All V5 estimates must clear the paper's 100 MHz operating clock.
        for n in [2u64, 4, 8, 16] {
            assert!(estimate_fmax(&XC5VLX50T, &lightweight(n)).mhz() > 100.0);
        }
    }

    #[test]
    fn v5_heuristic_bump_at_16_cores() {
        // The paper observes a frequency increase at 16 join cores on V5.
        let f8 = estimate_fmax(&XC5VLX50T, &lightweight(8)).mhz();
        let f16 = estimate_fmax(&XC5VLX50T, &lightweight(16)).mhz();
        assert!(f16 > f8, "expected heuristic bump at 16 cores: {f16} vs {f8}");
    }

    #[test]
    fn more_logic_levels_slow_the_clock() {
        let shallow = estimate_fmax(&XC7VX485T, &TimingProfile { max_fanout: 2, logic_levels: 4 });
        let deep = estimate_fmax(&XC7VX485T, &TimingProfile { max_fanout: 2, logic_levels: 12 });
        assert!(deep < shallow);
    }
}
