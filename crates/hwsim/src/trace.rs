//! Waveform tracing: record signal values per cycle and export standard
//! VCD (Value Change Dump) files readable by GTKWave and friends.
//!
//! Designs are plain Rust structs, so tracing is opt-in and external: a
//! [`TraceRecorder`] holds named signals, and the code driving the clock
//! samples whatever design state it wants after each
//! [`Simulator::step`](crate::Simulator::step). Only *changes* are
//! stored, as in the VCD format itself.
//!
//! # Example: wiring a recorder into a measurement loop
//!
//! A benchmark drives the design exactly as it would without tracing —
//! the recorder rides along in the drive loop, and the probe is ordinary
//! field access. Dropping the two trace lines recovers the untraced
//! harness:
//!
//! ```
//! use hwsim::{TraceRecorder, Simulator, Component, Register};
//!
//! struct Counter(Register<u64>);
//! impl Component for Counter {
//!     fn begin_cycle(&mut self) {}
//!     fn eval(&mut self) { let n = self.0.get() + 1; self.0.set(n); }
//!     fn commit(&mut self) { self.0.commit(); }
//! }
//!
//! /// The benchmark's cycle loop, with the recorder wired in.
//! fn run_traced(cycles: u64) -> (Counter, TraceRecorder) {
//!     let mut trace = TraceRecorder::new();
//!     let count = trace.signal("count", 8);
//!     let mut counter = Counter(Register::new(0));
//!     let mut sim = Simulator::new();
//!     for _ in 0..cycles {
//!         sim.step(&mut counter);
//!         trace.set_cycle(sim.cycle());
//!         trace.sample(count, *counter.0.get());
//!     }
//!     (counter, trace)
//! }
//!
//! let (counter, trace) = run_traced(4);
//! assert_eq!(*counter.0.get(), 4);
//! let vcd = trace.to_vcd();
//! assert!(vcd.contains("$var wire 8"));
//! assert!(vcd.contains("#4"));
//! ```

use std::fmt::Write as _;

/// Handle to a declared trace signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

#[derive(Debug, Clone)]
struct SignalDef {
    name: String,
    width: u32,
}

/// Records value changes of named signals across simulated cycles.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    signals: Vec<SignalDef>,
    last: Vec<Option<u64>>,
    /// (cycle, signal, value) change events in sample order.
    changes: Vec<(u64, usize, u64)>,
    cycle: u64,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a signal of `width` bits (1–64).
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside 1–64 or `name` is empty.
    pub fn signal(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        let name = name.into();
        assert!(!name.is_empty(), "signal name must be non-empty");
        assert!((1..=64).contains(&width), "signal width must be 1..=64");
        self.signals.push(SignalDef { name, width });
        self.last.push(None);
        SignalId(self.signals.len() - 1)
    }

    /// Sets the cycle subsequent samples belong to. Must not go backwards.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is before the current trace position.
    pub fn set_cycle(&mut self, cycle: u64) {
        assert!(cycle >= self.cycle, "trace time cannot run backwards");
        self.cycle = cycle;
    }

    /// Samples a signal; a change event is stored only when the value
    /// differs from the previous sample.
    pub fn sample(&mut self, id: SignalId, value: u64) {
        if self.last[id.0] != Some(value) {
            self.last[id.0] = Some(value);
            self.changes.push((self.cycle, id.0, value));
        }
    }

    /// Number of stored change events.
    pub fn change_count(&self) -> usize {
        self.changes.len()
    }

    /// Renders the trace as a VCD document (timescale: one unit = one
    /// clock cycle).
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ns $end\n$scope module design $end\n");
        for (i, s) in self.signals.iter().enumerate() {
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                s.width,
                vcd_id(i),
                s.name
            );
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut current = u64::MAX;
        for &(cycle, sig, value) in &self.changes {
            if cycle != current {
                let _ = writeln!(out, "#{cycle}");
                current = cycle;
            }
            if self.signals[sig].width == 1 {
                let _ = writeln!(out, "{}{}", value & 1, vcd_id(sig));
            } else {
                let _ = writeln!(out, "b{value:b} {}", vcd_id(sig));
            }
        }
        out
    }

    /// Writes the VCD document to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_vcd<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writer.write_all(self.to_vcd().as_bytes())
    }
}

/// VCD identifier codes: printable ASCII starting at `!`.
fn vcd_id(index: usize) -> String {
    let mut s = String::new();
    let mut i = index;
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_only_changes() {
        let mut t = TraceRecorder::new();
        let a = t.signal("a", 8);
        t.set_cycle(0);
        t.sample(a, 1);
        t.set_cycle(1);
        t.sample(a, 1); // unchanged: no event
        t.set_cycle(2);
        t.sample(a, 2);
        assert_eq!(t.change_count(), 2);
    }

    #[test]
    fn vcd_output_is_well_formed() {
        let mut t = TraceRecorder::new();
        let flag = t.signal("valid", 1);
        let bus = t.signal("data", 16);
        t.set_cycle(3);
        t.sample(flag, 1);
        t.sample(bus, 0xab);
        let vcd = t.to_vcd();
        assert!(vcd.contains("$var wire 1 ! valid $end"));
        assert!(vcd.contains("$var wire 16 \" data $end"));
        assert!(vcd.contains("#3"));
        assert!(vcd.contains("1!"));
        assert!(vcd.contains("b10101011 \""));
        assert!(vcd.contains("$enddefinitions"));
    }

    #[test]
    fn write_vcd_round_trips_through_a_buffer() {
        let mut t = TraceRecorder::new();
        let s = t.signal("x", 4);
        t.sample(s, 7);
        let mut buf = Vec::new();
        t.write_vcd(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), t.to_vcd());
    }

    #[test]
    fn vcd_ids_are_unique_for_many_signals() {
        let mut t = TraceRecorder::new();
        for i in 0..200 {
            t.signal(format!("s{i}"), 1);
        }
        let ids: std::collections::HashSet<String> = (0..200).map(vcd_id).collect();
        assert_eq!(ids.len(), 200);
    }

    #[test]
    #[should_panic(expected = "cannot run backwards")]
    fn time_cannot_reverse() {
        let mut t = TraceRecorder::new();
        t.set_cycle(5);
        t.set_cycle(4);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_width_rejected() {
        let mut t = TraceRecorder::new();
        t.signal("bad", 0);
    }
}
