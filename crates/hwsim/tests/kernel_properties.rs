//! Property-based tests of the simulation kernel and synthesis models.

use hwsim::{
    devices, estimate_fmax, Bram, DelayLine, Frequency, PowerModel, Resources,
    TimingProfile,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A delay line is a perfect conveyor: pushing a dense stream yields
    /// the same stream delayed by exactly `depth` edges.
    #[test]
    fn delay_line_is_a_conveyor(depth in 1usize..8, values in prop::collection::vec(any::<u32>(), 0..64)) {
        let mut d: DelayLine<u32> = DelayLine::new(depth);
        let mut out = Vec::new();
        for &v in &values {
            d.push(Some(v));
            d.commit();
            if let Some(&o) = d.output() {
                out.push(o);
            }
        }
        // Flush the pipeline.
        for _ in 0..depth {
            d.push(None);
            d.commit();
            if let Some(&o) = d.output() {
                out.push(o);
            }
        }
        prop_assert_eq!(out, values);
    }

    /// BRAM reads always return the most recent write per address.
    #[test]
    fn bram_is_last_write_wins(ops in prop::collection::vec((0usize..16, any::<u64>()), 1..200)) {
        let mut bram: Bram<u64> = Bram::new(16);
        let mut model = [None::<u64>; 16];
        for (addr, value) in ops {
            bram.begin_cycle();
            bram.write(addr, value);
            model[addr] = Some(value);
            bram.begin_cycle();
            prop_assert_eq!(bram.read(addr).copied(), model[addr]);
        }
        for (addr, want) in model.iter().enumerate() {
            prop_assert_eq!(bram.peek(addr).copied(), *want);
        }
    }

    /// fmax estimation is monotone: more fan-out never speeds a design up
    /// beyond noise, and every estimate is positive and at most the base.
    #[test]
    fn fmax_is_bounded_and_fanout_monotone(levels in 1u32..12, a in 2u64..4096, b in 2u64..4096) {
        for device in devices::ALL {
            let (lo, hi) = (a.min(b), a.max(b));
            let f_lo = estimate_fmax(&device, &TimingProfile { max_fanout: lo, logic_levels: levels });
            let f_hi = estimate_fmax(&device, &TimingProfile { max_fanout: hi, logic_levels: levels });
            prop_assert!(f_lo.mhz() > 0.0);
            // Allow the deterministic heuristic-noise amplitude (±4 MHz)
            // plus the V5 16-core calibration bump (+9 MHz).
            prop_assert!(
                f_hi.mhz() <= f_lo.mhz() + 2.0 * 4.0 + 9.0,
                "{}: fanout {hi} gave {} vs fanout {lo} {}",
                device.name, f_hi, f_lo
            );
            prop_assert!(f_lo.mhz() <= device.base_fmax_mhz + 4.0 + 9.0);
        }
    }

    /// Resource arithmetic is associative/commutative and capacity checks
    /// agree with field-wise comparison.
    #[test]
    fn resource_vectors_behave(l1 in 0u64..10_000, f1 in 0u64..10_000, b1 in 0u64..100,
                               l2 in 0u64..10_000, f2 in 0u64..10_000, b2 in 0u64..100) {
        let a = Resources { luts: l1, ffs: f1, bram18: b1 };
        let b = Resources { luts: l2, ffs: f2, bram18: b2 };
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + a, a + (b + a));
        prop_assert_eq!(a * 3, a + a + a);
        let device = devices::XC5VLX50T;
        let fits = a.fits(&device);
        let expect = l1 <= device.luts && f1 <= device.ffs && b1 <= device.bram18;
        prop_assert_eq!(fits, expect);
    }

    /// Memory mapping never loses bits: the mapped resources can hold the
    /// requested memory.
    #[test]
    fn memory_mapping_covers_request(bits in 0u64..2_000_000, threshold in 1u64..100_000) {
        let r = Resources::for_memory_with(bits, threshold);
        let capacity_bits = r.luts * 32 + r.bram18 * 18 * 1024;
        prop_assert!(capacity_bits >= bits, "{bits} bits -> {r:?}");
    }

    /// Power reports scale linearly and are never negative.
    #[test]
    fn power_is_linear_in_frequency(luts in 0u64..100_000, mhz in 1.0f64..500.0) {
        let model = PowerModel::calibrated();
        let res = Resources { luts, ffs: luts / 2, bram18: luts / 100 };
        let p1 = model.report(&devices::XC7VX485T, res, Frequency::from_mhz(mhz), 1.0);
        let p2 = model.report(&devices::XC7VX485T, res, Frequency::from_mhz(2.0 * mhz), 1.0);
        prop_assert!(p1.dynamic_mw >= 0.0);
        prop_assert!((p2.dynamic_mw - 2.0 * p1.dynamic_mw).abs() < 1e-6);
    }
}
