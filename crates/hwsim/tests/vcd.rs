//! Integration tests for the VCD waveform export: a real two-phase
//! design driven by the simulator, with the recorder riding along in the
//! drive loop, checked against the VCD grammar (header structure,
//! monotone timestamps, change-only encoding).

use hwsim::{Component, Register, Simulator, TraceRecorder};

/// A two-bit Gray-code counter: `value` changes every cycle, `msb` only
/// every other cycle — a known change pattern to pin the change-only
/// encoding against.
struct Gray {
    value: Register<u64>,
}

impl Component for Gray {
    fn begin_cycle(&mut self) {}
    fn eval(&mut self) {
        let n = (self.value.get() + 1) % 4;
        self.value.set(n);
    }
    fn commit(&mut self) {
        self.value.commit();
    }
}

fn run_traced(cycles: u64) -> TraceRecorder {
    let mut trace = TraceRecorder::new();
    let value = trace.signal("value", 2);
    let msb = trace.signal("msb", 1);
    let mut design = Gray { value: Register::new(0) };
    let mut sim = Simulator::new();
    for _ in 0..cycles {
        sim.step(&mut design);
        trace.set_cycle(sim.cycle());
        let v = *design.value.get();
        trace.sample(value, v);
        trace.sample(msb, v >> 1);
    }
    trace
}

#[test]
fn header_declares_every_signal_before_definitions_end() {
    let vcd = run_traced(4).to_vcd();
    let defs_end = vcd.find("$enddefinitions").expect("definitions section");
    let var_value = vcd.find("$var wire 2 ! value $end").expect("value declared");
    let var_msb = vcd.find("$var wire 1 \" msb $end").expect("msb declared");
    assert!(vcd.starts_with("$timescale"));
    assert!(var_value < defs_end && var_msb < defs_end);
    assert!(vcd[..defs_end].contains("$scope module design $end"));
    assert!(vcd[..defs_end].contains("$upscope $end"));
    // No value-change lines before the definitions end.
    assert!(!vcd[..defs_end].contains('#'));
}

#[test]
fn timestamps_are_strictly_increasing_and_deduplicated() {
    let vcd = run_traced(8).to_vcd();
    let stamps: Vec<u64> = vcd
        .lines()
        .filter_map(|l| l.strip_prefix('#'))
        .map(|n| n.parse().expect("numeric timestamp"))
        .collect();
    assert!(!stamps.is_empty());
    assert!(
        stamps.windows(2).all(|w| w[0] < w[1]),
        "timestamps must be strictly increasing: {stamps:?}"
    );
}

#[test]
fn change_only_encoding_skips_unchanged_samples() {
    let trace = run_traced(8);
    // `value` changes all 8 cycles; `msb` follows 0,1,1,0,0,1,1,0 — the
    // first sample always records, then changes land on cycles 2, 4, 6,
    // and 8 (5 events).
    assert_eq!(trace.change_count(), 8 + 5);
    let vcd = trace.to_vcd();
    // Cycle 3 (value 3 -> msb stays 1): the msb id `"` must not appear
    // in cycle 3's change block.
    let block: Vec<&str> = vcd
        .lines()
        .skip_while(|l| *l != "#3")
        .skip(1)
        .take_while(|l| !l.starts_with('#'))
        .collect();
    assert_eq!(block, vec!["b11 !"], "cycle 3 must only re-emit `value`");
}

#[test]
fn scalar_and_vector_changes_use_their_vcd_forms() {
    let vcd = run_traced(4).to_vcd();
    // 1-bit signals: `<bit><id>` with no `b` prefix and no space.
    assert!(vcd.lines().any(|l| l == "1\""));
    // Multi-bit signals: `b<binary> <id>`.
    assert!(vcd.lines().any(|l| l == "b1 !"));
    assert!(vcd.lines().any(|l| l == "b10 !"));
}

#[test]
fn write_vcd_matches_to_vcd_exactly() {
    let trace = run_traced(6);
    let mut buf = Vec::new();
    trace.write_vcd(&mut buf).unwrap();
    assert_eq!(String::from_utf8(buf).unwrap(), trace.to_vcd());
}

#[test]
fn write_vcd_propagates_io_errors() {
    struct Broken;
    impl std::io::Write for Broken {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk on fire"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    assert!(run_traced(2).write_vcd(Broken).is_err());
}

#[test]
fn empty_recorder_exports_a_valid_skeleton() {
    let trace = TraceRecorder::new();
    let vcd = trace.to_vcd();
    assert!(vcd.contains("$timescale"));
    assert!(vcd.contains("$enddefinitions $end"));
    assert!(!vcd.contains('#'));
}
