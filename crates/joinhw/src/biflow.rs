//! The bi-flow (handshake join) parallel stream join in hardware.
//!
//! Join cores form a linear chain (Fig. 8a): R tuples enter at the left
//! end and flow right, S tuples enter at the right end and flow left. Each
//! core hosts one sub-window per stream (Fig. 10); an arriving tuple is
//! probed against the core's opposite-stream sub-window, parked in its own
//! sub-window, and the displaced oldest tuple continues to the next core —
//! tuples "shake hands" with every sub-window exactly once as the streams
//! pass through each other.
//!
//! # Modeled control discipline (why bi-flow is slow)
//!
//! The paper stresses that bi-flow needs "locks … to avoid race conditions
//! caused by in-flight tuples" and a central coordination module, and that
//! "the simpler architecture in uni-flow brings superior performance"
//! (nearly an order of magnitude at 16 cores, Fig. 14b) even though "in
//! theory, both models are similar in their parallelization concept".
//!
//! We model the conservative discipline that guarantees exactly-once
//! semantics without any in-flight races: the central coordinator admits
//! **one tuple wave at a time** into the chain. A wave is the cascade of
//! (handshake → probe → park → displace) steps the tuple triggers from its
//! entry core to the far end. Because waves never overlap, every probe
//! observes exactly the windows as of the tuple's admission — the design
//! implements strict arrival-order join semantics, which the tests verify
//! against a reference join. The price is that the probe work of the N
//! cores is serialized along the chain, so the per-tuple service time is
//! `Σ occupancies + 3·N ≈ W + 3N` cycles instead of uni-flow's `W/N` —
//! reproducing the paper's throughput gap and its growth with the core
//! count.

use std::fmt;

use hwsim::{Component, Fifo, Sharded};
use streamcore::{MatchPair, StreamTag, Tuple};

use crate::design::RESULT_FIFO_DEPTH;
use crate::subwindow::SubWindow;
use crate::{DesignParams, FlowModel, JoinOperator};

/// Cycles per neighbour handshake (request + grant/data).
pub const HANDSHAKE_CYCLES: u8 = 2;

/// Which handshake-join flavour the chain runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BiflowVariant {
    /// Low-latency handshake join (Roy et al., cited as \[36\]): "each
    /// tuple of each stream is replicated and forwarded to the next join
    /// core before the join computation is carried out" — every arrival
    /// probes the whole opposite window immediately, yielding strict
    /// semantics. The paper's measured configuration; the default.
    #[default]
    LowLatency,
    /// Original handshake join: a tuple only probes the segments it
    /// physically visits (on arrival and on each later displacement), so
    /// matches surface with delay as the streams push tuples toward each
    /// other — and a finite stream leaves some matches unreported. The
    /// `biflow_variants` ablation quantifies this deferral, which is
    /// precisely the motivation for the low-latency variant.
    Original,
}

/// One join core of the bi-flow chain: two window buffers and a result
/// port (the buffer managers and coordinator of Fig. 10 are modeled by the
/// chain-level wave discipline).
#[derive(Debug, Clone)]
struct BiCore {
    window_r: SubWindow,
    window_s: SubWindow,
    results: Fifo<MatchPair>,
}

impl BiCore {
    fn new(sub_window: usize) -> Self {
        Self {
            window_r: SubWindow::new(sub_window),
            window_s: SubWindow::new(sub_window),
            results: Fifo::new(RESULT_FIFO_DEPTH),
        }
    }

    fn window_mut(&mut self, tag: StreamTag) -> &mut SubWindow {
        match tag {
            StreamTag::R => &mut self.window_r,
            StreamTag::S => &mut self.window_s,
        }
    }
}

/// Phase of the in-flight tuple wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WavePhase {
    /// Neighbour handshake into the current core.
    Handshake(u8),
    /// Nested-loop probe of the opposite sub-window, one read per cycle.
    Probe { idx: usize, len: usize },
    /// Parking the tuple into its own sub-window (one cycle).
    Park,
}

#[derive(Debug, Clone, Copy)]
struct Wave {
    tag: StreamTag,
    /// The newly arrived tuple, replicated to every core (low-latency
    /// handshake join fast-forwarding) and probed against each opposite
    /// segment.
    probe: Tuple,
    /// The tuple the storage cascade is currently carrying: the new tuple
    /// until it parks, then whatever each segment displaces.
    store: Option<Tuple>,
    core: usize,
    phase: WavePhase,
}

/// The complete bi-flow parallel stream join design.
///
/// # Example
///
/// ```
/// use hwsim::Simulator;
/// use joinhw::biflow::BiFlowJoin;
/// use joinhw::{DesignParams, FlowModel, JoinOperator};
/// use streamcore::{StreamTag, Tuple};
///
/// let params = DesignParams::new(FlowModel::BiFlow, 2, 16);
/// let mut join = BiFlowJoin::new(&params);
/// join.program(JoinOperator::equi(2));
/// let mut sim = Simulator::new();
/// for (tag, key) in [(StreamTag::S, 3), (StreamTag::R, 3)] {
///     while !join.offer(tag, Tuple::new(key, 0)) {
///         sim.step(&mut join);
///     }
///     sim.step(&mut join);
/// }
/// while !join.quiescent() {
///     sim.step(&mut join);
/// }
/// assert_eq!(join.drain_results().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BiFlowJoin {
    params: DesignParams,
    variant: BiflowVariant,
    operator: Option<JoinOperator>,
    cores: Vec<BiCore>,
    wave: Option<Wave>,
    /// Input registers: (arrival sequence number, tuple). The coordinator
    /// admits strictly in arrival order, which is what preserves strict
    /// join semantics across the two chain ends.
    pending_r: Option<(u64, Tuple)>,
    pending_s: Option<(u64, Tuple)>,
    arrival_seq: u64,
    collector_ptr: usize,
    collected: Vec<MatchPair>,
    accepted_tuples: u64,
    /// Offers rejected because the stream's input register was occupied
    /// (the chain's admission backpressure). No-op without `obs`.
    offer_rejected: obs::Counter,
    /// Waves admitted by the central coordinator.
    waves_admitted: obs::Counter,
    /// Cycles spent in neighbour handshakes.
    handshake_cycles: obs::Counter,
    /// Cycles spent probing opposite sub-windows.
    probe_cycles: obs::Counter,
    /// Probe cycles lost to result-FIFO backpressure.
    probe_stalls: obs::Counter,
    /// Completed cycles (ticks in `begin_cycle`).
    cycle: u64,
    /// Cycle the in-flight wave entered its current core segment.
    seg_start: u64,
    /// Cycle-stamped wave-segment spans (`biflow.chain`, one span per
    /// core the wave visits); `None` unless tracing was enabled at
    /// build time.
    ring: Option<obs::trace::TraceRing>,
}

impl BiFlowJoin {
    /// Instantiates the chain described by `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params.flow` is not [`FlowModel::BiFlow`].
    pub fn new(params: &DesignParams) -> Self {
        assert_eq!(
            params.flow,
            FlowModel::BiFlow,
            "BiFlowJoin requires bi-flow design parameters"
        );
        let n = params.num_cores as usize;
        let sub = params.sub_window();
        Self {
            params: *params,
            variant: BiflowVariant::LowLatency,
            operator: None,
            cores: (0..n).map(|_| BiCore::new(sub)).collect(),
            wave: None,
            pending_r: None,
            pending_s: None,
            arrival_seq: 0,
            collector_ptr: 0,
            collected: Vec::new(),
            accepted_tuples: 0,
            offer_rejected: obs::Counter::new(),
            waves_admitted: obs::Counter::new(),
            handshake_cycles: obs::Counter::new(),
            probe_cycles: obs::Counter::new(),
            probe_stalls: obs::Counter::new(),
            cycle: 0,
            seg_start: 0,
            ring: obs::trace::enabled().then(|| {
                obs::trace::TraceRing::new("biflow.chain", obs::trace::TimeDomain::Cycles)
            }),
        }
    }

    /// Detaches the chain's wave-segment span ring. Empty unless tracing
    /// was enabled when the design was built.
    pub fn take_trace(&mut self) -> Vec<obs::trace::TraceRing> {
        self.ring.take().into_iter().collect()
    }

    /// The design parameters.
    pub fn params(&self) -> &DesignParams {
        &self.params
    }

    /// Selects the handshake-join variant (default:
    /// [`BiflowVariant::LowLatency`]).
    pub fn with_variant(mut self, variant: BiflowVariant) -> Self {
        self.variant = variant;
        self
    }

    /// The active variant.
    pub fn variant(&self) -> BiflowVariant {
        self.variant
    }

    /// Programs the join operator on every core of the chain.
    ///
    /// # Panics
    ///
    /// Panics if the operator's core count disagrees with the design's.
    pub fn program(&mut self, operator: JoinOperator) {
        assert_eq!(
            operator.num_cores, self.params.num_cores,
            "operator core count must match the design"
        );
        self.operator = Some(operator);
    }

    /// Offers a tuple at the chain end for its stream (R left, S right).
    /// Returns `false` when that input register is occupied.
    pub fn offer(&mut self, tag: StreamTag, tuple: Tuple) -> bool {
        if self.operator.is_none() {
            return false;
        }
        let seq = self.arrival_seq;
        let slot = match tag {
            StreamTag::R => &mut self.pending_r,
            StreamTag::S => &mut self.pending_s,
        };
        if slot.is_some() {
            self.offer_rejected.incr();
            return false;
        }
        *slot = Some((seq, tuple));
        self.arrival_seq += 1;
        self.accepted_tuples += 1;
        true
    }

    /// Number of tuples accepted so far (both streams).
    pub fn accepted_tuples(&self) -> u64 {
        self.accepted_tuples
    }

    /// Publishes the chain's counters into `reg` under `prefix`:
    /// `{prefix}accepted_tuples`, `{prefix}offer_rejected`,
    /// `{prefix}waves_admitted`, `{prefix}handshake_cycles`,
    /// `{prefix}probe_cycles`, `{prefix}probe_stalls`. Counter values are
    /// 0 when the `obs` feature is off; `accepted_tuples` is always live.
    pub fn observe(&self, reg: &mut obs::Registry, prefix: &str) {
        reg.record(format!("{prefix}accepted_tuples"), self.accepted_tuples);
        reg.counter(format!("{prefix}offer_rejected"), &self.offer_rejected);
        reg.counter(format!("{prefix}waves_admitted"), &self.waves_admitted);
        reg.counter(format!("{prefix}handshake_cycles"), &self.handshake_cycles);
        reg.counter(format!("{prefix}probe_cycles"), &self.probe_cycles);
        reg.counter(format!("{prefix}probe_stalls"), &self.probe_stalls);
    }

    /// Removes and returns all collected results.
    pub fn drain_results(&mut self) -> Vec<MatchPair> {
        std::mem::take(&mut self.collected)
    }

    /// Results collected and not yet drained.
    pub fn pending_results(&self) -> usize {
        self.collected.len()
    }

    /// `true` when no tuple is pending, in flight, or undrained.
    pub fn quiescent(&self) -> bool {
        self.wave.is_none()
            && self.pending_r.is_none()
            && self.pending_s.is_none()
            && self
                .cores
                .iter()
                .all(|c| c.results.is_empty() && c.results.committed_len() == 0)
    }

    /// Direct pre-fill of the chain's windows. Tuples are laid out in the
    /// order a streamed fill would produce: the oldest tuples furthest
    /// from the entry end (next to expire), the newest at the entry core.
    pub fn prefill(&mut self, r: &[Tuple], s: &[Tuple]) {
        let n = self.cores.len();
        let sub = self.params.sub_window();
        assert!(r.len() <= n * sub && s.len() <= n * sub, "prefill overflow");
        // The chain fills from the exit end: the oldest R tuples live at
        // core n-1 (R's exit), the oldest S tuples at core 0 (S's exit).
        // Iterating oldest-first keeps each segment in chronological order.
        for (i, &t) in r.iter().enumerate() {
            self.cores[n - 1 - i / sub].window_r.load(t);
        }
        for (i, &t) in s.iter().enumerate() {
            self.cores[i / sub].window_s.load(t);
        }
    }

    fn entry_core(&self, tag: StreamTag) -> usize {
        match tag {
            StreamTag::R => 0,
            StreamTag::S => self.cores.len() - 1,
        }
    }

    /// Next core along the flow direction, or `None` past the exit end.
    fn next_core(&self, tag: StreamTag, core: usize) -> Option<usize> {
        match tag {
            StreamTag::R => (core + 1 < self.cores.len()).then_some(core + 1),
            StreamTag::S => core.checked_sub(1),
        }
    }

    fn admit(&mut self) {
        if self.wave.is_some() {
            return;
        }
        // Oldest arrival first, regardless of which end it entered.
        let tag = match (self.pending_r, self.pending_s) {
            (None, None) => return,
            (Some(_), None) => StreamTag::R,
            (None, Some(_)) => StreamTag::S,
            (Some((seq_r, _)), Some((seq_s, _))) => {
                if seq_r < seq_s {
                    StreamTag::R
                } else {
                    StreamTag::S
                }
            }
        };
        let (_, tuple) = match tag {
            StreamTag::R => self.pending_r.take(),
            StreamTag::S => self.pending_s.take(),
        }
        .expect("pending tuple present");
        self.waves_admitted.incr();
        self.wave = Some(Wave {
            tag,
            probe: tuple,
            store: Some(tuple),
            core: self.entry_core(tag),
            phase: WavePhase::Handshake(HANDSHAKE_CYCLES),
        });
    }

    /// `true` if any core strictly beyond `core` in `tag`'s flow direction
    /// still has room in its own-stream segment. While filling, the
    /// storage cascade carries tuples past such cores so the chain fills
    /// from the exit end — exactly the layout steady-state displacement
    /// produces.
    fn deeper_has_room(&mut self, tag: StreamTag, core: usize) -> bool {
        let n = self.cores.len();
        let sub = self.params.sub_window();
        let range: Box<dyn Iterator<Item = usize>> = match tag {
            StreamTag::R => Box::new(core + 1..n),
            StreamTag::S => Box::new((0..core).rev()),
        };
        for i in range {
            if self.cores[i].window_mut(tag).occupancy() < sub {
                return true;
            }
        }
        false
    }

    fn step_wave(&mut self) {
        let Some(mut wave) = self.wave else {
            return;
        };
        match wave.phase {
            WavePhase::Handshake(k) => {
                if k == HANDSHAKE_CYCLES {
                    // First cycle at this core: the segment span opens.
                    self.seg_start = self.cycle;
                }
                self.handshake_cycles.incr();
                if k > 1 {
                    wave.phase = WavePhase::Handshake(k - 1);
                } else {
                    let occ = self.cores[wave.core]
                        .window_mut(wave.tag.other())
                        .occupancy();
                    wave.phase = if occ == 0 {
                        WavePhase::Park
                    } else {
                        WavePhase::Probe { idx: 0, len: occ }
                    };
                }
                self.wave = Some(wave);
            }
            WavePhase::Probe { idx, len } => {
                let predicate = self.operator.expect("programmed").predicate;
                let core = &mut self.cores[wave.core];
                if !core.results.can_push() {
                    // Back-pressure from the result port stalls the probe.
                    self.probe_stalls.incr();
                    return;
                }
                self.probe_cycles.incr();
                let stored = core.window_mut(wave.tag.other()).read(idx);
                let (r, s) = match wave.tag {
                    StreamTag::R => (wave.probe, stored),
                    StreamTag::S => (stored, wave.probe),
                };
                if predicate.matches(r, s) {
                    core.results.push(MatchPair { r, s }).expect("checked");
                }
                wave.phase = if idx + 1 == len {
                    WavePhase::Park
                } else {
                    WavePhase::Probe { idx: idx + 1, len }
                };
                self.wave = Some(wave);
            }
            WavePhase::Park => {
                if let Some(ring) = self.ring.as_mut() {
                    // The park cycle closes this core's segment.
                    ring.record_arg(
                        "wave",
                        self.seg_start,
                        self.cycle - self.seg_start + 1,
                        wave.core as u64,
                    );
                }
                // Storage cascade: the carried tuple parks at the deepest
                // segment with room; in steady state (all full) it parks
                // here and displaces this segment's oldest, which the wave
                // carries onward — a one-slot shift along the chain.
                if let Some(t) = wave.store {
                    if !self.deeper_has_room(wave.tag, wave.core) {
                        wave.store =
                            self.cores[wave.core].window_mut(wave.tag).store(t);
                    }
                }
                match (self.variant, wave.store, self.next_core(wave.tag, wave.core)) {
                    // Low-latency: the probe tuple is replicated to every
                    // core regardless of where storage settles.
                    (BiflowVariant::LowLatency, store, Some(next)) => {
                        self.wave = Some(Wave {
                            tag: wave.tag,
                            probe: wave.probe,
                            store,
                            core: next,
                            phase: WavePhase::Handshake(HANDSHAKE_CYCLES),
                        });
                    }
                    // Original: only the physically moving tuple advances,
                    // and it is also what probes at the next core.
                    (BiflowVariant::Original, Some(moving), Some(next)) => {
                        self.wave = Some(Wave {
                            tag: wave.tag,
                            probe: moving,
                            store: Some(moving),
                            core: next,
                            phase: WavePhase::Handshake(HANDSHAKE_CYCLES),
                        });
                    }
                    // Tuple parked with nothing displaced: the original
                    // wave stops here.
                    (BiflowVariant::Original, None, _) => {
                        self.wave = None;
                    }
                    // End of the chain: anything still carried by the
                    // storage cascade has been displaced out of the
                    // window — it expires.
                    (_, _, None) => {
                        self.wave = None;
                    }
                }
            }
        }
    }
}

impl Component for BiFlowJoin {
    fn begin_cycle(&mut self) {
        self.cycle += 1;
        for c in &mut self.cores {
            c.results.begin_cycle();
            c.window_r.begin_cycle();
            c.window_s.begin_cycle();
        }
    }

    fn eval(&mut self) {
        // Result collection: round-robin, one core per cycle, sharing the
        // chain's single output bus.
        if let Some(m) = self.cores[self.collector_ptr].results.pop() {
            self.collected.push(m);
        }
        self.collector_ptr = (self.collector_ptr + 1) % self.cores.len();

        self.step_wave();
        self.admit();
    }

    fn commit(&mut self) {
        for c in &mut self.cores {
            c.results.commit();
        }
    }
}

/// The bi-flow chain is inherently sequential: every cycle the central
/// coordinator walks the whole chain (wave propagation, admission, the
/// shared result bus), so there are no independent sub-trees to shard.
/// The empty default decomposition makes a [`hwsim::ParSimulator`]
/// fall back to the sequential schedule — still
/// cycle-exact, just not parallel. This asymmetry mirrors the paper's
/// architectural point: uni-flow scales by adding independent cores,
/// bi-flow serializes on its coordinator.
impl Sharded for BiFlowJoin {}

impl fmt::Display for BiFlowJoin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bi-flow chain of {} cores", self.cores.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::Simulator;
    use std::collections::HashMap;

    fn drive(
        join: &mut BiFlowJoin,
        inputs: &[(StreamTag, Tuple)],
        max_cycles: u64,
    ) -> Vec<MatchPair> {
        let mut sim = Simulator::new();
        let mut idx = 0;
        while idx < inputs.len() {
            let (tag, t) = inputs[idx];
            if join.offer(tag, t) {
                idx += 1;
            }
            sim.step(join);
            assert!(sim.cycle() < max_cycles, "inputs not accepted in time");
        }
        assert!(
            sim.run_until(join, max_cycles, |j| j.quiescent()),
            "chain did not quiesce"
        );
        join.drain_results()
    }

    fn reference_join(inputs: &[(StreamTag, Tuple)], window: usize) -> Vec<MatchPair> {
        let mut wr: Vec<Tuple> = Vec::new();
        let mut ws: Vec<Tuple> = Vec::new();
        let mut out = Vec::new();
        for &(tag, t) in inputs {
            match tag {
                StreamTag::R => {
                    for &s in &ws {
                        if t.key() == s.key() {
                            out.push(MatchPair { r: t, s });
                        }
                    }
                    wr.push(t);
                    if wr.len() > window {
                        wr.remove(0);
                    }
                }
                StreamTag::S => {
                    for &r in &wr {
                        if r.key() == t.key() {
                            out.push(MatchPair { r, s: t });
                        }
                    }
                    ws.push(t);
                    if ws.len() > window {
                        ws.remove(0);
                    }
                }
            }
        }
        out
    }

    fn as_multiset(results: &[MatchPair]) -> HashMap<(u64, u64), u32> {
        let mut m = HashMap::new();
        for p in results {
            *m.entry((p.r.raw(), p.s.raw())).or_insert(0) += 1;
        }
        m
    }

    fn workload(n: usize, domain: u32) -> Vec<(StreamTag, Tuple)> {
        streamcore::workload::WorkloadSpec::new(
            n,
            streamcore::workload::KeyDist::Uniform { domain },
        )
        .generate()
        .collect()
    }

    #[test]
    fn matches_reference_join_exactly() {
        let inputs = workload(120, 6);
        for cores in [1u32, 2, 4] {
            let params = DesignParams::new(FlowModel::BiFlow, cores, 32);
            let mut join = BiFlowJoin::new(&params);
            join.program(JoinOperator::equi(cores));
            let got = drive(&mut join, &inputs, 2_000_000);
            let want = reference_join(&inputs, 32);
            assert_eq!(
                as_multiset(&got),
                as_multiset(&want),
                "mismatch with {cores} cores"
            );
            assert!(!want.is_empty());
        }
    }

    #[test]
    fn matches_reference_with_expiry() {
        let inputs = workload(300, 4);
        let params = DesignParams::new(FlowModel::BiFlow, 4, 16);
        let mut join = BiFlowJoin::new(&params);
        join.program(JoinOperator::equi(4));
        let got = drive(&mut join, &inputs, 4_000_000);
        let want = reference_join(&inputs, 16);
        assert_eq!(as_multiset(&got), as_multiset(&want));
    }

    #[test]
    fn tuples_rejected_before_programming() {
        let params = DesignParams::new(FlowModel::BiFlow, 2, 8);
        let mut join = BiFlowJoin::new(&params);
        assert!(!join.offer(StreamTag::R, Tuple::new(1, 0)));
        join.program(JoinOperator::equi(2));
        assert!(join.offer(StreamTag::R, Tuple::new(1, 0)));
    }

    #[test]
    fn input_register_backpressures_until_wave_completes() {
        let params = DesignParams::new(FlowModel::BiFlow, 2, 8);
        let mut join = BiFlowJoin::new(&params);
        join.program(JoinOperator::equi(2));
        assert!(join.offer(StreamTag::R, Tuple::new(1, 0)));
        // The R register is occupied until the coordinator admits the wave.
        assert!(!join.offer(StreamTag::R, Tuple::new(2, 0)));
        // The S register is independent.
        assert!(join.offer(StreamTag::S, Tuple::new(3, 0)));
    }

    #[test]
    fn service_time_grows_with_total_window_not_sub_window() {
        // The single-wave discipline serializes the chain: cycles per
        // tuple ~ W + 3N regardless of N — the root of Fig. 14b's gap.
        let mut cycles = Vec::new();
        for cores in [2u32, 8] {
            let window = 64usize;
            let params = DesignParams::new(FlowModel::BiFlow, cores, window);
            let mut join = BiFlowJoin::new(&params);
            join.program(JoinOperator::equi(cores));
            let r: Vec<Tuple> = (0..window as u32).map(|i| Tuple::new(i, i)).collect();
            let s: Vec<Tuple> = (0..window as u32)
                .map(|i| Tuple::new(i + 1000, i))
                .collect();
            join.prefill(&r, &s);
            let mut sim = Simulator::new();
            let mut sent = 0;
            while sent < 8 {
                if join.offer(StreamTag::R, Tuple::new(1 << 20, sent)) {
                    sent += 1;
                }
                sim.step(&mut join);
            }
            sim.run_until(&mut join, 1_000_000, |j| j.quiescent());
            cycles.push(sim.cycle());
        }
        // More cores does NOT speed up bi-flow materially.
        let ratio = cycles[0] as f64 / cycles[1] as f64;
        assert!(
            (0.7..1.4).contains(&ratio),
            "bi-flow should not scale with cores: {cycles:?}"
        );
    }

    #[test]
    fn prefill_layout_matches_streamed_fill() {
        // Fill via streaming, snapshot windows; then prefill and compare
        // probe results for identical behaviour.
        let params = DesignParams::new(FlowModel::BiFlow, 2, 8);
        let fill: Vec<(StreamTag, Tuple)> = (0..8u32)
            .map(|i| (StreamTag::S, Tuple::new(i, i)))
            .collect();
        let probe = (StreamTag::R, Tuple::new(6, 99));

        let mut a = BiFlowJoin::new(&params);
        a.program(JoinOperator::equi(2));
        let mut inputs = fill.clone();
        inputs.push(probe);
        let ra: Vec<_> = drive(&mut a, &inputs, 100_000)
            .into_iter()
            .filter(|m| m.r == Tuple::new(6, 99))
            .collect();

        let mut b = BiFlowJoin::new(&params);
        b.program(JoinOperator::equi(2));
        let s: Vec<Tuple> = fill.iter().map(|&(_, t)| t).collect();
        // Window is 8 per stream across 2 cores: all fit.
        b.prefill(&[], &s);
        let rb = drive(&mut b, &[probe], 10_000);
        assert_eq!(as_multiset(&ra), as_multiset(&rb));
        assert_eq!(rb.len(), 1);
    }

    #[test]
    fn original_variant_defers_and_never_invents_results() {
        let inputs = workload(400, 6);
        let want = reference_join(&inputs, 32);

        let params = DesignParams::new(FlowModel::BiFlow, 4, 32);
        let mut original = BiFlowJoin::new(&params).with_variant(BiflowVariant::Original);
        original.program(JoinOperator::equi(4));
        let got = drive(&mut original, &inputs, 4_000_000);

        // Subset of the strict results: deferral can only delay or drop
        // matches at stream end, never fabricate them.
        let want_set = as_multiset(&want);
        for (pair, n) in as_multiset(&got) {
            assert!(
                want_set.get(&pair).copied().unwrap_or(0) >= n,
                "original variant invented a result"
            );
        }
        // And on a finite stream it reports strictly fewer than the
        // low-latency variant (which equals the reference — tested above).
        assert!(
            got.len() < want.len(),
            "expected deferred results: {} vs {}",
            got.len(),
            want.len()
        );
        // It still finds most of them once the streams flow past each
        // other.
        assert!(
            got.len() * 2 > want.len(),
            "coverage collapsed: {} of {}",
            got.len(),
            want.len()
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn tracing_records_wave_segments_without_changing_results() {
        let inputs = workload(60, 6);
        let params = DesignParams::new(FlowModel::BiFlow, 4, 16);
        let mut plain = BiFlowJoin::new(&params);
        plain.program(JoinOperator::equi(4));
        let want = drive(&mut plain, &inputs, 2_000_000);
        assert!(plain.take_trace().is_empty(), "tracing off: no ring");

        obs::trace::enable(1);
        let mut traced = BiFlowJoin::new(&params);
        traced.program(JoinOperator::equi(4));
        let got = drive(&mut traced, &inputs, 2_000_000);
        obs::trace::disable();

        assert_eq!(as_multiset(&got), as_multiset(&want));
        let rings = traced.take_trace();
        assert_eq!(rings.len(), 1);
        let ring = &rings[0];
        assert_eq!(ring.track(), "biflow.chain");
        assert_eq!(ring.domain(), obs::trace::TimeDomain::Cycles);
        let events = ring.events();
        assert!(!events.is_empty());
        // Every span is a wave segment at one of the 4 cores, at least
        // handshake + park long.
        for e in &events {
            assert_eq!(e.name, "wave");
            assert!(e.arg < 4, "core index in range");
            assert!(e.dur > u64::from(HANDSHAKE_CYCLES));
        }
    }

    #[test]
    #[should_panic(expected = "requires bi-flow")]
    fn uniflow_params_rejected() {
        let params = DesignParams::new(FlowModel::UniFlow, 2, 16);
        let _ = BiFlowJoin::new(&params);
    }
}
