//! Design descriptors and the synthesis-report model.
//!
//! A [`DesignParams`] names one hardware configuration of the case study —
//! flow model, number of join cores, per-stream window size, and network
//! variant. [`DesignParams::synthesize`] plays the role of the Xilinx tool
//! chain in the paper: it computes resource utilization from the calibrated
//! per-component costs below, estimates the post-route clock frequency, and
//! produces a power report.
//!
//! Calibration (see `DESIGN.md` §6): per-component costs are chosen so the
//! paper's entire stated feasibility matrix holds — which (cores, window)
//! configurations fit each device — and the power coefficients reproduce
//! the paper's bi-flow/uni-flow power pair. Everything else the models
//! produce is an out-of-sample prediction.

use std::fmt;

use hwsim::{
    estimate_fmax, CapacityError, Device, Family, Frequency, MemoryMapping, PowerModel,
    PowerReport, Resources, TimingProfile, Utilization,
};

/// Default width of a stream tuple on the wire, excluding the 2-bit
/// header. Frame buses carry `tuple_bits + 2` bits and result buses
/// `2 × tuple_bits + 2` (two joined tuples plus the header), per the
/// paper's bus-width discussion.
pub const TUPLE_BITS: u64 = 64;

/// Depth of the per-core fetcher FIFO (tuples).
pub const FETCHER_DEPTH: usize = 4;

/// Depth of the per-core result FIFO (result frames).
pub const RESULT_FIFO_DEPTH: usize = 4;

/// Base logic cost of one uni-flow join core (storage + processing FSMs,
/// comparator, round-robin counters).
const UNIFLOW_CORE: Resources = Resources { luts: 260, ffs: 240, bram18: 0 };

/// Base logic cost of one bi-flow join core: two buffer managers, the
/// coordinator unit, five I/O ports, and the processing unit (Fig. 10) —
/// roughly 3.5× the uni-flow core, plus four BRAM18 of neighbour and
/// coordination buffers. This extra memory is what makes 16 bi-flow cores
/// at window 2^13 infeasible on the Virtex-5 while uni-flow fits.
const BIFLOW_CORE: Resources = Resources { luts: 900, ffs: 700, bram18: 4 };

/// One DNode of the scalable distribution network (2-deep frame buffer
/// plus broadcast drivers — cost grows with the tree fan-out).
fn dnode_cost(fanout: u64) -> Resources {
    Resources {
        luts: 60 + 10 * fanout,
        ffs: 100 + 20 * fanout,
        bram18: 0,
    }
}

/// One GNode of the scalable gathering network (result buffer plus the
/// rotating-grant logic over `fanout` upper ports).
fn gnode_cost(fanout: u64) -> Resources {
    Resources {
        luts: 80 + 20 * fanout,
        ffs: 140 + 20 * fanout,
        bram18: 0,
    }
}

/// The lightweight distribution network: an input register broadcast to
/// all cores.
const LIGHTWEIGHT_DIST: Resources = Resources { luts: 120, ffs: 70, bram18: 0 };

/// Fixed part of the lightweight gathering network (result bus register
/// plus round-robin pointer); add [`LIGHTWEIGHT_GATHER_PER_CORE`] per core.
const LIGHTWEIGHT_GATHER: Resources = Resources { luts: 60, ffs: 130, bram18: 0 };
const LIGHTWEIGHT_GATHER_PER_CORE: Resources = Resources { luts: 10, ffs: 0, bram18: 0 };

/// Stream de-packetizer, query assigner, and result collector — the
/// auxiliary blocks around any design (Fig. 5).
const AUXILIARY: Resources = Resources { luts: 500, ffs: 400, bram18: 0 };

/// Per-core neighbour-link wiring of the bi-flow chain.
const BIFLOW_LINK_PER_CORE: Resources = Resources { luts: 50, ffs: 0, bram18: 0 };

/// The bi-flow chain's central coordination module (low-latency handshake
/// join fast-forwarding).
const BIFLOW_COORDINATOR: Resources = Resources { luts: 800, ffs: 600, bram18: 0 };

/// Switching-activity factors fed to the power model: uni-flow cores skip
/// storage turns and have no neighbour traffic, bi-flow buffer managers
/// and coordination logic toggle every cycle.
const UNIFLOW_ACTIVITY: f64 = 0.9;
const BIFLOW_ACTIVITY: f64 = 1.0;

/// Join algorithm executed inside each core. The paper: the join core
/// implements the operator "without posing any limitation on the chosen
/// join algorithm, e.g., nested-loop join or hash join".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgorithm {
    /// Scan the whole opposite sub-window, one tuple per cycle — works
    /// for any predicate; the paper's measured configuration.
    NestedLoop,
    /// Probe a per-key bucket index — one cycle per *matching* tuple, but
    /// restricted to equi-joins and costing extra index memory.
    Hash,
}

impl fmt::Display for JoinAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinAlgorithm::NestedLoop => write!(f, "nested-loop"),
            JoinAlgorithm::Hash => write!(f, "hash"),
        }
    }
}

/// The data-flow model of a parallel stream join (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowModel {
    /// Uni-directional top-down flow (SplitJoin): independent join cores
    /// behind a distribution network.
    UniFlow,
    /// Bi-directional flow (handshake join): a linear chain with R flowing
    /// left-to-right and S right-to-left.
    BiFlow,
}

impl fmt::Display for FlowModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowModel::UniFlow => write!(f, "uni-flow"),
            FlowModel::BiFlow => write!(f, "bi-flow"),
        }
    }
}

/// Distribution / result-gathering network variant of the uni-flow design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Single-stage broadcast and round-robin collection: cheapest, but the
    /// broadcast fan-out grows with the core count and drags the clock
    /// frequency down.
    Lightweight,
    /// Hierarchical DNode/GNode trees (1→2 fan-out per stage): a few extra
    /// pipeline cycles of latency, but the clock frequency stays flat as
    /// the design scales (Fig. 17).
    Scalable,
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkKind::Lightweight => write!(f, "lightweight"),
            NetworkKind::Scalable => write!(f, "scalable"),
        }
    }
}

/// Parameters of one hardware join design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignParams {
    /// Flow model.
    pub flow: FlowModel,
    /// Number of join cores.
    pub num_cores: u32,
    /// Sliding-window size per stream (tuples), divided evenly across
    /// cores.
    pub window_size: usize,
    /// Network variant (uni-flow only; the bi-flow chain has no separate
    /// networks).
    pub network: NetworkKind,
    /// Fan-out of the scalable DNode/GNode trees (default 2, as in
    /// Fig. 9). Wider trees are shallower — lower latency — but each
    /// stage drives more loads, costing clock frequency; the paper flags
    /// this trade-off as worth exploring.
    pub tree_fanout: u32,
    /// Join algorithm inside each core (uni-flow; default nested-loop).
    pub algorithm: JoinAlgorithm,
    /// Tuple width in bits — a pre-synthesis parameter ("both of the
    /// realizations have the ability to adopt larger tuples that are
    /// defined by pre-synthesis parameters"). Affects window storage, bus
    /// widths, and therefore feasibility; the functional simulation always
    /// carries 64-bit tuples.
    pub tuple_bits: u32,
}

impl DesignParams {
    /// Creates a design with the lightweight network.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` or `window_size` is zero.
    pub fn new(flow: FlowModel, num_cores: u32, window_size: usize) -> Self {
        assert!(num_cores > 0, "a design needs at least one join core");
        assert!(window_size > 0, "window size must be positive");
        Self {
            flow,
            num_cores,
            window_size,
            network: NetworkKind::Lightweight,
            tree_fanout: 2,
            algorithm: JoinAlgorithm::NestedLoop,
            tuple_bits: TUPLE_BITS as u32,
        }
    }

    /// Selects the network variant.
    pub fn with_network(mut self, network: NetworkKind) -> Self {
        self.network = network;
        self
    }

    /// Sets the scalable-tree fan-out.
    ///
    /// # Panics
    ///
    /// Panics if `fanout < 2`.
    pub fn with_fanout(mut self, fanout: u32) -> Self {
        assert!(fanout >= 2, "tree fan-out must be at least 2");
        self.tree_fanout = fanout;
        self
    }

    /// Selects the join algorithm inside each core.
    pub fn with_algorithm(mut self, algorithm: JoinAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the pre-synthesis tuple width in bits.
    ///
    /// # Panics
    ///
    /// Panics unless `8 <= tuple_bits <= 512`.
    pub fn with_tuple_bits(mut self, tuple_bits: u32) -> Self {
        assert!(
            (8..=512).contains(&tuple_bits),
            "tuple width must be within 8..=512 bits"
        );
        self.tuple_bits = tuple_bits;
        self
    }

    /// Per-core sub-window capacity: `⌈window_size / num_cores⌉` tuples.
    pub fn sub_window(&self) -> usize {
        self.window_size.div_ceil(self.num_cores as usize)
    }

    /// Resource requirement of the design on `device` (the memory-mapping
    /// rule is family-dependent; see `DESIGN.md` §6).
    pub fn resources(&self, device: &Device) -> Resources {
        let n = self.num_cores as u64;
        let tuple_bits = self.tuple_bits as u64;
        let frame_bits = tuple_bits + 2;
        let result_bits = 2 * tuple_bits + 2;
        let window_bits = self.sub_window() as u64 * tuple_bits;
        // Two sub-windows (R and S) per core.
        let windows_per_core = Resources::for_memory_on(window_bits, device) * 2;
        let windows_in_bram =
            Resources::memory_mapping_on(window_bits, device) == MemoryMapping::BlockRam;

        // Fetcher and result FIFOs: on Virtex-5, once the windows spill to
        // block RAM the scarce LUT-RAM forces these FIFOs into BRAM too; on
        // Virtex-7 distributed RAM is plentiful and they stay in LUTs.
        let fifos_per_core = match (device.family, windows_in_bram) {
            (Family::Virtex5, true) => Resources { luts: 0, ffs: 0, bram18: 2 },
            _ => {
                Resources::for_memory_with(
                    FETCHER_DEPTH as u64 * frame_bits,
                    hwsim::LUTRAM_THRESHOLD_BITS_DEFAULT,
                ) + Resources::for_memory_with(
                    RESULT_FIFO_DEPTH as u64 * result_bits,
                    hwsim::LUTRAM_THRESHOLD_BITS_DEFAULT,
                )
            }
        };

        // Hash cores add index logic plus a bucket-pointer memory of
        // ~16 bits per slot alongside each sub-window.
        let hash_extra = match self.algorithm {
            JoinAlgorithm::NestedLoop => Resources::ZERO,
            JoinAlgorithm::Hash => {
                Resources { luts: 150, ffs: 40, bram18: 0 }
                    + Resources::for_memory_on(self.sub_window() as u64 * 16, device) * 2
            }
        };

        match self.flow {
            FlowModel::UniFlow => {
                let core = UNIFLOW_CORE + windows_per_core + fifos_per_core + hash_extra;
                let networks = match self.network {
                    NetworkKind::Lightweight => {
                        LIGHTWEIGHT_DIST
                            + LIGHTWEIGHT_GATHER
                            + LIGHTWEIGHT_GATHER_PER_CORE * n
                    }
                    NetworkKind::Scalable => {
                        // A complete k-ary tree with N leaves has
                        // (N-1)/(k-1) internal nodes.
                        let k = self.tree_fanout as u64;
                        let internal = n.saturating_sub(1) / (k - 1);
                        (dnode_cost(k) + gnode_cost(k)) * internal
                    }
                };
                core * n + networks + AUXILIARY
            }
            FlowModel::BiFlow => {
                let core = BIFLOW_CORE + windows_per_core + BIFLOW_LINK_PER_CORE;
                core * n + BIFLOW_COORDINATOR + AUXILIARY
            }
        }
    }

    /// Critical-path profile of the design, consumed by the fmax estimator.
    pub fn timing_profile(&self) -> TimingProfile {
        match self.flow {
            FlowModel::UniFlow => match self.network {
                NetworkKind::Lightweight => TimingProfile {
                    max_fanout: self.num_cores as u64,
                    logic_levels: 4,
                },
                NetworkKind::Scalable => TimingProfile {
                    max_fanout: self.tree_fanout as u64,
                    logic_levels: 6,
                },
            },
            // The chain has local fan-out only, but the coordinator and
            // dual buffer managers deepen the per-core control path.
            FlowModel::BiFlow => TimingProfile {
                max_fanout: 4,
                logic_levels: 7,
            },
        }
    }

    /// Switching-activity factor for the power model.
    pub fn activity(&self) -> f64 {
        match self.flow {
            FlowModel::UniFlow => UNIFLOW_ACTIVITY,
            FlowModel::BiFlow => BIFLOW_ACTIVITY,
        }
    }

    /// Power estimate at a *measured* switching activity (from a
    /// simulation run) instead of the vectorless default — the
    /// simulation-based power flow of real synthesis tools.
    ///
    /// # Errors
    ///
    /// Returns a [`CapacityError`] if the design does not fit `device`.
    pub fn power_at_activity(
        &self,
        device: &Device,
        clock: Frequency,
        activity: f64,
    ) -> Result<PowerReport, CapacityError> {
        let used = self.resources(device);
        used.check_fits(device)?;
        Ok(PowerModel::calibrated().report(device, used, clock, activity))
    }

    /// Runs the synthesis-report model: utilization, clock, and power.
    ///
    /// # Errors
    ///
    /// Returns a [`CapacityError`] if the design does not fit `device` —
    /// the model's equivalent of a failed place-and-route.
    pub fn synthesize(&self, device: &Device) -> Result<SynthesisReport, CapacityError> {
        let used = self.resources(device);
        used.check_fits(device)?;
        let clock = estimate_fmax(device, &self.timing_profile());
        let power =
            PowerModel::calibrated().report(device, used, clock, self.activity());
        Ok(SynthesisReport {
            params: *self,
            device_name: device.name,
            utilization: Utilization::new(used, device),
            clock,
            power,
        })
    }

    /// Synthesizes and then derates the clock to `mhz` (the paper runs the
    /// Virtex-5 experiments at a fixed 100 MHz even though timing closes
    /// higher).
    ///
    /// # Errors
    ///
    /// Returns a [`CapacityError`] if the design does not fit, and panics
    /// if `mhz` exceeds the achievable clock.
    pub fn synthesize_at(
        &self,
        device: &Device,
        mhz: f64,
    ) -> Result<SynthesisReport, CapacityError> {
        let mut report = self.synthesize(device)?;
        assert!(
            mhz <= report.clock.mhz(),
            "requested clock {mhz} MHz exceeds achievable {}",
            report.clock
        );
        report.clock = Frequency::from_mhz(mhz);
        report.power = PowerModel::calibrated().report(
            device,
            report.utilization.used,
            report.clock,
            self.activity(),
        );
        Ok(report)
    }
}

impl fmt::Display for DesignParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} join, {} cores, window 2^{:.0} per stream, {} network",
            self.flow,
            self.num_cores,
            (self.window_size as f64).log2(),
            self.network
        )
    }
}

/// The output of the synthesis-report model for one design on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisReport {
    /// The synthesized design.
    pub params: DesignParams,
    /// Target device part name.
    pub device_name: &'static str,
    /// Resource usage relative to the device capacity.
    pub utilization: Utilization,
    /// Estimated post-route clock frequency.
    pub clock: Frequency,
    /// Estimated power at that clock.
    pub power: PowerReport,
}

impl fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} on {}", self.params, self.device_name)?;
        writeln!(
            f,
            "  LUT {:>6.1}%  FF {:>6.1}%  BRAM {:>6.1}%",
            self.utilization.lut_percent(),
            self.utilization.ff_percent(),
            self.utilization.bram_percent()
        )?;
        writeln!(f, "  clock {}", self.clock)?;
        write!(f, "  power {}", self.power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::devices::{XC5VLX50T, XC7VX485T};

    fn uni(n: u32, w: usize) -> DesignParams {
        DesignParams::new(FlowModel::UniFlow, n, w)
    }

    fn bi(n: u32, w: usize) -> DesignParams {
        DesignParams::new(FlowModel::BiFlow, n, w)
    }

    #[test]
    fn sub_window_divides_evenly_and_rounds_up() {
        assert_eq!(uni(16, 1 << 13).sub_window(), 512);
        assert_eq!(uni(3, 10).sub_window(), 4);
    }

    // ---- The paper's feasibility matrix (Section V) ----

    #[test]
    fn v5_uniflow_16_cores_window_2_13_fits() {
        assert!(uni(16, 1 << 13).synthesize(&XC5VLX50T).is_ok());
    }

    #[test]
    fn v5_uniflow_32_and_64_cores_cap_at_window_2_11() {
        // "We were not able to realize window sizes larger than 2^11 when
        // instantiating 32 and 64 join cores."
        for n in [32, 64] {
            assert!(uni(n, 1 << 11).synthesize(&XC5VLX50T).is_ok(), "{n}@2^11");
            assert!(
                uni(n, 1 << 12).synthesize(&XC5VLX50T).is_err(),
                "{n}@2^12 should not fit"
            );
            assert!(uni(n, 1 << 13).synthesize(&XC5VLX50T).is_err());
        }
    }

    #[test]
    fn v5_uniflow_small_core_counts_fit_both_paper_windows() {
        for n in [2, 4, 8, 16] {
            for w in [1 << 11, 1 << 13] {
                assert!(uni(n, w).synthesize(&XC5VLX50T).is_ok(), "{n}@{w}");
            }
        }
    }

    #[test]
    fn v5_biflow_16_cores_window_2_13_does_not_fit() {
        // "We were not able to instantiate 16 join cores with 2^13 in
        // bi-flow hardware, unlike the uni-flow one."
        assert!(bi(16, 1 << 13).synthesize(&XC5VLX50T).is_err());
        // ...but 2^12 (the largest bi-flow point in Fig. 14b) fits.
        assert!(bi(16, 1 << 12).synthesize(&XC5VLX50T).is_ok());
    }

    #[test]
    fn v7_uniflow_512_cores_window_2_18_is_the_ceiling() {
        // Fig. 14c: "as many as 512 join cores and window sizes as large
        // as 2^18".
        let max = uni(512, 1 << 18).with_network(NetworkKind::Scalable);
        assert!(max.synthesize(&XC7VX485T).is_ok());
        let beyond = uni(512, 1 << 19).with_network(NetworkKind::Scalable);
        assert!(beyond.synthesize(&XC7VX485T).is_err());
    }

    // ---- Clock model ----

    #[test]
    fn v7_scalable_clock_supports_the_papers_300mhz() {
        let r = uni(512, 1 << 18)
            .with_network(NetworkKind::Scalable)
            .synthesize(&XC7VX485T)
            .unwrap();
        assert!(
            r.clock.mhz() >= 300.0,
            "paper clocks the V7 scalable design at 300 MHz, model gives {}",
            r.clock
        );
    }

    #[test]
    fn v5_clock_supports_the_papers_100mhz() {
        for n in [2, 4, 8, 16] {
            let r = uni(n, 1 << 11).synthesize(&XC5VLX50T).unwrap();
            assert!(r.clock.mhz() >= 100.0, "{n} cores: {}", r.clock);
        }
    }

    #[test]
    fn synthesize_at_derates_clock_and_power() {
        let full = uni(16, 1 << 13).synthesize(&XC5VLX50T).unwrap();
        let derated = uni(16, 1 << 13).synthesize_at(&XC5VLX50T, 100.0).unwrap();
        assert_eq!(derated.clock.mhz(), 100.0);
        assert!(derated.power.total_mw() < full.power.total_mw());
    }

    // ---- Power model calibration anchors (paper §V) ----

    #[test]
    fn power_pair_matches_paper_within_half_percent() {
        // "16 join cores with a total window size of 2^13 (for each
        // stream) consumed 1647.53 mW and 800.35 mW power for parallel
        // stream join based on bi-flow and uni-flow, respectively."
        // Power is a synthesis estimate, so it is available even for the
        // bi-flow configuration that place-and-route rejects.
        let clock = Frequency::from_mhz(100.0);
        let model = PowerModel::calibrated();
        let uni_p = model.report(
            &XC5VLX50T,
            uni(16, 1 << 13).resources(&XC5VLX50T),
            clock,
            UNIFLOW_ACTIVITY,
        );
        let bi_p = model.report(
            &XC5VLX50T,
            bi(16, 1 << 13).resources(&XC5VLX50T),
            clock,
            BIFLOW_ACTIVITY,
        );
        let uni_err = (uni_p.total_mw() - 800.35).abs() / 800.35;
        let bi_err = (bi_p.total_mw() - 1647.53).abs() / 1647.53;
        assert!(uni_err < 0.005, "uni-flow power {} vs 800.35", uni_p);
        assert!(bi_err < 0.005, "bi-flow power {} vs 1647.53", bi_p);
        // "more than 50% power saving"
        assert!(uni_p.total_mw() < 0.5 * bi_p.total_mw());
    }

    // ---- General sanity ----

    #[test]
    fn resources_scale_with_cores_and_windows() {
        let small = uni(4, 1 << 10).resources(&XC7VX485T);
        let more_cores = uni(8, 1 << 10).resources(&XC7VX485T);
        let bigger_window = uni(4, 1 << 14).resources(&XC7VX485T);
        assert!(more_cores.luts > small.luts);
        assert!(bigger_window.bram18 >= small.bram18);
    }

    #[test]
    fn scalable_network_costs_more_logic_than_lightweight() {
        let lw = uni(64, 1 << 11).resources(&XC7VX485T);
        let sc = uni(64, 1 << 11)
            .with_network(NetworkKind::Scalable)
            .resources(&XC7VX485T);
        assert!(sc.luts > lw.luts);
        assert!(sc.ffs > lw.ffs);
    }

    #[test]
    fn biflow_core_is_heavier_than_uniflow_core() {
        let u = uni(16, 1 << 12).resources(&XC5VLX50T);
        let b = bi(16, 1 << 12).resources(&XC5VLX50T);
        assert!(b.luts > 2 * u.luts);
        assert!(b.bram18 > u.bram18);
    }

    #[test]
    fn display_report_is_readable() {
        let r = uni(4, 1 << 8).synthesize(&XC5VLX50T).unwrap();
        let s = r.to_string();
        assert!(s.contains("uni-flow join, 4 cores"));
        assert!(s.contains("clock"));
        assert!(s.contains("power"));
    }

    #[test]
    #[should_panic(expected = "at least one join core")]
    fn zero_cores_panics() {
        let _ = uni(0, 16);
    }

    #[test]
    fn wider_tuples_shrink_the_feasible_window() {
        // 64-bit tuples: 16 cores @ 2^13 fits the V5 (the paper's point).
        assert!(uni(16, 1 << 13).synthesize(&XC5VLX50T).is_ok());
        // 256-bit tuples quadruple the window storage: no longer fits.
        let wide = uni(16, 1 << 13).with_tuple_bits(256);
        assert!(wide.synthesize(&XC5VLX50T).is_err());
        // A quarter of the window restores feasibility.
        let wide_small = uni(16, 1 << 11).with_tuple_bits(256);
        assert!(wide_small.synthesize(&XC5VLX50T).is_ok());
    }

    #[test]
    fn measured_activity_power_scales_from_vectorless() {
        let params = uni(16, 1 << 12);
        let clock = Frequency::from_mhz(100.0);
        let low = params.power_at_activity(&XC5VLX50T, clock, 0.3).unwrap();
        let high = params.power_at_activity(&XC5VLX50T, clock, 0.9).unwrap();
        assert!(high.dynamic_mw > 2.9 * low.dynamic_mw);
        assert_eq!(high.static_mw, low.static_mw);
    }

    #[test]
    #[should_panic(expected = "tuple width must be within")]
    fn absurd_tuple_width_rejected() {
        let _ = uni(2, 16).with_tuple_bits(4);
    }
}
