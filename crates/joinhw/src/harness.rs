//! Experiment harness: drives the hardware designs through throughput and
//! latency measurements, matching the paper's methodology.
//!
//! * **Throughput** (Figs. 14a–c): windows are pre-filled to steady state,
//!   then the design is driven at saturation — a tuple is offered every
//!   cycle and accepted whenever the input port has room. Input throughput
//!   is accepted tuples per cycle, converted to tuples/second by the
//!   synthesis clock.
//! * **Latency** (Fig. 15): "the time it takes to process and emit all
//!   results for a newly inserted tuple" — windows are pre-filled with a
//!   planted match per join core, one probe tuple is injected, and the
//!   cycle at which the last result reaches the collector is recorded.
//!
//! The analytic models at the bottom cross-validate the cycle-accurate
//! simulation (see `tests/model_vs_sim.rs` at the workspace root).

use hwsim::{Control, Engine, Sharded, Simulator};
use streamcore::metrics::Throughput;
use streamcore::{MatchPair, StreamTag, Tuple};

use crate::biflow::BiFlowJoin;
use crate::uniflow::UniFlowJoin;
use crate::{DesignParams, FlowModel};

/// Common driving interface over the two hardware join designs.
///
/// The [`Sharded`] supertrait lets any engine implementing
/// [`Engine`] — the sequential [`Simulator`] or the parallel
/// `hwsim::ParSimulator` — drive a boxed design.
pub trait StreamJoin: Sharded {
    /// Offers a tuple at the appropriate input port; `false` if
    /// back-pressured this cycle.
    fn offer(&mut self, tag: StreamTag, tuple: Tuple) -> bool;
    /// `true` when no work is queued or in flight.
    fn quiescent(&self) -> bool;
    /// Results collected and not yet drained.
    fn pending_results(&self) -> usize;
    /// Removes and returns collected results.
    fn drain_results(&mut self) -> Vec<MatchPair>;
    /// Directly loads the sliding windows (measurement setup).
    fn prefill(&mut self, r: &[Tuple], s: &[Tuple]);
    /// Tuples accepted so far.
    fn accepted_tuples(&self) -> u64;
    /// Publishes the design's counters into `reg` under `prefix` (see the
    /// designs' inherent `observe` methods for the emitted keys). Stall
    /// counters read 0 when the `obs` feature is off.
    fn observe(&self, reg: &mut obs::Registry, prefix: &str);
    /// Detaches the design's cycle-stamped span rings (empty unless
    /// tracing was enabled when the design was built; see `obs::trace`).
    fn take_trace(&mut self) -> Vec<obs::trace::TraceRing> {
        Vec::new()
    }
    /// Detaches the design's per-tuple provenance tracker, if the design
    /// samples one (uni-flow does; bi-flow has no staged pipeline).
    fn take_provenance(&mut self) -> Option<obs::provenance::ProvenanceTracker> {
        None
    }
}

impl StreamJoin for UniFlowJoin {
    fn offer(&mut self, tag: StreamTag, tuple: Tuple) -> bool {
        UniFlowJoin::offer(self, tag, tuple)
    }
    fn quiescent(&self) -> bool {
        UniFlowJoin::quiescent(self)
    }
    fn pending_results(&self) -> usize {
        UniFlowJoin::pending_results(self)
    }
    fn drain_results(&mut self) -> Vec<MatchPair> {
        UniFlowJoin::drain_results(self)
    }
    fn prefill(&mut self, r: &[Tuple], s: &[Tuple]) {
        UniFlowJoin::prefill(self, r, s)
    }
    fn accepted_tuples(&self) -> u64 {
        UniFlowJoin::accepted_tuples(self)
    }
    fn observe(&self, reg: &mut obs::Registry, prefix: &str) {
        UniFlowJoin::observe(self, reg, prefix)
    }
    fn take_trace(&mut self) -> Vec<obs::trace::TraceRing> {
        UniFlowJoin::take_trace(self)
    }
    fn take_provenance(&mut self) -> Option<obs::provenance::ProvenanceTracker> {
        UniFlowJoin::take_provenance(self)
    }
}

impl StreamJoin for BiFlowJoin {
    fn offer(&mut self, tag: StreamTag, tuple: Tuple) -> bool {
        BiFlowJoin::offer(self, tag, tuple)
    }
    fn quiescent(&self) -> bool {
        BiFlowJoin::quiescent(self)
    }
    fn pending_results(&self) -> usize {
        BiFlowJoin::pending_results(self)
    }
    fn drain_results(&mut self) -> Vec<MatchPair> {
        BiFlowJoin::drain_results(self)
    }
    fn prefill(&mut self, r: &[Tuple], s: &[Tuple]) {
        BiFlowJoin::prefill(self, r, s)
    }
    fn accepted_tuples(&self) -> u64 {
        BiFlowJoin::accepted_tuples(self)
    }
    fn observe(&self, reg: &mut obs::Registry, prefix: &str) {
        BiFlowJoin::observe(self, reg, prefix)
    }
    fn take_trace(&mut self) -> Vec<obs::trace::TraceRing> {
        BiFlowJoin::take_trace(self)
    }
}

/// Builds the design named by `params`, programmed with an equi-join.
pub fn build(params: &DesignParams) -> Box<dyn StreamJoin> {
    let op = crate::JoinOperator::equi(params.num_cores);
    match params.flow {
        FlowModel::UniFlow => {
            let mut j = UniFlowJoin::new(params);
            j.program(op);
            Box::new(j)
        }
        FlowModel::BiFlow => {
            let mut j = BiFlowJoin::new(params);
            j.program(op);
            Box::new(j)
        }
    }
}

/// Fills both windows to capacity with non-matching keys (distinct per
/// stream), leaving the design in steady state for a throughput run.
pub fn prefill_steady_state(join: &mut dyn StreamJoin, window_size: usize) {
    let r: Vec<Tuple> = (0..window_size as u32)
        .map(|i| Tuple::new(i, i))
        .collect();
    let s: Vec<Tuple> = (0..window_size as u32)
        .map(|i| Tuple::new(i + window_size as u32, i))
        .collect();
    join.prefill(&r, &s);
}

/// Outcome of a saturation throughput run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputRun {
    /// Tuples accepted during the measured span.
    pub tuples: u64,
    /// Clock cycles elapsed.
    pub cycles: u64,
    /// Join results produced during the span.
    pub results: u64,
}

impl ThroughputRun {
    /// Accepted input tuples per clock cycle.
    pub fn tuples_per_cycle(&self) -> f64 {
        self.tuples as f64 / self.cycles as f64
    }

    /// Converts to tuples/second at clock frequency `mhz`.
    pub fn at_clock(&self, mhz: f64) -> Throughput {
        Throughput::over_cycles(self.tuples, self.cycles, mhz)
    }
}

/// Drives a pre-filled design at saturation until `tuples` inputs have
/// been accepted; alternates R and S tuples with keys drawn round-robin
/// from `key_domain` (selectivity `window / key_domain` per probe).
///
/// # Panics
///
/// Panics if the design stops accepting input for an implausibly long
/// stretch (a deadlock in the modeled flow control).
pub fn run_throughput(
    join: &mut dyn StreamJoin,
    tuples: u64,
    key_domain: u32,
) -> ThroughputRun {
    run_throughput_with(&mut Simulator::new(), join, tuples, key_domain)
}

/// [`run_throughput`] on an explicit [`Engine`] — pass an
/// `hwsim::ParSimulator` to run the same (cycle-exact) measurement with
/// the join cores spread across a worker pool.
///
/// The drive loop is expressed as a per-cycle tick: drain the collector
/// when its backlog passes the watermark, stop once `tuples` inputs were
/// accepted, otherwise offer the next tuple. This ordering reproduces the
/// sequential measurement loop event for event, so every engine reports
/// identical [`ThroughputRun`]s.
///
/// # Panics
///
/// Panics if the design stops accepting input for an implausibly long
/// stretch (a deadlock in the modeled flow control).
pub fn run_throughput_with<E: Engine>(
    engine: &mut E,
    join: &mut dyn StreamJoin,
    tuples: u64,
    key_domain: u32,
) -> ThroughputRun {
    run_throughput_observed(engine, join, tuples, key_domain).0
}

/// [`run_throughput_with`] that additionally returns the distribution of
/// per-tuple **service gaps**: the number of cycles between consecutive
/// input acceptances. At saturation the gap is the design's service time,
/// so the histogram's p50/p99 expose the tail the mean throughput number
/// hides (e.g. cycles stalling on a full gathering tree).
///
/// The drive loop is byte-for-byte the one [`run_throughput`] uses —
/// recording a gap has no control-flow effect — so the returned
/// [`ThroughputRun`] is identical to the unobserved run's.
///
/// # Panics
///
/// Panics if the design stops accepting input for an implausibly long
/// stretch (a deadlock in the modeled flow control).
pub fn run_throughput_observed<E: Engine>(
    engine: &mut E,
    join: &mut dyn StreamJoin,
    tuples: u64,
    key_domain: u32,
) -> (ThroughputRun, obs::Histogram) {
    let start = engine.cycle();
    let mut sent = 0u64;
    let mut results = 0u64;
    let mut seq = 0u32;
    let mut stall = 0u64;
    let mut gaps = obs::Histogram::new();
    let mut last_accept = start;
    engine.run_driven(join, u64::MAX, &mut |join, cycle| {
        if join.pending_results() > 4_096 {
            results += join.drain_results().len() as u64;
        }
        if sent == tuples {
            return Control::Stop;
        }
        let tag = if sent.is_multiple_of(2) { StreamTag::R } else { StreamTag::S };
        // Multiplicative hash (high bits) decorrelates the key sequence
        // from the strict R/S alternation — plain `seq % domain` would
        // give the two streams disjoint key parities.
        let key = (seq.wrapping_mul(2_654_435_761) >> 16) % key_domain;
        if join.offer(tag, Tuple::new(key, seq)) {
            sent += 1;
            seq = seq.wrapping_add(1);
            stall = 0;
            gaps.record_value(cycle - last_accept);
            last_accept = cycle;
        } else {
            stall += 1;
            assert!(
                stall < 100_000_000,
                "input port wedged after {sent} tuples"
            );
        }
        Control::Continue
    });
    results += join.drain_results().len() as u64;
    let run = ThroughputRun {
        tuples: sent,
        cycles: engine.cycle() - start,
        results,
    };
    (run, gaps)
}

/// Outcome of a single-tuple latency probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyRun {
    /// Cycles from injection until the last result reached the collector.
    pub cycles_to_last_result: u64,
    /// Cycles from injection until the whole design quiesced.
    pub cycles_to_quiescent: u64,
    /// Number of results the probe produced.
    pub results: u64,
}

/// Measures the latency of one probe tuple through a pre-filled design.
///
/// The windows must already contain the tuples the probe should match
/// (use [`prefill_planted`]). Returns `None` if the design fails to
/// quiesce within `max_cycles`.
pub fn run_latency(
    join: &mut dyn StreamJoin,
    probe: (StreamTag, Tuple),
    max_cycles: u64,
) -> Option<LatencyRun> {
    run_latency_with(&mut Simulator::new(), join, probe, max_cycles)
}

/// [`run_latency`] on an explicit [`Engine`]; see
/// [`run_throughput_with`] for the engine-equivalence contract.
///
/// The tick is a two-phase state machine mirroring the sequential probe
/// loop: retry the offer until accepted (with the same timeout check the
/// sequential loop applies after each stalled cycle), then drain and
/// watch for quiescence every cycle, recording the cycle of the last
/// drained result.
pub fn run_latency_with<E: Engine>(
    engine: &mut E,
    join: &mut dyn StreamJoin,
    probe: (StreamTag, Tuple),
    max_cycles: u64,
) -> Option<LatencyRun> {
    let start = engine.cycle();
    let mut offered_at: Option<u64> = None;
    let mut results = 0u64;
    let mut last_result_cycle = 0u64;
    let mut timed_out = false;
    engine.run_driven(join, u64::MAX, &mut |join, cycle| match offered_at {
        None => {
            if cycle - start > max_cycles {
                timed_out = true;
                return Control::Stop;
            }
            if !join.offer(probe.0, probe.1) {
                return Control::Continue;
            }
            offered_at = Some(cycle);
            last_result_cycle = cycle;
            if join.quiescent() { Control::Stop } else { Control::Continue }
        }
        Some(offered) => {
            let drained = join.drain_results();
            if !drained.is_empty() {
                results += drained.len() as u64;
                last_result_cycle = cycle;
            }
            if cycle - offered > max_cycles {
                timed_out = true;
                return Control::Stop;
            }
            if join.quiescent() { Control::Stop } else { Control::Continue }
        }
    });
    let offered = offered_at?;
    if timed_out {
        return None;
    }
    Some(LatencyRun {
        cycles_to_last_result: last_result_cycle - offered,
        cycles_to_quiescent: engine.cycle() - offered,
        results,
    })
}

/// Pre-fills a uni-flow design so that an R probe with `probe_key` finds
/// exactly one match in every join core's S sub-window, planted at the
/// *end* of each scan — the last-emitted result defines the latency, so
/// this makes the probe exercise the full scan plus the full breadth of
/// the gathering network, as the paper's latency experiment does.
pub fn prefill_planted(
    join: &mut dyn StreamJoin,
    params: &DesignParams,
    probe_key: u32,
) {
    let window = params.window_size;
    let n = params.num_cores as usize;
    let sub = params.sub_window();
    // Non-matching R fill.
    let r: Vec<Tuple> = (0..window as u32)
        .map(|i| Tuple::new(probe_key + 1 + i, i))
        .collect();
    // S fill: round-robin distribution maps index i to core i % n; the
    // newest tuple assigned to each core (scan position sub-1) matches.
    let s: Vec<Tuple> = (0..window as u32)
        .map(|i| {
            let pos_in_core = i as usize / n;
            if pos_in_core == sub - 1 {
                Tuple::new(probe_key, i)
            } else {
                Tuple::new(probe_key + 1 + i, i)
            }
        })
        .collect();
    join.prefill(&r, &s);
}

// ---------------------------------------------------------------------
// Analytic models (cross-validation of the cycle-accurate simulation)
// ---------------------------------------------------------------------

/// Uni-flow steady-state service time per tuple, in cycles: each core
/// scans its full opposite sub-window at one read per cycle. The fetch of
/// the next tuple overlaps the final scan cycle, so no extra cycle is
/// charged; the input bus caps the rate at one tuple per cycle.
pub fn uniflow_service_cycles(window_size: usize, num_cores: u32) -> f64 {
    window_size.div_ceil(num_cores as usize).max(1) as f64
}

/// Uni-flow input throughput in tuples/second at `mhz`.
pub fn uniflow_throughput_model(window_size: usize, num_cores: u32, mhz: f64) -> f64 {
    mhz * 1e6 / uniflow_service_cycles(window_size, num_cores)
}

/// Bi-flow (single-wave discipline) service time per tuple, in cycles:
/// the wave traverses every core, paying handshake + probe + park at each.
pub fn biflow_service_cycles(window_size: usize, num_cores: u32) -> f64 {
    let sub = window_size.div_ceil(num_cores as usize) as f64;
    num_cores as f64 * (sub + f64::from(crate::biflow::HANDSHAKE_CYCLES) + 1.0)
}

/// Bi-flow input throughput in tuples/second at `mhz`.
pub fn biflow_throughput_model(window_size: usize, num_cores: u32, mhz: f64) -> f64 {
    mhz * 1e6 / biflow_service_cycles(window_size, num_cores)
}

/// Bi-flow single-tuple latency in cycles: the admitted wave traverses
/// every core, paying handshake + full-segment probe + park at each —
/// the "latency increase since the processing of a single incoming tuple
/// requires a sequential flow through the entire processing pipeline"
/// the paper attributes to bi-flow.
pub fn biflow_latency_cycles(window_size: usize, num_cores: u32) -> f64 {
    biflow_service_cycles(window_size, num_cores)
}

/// Uni-flow single-tuple latency in cycles: distribution stages, the
/// sub-window scan, and result collection.
pub fn uniflow_latency_cycles(params: &DesignParams) -> f64 {
    let sub = params.sub_window() as f64;
    let n = params.num_cores as f64;
    let (dist, gather) = match params.network {
        crate::NetworkKind::Lightweight => (1.0, n / 2.0 + 1.0),
        crate::NetworkKind::Scalable => {
            let depth = (params.num_cores as f64)
                .log(params.tree_fanout as f64)
                .ceil()
                + 1.0;
            (depth, params.tree_fanout as f64 * depth)
        }
    };
    // Fetch + scan to the planted match (mid-window average ≈ full scan
    // for the last result) + emit.
    dist + 1.0 + sub + gather
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkKind;

    fn uni(n: u32, w: usize) -> DesignParams {
        DesignParams::new(FlowModel::UniFlow, n, w)
    }

    #[test]
    fn throughput_run_matches_service_model() {
        let params = uni(4, 256);
        let mut join = build(&params);
        prefill_steady_state(join.as_mut(), params.window_size);
        let run = run_throughput(join.as_mut(), 200, 1 << 20);
        let measured = 1.0 / run.tuples_per_cycle();
        let model = uniflow_service_cycles(params.window_size, params.num_cores);
        let err = (measured - model).abs() / model;
        assert!(
            err < 0.10,
            "service cycles measured {measured:.1} vs model {model:.1}"
        );
    }

    #[test]
    fn biflow_run_matches_service_model() {
        let params = DesignParams::new(FlowModel::BiFlow, 4, 64);
        let mut join = build(&params);
        prefill_steady_state(join.as_mut(), params.window_size);
        let run = run_throughput(join.as_mut(), 50, 1 << 20);
        let measured = 1.0 / run.tuples_per_cycle();
        let model = biflow_service_cycles(params.window_size, params.num_cores);
        let err = (measured - model).abs() / model;
        assert!(
            err < 0.15,
            "service cycles measured {measured:.1} vs model {model:.1}"
        );
    }

    #[test]
    fn uniflow_beats_biflow_by_roughly_the_core_count() {
        // Fig. 14b's "nearly an order of magnitude" at matched parameters.
        let (n, w) = (8u32, 256usize);
        let uni_t = uniflow_throughput_model(w, n, 100.0);
        let bi_t = biflow_throughput_model(w, n, 100.0);
        let ratio = uni_t / bi_t;
        assert!(
            (n as f64 * 0.8..n as f64 * 1.6).contains(&ratio),
            "expected ~{n}x, got {ratio:.1}"
        );
    }

    #[test]
    fn latency_probe_collects_one_match_per_core() {
        for network in [NetworkKind::Lightweight, NetworkKind::Scalable] {
            let params = uni(4, 64).with_network(network);
            let mut join = build(&params);
            prefill_planted(join.as_mut(), &params, 7);
            let run = run_latency(
                join.as_mut(),
                (StreamTag::R, Tuple::new(7, 1 << 30)),
                100_000,
            )
            .expect("quiesces");
            assert_eq!(run.results, 4, "{network:?}");
            assert!(run.cycles_to_last_result > 0);
            assert!(run.cycles_to_quiescent >= run.cycles_to_last_result);
        }
    }

    #[test]
    fn latency_matches_analytic_model_within_tolerance() {
        let params = uni(8, 512).with_network(NetworkKind::Scalable);
        let mut join = build(&params);
        prefill_planted(join.as_mut(), &params, 3);
        let run = run_latency(
            join.as_mut(),
            (StreamTag::R, Tuple::new(3, 1 << 30)),
            1_000_000,
        )
        .expect("quiesces");
        let model = uniflow_latency_cycles(&params);
        let measured = run.cycles_to_last_result as f64;
        let err = (measured - model).abs() / model;
        assert!(
            err < 0.25,
            "latency measured {measured} vs model {model:.0}"
        );
    }

    #[test]
    fn network_variants_similar_cycles_but_scalable_wins_in_time() {
        // Fig. 15: "we do not observe a significant difference in the
        // number of cycles … however, by taking into account the clock
        // frequency drop in the lightweight solution, the actual
        // difference in latency becomes significant."
        let mut cycle_counts = Vec::new();
        let mut micros = Vec::new();
        for network in [NetworkKind::Lightweight, NetworkKind::Scalable] {
            let params = uni(32, 1 << 10).with_network(network);
            let mut join = build(&params);
            prefill_planted(join.as_mut(), &params, 5);
            let run = run_latency(
                join.as_mut(),
                (StreamTag::R, Tuple::new(5, 1 << 30)),
                1_000_000,
            )
            .expect("quiesces");
            let clock = params
                .synthesize(&hwsim::devices::XC7VX485T)
                .expect("fits")
                .clock;
            cycle_counts.push(run.cycles_to_last_result);
            micros.push(clock.cycles_to_us(run.cycles_to_last_result));
        }
        let cycle_ratio = cycle_counts[0] as f64 / cycle_counts[1] as f64;
        assert!(
            (0.4..2.5).contains(&cycle_ratio),
            "cycle counts should be comparable: {cycle_counts:?}"
        );
        assert!(
            micros[1] < micros[0],
            "scalable should win in wall-clock: {micros:?} µs"
        );
    }

    #[test]
    fn biflow_latency_is_chain_serial() {
        // The wave visits every core sequentially: the measured latency of
        // a probe through a full chain tracks W + 3N, and sits roughly N×
        // above the uni-flow latency at matched parameters — the paper's
        // structural argument for uni-flow.
        let (cores, window) = (4u32, 256usize);
        let bi = DesignParams::new(FlowModel::BiFlow, cores, window);
        let mut join = build(&bi);
        // Plant one matching S tuple per segment.
        let r: Vec<_> = (0..window as u32).map(|i| Tuple::new(100 + i, i)).collect();
        let s: Vec<_> = (0..window as u32)
            .map(|i| {
                if (i as usize).is_multiple_of(bi.sub_window()) {
                    Tuple::new(7, i)
                } else {
                    Tuple::new(100_000 + i, i)
                }
            })
            .collect();
        join.prefill(&r, &s);
        let run = run_latency(join.as_mut(), (StreamTag::R, Tuple::new(7, u32::MAX)), 1_000_000)
            .expect("quiesces");
        assert_eq!(run.results, cores as u64);
        let model = biflow_latency_cycles(window, cores);
        let measured = run.cycles_to_last_result as f64;
        let err = (measured - model).abs() / model;
        assert!(err < 0.25, "bi-flow latency {measured} vs model {model}");

        // Uni-flow at the same parameters is roughly N× faster.
        let uni_model = uniflow_latency_cycles(&uni(cores, window));
        assert!(
            model > 2.5 * uni_model,
            "chain latency {model} should dwarf uni-flow {uni_model}"
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn observed_run_matches_unobserved_and_counters_populate() {
        let params = DesignParams::new(FlowModel::BiFlow, 2, 32);
        let mut a = build(&params);
        prefill_steady_state(a.as_mut(), params.window_size);
        let run_a = run_throughput(a.as_mut(), 50, 1 << 20);

        let mut b = build(&params);
        prefill_steady_state(b.as_mut(), params.window_size);
        let (run_b, gaps) =
            run_throughput_observed(&mut Simulator::new(), b.as_mut(), 50, 1 << 20);
        assert_eq!(run_a, run_b, "recording gaps must not perturb the run");
        assert_eq!(gaps.total(), 50);
        assert!(gaps.p99() >= gaps.p50());

        let mut reg = obs::Registry::new();
        b.observe(&mut reg, "bi.");
        assert_eq!(reg.get("bi.accepted_tuples"), Some(50));
        // The run stops at the 50th acceptance; tuples still parked in the
        // two stream input registers have not been admitted as waves yet.
        let waves = reg.get("bi.waves_admitted").unwrap();
        assert!((48..=50).contains(&waves), "unexpected wave count {waves}");
        assert!(reg.get("bi.handshake_cycles").unwrap() > 0);
        assert!(reg.get("bi.probe_cycles").unwrap() > 0);
    }

    #[test]
    fn throughput_results_counted() {
        // Key domain equal to a quarter of the window: every probe finds
        // matches; they must all surface through the gathering network.
        let params = uni(2, 32);
        let mut join = build(&params);
        let run = run_throughput(join.as_mut(), 400, 8);
        assert!(run.results > 0, "expected matches to be collected");
    }
}
