//! A hash-indexed circular sub-window: the storage behind hash-join
//! processing cores.
//!
//! The paper notes the uni-flow join core poses no "limitation on the
//! chosen join algorithm, e.g., nested-loop join or hash join". A hash
//! core keeps the same circular sliding storage but adds a key index, so
//! a probe scans only the matching bucket instead of the whole
//! sub-window — one bucket entry per cycle after a one-cycle hash lookup.

use std::collections::{HashMap, VecDeque};

use streamcore::Tuple;

/// A sub-window with a per-key bucket index for equi-join probing.
#[derive(Debug, Clone, Default)]
pub struct HashWindow {
    /// Circular slot storage (models the BRAM tuple store).
    slots: Vec<Option<Tuple>>,
    /// Key → slot indices, oldest first (models the BRAM bucket index).
    buckets: HashMap<u32, VecDeque<usize>>,
    head: usize,
    occupancy: usize,
}

impl HashWindow {
    /// Creates an empty hash window of `capacity` tuples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be at least 1");
        Self {
            slots: vec![None; capacity],
            buckets: HashMap::new(),
            head: 0,
            occupancy: 0,
        }
    }

    /// Maximum number of tuples retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of tuples currently stored.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Stores `tuple`, expiring and returning the oldest stored tuple if
    /// the window was full. Maintains the bucket index.
    pub fn store(&mut self, tuple: Tuple) -> Option<Tuple> {
        let cap = self.capacity();
        let expired = self.slots[self.head].take().inspect(|old| {
            let bucket = self
                .buckets
                .get_mut(&old.key())
                .expect("expired tuple indexed");
            let idx = bucket.pop_front().expect("bucket non-empty");
            debug_assert_eq!(idx, self.head, "oldest of a key expires first");
            if bucket.is_empty() {
                self.buckets.remove(&old.key());
            }
        });
        self.slots[self.head] = Some(tuple);
        self.buckets
            .entry(tuple.key())
            .or_default()
            .push_back(self.head);
        self.head = (self.head + 1) % cap;
        if self.occupancy < cap {
            self.occupancy += 1;
        }
        expired
    }

    /// Number of stored tuples with the given key — the probe's scan
    /// length (one bucket entry per cycle).
    pub fn bucket_len(&self, key: u32) -> usize {
        self.buckets.get(&key).map_or(0, VecDeque::len)
    }

    /// Reads the `idx`-th oldest stored tuple with `key`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= bucket_len(key)`.
    pub fn bucket_read(&self, key: u32, idx: usize) -> Tuple {
        let slot = self.buckets.get(&key).expect("bucket exists")[idx];
        self.slots[slot].expect("indexed slot occupied")
    }

    /// Loads a tuple directly (pre-fill path).
    pub fn load(&mut self, tuple: Tuple) {
        self.store(tuple);
    }

    /// Stored tuples, oldest first (verification).
    pub fn snapshot(&self) -> Vec<Tuple> {
        let cap = self.capacity();
        let oldest = (self.head + cap - self.occupancy) % cap;
        (0..self.occupancy)
            .map(|i| self.slots[(oldest + i) % cap].expect("occupied"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(k: u32, p: u32) -> Tuple {
        Tuple::new(k, p)
    }

    #[test]
    fn buckets_track_stores_by_key() {
        let mut w = HashWindow::new(8);
        w.store(t(1, 0));
        w.store(t(2, 1));
        w.store(t(1, 2));
        assert_eq!(w.bucket_len(1), 2);
        assert_eq!(w.bucket_len(2), 1);
        assert_eq!(w.bucket_len(9), 0);
        assert_eq!(w.bucket_read(1, 0), t(1, 0));
        assert_eq!(w.bucket_read(1, 1), t(1, 2));
    }

    #[test]
    fn expiry_removes_from_bucket() {
        let mut w = HashWindow::new(2);
        w.store(t(1, 0));
        w.store(t(1, 1));
        assert_eq!(w.store(t(2, 2)), Some(t(1, 0)));
        assert_eq!(w.bucket_len(1), 1);
        assert_eq!(w.bucket_read(1, 0), t(1, 1));
        assert_eq!(w.occupancy(), 2);
    }

    #[test]
    fn snapshot_matches_subwindow_semantics() {
        use crate::SubWindow;
        let mut hash = HashWindow::new(3);
        let mut nested = SubWindow::new(3);
        for i in 0..10u32 {
            hash.store(t(i % 4, i));
            nested.begin_cycle();
            nested.store(t(i % 4, i));
        }
        assert_eq!(hash.snapshot(), nested.snapshot());
    }

    #[test]
    fn bucket_order_is_age_order_across_wraparound() {
        let mut w = HashWindow::new(4);
        for i in 0..9u32 {
            w.store(t(7, i));
        }
        assert_eq!(w.bucket_len(7), 4);
        let ages: Vec<u32> = (0..4).map(|i| w.bucket_read(7, i).payload()).collect();
        assert_eq!(ages, vec![5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = HashWindow::new(0);
    }
}
