//! Flow-based parallel stream joins in simulated FPGA hardware.
//!
//! This crate realizes the paper's case study (Sections III–V): two
//! hardware architectures for parallel sliding-window stream joins,
//! expressed as cycle-accurate [`hwsim`] component designs:
//!
//! * [`uniflow`] — the **uni-flow** (SplitJoin) architecture: a single
//!   top-down data flow through a distribution network into fully
//!   independent join cores with round-robin sub-window storage, and a
//!   result-gathering network (Fig. 9 of the paper). Join cores implement
//!   the Fetcher / Storage Core / Processing Core micro-architecture with
//!   the exact FSMs of Figs. 11–13;
//! * [`biflow`] — the **bi-flow** (handshake join) architecture: a linear
//!   chain of join cores through which the R stream flows left-to-right
//!   and the S stream right-to-left, with boundary locks to avoid
//!   in-flight races (Figs. 8a and 10).
//!
//! [`DesignParams::synthesize`] produces a [`SynthesisReport`] — resource
//! utilization, maximum clock frequency, and power — from the calibrated
//! models in [`hwsim`], and [`harness`] runs throughput/latency experiments
//! against the cycle-accurate designs.
//!
//! # Example
//!
//! ```
//! use joinhw::{DesignParams, FlowModel};
//! use hwsim::devices;
//!
//! // The paper's Fig. 14a point: 16 uni-flow cores, window 2^13, Virtex-5.
//! let params = DesignParams::new(FlowModel::UniFlow, 16, 1 << 13);
//! let report = params.synthesize(&devices::XC5VLX50T)?;
//! assert!(report.utilization.fits());
//!
//! // 64 cores at the same window do NOT fit, as the paper reports.
//! let too_big = DesignParams::new(FlowModel::UniFlow, 64, 1 << 13);
//! assert!(too_big.synthesize(&devices::XC5VLX50T).is_err());
//! # Ok::<(), hwsim::CapacityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biflow;
mod design;
pub mod harness;
mod hashwindow;
mod operator;
mod subwindow;
pub mod uniflow;

pub use design::JoinAlgorithm;
pub use hashwindow::HashWindow;
pub use subwindow::SubWindow;

pub use design::{DesignParams, FlowModel, NetworkKind, SynthesisReport};
pub use operator::{JoinOperator, JoinPredicate, OperatorDecodeError};
