//! Runtime-programmable join operators.
//!
//! A join core's operator "can be dynamically programmed without the need
//! for synthesis … by an instruction which has two segments. The first
//! segment defines join parameters such as the number of join cores …
//! while the second segment carries the join operator conditions."
//! ([`JoinOperator::encode`] produces exactly those two 64-bit words; the
//! storage-core FSM consumes them in its *Operator Store 1/2* states.)

use std::error::Error;
use std::fmt;

pub use streamcore::JoinPredicate;

fn opcode(p: &JoinPredicate) -> u64 {
    match p {
        JoinPredicate::Equi => 0,
        JoinPredicate::Band { .. } => 1,
        JoinPredicate::LessThan => 2,
        JoinPredicate::All => 3,
    }
}

fn operand(p: &JoinPredicate) -> u64 {
    match *p {
        JoinPredicate::Band { delta } => delta as u64,
        _ => 0,
    }
}

/// A fully specified join operator: parallelization parameters plus the
/// join condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinOperator {
    /// Number of join cores sharing the sliding window.
    pub num_cores: u32,
    /// The join condition.
    pub predicate: JoinPredicate,
}

impl JoinOperator {
    /// An equi-join across `num_cores` cores — the paper's workload.
    pub fn equi(num_cores: u32) -> Self {
        Self {
            num_cores,
            predicate: JoinPredicate::Equi,
        }
    }

    /// Encodes the operator into the two instruction words consumed by the
    /// storage-core FSM (*Operator Store 1* and *Operator Store 2*).
    pub fn encode(&self) -> [u64; 2] {
        let word1 = self.num_cores as u64;
        let word2 = opcode(&self.predicate) << 32 | operand(&self.predicate);
        [word1, word2]
    }

    /// Decodes two instruction words back into an operator.
    ///
    /// # Errors
    ///
    /// Returns [`OperatorDecodeError`] if the opcode is unknown or the
    /// core count is zero.
    pub fn decode(words: [u64; 2]) -> Result<Self, OperatorDecodeError> {
        let num_cores = words[0] as u32;
        if num_cores == 0 {
            return Err(OperatorDecodeError::ZeroCores);
        }
        let opcode = words[1] >> 32;
        let operand = words[1] as u32;
        let predicate = match opcode {
            0 => JoinPredicate::Equi,
            1 => JoinPredicate::Band { delta: operand },
            2 => JoinPredicate::LessThan,
            3 => JoinPredicate::All,
            other => return Err(OperatorDecodeError::UnknownOpcode { opcode: other }),
        };
        Ok(Self {
            num_cores,
            predicate,
        })
    }
}

impl fmt::Display for JoinOperator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} over {} cores", self.predicate, self.num_cores)
    }
}

/// Errors decoding an operator instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorDecodeError {
    /// The instruction names an unknown predicate opcode.
    UnknownOpcode {
        /// The unrecognized opcode value.
        opcode: u64,
    },
    /// The instruction requests zero join cores.
    ZeroCores,
}

impl fmt::Display for OperatorDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperatorDecodeError::UnknownOpcode { opcode } => {
                write!(f, "unknown join predicate opcode {opcode}")
            }
            OperatorDecodeError::ZeroCores => write!(f, "operator requests zero join cores"),
        }
    }
}

impl Error for OperatorDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        let ops = [
            JoinOperator::equi(16),
            JoinOperator {
                num_cores: 512,
                predicate: JoinPredicate::Band { delta: 77 },
            },
            JoinOperator {
                num_cores: 1,
                predicate: JoinPredicate::LessThan,
            },
            JoinOperator {
                num_cores: 3,
                predicate: JoinPredicate::All,
            },
        ];
        for op in ops {
            assert_eq!(JoinOperator::decode(op.encode()).unwrap(), op);
        }
    }

    #[test]
    fn decode_rejects_bad_instructions() {
        assert_eq!(
            JoinOperator::decode([0, 0]),
            Err(OperatorDecodeError::ZeroCores)
        );
        let err = JoinOperator::decode([4, 9 << 32]);
        assert_eq!(err, Err(OperatorDecodeError::UnknownOpcode { opcode: 9 }));
    }

    #[test]
    fn display_is_informative() {
        let op = JoinOperator::equi(8);
        assert_eq!(op.to_string(), "Equi over 8 cores");
    }
}
