//! A BRAM-backed circular sub-window shared by both join-core designs.

use hwsim::Bram;
use streamcore::Tuple;

/// One join core's share of a stream's sliding window: a circular buffer
/// in block RAM. Storing into a full sub-window overwrites (expires) the
/// oldest tuple.
#[derive(Debug, Clone)]
pub struct SubWindow {
    bram: Bram<u64>,
    head: usize,
    occupancy: usize,
}

impl SubWindow {
    /// Creates an empty sub-window of `capacity` tuples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self {
            bram: Bram::new(capacity),
            head: 0,
            occupancy: 0,
        }
    }

    /// Maximum number of tuples retained.
    pub fn capacity(&self) -> usize {
        self.bram.capacity()
    }

    /// Number of tuples currently stored.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Opens a new clock cycle on the underlying BRAM (port accounting).
    pub fn begin_cycle(&mut self) {
        self.bram.begin_cycle();
    }

    /// Stores `tuple`, expiring and returning the oldest stored tuple if
    /// the sub-window was full. Costs one BRAM write port.
    pub fn store(&mut self, tuple: Tuple) -> Option<Tuple> {
        let expired = self
            .bram
            .write(self.head, tuple.raw())
            .filter(|_| self.occupancy == self.capacity())
            .map(Tuple::from_raw);
        self.head = (self.head + 1) % self.capacity();
        if self.occupancy < self.capacity() {
            self.occupancy += 1;
        }
        expired
    }

    /// Reads the `idx`-th oldest stored tuple (`0` = oldest). Costs one
    /// BRAM read port.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= occupancy()`.
    pub fn read(&mut self, idx: usize) -> Tuple {
        assert!(idx < self.occupancy, "read index {idx} out of occupancy");
        let cap = self.capacity();
        let oldest = (self.head + cap - self.occupancy) % cap;
        let addr = (oldest + idx) % cap;
        Tuple::from_raw(*self.bram.read(addr).expect("occupied slot"))
    }

    /// Loads a tuple directly, bypassing clocked port accounting — for
    /// pre-filling windows before a measurement.
    pub fn load(&mut self, tuple: Tuple) {
        let cap = self.capacity();
        self.bram.load(self.head, tuple.raw());
        self.head = (self.head + 1) % cap;
        if self.occupancy < cap {
            self.occupancy += 1;
        }
    }

    /// Iterates over stored tuples from oldest to newest, without port
    /// accounting (test/verification use).
    pub fn snapshot(&self) -> Vec<Tuple> {
        let occ = self.occupancy;
        let mut out = Vec::with_capacity(occ);
        let cap = self.capacity();
        let oldest = (self.head + cap - occ) % cap;
        for i in 0..occ {
            let addr = (oldest + i) % cap;
            out.push(Tuple::from_raw(*self.bram.peek(addr).expect("occupied")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(k: u32) -> Tuple {
        Tuple::new(k, 0)
    }

    #[test]
    fn stores_and_reads_in_age_order() {
        let mut w = SubWindow::new(4);
        for k in 0..3 {
            w.begin_cycle();
            assert_eq!(w.store(t(k)), None);
        }
        w.begin_cycle();
        assert_eq!(w.read(0), t(0));
        w.begin_cycle();
        assert_eq!(w.read(2), t(2));
        assert_eq!(w.occupancy(), 3);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut w = SubWindow::new(2);
        w.begin_cycle();
        w.store(t(1));
        w.begin_cycle();
        w.store(t(2));
        w.begin_cycle();
        assert_eq!(w.store(t(3)), Some(t(1)));
        w.begin_cycle();
        assert_eq!(w.read(0), t(2));
        w.begin_cycle();
        assert_eq!(w.read(1), t(3));
    }

    #[test]
    fn wraparound_keeps_order_across_many_generations() {
        let mut w = SubWindow::new(3);
        for k in 0..10 {
            w.begin_cycle();
            w.store(t(k));
        }
        assert_eq!(w.snapshot(), vec![t(7), t(8), t(9)]);
    }

    #[test]
    fn load_bypasses_ports_and_matches_store_semantics() {
        let mut a = SubWindow::new(3);
        let mut b = SubWindow::new(3);
        for k in 0..5 {
            a.load(t(k));
            b.begin_cycle();
            b.store(t(k));
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    #[should_panic(expected = "out of occupancy")]
    fn reading_past_occupancy_panics() {
        let mut w = SubWindow::new(2);
        w.begin_cycle();
        w.store(t(1));
        w.read(1);
    }
}
