//! The uni-flow join core: Fetcher, Storage Core, and Processing Core
//! (Fig. 11), with the controller FSMs of Figs. 12 and 13.

use hwsim::{Component, Fifo};
use streamcore::{Frame, MatchPair, StreamTag, Tuple};

use crate::design::{JoinAlgorithm, FETCHER_DEPTH, RESULT_FIFO_DEPTH};
use crate::hashwindow::HashWindow;
use crate::subwindow::SubWindow;
use crate::{JoinOperator, JoinPredicate};

/// Sub-window storage specialized for the core's join algorithm.
#[derive(Debug, Clone)]
enum WindowStore {
    Nested(SubWindow),
    Hash(HashWindow),
}

impl WindowStore {
    fn new(algorithm: JoinAlgorithm, capacity: usize) -> Self {
        match algorithm {
            JoinAlgorithm::NestedLoop => WindowStore::Nested(SubWindow::new(capacity)),
            JoinAlgorithm::Hash => WindowStore::Hash(HashWindow::new(capacity)),
        }
    }

    fn begin_cycle(&mut self) {
        if let WindowStore::Nested(w) = self {
            w.begin_cycle();
        }
    }

    fn store(&mut self, tuple: Tuple) {
        match self {
            WindowStore::Nested(w) => {
                w.store(tuple);
            }
            WindowStore::Hash(w) => {
                w.store(tuple);
            }
        }
    }

    fn load(&mut self, tuple: Tuple) {
        match self {
            WindowStore::Nested(w) => w.load(tuple),
            WindowStore::Hash(w) => w.load(tuple),
        }
    }

    /// How many cycles a probe with `key` scans: the full occupancy for
    /// nested-loop, the matching bucket for hash.
    fn probe_len(&self, key: u32) -> usize {
        match self {
            WindowStore::Nested(w) => w.occupancy(),
            WindowStore::Hash(w) => w.bucket_len(key),
        }
    }

    /// The `idx`-th tuple of the probe sequence for `key`.
    fn probe_read(&mut self, key: u32, idx: usize) -> Tuple {
        match self {
            WindowStore::Nested(w) => w.read(idx),
            WindowStore::Hash(w) => w.bucket_read(key, idx),
        }
    }

    fn snapshot(&mut self) -> Vec<Tuple> {
        match self {
            WindowStore::Nested(w) => w.snapshot(),
            WindowStore::Hash(w) => w.snapshot(),
        }
    }
}

/// Storage-core controller states (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageState {
    /// Waiting for a frame.
    Idle,
    /// First operator word latched; waiting for the second.
    OperatorStore1,
    /// Writing the new tuple into its sub-window this cycle.
    Store(StreamTag),
}

/// Processing-core controller states (Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessingState {
    /// No operator programmed yet.
    Idle,
    /// Scanning the opposite sub-window, one read per cycle.
    JoinProcessing,
    /// Scan finished (or skipped on an empty window); ready for the next
    /// tuple.
    JoinWait,
}

/// Cumulative per-core counters (feed verification and the power model's
/// activity estimates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Tuples fully processed (probe completed).
    pub tuples_processed: u64,
    /// Window comparisons performed.
    pub comparisons: u64,
    /// Matches emitted.
    pub matches: u64,
    /// Tuples stored into a sub-window.
    pub stored: u64,
}

/// One uni-flow join core.
///
/// The core consumes [`Frame`]s from its fetcher. Operator frames program
/// the join (two words, *Operator Store 1/2*); tuple frames are handled by
/// the storage core (round-robin turn test, then a one-cycle store) and
/// the processing core (a one-read-per-cycle nested-loop probe of the
/// opposite sub-window) in parallel. A new frame is fetched only when both
/// controllers are ready, so frames are processed strictly in arrival
/// order — which is what makes the round-robin storage discipline
/// deterministic without any central coordination.
#[derive(Debug, Clone)]
pub struct JoinCore {
    position: u32,
    operator: Option<JoinOperator>,
    pending_op_word: Option<u64>,
    fetcher: Fifo<Frame>,
    results: Fifo<MatchPair>,
    window_r: WindowStore,
    window_s: WindowStore,
    r_count: u64,
    s_count: u64,
    storage: StorageState,
    processing: ProcessingState,
    store_tuple: Option<Tuple>,
    probe: Option<(StreamTag, Tuple)>,
    scan_idx: usize,
    scan_len: usize,
    stats: CoreStats,
    /// Completed cycles (ticks in `begin_cycle`; engine-invariant).
    cycle: u64,
    /// Cycle the in-flight probe was accepted (span start).
    probe_start: u64,
    /// Matches emitted by the in-flight probe.
    probe_matches: u64,
    /// Provenance watch: the sampled tuple whose probe completion is
    /// being awaited. Pure observation — never steers the FSMs.
    watch: Option<(StreamTag, Tuple)>,
    /// Latched `(completion_cycle, matches)` of the watched probe,
    /// consumed by `take_watch_done`.
    watch_done: Option<(u64, u64)>,
    /// Cycle-stamped probe spans (`core.<position>`), recorded only when
    /// tracing was enabled at construction time.
    ring: Option<obs::trace::TraceRing>,
}

impl JoinCore {
    /// Creates a nested-loop core at `position` (0-based, used for the
    /// round-robin storage turn) with sub-windows of `sub_window` tuples
    /// per stream.
    pub fn new(position: u32, sub_window: usize) -> Self {
        Self::with_algorithm(position, sub_window, JoinAlgorithm::NestedLoop)
    }

    /// Creates a core running the given join algorithm.
    pub fn with_algorithm(
        position: u32,
        sub_window: usize,
        algorithm: JoinAlgorithm,
    ) -> Self {
        Self {
            position,
            operator: None,
            pending_op_word: None,
            fetcher: Fifo::new(FETCHER_DEPTH),
            results: Fifo::new(RESULT_FIFO_DEPTH),
            window_r: WindowStore::new(algorithm, sub_window),
            window_s: WindowStore::new(algorithm, sub_window),
            r_count: 0,
            s_count: 0,
            storage: StorageState::Idle,
            processing: ProcessingState::Idle,
            store_tuple: None,
            probe: None,
            scan_idx: 0,
            scan_len: 0,
            stats: CoreStats::default(),
            cycle: 0,
            probe_start: 0,
            probe_matches: 0,
            watch: None,
            watch_done: None,
            ring: obs::trace::enabled().then(|| {
                obs::trace::TraceRing::new(
                    format!("core.{position}"),
                    obs::trace::TimeDomain::Cycles,
                )
            }),
        }
    }

    /// The core's position among its peers.
    pub fn position(&self) -> u32 {
        self.position
    }

    /// The currently programmed operator, if any.
    pub fn operator(&self) -> Option<JoinOperator> {
        self.operator
    }

    /// The fetcher FIFO (filled by the distribution network).
    pub fn fetcher(&mut self) -> &mut Fifo<Frame> {
        &mut self.fetcher
    }

    /// `true` if the fetcher can accept a frame this cycle.
    pub fn fetcher_ready(&self) -> bool {
        self.fetcher.can_push()
    }

    /// The result FIFO (drained by the gathering network).
    pub fn results(&mut self) -> &mut Fifo<MatchPair> {
        &mut self.results
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Current storage-controller state.
    pub fn storage_state(&self) -> StorageState {
        self.storage
    }

    /// Current processing-controller state.
    pub fn processing_state(&self) -> ProcessingState {
        self.processing
    }

    /// `true` when the core has no queued or in-flight work.
    pub fn quiescent(&self) -> bool {
        self.fetcher.is_empty()
            && self.fetcher.committed_len() == 0
            && self.results.is_empty()
            && self.results.committed_len() == 0
            && self.storage == StorageState::Idle
            && matches!(
                self.processing,
                ProcessingState::Idle | ProcessingState::JoinWait
            )
    }

    /// Loads a tuple directly into this core's sub-window for `tag`
    /// (pre-fill path; see `UniFlowJoin::prefill`).
    pub fn prefill(&mut self, tag: StreamTag, tuple: Tuple) {
        match tag {
            StreamTag::R => self.window_r.load(tuple),
            StreamTag::S => self.window_s.load(tuple),
        }
    }

    /// The core's join algorithm is fixed at construction ("synthesis");
    /// equi-joins are the only operators a hash core can execute.
    pub fn supports(&self, predicate: JoinPredicate) -> bool {
        match self.window_r {
            WindowStore::Nested(_) => true,
            WindowStore::Hash(_) => predicate == JoinPredicate::Equi,
        }
    }

    /// Sets the round-robin counters after a pre-fill.
    pub fn set_counts(&mut self, r_count: u64, s_count: u64) {
        self.r_count = r_count;
        self.s_count = s_count;
    }

    /// Snapshot of a sub-window's contents, oldest first (verification).
    pub fn window_snapshot(&mut self, tag: StreamTag) -> Vec<Tuple> {
        match tag {
            StreamTag::R => self.window_r.snapshot(),
            StreamTag::S => self.window_s.snapshot(),
        }
    }

    /// Starts watching `tuple`: `take_watch_done` latches the cycle its
    /// probe completes and the match count it produced. One watch at a
    /// time (a new watch replaces the old).
    pub fn set_watch(&mut self, tag: StreamTag, tuple: Tuple) {
        self.watch = Some((tag, tuple));
        self.watch_done = None;
    }

    /// Consumes the `(completion_cycle, matches)` record of the watched
    /// probe, if it finished since the last call.
    pub fn take_watch_done(&mut self) -> Option<(u64, u64)> {
        self.watch_done.take()
    }

    /// Detaches the core's probe-span ring (empty unless tracing was
    /// enabled when the core was built).
    pub fn take_ring(&mut self) -> Option<obs::trace::TraceRing> {
        self.ring.take()
    }

    /// Records a completed probe into the span ring and resolves the
    /// provenance watch if it targeted this tuple.
    fn probe_finished(&mut self, tag: StreamTag, tuple: Tuple, matches: u64) {
        if let Some(ring) = self.ring.as_mut() {
            ring.record_arg("probe", self.probe_start, self.cycle - self.probe_start, matches);
        }
        if self.watch == Some((tag, tuple)) {
            self.watch = None;
            self.watch_done = Some((self.cycle, matches));
        }
    }

    /// Opens the clock cycle (FIFO snapshots, BRAM port accounting).
    pub fn begin_cycle(&mut self) {
        self.cycle += 1;
        self.fetcher.begin_cycle();
        self.results.begin_cycle();
        self.window_r.begin_cycle();
        self.window_s.begin_cycle();
    }

    /// One cycle of combinational work; stage updates.
    pub fn eval(&mut self) {
        self.step_storage();
        self.step_processing();
        self.maybe_fetch();
    }

    /// Latches staged FIFO updates.
    pub fn commit(&mut self) {
        self.fetcher.commit();
        self.results.commit();
    }

    fn ready_for_frame(&self) -> bool {
        let storage_ready =
            self.storage == StorageState::Idle || self.storage == StorageState::OperatorStore1;
        let processing_ready = matches!(
            self.processing,
            ProcessingState::Idle | ProcessingState::JoinWait
        );
        storage_ready && processing_ready
    }

    fn maybe_fetch(&mut self) {
        if !self.ready_for_frame() || !self.fetcher.can_pop() {
            return;
        }
        let frame = self.fetcher.pop().expect("frame available");
        match frame {
            Frame::Operator(word) => {
                // Operator Store 1 / Operator Store 2 (Fig. 12).
                match self.pending_op_word.take() {
                    None => {
                        self.pending_op_word = Some(word);
                        self.storage = StorageState::OperatorStore1;
                    }
                    Some(first) => {
                        match JoinOperator::decode([first, word]) {
                            Ok(op) => {
                                self.operator = Some(op);
                                // Re-programming restarts the round-robin
                                // storage discipline.
                                self.r_count = 0;
                                self.s_count = 0;
                                self.processing = ProcessingState::JoinWait;
                            }
                            Err(_) => {
                                // Malformed instructions are dropped; the
                                // core keeps its previous operator.
                            }
                        }
                        self.storage = StorageState::Idle;
                    }
                }
            }
            Frame::TupleR(t) => self.accept_tuple(StreamTag::R, t),
            Frame::TupleS(t) => self.accept_tuple(StreamTag::S, t),
        }
    }

    fn accept_tuple(&mut self, tag: StreamTag, tuple: Tuple) {
        let Some(op) = self.operator else {
            // Tuples arriving before any operator are dropped, matching the
            // FSMs: both controllers leave IDLE only via operator states.
            return;
        };
        // Storage core: my turn iff count % num_cores == position
        // ("each join core independently counts the number of tuples
        // received and, based on its position, determines its turn").
        let count = match tag {
            StreamTag::R => &mut self.r_count,
            StreamTag::S => &mut self.s_count,
        };
        let my_turn = (*count % op.num_cores as u64) == self.position as u64;
        *count += 1;
        if my_turn {
            self.storage = StorageState::Store(tag);
            self.store_tuple = Some(tuple);
        }
        // Processing core: probe the opposite stream's sub-window (the
        // whole occupancy for nested-loop cores; the matching bucket for
        // hash cores).
        let opposite_occ = match tag {
            StreamTag::R => self.window_s.probe_len(tuple.key()),
            StreamTag::S => self.window_r.probe_len(tuple.key()),
        };
        if opposite_occ == 0 {
            // Processing Skip: nothing to compare against.
            self.processing = ProcessingState::JoinWait;
            self.stats.tuples_processed += 1;
            self.probe_start = self.cycle;
            self.probe_finished(tag, tuple, 0);
        } else {
            self.probe = Some((tag, tuple));
            self.scan_idx = 0;
            self.scan_len = opposite_occ;
            self.processing = ProcessingState::JoinProcessing;
            self.probe_start = self.cycle;
            self.probe_matches = 0;
        }
    }

    fn step_storage(&mut self) {
        if let StorageState::Store(tag) = self.storage {
            let tuple = self.store_tuple.take().expect("tuple staged for store");
            match tag {
                StreamTag::R => self.window_r.store(tuple),
                StreamTag::S => self.window_s.store(tuple),
            };
            self.stats.stored += 1;
            self.storage = StorageState::Idle;
        }
    }

    fn step_processing(&mut self) {
        if self.processing != ProcessingState::JoinProcessing {
            return;
        }
        let (tag, probe) = self.probe.expect("probe in flight");
        // Emit Result shares the cycle with the comparison; a full result
        // FIFO stalls the scan (back-pressure).
        if !self.results.can_push() {
            return;
        }
        let stored = match tag {
            StreamTag::R => self.window_s.probe_read(probe.key(), self.scan_idx),
            StreamTag::S => self.window_r.probe_read(probe.key(), self.scan_idx),
        };
        self.stats.comparisons += 1;
        let predicate = self
            .operator
            .map(|op| op.predicate)
            .unwrap_or(JoinPredicate::Equi);
        let (r, s) = match tag {
            StreamTag::R => (probe, stored),
            StreamTag::S => (stored, probe),
        };
        if predicate.matches(r, s) {
            self.results
                .push(MatchPair { r, s })
                .expect("checked can_push");
            self.stats.matches += 1;
            self.probe_matches += 1;
        }
        self.scan_idx += 1;
        if self.scan_idx == self.scan_len {
            self.processing = ProcessingState::JoinWait;
            self.probe = None;
            self.stats.tuples_processed += 1;
            self.probe_finished(tag, probe, self.probe_matches);
        }
    }
}

/// A core is itself a two-phase component — and, because it owns all of
/// its state (sub-windows, FIFOs, controller FSMs) and communicates with
/// the networks only through FIFOs touched during the coordinator's eval
/// phases, it is exactly the independent sub-tree the parallel engine's
/// `Shard` blanket impl requires.
impl Component for JoinCore {
    fn begin_cycle(&mut self) {
        JoinCore::begin_cycle(self);
    }
    fn eval(&mut self) {
        JoinCore::eval(self);
    }
    fn commit(&mut self) {
        JoinCore::commit(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn programmed_core(position: u32, num_cores: u32, sub_window: usize) -> JoinCore {
        let mut core = JoinCore::new(position, sub_window);
        let words = JoinOperator::equi(num_cores).encode();
        core.fetcher().load(Frame::Operator(words[0]));
        core.fetcher().load(Frame::Operator(words[1]));
        // Two cycles to program.
        for _ in 0..2 {
            cycle(&mut core);
        }
        assert_eq!(core.operator(), Some(JoinOperator::equi(num_cores)));
        core
    }

    fn cycle(core: &mut JoinCore) {
        core.begin_cycle();
        core.eval();
        core.commit();
    }

    fn run(core: &mut JoinCore, cycles: usize) {
        for _ in 0..cycles {
            cycle(core);
        }
    }

    fn drain(core: &mut JoinCore) -> Vec<MatchPair> {
        core.begin_cycle();
        let mut out = Vec::new();
        while let Some(m) = core.results().pop() {
            out.push(m);
        }
        core.commit();
        out
    }

    #[test]
    fn programming_takes_two_cycles_and_resets_counts() {
        let core = programmed_core(0, 4, 8);
        assert_eq!(core.processing_state(), ProcessingState::JoinWait);
    }

    #[test]
    fn tuples_before_programming_are_dropped() {
        let mut core = JoinCore::new(0, 4);
        core.fetcher().load(Frame::TupleR(Tuple::new(1, 0)));
        run(&mut core, 4);
        assert_eq!(core.stats().stored, 0);
        assert_eq!(core.stats().tuples_processed, 0);
        assert!(core.quiescent());
    }

    #[test]
    fn round_robin_storage_follows_position() {
        // Two cores, position 0 and 1: even R tuples stored at 0, odd at 1.
        let mut c0 = programmed_core(0, 2, 8);
        let mut c1 = programmed_core(1, 2, 8);
        for i in 0..4u32 {
            for c in [&mut c0, &mut c1] {
                c.fetcher().load(Frame::TupleR(Tuple::new(i, i)));
            }
        }
        for c in [&mut c0, &mut c1] {
            run(c, 12);
        }
        assert_eq!(c0.window_snapshot(StreamTag::R), vec![Tuple::new(0, 0), Tuple::new(2, 2)]);
        assert_eq!(c1.window_snapshot(StreamTag::R), vec![Tuple::new(1, 1), Tuple::new(3, 3)]);
    }

    #[test]
    fn probe_scans_opposite_window_and_emits_matches() {
        let mut core = programmed_core(0, 1, 8);
        // Store three S tuples (keys 1, 2, 1).
        for (i, k) in [1u32, 2, 1].iter().enumerate() {
            core.fetcher().load(Frame::TupleS(Tuple::new(*k, i as u32)));
        }
        run(&mut core, 12);
        // Probe with an R tuple of key 1: expect 2 matches.
        core.fetcher().load(Frame::TupleR(Tuple::new(1, 99)));
        run(&mut core, 8);
        let results = drain(&mut core);
        assert_eq!(results.len(), 2);
        for m in &results {
            assert_eq!(m.r, Tuple::new(1, 99));
            assert_eq!(m.r.key(), m.s.key());
        }
        assert_eq!(core.stats().matches, 2);
    }

    #[test]
    fn empty_opposite_window_is_processing_skip() {
        let mut core = programmed_core(0, 1, 8);
        core.fetcher().load(Frame::TupleR(Tuple::new(1, 0)));
        run(&mut core, 3);
        assert_eq!(core.stats().tuples_processed, 1);
        assert_eq!(core.stats().comparisons, 0);
    }

    #[test]
    fn scan_takes_one_cycle_per_window_tuple() {
        let mut core = programmed_core(0, 1, 16);
        for i in 0..8u32 {
            core.prefill(StreamTag::S, Tuple::new(i + 100, i));
        }
        core.fetcher().load(Frame::TupleR(Tuple::new(1, 0)));
        // Fetch cycle + 8 scan cycles.
        let mut cycles = 0;
        while core.stats().tuples_processed == 0 {
            cycle(&mut core);
            cycles += 1;
            assert!(cycles < 20, "scan did not terminate");
        }
        assert_eq!(core.stats().comparisons, 8);
        assert_eq!(cycles, 1 + 8);
    }

    #[test]
    fn full_result_fifo_stalls_the_scan() {
        let mut core = programmed_core(0, 1, 16);
        for _ in 0..8 {
            core.prefill(StreamTag::S, Tuple::new(7, 0));
        }
        core.fetcher().load(Frame::TupleR(Tuple::new(7, 1)));
        // Run without draining: the 4-deep result FIFO fills, the scan
        // stalls rather than dropping matches.
        run(&mut core, 30);
        assert_eq!(core.stats().tuples_processed, 0, "scan should be stalled");
        let got = drain(&mut core).len();
        assert_eq!(got, RESULT_FIFO_DEPTH);
        // Draining lets the scan finish.
        run(&mut core, 10);
        let rest = drain(&mut core);
        assert_eq!(got + rest.len(), 8);
        assert_eq!(core.stats().tuples_processed, 1);
    }

    #[test]
    fn reprogramming_at_runtime_switches_predicate() {
        let mut core = programmed_core(0, 1, 8);
        core.prefill(StreamTag::S, Tuple::new(5, 0));
        core.fetcher().load(Frame::TupleR(Tuple::new(3, 0)));
        run(&mut core, 6);
        assert_eq!(drain(&mut core).len(), 0); // equi: 3 != 5
        // Switch to a band join with delta 2 — no re-synthesis, two frames.
        let words = JoinOperator {
            num_cores: 1,
            predicate: JoinPredicate::Band { delta: 2 },
        }
        .encode();
        core.fetcher().load(Frame::Operator(words[0]));
        core.fetcher().load(Frame::Operator(words[1]));
        run(&mut core, 4);
        core.fetcher().load(Frame::TupleR(Tuple::new(3, 1)));
        run(&mut core, 6);
        assert_eq!(drain(&mut core).len(), 1); // |3-5| <= 2
    }

    #[test]
    fn quiescent_reflects_outstanding_work() {
        let mut core = programmed_core(0, 1, 8);
        assert!(core.quiescent());
        core.prefill(StreamTag::S, Tuple::new(1, 0));
        core.fetcher().load(Frame::TupleR(Tuple::new(1, 0)));
        cycle(&mut core);
        assert!(!core.quiescent());
        run(&mut core, 6);
        assert!(!core.quiescent(), "undrained result keeps core busy");
        drain(&mut core);
        assert!(core.quiescent());
    }
}
