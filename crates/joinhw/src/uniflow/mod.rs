//! The uni-flow (SplitJoin) parallel stream join in hardware: distribution
//! network → independent join cores → result-gathering network (Fig. 9).

mod core;
mod network;

pub use self::core::{CoreStats, JoinCore, ProcessingState, StorageState};
pub use self::network::{DistributionNetwork, GatheringNetwork};

use hwsim::{Component, Shard, Sharded};
use streamcore::{Frame, MatchPair, StreamTag, Tuple};

use crate::{DesignParams, FlowModel, JoinOperator};

/// The complete uni-flow parallel stream join design.
///
/// Drive it like hardware: [`offer`](UniFlowJoin::offer) frames into the
/// distribution network (one per cycle at most), step the clock via the
/// [`Component`] interface, and read joined pairs from
/// [`drain_results`](UniFlowJoin::drain_results).
///
/// # Example
///
/// ```
/// use hwsim::Simulator;
/// use joinhw::uniflow::UniFlowJoin;
/// use joinhw::{DesignParams, FlowModel, JoinOperator};
/// use streamcore::{StreamTag, Tuple};
///
/// let params = DesignParams::new(FlowModel::UniFlow, 4, 64);
/// let mut join = UniFlowJoin::new(&params);
/// let mut sim = Simulator::new();
/// join.program(JoinOperator::equi(4));
///
/// // Feed one S tuple, then a matching R tuple.
/// for (tag, key) in [(StreamTag::S, 7), (StreamTag::R, 7)] {
///     while !join.offer(tag, Tuple::new(key, 0)) {
///         sim.step(&mut join);
///     }
///     sim.step(&mut join);
/// }
/// while !join.quiescent() {
///     sim.step(&mut join);
/// }
/// let results = join.drain_results();
/// assert_eq!(results.len(), 1);
/// assert_eq!(results[0].r.key(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct UniFlowJoin {
    params: DesignParams,
    dist: DistributionNetwork,
    cores: Vec<JoinCore>,
    gather: GatheringNetwork,
    collected: Vec<MatchPair>,
    accepted_tuples: u64,
    pending_program: Vec<Frame>,
    /// Completed cycles (ticks in `coord_begin_cycle`; identical under
    /// the sequential and parallel engines).
    cycle: u64,
    /// Cycle-stamped stage spans of the sampled tuples
    /// (`uniflow.coord`); `None` unless tracing was enabled at build
    /// time.
    coord_ring: Option<obs::trace::TraceRing>,
    /// Per-tuple provenance sampling state; `None` unless tracing was
    /// enabled at build time.
    prov: Option<ProvState>,
}

/// Bookkeeping for the one provenance-sampled tuple in flight: the
/// tracker holds its stage stamps, the counters track how much of the
/// pipeline it still has to clear.
#[derive(Debug, Clone)]
struct ProvState {
    tracker: obs::provenance::ProvenanceTracker,
    /// Cores whose probe of the sampled tuple has not completed yet.
    probes_pending: usize,
    /// Matches produced by the completed probes (= sink deliveries the
    /// gather stage owes us).
    results_expected: u64,
    /// Watched sink deliveries observed so far. Kept separate from
    /// `results_expected` because a match can reach the sink *before*
    /// its (still-scanning) probe reports completion.
    results_seen: u64,
}

impl UniFlowJoin {
    /// Instantiates the design described by `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params.flow` is not [`FlowModel::UniFlow`], or if the
    /// scalable network is requested with a core count that is not a power
    /// of two.
    pub fn new(params: &DesignParams) -> Self {
        assert_eq!(
            params.flow,
            FlowModel::UniFlow,
            "UniFlowJoin requires uni-flow design parameters"
        );
        let n = params.num_cores as usize;
        let k = params.tree_fanout as usize;
        let sub = params.sub_window();
        Self {
            params: *params,
            dist: DistributionNetwork::new(params.network, n, k),
            cores: (0..n)
                .map(|i| JoinCore::with_algorithm(i as u32, sub, params.algorithm))
                .collect(),
            gather: GatheringNetwork::new(params.network, n, k),
            collected: Vec::new(),
            accepted_tuples: 0,
            pending_program: Vec::new(),
            cycle: 0,
            coord_ring: obs::trace::enabled().then(|| {
                obs::trace::TraceRing::new("uniflow.coord", obs::trace::TimeDomain::Cycles)
            }),
            prov: obs::trace::enabled().then(|| ProvState {
                tracker: obs::provenance::ProvenanceTracker::new(obs::trace::sample_every()),
                probes_pending: 0,
                results_expected: 0,
                results_seen: 0,
            }),
        }
    }

    /// The design parameters.
    pub fn params(&self) -> &DesignParams {
        &self.params
    }

    /// Queues the two operator-instruction frames for broadcast; they are
    /// injected ahead of data tuples as input slots free up.
    ///
    /// # Panics
    ///
    /// Panics if the operator's core count disagrees with the design's.
    pub fn program(&mut self, operator: JoinOperator) {
        assert_eq!(
            operator.num_cores, self.params.num_cores,
            "operator core count must match the design"
        );
        assert!(
            self.cores
                .iter()
                .all(|c| c.supports(operator.predicate)),
            "hash join cores only support equi-join operators"
        );
        let words = operator.encode();
        self.pending_program.push(Frame::Operator(words[0]));
        self.pending_program.push(Frame::Operator(words[1]));
    }

    /// Offers one tuple to the input port. Returns `false` when
    /// back-pressured (or while operator frames are still queued).
    pub fn offer(&mut self, tag: StreamTag, tuple: Tuple) -> bool {
        if !self.pending_program.is_empty() || !self.dist.can_accept() {
            return false;
        }
        let ok = self.dist.offer(Frame::tuple(tag, tuple));
        if ok {
            self.accepted_tuples += 1;
            if let Some(p) = self.prov.as_mut() {
                if p.tracker.offer(tuple.raw(), self.cycle) {
                    // This tuple is the sample: arm the watch points along
                    // its path (distribution fan-out, every core's probe,
                    // sink arrival of its result pairs).
                    self.dist.set_watch(Frame::tuple(tag, tuple));
                    for core in &mut self.cores {
                        core.set_watch(tag, tuple);
                    }
                    self.gather.set_watch(tuple);
                    p.probes_pending = self.cores.len();
                    p.results_expected = 0;
                    p.results_seen = 0;
                }
            }
        }
        ok
    }

    /// Stamps `stage` for the in-flight sample at the current cycle (if
    /// the sample is due for it) and mirrors the stage as a span on the
    /// coordinator ring.
    fn stamp_stage(&mut self, stage: obs::provenance::Stage, name: &'static str) {
        let Some(p) = self.prov.as_mut() else { return };
        if let Some((from, to)) = p.tracker.stamp(stage, self.cycle) {
            if let Some(ring) = self.coord_ring.as_mut() {
                ring.record(name, from, to - from);
            }
        }
    }

    /// Number of data tuples accepted by the input port so far.
    pub fn accepted_tuples(&self) -> u64 {
        self.accepted_tuples
    }

    /// Removes and returns all results collected so far.
    pub fn drain_results(&mut self) -> Vec<MatchPair> {
        // The sample's results leave the design when the harness drains
        // them — that is its Emit stamp (a no-op until Gather is done).
        self.stamp_stage(obs::provenance::Stage::Emit, "emit");
        std::mem::take(&mut self.collected)
    }

    /// Detaches every span ring in the design — the coordinator's
    /// stage-latency ring plus one probe ring per core. Empty unless
    /// tracing was enabled when the design was built.
    pub fn take_trace(&mut self) -> Vec<obs::trace::TraceRing> {
        let mut rings: Vec<_> = self.coord_ring.take().into_iter().collect();
        rings.extend(self.cores.iter_mut().filter_map(JoinCore::take_ring));
        rings
    }

    /// Detaches the per-tuple provenance tracker (abandoning any
    /// incomplete sample). `None` unless tracing was enabled when the
    /// design was built.
    pub fn take_provenance(&mut self) -> Option<obs::provenance::ProvenanceTracker> {
        self.prov.take().map(|mut p| {
            p.tracker.abandon();
            p.tracker
        })
    }

    /// Results collected and not yet drained.
    pub fn pending_results(&self) -> usize {
        self.collected.len()
    }

    /// `true` when every queue, core, and network in the design is empty.
    pub fn quiescent(&self) -> bool {
        self.pending_program.is_empty()
            && self.dist.is_empty()
            && self.gather.is_empty()
            && self.cores.iter().all(JoinCore::quiescent)
    }

    /// Direct pre-fill of the sliding windows (bypasses the clocked data
    /// path): `r` and `s` are distributed round-robin exactly as the
    /// storage cores would, and the storage counters are advanced so
    /// subsequent live tuples continue the rotation seamlessly.
    pub fn prefill(&mut self, r: &[Tuple], s: &[Tuple]) {
        let n = self.cores.len();
        for (i, &t) in r.iter().enumerate() {
            self.cores[i % n].prefill(StreamTag::R, t);
        }
        for (i, &t) in s.iter().enumerate() {
            self.cores[i % n].prefill(StreamTag::S, t);
        }
        for core in &mut self.cores {
            core.set_counts(r.len() as u64, s.len() as u64);
        }
    }

    /// Aggregated per-core statistics.
    pub fn core_stats(&self) -> CoreStats {
        let mut total = CoreStats::default();
        for c in &self.cores {
            let s = c.stats();
            total.tuples_processed += s.tuples_processed;
            total.comparisons += s.comparisons;
            total.matches += s.matches;
            total.stored += s.stored;
        }
        total
    }

    /// Access to an individual join core (verification).
    pub fn core_mut(&mut self, index: usize) -> &mut JoinCore {
        &mut self.cores[index]
    }

    /// Publishes the design's counters into `reg` under `prefix`:
    /// the accepted-tuple count and aggregated [`CoreStats`] (always
    /// live), plus the distribution network's stall counters under
    /// `{prefix}dist.` and the gathering network's under
    /// `{prefix}gather.` (0 when the `obs` feature is off).
    pub fn observe(&self, reg: &mut obs::Registry, prefix: &str) {
        reg.record(format!("{prefix}accepted_tuples"), self.accepted_tuples);
        let stats = self.core_stats();
        reg.record(format!("{prefix}tuples_processed"), stats.tuples_processed);
        reg.record(format!("{prefix}comparisons"), stats.comparisons);
        reg.record(format!("{prefix}matches"), stats.matches);
        self.dist.observe(reg, &format!("{prefix}dist."));
        self.gather.observe(reg, &format!("{prefix}gather."));
    }
}

impl Component for UniFlowJoin {
    fn begin_cycle(&mut self) {
        self.coord_begin_cycle();
        for c in &mut self.cores {
            c.begin_cycle();
        }
    }

    fn eval(&mut self) {
        self.coord_eval_pre();
        for c in &mut self.cores {
            c.eval();
        }
        self.coord_eval_post();
    }

    fn commit(&mut self) {
        self.coord_commit();
        for c in &mut self.cores {
            c.commit();
        }
    }
}

/// The parallel decomposition of the uni-flow pipeline: each join core
/// (with its two sub-windows and FIFOs) is one shard; the distribution
/// and gathering trees stay on the coordinator. The trees touch core
/// state only through the cores' two-phase FIFOs, and only inside
/// `coord_eval_pre` (pushing into fetchers) and `coord_eval_post`
/// (popping results) — both of which run while the shards are quiescent,
/// so the schedule is cycle-exact with respect to the sequential
/// [`Component`] implementation above (which is itself written as
/// coordinator phases around the core loops).
impl Sharded for UniFlowJoin {
    fn coord_begin_cycle(&mut self) {
        self.cycle += 1;
        self.dist.begin_cycle();
        self.gather.begin_cycle();
    }

    fn coord_eval_pre(&mut self) {
        // Inject queued operator frames at the input port.
        if !self.pending_program.is_empty() && self.dist.can_accept() {
            let frame = self.pending_program.remove(0);
            self.dist.offer(frame);
        }
        self.dist.eval(&mut self.cores);
        if self.prov.is_some() && self.dist.take_watch_delivered() {
            self.stamp_stage(obs::provenance::Stage::Distribute, "distribute");
        }
    }

    fn coord_eval_post(&mut self) {
        self.gather.eval(&mut self.cores, &mut self.collected);
        if self.prov.is_some() {
            // Probe completions first (they raise the sink-delivery debt),
            // then this cycle's watched sink arrivals.
            let mut done = 0usize;
            let mut matches = 0u64;
            for core in &mut self.cores {
                if let Some((_, m)) = core.take_watch_done() {
                    done += 1;
                    matches += m;
                }
            }
            let hits = self.gather.take_watch_delivered();
            let p = self.prov.as_mut().expect("checked above");
            p.probes_pending = p.probes_pending.saturating_sub(done);
            p.results_expected += matches;
            p.results_seen += hits;
            let probes_done = p.probes_pending == 0;
            let gathered = probes_done && p.results_seen >= p.results_expected;
            if probes_done {
                self.stamp_stage(obs::provenance::Stage::Probe, "probe");
            }
            if gathered {
                self.stamp_stage(obs::provenance::Stage::Gather, "gather");
                self.gather.clear_watch();
            }
        }
    }

    fn coord_commit(&mut self) {
        self.dist.commit();
        self.gather.commit();
    }

    fn shards(&mut self) -> Vec<&mut dyn Shard> {
        self.cores.iter_mut().map(|c| c as &mut dyn Shard).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkKind;
    use hwsim::Simulator;
    use std::collections::HashMap;

    fn drive(
        join: &mut UniFlowJoin,
        inputs: &[(StreamTag, Tuple)],
        max_cycles: u64,
    ) -> Vec<MatchPair> {
        let mut sim = Simulator::new();
        let mut idx = 0;
        while idx < inputs.len() {
            let (tag, t) = inputs[idx];
            if join.offer(tag, t) {
                idx += 1;
            }
            sim.step(join);
            assert!(sim.cycle() < max_cycles, "inputs not accepted in time");
        }
        let ok = sim.run_until(join, max_cycles, |j| j.quiescent());
        assert!(ok, "design did not quiesce");
        join.drain_results()
    }

    /// Reference strict-semantics nested-loop join over global windows.
    fn reference_join(inputs: &[(StreamTag, Tuple)], window: usize) -> Vec<MatchPair> {
        let mut wr: Vec<Tuple> = Vec::new();
        let mut ws: Vec<Tuple> = Vec::new();
        let mut out = Vec::new();
        for &(tag, t) in inputs {
            match tag {
                StreamTag::R => {
                    for &s in &ws {
                        if t.key() == s.key() {
                            out.push(MatchPair { r: t, s });
                        }
                    }
                    wr.push(t);
                    if wr.len() > window {
                        wr.remove(0);
                    }
                }
                StreamTag::S => {
                    for &r in &wr {
                        if r.key() == t.key() {
                            out.push(MatchPair { r, s: t });
                        }
                    }
                    ws.push(t);
                    if ws.len() > window {
                        ws.remove(0);
                    }
                }
            }
        }
        out
    }

    fn as_multiset(results: &[MatchPair]) -> HashMap<(u64, u64), u32> {
        let mut m = HashMap::new();
        for p in results {
            *m.entry((p.r.raw(), p.s.raw())).or_insert(0) += 1;
        }
        m
    }

    fn workload(n: usize, domain: u32) -> Vec<(StreamTag, Tuple)> {
        streamcore::workload::WorkloadSpec::new(
            n,
            streamcore::workload::KeyDist::Uniform { domain },
        )
        .generate()
        .collect()
    }

    #[test]
    fn matches_reference_join_exactly_small_config() {
        let inputs = workload(200, 8);
        for cores in [1u32, 2, 4] {
            let params = DesignParams::new(FlowModel::UniFlow, cores, 64);
            let mut join = UniFlowJoin::new(&params);
            join.program(JoinOperator::equi(cores));
            let got = drive(&mut join, &inputs, 200_000);
            let want = reference_join(&inputs, 64);
            assert_eq!(
                as_multiset(&got),
                as_multiset(&want),
                "mismatch with {cores} cores"
            );
            assert!(!want.is_empty(), "test should exercise matches");
        }
    }

    #[test]
    fn matches_reference_with_window_expiry() {
        // Window smaller than input count: expiry paths exercised.
        let inputs = workload(400, 4);
        let params = DesignParams::new(FlowModel::UniFlow, 4, 16);
        let mut join = UniFlowJoin::new(&params);
        join.program(JoinOperator::equi(4));
        let got = drive(&mut join, &inputs, 400_000);
        let want = reference_join(&inputs, 16);
        assert_eq!(as_multiset(&got), as_multiset(&want));
    }

    #[test]
    fn scalable_network_produces_identical_results() {
        let inputs = workload(300, 8);
        let lw = DesignParams::new(FlowModel::UniFlow, 8, 64);
        let sc = lw.with_network(NetworkKind::Scalable);
        let mut a = UniFlowJoin::new(&lw);
        let mut b = UniFlowJoin::new(&sc);
        a.program(JoinOperator::equi(8));
        b.program(JoinOperator::equi(8));
        let ra = drive(&mut a, &inputs, 400_000);
        let rb = drive(&mut b, &inputs, 400_000);
        assert_eq!(as_multiset(&ra), as_multiset(&rb));
    }

    #[test]
    fn operator_reprogramming_mid_stream_loses_nothing() {
        // "This makes it possible to update the current join operator in
        // real-time": stream tuples, switch the equi-join to a band join
        // through the same broadcast path the data uses, keep streaming.
        // Every tuple is processed under exactly one operator; none drop.
        let cores = 4u32;
        let params = DesignParams::new(FlowModel::UniFlow, cores, 32);
        let mut join = UniFlowJoin::new(&params);
        join.program(JoinOperator::equi(cores));
        let mut sim = Simulator::new();

        let offer_all = |join: &mut UniFlowJoin,
                             sim: &mut Simulator,
                             inputs: &[(StreamTag, Tuple)]| {
            let mut idx = 0;
            while idx < inputs.len() {
                let (tag, t) = inputs[idx];
                if join.offer(tag, t) {
                    idx += 1;
                }
                sim.step(join);
            }
        };

        // Phase 1 under equi: store S keys 10, 20; probe with 11 (miss).
        let phase1: Vec<(StreamTag, Tuple)> = vec![
            (StreamTag::S, Tuple::new(10, 0)),
            (StreamTag::S, Tuple::new(20, 1)),
            (StreamTag::R, Tuple::new(11, 2)),
        ];
        offer_all(&mut join, &mut sim, &phase1);
        sim.run_until(&mut join, 10_000, |j| j.quiescent());
        assert!(join.drain_results().is_empty(), "equi: 11 matches nothing");

        // Live re-program to a band join (|Δkey| <= 1), then re-probe.
        join.program(JoinOperator {
            num_cores: cores,
            predicate: crate::JoinPredicate::Band { delta: 1 },
        });
        let phase2 = vec![(StreamTag::R, Tuple::new(11, 3))];
        offer_all(&mut join, &mut sim, &phase2);
        assert!(sim.run_until(&mut join, 10_000, |j| j.quiescent()));
        let results = join.drain_results();
        assert_eq!(results.len(), 1, "band: 11 matches stored 10");
        assert_eq!(results[0].s, Tuple::new(10, 0));
        // Re-programming resets the round-robin counters but the windows
        // survive: the stored S tuples were still probed. All four tuples
        // were accepted and processed.
        assert_eq!(join.accepted_tuples(), 4);
    }

    #[test]
    fn hash_cores_produce_identical_results_to_nested_loop() {
        let inputs = workload(400, 8);
        let nested = DesignParams::new(FlowModel::UniFlow, 4, 32);
        let hashed = nested.with_algorithm(crate::JoinAlgorithm::Hash);
        let mut a = UniFlowJoin::new(&nested);
        let mut b = UniFlowJoin::new(&hashed);
        a.program(JoinOperator::equi(4));
        b.program(JoinOperator::equi(4));
        let ra = drive(&mut a, &inputs, 400_000);
        let rb = drive(&mut b, &inputs, 400_000);
        assert_eq!(as_multiset(&ra), as_multiset(&rb));
        assert!(!ra.is_empty());
    }

    #[test]
    fn hash_cores_probe_fewer_tuples() {
        // Same workload: the hash design's comparison count collapses to
        // the matching tuples only.
        let inputs = workload(400, 8);
        let mut counts = Vec::new();
        for algorithm in [crate::JoinAlgorithm::NestedLoop, crate::JoinAlgorithm::Hash] {
            let params =
                DesignParams::new(FlowModel::UniFlow, 4, 32).with_algorithm(algorithm);
            let mut join = UniFlowJoin::new(&params);
            join.program(JoinOperator::equi(4));
            drive(&mut join, &inputs, 400_000);
            let stats = join.core_stats();
            counts.push((stats.comparisons, stats.matches));
        }
        let (nested, hash) = (counts[0], counts[1]);
        assert_eq!(nested.1, hash.1, "same matches");
        assert_eq!(hash.0, hash.1, "hash compares only matching tuples");
        assert!(nested.0 > 4 * hash.0, "nested scans far more: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "hash join cores only support equi-join")]
    fn hash_cores_reject_non_equi_operators() {
        let params = DesignParams::new(FlowModel::UniFlow, 2, 16)
            .with_algorithm(crate::JoinAlgorithm::Hash);
        let mut join = UniFlowJoin::new(&params);
        join.program(JoinOperator {
            num_cores: 2,
            predicate: crate::JoinPredicate::Band { delta: 1 },
        });
    }

    #[test]
    fn wider_tree_fanout_produces_identical_results() {
        let inputs = workload(300, 8);
        let base = DesignParams::new(FlowModel::UniFlow, 16, 64)
            .with_network(NetworkKind::Scalable);
        let mut reference = None;
        for fanout in [2u32, 4, 16] {
            let params = base.with_fanout(fanout);
            let mut join = UniFlowJoin::new(&params);
            join.program(JoinOperator::equi(16));
            let results = as_multiset(&drive(&mut join, &inputs, 400_000));
            match &reference {
                None => reference = Some(results),
                Some(want) => assert_eq!(&results, want, "fan-out {fanout}"),
            }
        }
    }

    #[test]
    fn prefill_matches_streamed_fill() {
        let fill = workload(64, 8);
        let probe = (StreamTag::R, Tuple::new(3, 999));

        // Variant A: stream everything.
        let params = DesignParams::new(FlowModel::UniFlow, 4, 32);
        let mut a = UniFlowJoin::new(&params);
        a.program(JoinOperator::equi(4));
        let mut inputs = fill.clone();
        inputs.push(probe);
        let ra = drive(&mut a, &inputs, 400_000);

        // Variant B: prefill directly, then stream only the probe.
        let mut b = UniFlowJoin::new(&params);
        b.program(JoinOperator::equi(4));
        let r: Vec<Tuple> = fill
            .iter()
            .filter(|(t, _)| *t == StreamTag::R)
            .map(|&(_, t)| t)
            .collect();
        let s: Vec<Tuple> = fill
            .iter()
            .filter(|(t, _)| *t == StreamTag::S)
            .map(|&(_, t)| t)
            .collect();
        b.prefill(&r, &s);
        let rb = drive(&mut b, &[probe], 10_000);

        // A's results include fill-phase matches; B's only the probe's.
        let probe_matches_a: Vec<_> = ra
            .into_iter()
            .filter(|m| m.r == Tuple::new(3, 999))
            .collect();
        assert_eq!(as_multiset(&probe_matches_a), as_multiset(&rb));
        assert!(!rb.is_empty());
    }

    #[test]
    fn accepted_tuple_count_tracks_offers() {
        let params = DesignParams::new(FlowModel::UniFlow, 2, 16);
        let mut join = UniFlowJoin::new(&params);
        join.program(JoinOperator::equi(2));
        let inputs = workload(50, 4);
        drive(&mut join, &inputs, 100_000);
        assert_eq!(join.accepted_tuples(), 50);
    }

    #[test]
    fn throughput_scales_linearly_with_cores() {
        // The headline uni-flow property (Fig. 14a): doubling cores halves
        // the cycles needed to absorb the same stream at full windows.
        let window = 256;
        let mut cycles_by_cores = Vec::new();
        for cores in [2u32, 4, 8] {
            let params = DesignParams::new(FlowModel::UniFlow, cores, window);
            let mut join = UniFlowJoin::new(&params);
            join.program(JoinOperator::equi(cores));
            // Pre-fill to steady state: full windows, unique keys.
            let r: Vec<Tuple> = (0..window as u32).map(|i| Tuple::new(i, i)).collect();
            let s: Vec<Tuple> = (0..window as u32)
                .map(|i| Tuple::new(i + window as u32, i))
                .collect();
            join.prefill(&r, &s);
            let mut sim = Simulator::new();
            // Push 64 more tuples at max rate.
            let mut sent = 0u32;
            while sent < 64 {
                if join.offer(StreamTag::R, Tuple::new(1 << 20, sent)) {
                    sent += 1;
                }
                sim.step(&mut join);
            }
            sim.run_until(&mut join, 1_000_000, |j| j.quiescent());
            cycles_by_cores.push(sim.cycle());
        }
        // Halving ratio within tolerance.
        for w in cycles_by_cores.windows(2) {
            let ratio = w[0] as f64 / w[1] as f64;
            assert!(
                (1.5..2.5).contains(&ratio),
                "expected ~2x speedup, got {ratio:.2} ({cycles_by_cores:?})"
            );
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn observe_reports_stall_and_delivery_counters() {
        let params = DesignParams::new(FlowModel::UniFlow, 4, 16);
        let mut join = UniFlowJoin::new(&params);
        join.program(JoinOperator::equi(4));
        let inputs = workload(100, 4);
        drive(&mut join, &inputs, 100_000);
        let mut reg = obs::Registry::new();
        join.observe(&mut reg, "uni.");
        assert_eq!(reg.get("uni.accepted_tuples"), Some(100));
        // The lightweight broadcast delivers one copy per core per frame:
        // 2 operator frames + 100 data tuples, 4 cores each.
        assert_eq!(reg.get("uni.dist.delivered"), Some(102 * 4));
        // Every match surfaces through the gathering network exactly once.
        assert_eq!(reg.get("uni.gather.delivered"), reg.get("uni.matches"));
        // At saturation the cores back-pressure the broadcast.
        assert!(reg.get("uni.dist.head_stalls").unwrap() > 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn provenance_sampling_breaks_down_latency_without_changing_results() {
        let inputs = workload(200, 8);
        let params = DesignParams::new(FlowModel::UniFlow, 4, 32);
        let mut plain = UniFlowJoin::new(&params);
        plain.program(JoinOperator::equi(4));
        let want = drive(&mut plain, &inputs, 200_000);
        assert!(plain.take_trace().is_empty(), "tracing off: no rings");
        assert!(plain.take_provenance().is_none(), "tracing off: no tracker");

        obs::trace::enable(16);
        let mut traced = UniFlowJoin::new(&params);
        traced.program(JoinOperator::equi(4));
        // Drain every cycle (like the latency harness): Emit is stamped
        // when the harness drains, so per-cycle draining lets samples
        // complete throughout the run instead of once at the end.
        let mut sim = Simulator::new();
        let mut got = Vec::new();
        let mut idx = 0;
        while idx < inputs.len() {
            let (tag, t) = inputs[idx];
            if traced.offer(tag, t) {
                idx += 1;
            }
            sim.step(&mut traced);
            got.extend(traced.drain_results());
            assert!(sim.cycle() < 200_000, "inputs not accepted in time");
        }
        while !traced.quiescent() {
            sim.step(&mut traced);
            got.extend(traced.drain_results());
            assert!(sim.cycle() < 200_000, "design did not quiesce");
        }
        got.extend(traced.drain_results());
        obs::trace::disable();

        // Behavior-neutral: identical results with tracing on.
        assert_eq!(as_multiset(&got), as_multiset(&want));

        let tracker = traced.take_provenance().expect("tracing was on");
        assert!(tracker.completed() >= 10, "200 tuples / 1-in-16 sampling");
        // The headline invariant: stage deltas sum exactly to the
        // end-to-end total.
        assert_eq!(
            tracker.stage_sums().iter().sum::<u64>(),
            tracker.total_sum(),
            "stage breakdown must account for the full latency"
        );
        assert!(tracker.total_sum() > 0, "latency cannot be zero cycles");

        let rings = traced.take_trace();
        let coord = rings
            .iter()
            .find(|r| r.track() == "uniflow.coord")
            .expect("coordinator ring present");
        assert!(!coord.is_empty(), "stage spans recorded");
        let stage_names: Vec<&str> = coord.events().iter().map(|e| e.name).collect();
        for name in ["distribute", "probe", "gather", "emit"] {
            assert!(stage_names.contains(&name), "missing {name} span");
        }
        for i in 0..4 {
            let track = format!("core.{i}");
            let core = rings
                .iter()
                .find(|r| r.track() == track)
                .unwrap_or_else(|| panic!("missing ring {track}"));
            assert!(!core.is_empty(), "{track} recorded probe spans");
            assert!(core.events().iter().all(|e| e.name == "probe"));
        }
    }

    #[test]
    #[should_panic(expected = "operator core count must match")]
    fn mismatched_operator_panics() {
        let params = DesignParams::new(FlowModel::UniFlow, 2, 16);
        let mut join = UniFlowJoin::new(&params);
        join.program(JoinOperator::equi(4));
    }

    #[test]
    #[should_panic(expected = "requires uni-flow")]
    fn biflow_params_rejected() {
        let params = DesignParams::new(FlowModel::BiFlow, 2, 16);
        let _ = UniFlowJoin::new(&params);
    }
}
