//! Distribution and result-gathering networks of the uni-flow design
//! (Fig. 9).
//!
//! Both networks come in the paper's two variants:
//!
//! * **lightweight** — a single broadcast stage (distribution) and a
//!   round-robin collector visiting one core per cycle (gathering). Cheap,
//!   but the broadcast fan-out scales with the core count and drags the
//!   clock down, and round-robin collection latency grows linearly;
//! * **scalable** — trees of DNodes / GNodes. A tuple traverses
//!   `log_k N` pipeline stages, but every stage has constant fan-out, so
//!   the clock frequency stays flat as the design grows.
//!
//! The tree fan-out `k` is a parameter (default 2, as drawn in Fig. 9).
//! The paper explicitly flags wider trees as worth exploring: "other
//! fan-out sizes (e.g., 1→4) could be interesting … since they reduce the
//! height of the distribution network and lower communication latency" —
//! the `fanout` ablation bench quantifies that trade-off against the
//! per-stage fan-out's clock cost.

use hwsim::Fifo;
use streamcore::{Frame, MatchPair, Tuple};

use super::core::JoinCore;
use crate::NetworkKind;

/// Depth of each DNode/GNode pipeline buffer.
const NODE_BUFFER_DEPTH: usize = 2;

/// `true` if `n` is an exact power of `k`.
pub(crate) fn is_power_of(mut n: usize, k: usize) -> bool {
    if n == 0 {
        return false;
    }
    while n.is_multiple_of(k) {
        n /= k;
    }
    n == 1
}

fn validate_tree(kind: NetworkKind, num_cores: usize, fanout: usize) {
    assert!(num_cores > 0, "need at least one core");
    assert!(fanout >= 2, "tree fan-out must be at least 2");
    if kind == NetworkKind::Scalable && num_cores > 1 {
        assert!(
            is_power_of(num_cores, fanout),
            "scalable network requires the core count ({num_cores}) to be a \
             power of the tree fan-out ({fanout})"
        );
    }
}

/// Internal node count of a complete `k`-ary tree with `n` leaves.
fn internal_nodes(kind: NetworkKind, n: usize, k: usize) -> usize {
    match kind {
        NetworkKind::Lightweight => 0,
        NetworkKind::Scalable => (n.saturating_sub(1)) / (k - 1),
    }
}

/// The distribution network: transfers frames from the system input to
/// every join core's fetcher.
#[derive(Debug, Clone)]
pub struct DistributionNetwork {
    kind: NetworkKind,
    input: Fifo<Frame>,
    /// Internal DNodes in `k`-ary heap order (scalable only). Node `i`
    /// feeds nodes `k·i+1 ..= k·i+k`; indices past the internal count
    /// address core fetchers directly.
    dnodes: Vec<Fifo<Frame>>,
    num_cores: usize,
    fanout: usize,
    /// Offers rejected because the input port was full. No-op without `obs`.
    offer_rejected: obs::Counter,
    /// Cycles where a buffered frame could not advance (input head blocked
    /// by a non-ready fetcher or full root, or a DNode head whose broadcast
    /// was blocked by at least one child).
    head_stalls: obs::Counter,
    /// Frames pushed into core fetchers (counts each per-core copy).
    delivered: obs::Counter,
    /// Provenance watch: the sampled frame currently traversing the
    /// network, if any. Pure observation — never steers a frame.
    watch: Option<Frame>,
    /// Fetcher deliveries of the watched frame so far (a frame is fully
    /// distributed once every core received its copy).
    watch_count: usize,
    /// Latched completion flag, consumed by `take_watch_delivered`.
    watch_done: bool,
}

impl DistributionNetwork {
    /// Builds a network for `num_cores` cores with the given tree
    /// `fanout` (ignored by the lightweight variant).
    ///
    /// # Panics
    ///
    /// Panics if a scalable network is requested and `num_cores` is not a
    /// power of `fanout`, or if `fanout < 2`.
    pub fn new(kind: NetworkKind, num_cores: usize, fanout: usize) -> Self {
        validate_tree(kind, num_cores, fanout);
        Self {
            kind,
            input: Fifo::new(NODE_BUFFER_DEPTH),
            dnodes: (0..internal_nodes(kind, num_cores, fanout))
                .map(|_| Fifo::new(NODE_BUFFER_DEPTH))
                .collect(),
            num_cores,
            fanout,
            offer_rejected: obs::Counter::new(),
            head_stalls: obs::Counter::new(),
            delivered: obs::Counter::new(),
            watch: None,
            watch_count: 0,
            watch_done: false,
        }
    }

    /// Starts watching `frame`: `take_watch_delivered` latches once every
    /// core has received its copy. One watch at a time (a new watch
    /// replaces the old).
    pub fn set_watch(&mut self, frame: Frame) {
        self.watch = Some(frame);
        self.watch_count = 0;
        self.watch_done = false;
    }

    /// Consumes the watch-completion flag (set the cycle the watched
    /// frame's last per-core copy reached a fetcher).
    pub fn take_watch_delivered(&mut self) -> bool {
        std::mem::take(&mut self.watch_done)
    }

    /// Per-copy delivery accounting for the provenance watch.
    fn note_delivery(&mut self, frame: Frame) {
        if self.watch == Some(frame) {
            self.watch_count += 1;
            if self.watch_count >= self.num_cores {
                self.watch = None;
                self.watch_done = true;
            }
        }
    }

    /// Pipeline stages a frame traverses from input to a fetcher.
    pub fn depth(&self) -> u32 {
        match self.kind {
            NetworkKind::Lightweight => 1,
            NetworkKind::Scalable => {
                1 + (self.num_cores as f64).log(self.fanout as f64).round() as u32
            }
        }
    }

    /// `true` if the input port can accept a frame this cycle.
    pub fn can_accept(&self) -> bool {
        self.input.can_push()
    }

    /// Offers a frame to the input port; returns `false` if back-pressured.
    pub fn offer(&mut self, frame: Frame) -> bool {
        let accepted = self.input.push(frame).is_ok();
        if !accepted {
            self.offer_rejected.incr();
        }
        accepted
    }

    /// Publishes the network's counters into `reg` under `prefix`:
    /// `{prefix}offer_rejected`, `{prefix}head_stalls`,
    /// `{prefix}delivered`. All three are 0 when the `obs` feature is off.
    pub fn observe(&self, reg: &mut obs::Registry, prefix: &str) {
        reg.counter(format!("{prefix}offer_rejected"), &self.offer_rejected);
        reg.counter(format!("{prefix}head_stalls"), &self.head_stalls);
        reg.counter(format!("{prefix}delivered"), &self.delivered);
    }

    /// `true` when no frame is buffered anywhere in the network.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
            && self.input.committed_len() == 0
            && self
                .dnodes
                .iter()
                .all(|n| n.is_empty() && n.committed_len() == 0)
    }

    fn children(&self, i: usize) -> std::ops::RangeInclusive<usize> {
        self.fanout * i + 1..=self.fanout * i + self.fanout
    }

    pub(crate) fn begin_cycle(&mut self) {
        self.input.begin_cycle();
        for n in &mut self.dnodes {
            n.begin_cycle();
        }
    }

    pub(crate) fn eval(&mut self, cores: &mut [JoinCore]) {
        match self.kind {
            NetworkKind::Lightweight => {
                // Broadcast to all fetchers at once; the broadcast is
                // atomic, so it waits until every fetcher has room.
                if self.input.can_pop() {
                    if cores.iter().all(JoinCore::fetcher_ready) {
                        let frame = self.input.pop().expect("frame available");
                        for core in cores.iter_mut() {
                            core.fetcher().push(frame).expect("checked fetcher_ready");
                            self.delivered.incr();
                            self.note_delivery(frame);
                        }
                    } else {
                        self.head_stalls.incr();
                    }
                }
            }
            NetworkKind::Scalable => {
                if self.num_cores == 1 {
                    // Degenerate tree: input feeds the single fetcher.
                    if self.input.can_pop() {
                        if cores[0].fetcher_ready() {
                            let f = self.input.pop().expect("frame available");
                            cores[0].fetcher().push(f).expect("checked ready");
                            self.delivered.incr();
                            self.note_delivery(f);
                        } else {
                            self.head_stalls.incr();
                        }
                    }
                    return;
                }
                // Root DNode pulls from the input port.
                if self.input.can_pop() {
                    if self.dnodes[0].can_push() {
                        let f = self.input.pop().expect("frame available");
                        self.dnodes[0].push(f).expect("checked can_push");
                    } else {
                        self.head_stalls.incr();
                    }
                }
                // Each DNode broadcasts its front frame to all children
                // when every one can accept ("provided the next DNodes are
                // not full").
                for i in 0..self.dnodes.len() {
                    if !self.dnodes[i].can_pop() {
                        continue;
                    }
                    let ready = |this: &Self, cores: &[JoinCore], c: usize| {
                        if c < this.dnodes.len() {
                            this.dnodes[c].can_push()
                        } else {
                            cores[c - this.dnodes.len()].fetcher_ready()
                        }
                    };
                    if !self.children(i).all(|c| ready(self, cores, c)) {
                        self.head_stalls.incr();
                        continue;
                    }
                    let frame = self.dnodes[i].pop().expect("frame available");
                    for c in self.children(i) {
                        if c < self.dnodes.len() {
                            self.dnodes[c].push(frame).expect("checked ready");
                        } else {
                            cores[c - self.dnodes.len()]
                                .fetcher()
                                .push(frame)
                                .expect("checked ready");
                            self.delivered.incr();
                            self.note_delivery(frame);
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn commit(&mut self) {
        self.input.commit();
        for n in &mut self.dnodes {
            n.commit();
        }
    }
}

/// The result-gathering network: collects result tuples from the join
/// cores into the system output.
#[derive(Debug, Clone)]
pub struct GatheringNetwork {
    kind: NetworkKind,
    /// Round-robin pointer (lightweight).
    pointer: usize,
    /// Internal GNodes in `k`-ary heap order (scalable); mirrors the
    /// DNode tree.
    gnodes: Vec<Fifo<MatchPair>>,
    /// Rotating-grant state per GNode: which upper port holds the grant
    /// (the paper's Toggle Grant, generalized to `k` ports).
    grants: Vec<usize>,
    num_cores: usize,
    fanout: usize,
    /// Cycles where a GNode's granted upper port held a result but the
    /// node's own buffer was full. No-op without `obs`.
    push_stalls: obs::Counter,
    /// Results delivered to the system output sink.
    delivered: obs::Counter,
    /// Provenance watch: the sampled probe tuple whose result pairs are
    /// being counted at the sink. Pure observation.
    watch: Option<Tuple>,
    /// Sink deliveries involving the watched tuple since the last
    /// `take_watch_delivered` call.
    watch_hits: u64,
}

impl GatheringNetwork {
    /// Builds a gathering network for `num_cores` cores with the given
    /// tree `fanout`.
    ///
    /// # Panics
    ///
    /// Panics if a scalable network is requested and `num_cores` is not a
    /// power of `fanout`, or if `fanout < 2`.
    pub fn new(kind: NetworkKind, num_cores: usize, fanout: usize) -> Self {
        validate_tree(kind, num_cores, fanout);
        let internal = internal_nodes(kind, num_cores, fanout);
        Self {
            kind,
            pointer: 0,
            gnodes: (0..internal).map(|_| Fifo::new(NODE_BUFFER_DEPTH)).collect(),
            grants: vec![0; internal],
            num_cores,
            fanout,
            push_stalls: obs::Counter::new(),
            delivered: obs::Counter::new(),
            watch: None,
            watch_hits: 0,
        }
    }

    /// Starts watching `probe`: sink deliveries whose pair involves this
    /// tuple are counted until `clear_watch`.
    pub fn set_watch(&mut self, probe: Tuple) {
        self.watch = Some(probe);
        self.watch_hits = 0;
    }

    /// Stops counting sink deliveries for the current watch.
    pub fn clear_watch(&mut self) {
        self.watch = None;
        self.watch_hits = 0;
    }

    /// Consumes the count of watched-tuple sink deliveries since the last
    /// call (intended to be polled once per cycle).
    pub fn take_watch_delivered(&mut self) -> u64 {
        std::mem::take(&mut self.watch_hits)
    }

    /// Watch accounting for one sink delivery.
    fn note_sink(&mut self, m: &MatchPair) {
        if let Some(w) = self.watch {
            if m.r == w || m.s == w {
                self.watch_hits += 1;
            }
        }
    }

    /// Publishes the network's counters into `reg` under `prefix`:
    /// `{prefix}push_stalls`, `{prefix}delivered`. Both are 0 when the
    /// `obs` feature is off.
    pub fn observe(&self, reg: &mut obs::Registry, prefix: &str) {
        reg.counter(format!("{prefix}push_stalls"), &self.push_stalls);
        reg.counter(format!("{prefix}delivered"), &self.delivered);
    }

    /// `true` when no result is buffered inside the network.
    pub fn is_empty(&self) -> bool {
        self.gnodes
            .iter()
            .all(|n| n.is_empty() && n.committed_len() == 0)
    }

    pub(crate) fn begin_cycle(&mut self) {
        for n in &mut self.gnodes {
            n.begin_cycle();
        }
    }

    /// One cycle of collection; delivered results are appended to `sink`.
    pub(crate) fn eval(&mut self, cores: &mut [JoinCore], sink: &mut Vec<MatchPair>) {
        match self.kind {
            NetworkKind::Lightweight => {
                // Visit one core per cycle, round-robin; this serial scan
                // is why lightweight collection latency grows with the
                // core count.
                if let Some(m) = cores[self.pointer].results().pop() {
                    self.note_sink(&m);
                    sink.push(m);
                    self.delivered.incr();
                }
                self.pointer = (self.pointer + 1) % self.num_cores;
            }
            NetworkKind::Scalable => {
                if self.num_cores == 1 {
                    if let Some(m) = cores[0].results().pop() {
                        self.note_sink(&m);
                        sink.push(m);
                        self.delivered.incr();
                    }
                    return;
                }
                // Root GNode drains to the sink, one result per cycle.
                if let Some(m) = self.gnodes[0].pop() {
                    self.note_sink(&m);
                    sink.push(m);
                    self.delivered.incr();
                }
                // Each GNode pulls from the granted upper port; the grant
                // rotates every cycle (single-direction signalling, no
                // handshake).
                for i in 0..self.gnodes.len() {
                    let granted = self.fanout * i + 1 + self.grants[i];
                    self.grants[i] = (self.grants[i] + 1) % self.fanout;
                    if !self.gnodes[i].can_push() {
                        // Only a lost transfer opportunity if the granted
                        // port actually had a result waiting.
                        let blocked = if granted < self.gnodes.len() {
                            self.gnodes[granted].can_pop()
                        } else {
                            cores[granted - self.gnodes.len()].results().can_pop()
                        };
                        if blocked {
                            self.push_stalls.incr();
                        }
                        continue;
                    }
                    let pulled = if granted < self.gnodes.len() {
                        self.gnodes[granted].pop()
                    } else {
                        cores[granted - self.gnodes.len()].results().pop()
                    };
                    if let Some(m) = pulled {
                        self.gnodes[i].push(m).expect("checked can_push");
                    }
                }
            }
        }
    }

    pub(crate) fn commit(&mut self) {
        for n in &mut self.gnodes {
            n.commit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamcore::Tuple;

    fn cores(n: usize) -> Vec<JoinCore> {
        (0..n).map(|i| JoinCore::new(i as u32, 8)).collect()
    }

    fn cycle_dist(net: &mut DistributionNetwork, cores: &mut [JoinCore]) {
        net.begin_cycle();
        for c in cores.iter_mut() {
            c.begin_cycle();
        }
        net.eval(cores);
        net.commit();
        for c in cores.iter_mut() {
            c.commit();
        }
    }

    #[test]
    fn power_of_helper() {
        assert!(is_power_of(1, 2));
        assert!(is_power_of(64, 2));
        assert!(is_power_of(64, 4));
        assert!(is_power_of(64, 8));
        assert!(!is_power_of(64, 3));
        assert!(!is_power_of(0, 2));
        assert!(!is_power_of(48, 4));
    }

    #[test]
    fn lightweight_broadcast_reaches_all_cores_in_one_stage() {
        let mut net = DistributionNetwork::new(NetworkKind::Lightweight, 4, 2);
        let mut cs = cores(4);
        assert!(net.offer(Frame::TupleR(Tuple::new(1, 0))));
        net.commit(); // latch the offered frame
        cycle_dist(&mut net, &mut cs);
        for c in &mut cs {
            c.begin_cycle();
            assert_eq!(c.fetcher().pop(), Some(Frame::TupleR(Tuple::new(1, 0))));
            c.commit();
        }
        assert_eq!(net.depth(), 1);
    }

    #[test]
    fn scalable_delivery_takes_log_stages() {
        for (n, k, expected_depth) in [(8usize, 2usize, 4u32), (16, 4, 3), (8, 8, 2)] {
            let mut net = DistributionNetwork::new(NetworkKind::Scalable, n, k);
            assert_eq!(net.depth(), expected_depth, "{n} cores, fan-out {k}");
            let mut cs = cores(n);
            assert!(net.offer(Frame::TupleS(Tuple::new(9, 0))));
            net.commit();
            let mut stages = 0;
            loop {
                let delivered = cs.iter_mut().all(|c| c.fetcher().len() == 1);
                if delivered {
                    break;
                }
                cycle_dist(&mut net, &mut cs);
                stages += 1;
                assert!(stages <= 10, "frame lost in the tree");
            }
            assert_eq!(stages as u32, net.depth(), "{n} cores, fan-out {k}");
            assert!(net.is_empty());
        }
    }

    #[test]
    fn scalable_sustains_one_frame_per_cycle() {
        for k in [2usize, 4] {
            let n = 16;
            let mut net = DistributionNetwork::new(NetworkKind::Scalable, n, k);
            let mut cs = cores(n);
            let mut offered = 0u32;
            for _ in 0..50 {
                net.begin_cycle();
                for c in cs.iter_mut() {
                    c.begin_cycle();
                }
                if net.can_accept() {
                    net.offer(Frame::TupleR(Tuple::new(offered, offered)));
                    offered += 1;
                }
                net.eval(&mut cs);
                // Drain fetchers so cores never back-pressure.
                for c in cs.iter_mut() {
                    c.fetcher().pop();
                }
                net.commit();
                for c in cs.iter_mut() {
                    c.commit();
                }
            }
            assert!(offered >= 48, "fan-out {k}: only {offered} in 50 cycles");
        }
    }

    #[test]
    fn lightweight_backpressure_blocks_broadcast_atomically() {
        let mut net = DistributionNetwork::new(NetworkKind::Lightweight, 2, 2);
        let mut cs = cores(2);
        // Fill core 1's fetcher completely.
        for i in 0..4u32 {
            cs[1].fetcher().load(Frame::TupleR(Tuple::new(i, 0)));
        }
        net.offer(Frame::TupleS(Tuple::new(5, 0)));
        net.commit();
        cycle_dist(&mut net, &mut cs);
        // Nothing delivered anywhere: broadcast is all-or-nothing.
        cs[0].begin_cycle();
        assert_eq!(cs[0].fetcher().pop(), None);
        cs[0].commit();
        assert!(!net.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of the tree fan-out")]
    fn scalable_rejects_mismatched_core_count() {
        let _ = DistributionNetwork::new(NetworkKind::Scalable, 6, 2);
    }

    #[test]
    #[should_panic(expected = "power of the tree fan-out")]
    fn scalable_rejects_non_power_of_fanout() {
        let _ = DistributionNetwork::new(NetworkKind::Scalable, 8, 4);
    }

    fn gather_cycle(
        net: &mut GatheringNetwork,
        cores: &mut [JoinCore],
        sink: &mut Vec<MatchPair>,
    ) {
        net.begin_cycle();
        for c in cores.iter_mut() {
            c.begin_cycle();
        }
        net.eval(cores, sink);
        net.commit();
        for c in cores.iter_mut() {
            c.commit();
        }
    }

    fn pair(k: u32) -> MatchPair {
        MatchPair {
            r: Tuple::new(k, 0),
            s: Tuple::new(k, 1),
        }
    }

    #[test]
    fn lightweight_gather_visits_one_core_per_cycle() {
        let mut net = GatheringNetwork::new(NetworkKind::Lightweight, 4, 2);
        let mut cs = cores(4);
        cs[2].results().load(pair(2));
        let mut sink = Vec::new();
        // Pointer starts at 0; core 2 is visited on the third cycle.
        for _ in 0..2 {
            gather_cycle(&mut net, &mut cs, &mut sink);
            assert!(sink.is_empty());
        }
        gather_cycle(&mut net, &mut cs, &mut sink);
        assert_eq!(sink, vec![pair(2)]);
    }

    #[test]
    fn scalable_gather_collects_everything() {
        for (n, k) in [(8usize, 2usize), (16, 4), (8, 8)] {
            let mut net = GatheringNetwork::new(NetworkKind::Scalable, n, k);
            let mut cs = cores(n);
            for (i, c) in cs.iter_mut().enumerate() {
                c.results().load(pair(i as u32));
            }
            let mut sink = Vec::new();
            for _ in 0..120 {
                gather_cycle(&mut net, &mut cs, &mut sink);
            }
            assert_eq!(sink.len(), n, "{n} cores, fan-out {k}");
            let mut keys: Vec<u32> = sink.iter().map(|m| m.r.key()).collect();
            keys.sort_unstable();
            assert_eq!(keys, (0..n as u32).collect::<Vec<_>>());
            assert!(net.is_empty());
        }
    }

    #[test]
    fn scalable_gather_single_core_is_direct() {
        let mut net = GatheringNetwork::new(NetworkKind::Scalable, 1, 2);
        let mut cs = cores(1);
        cs[0].results().load(pair(7));
        let mut sink = Vec::new();
        gather_cycle(&mut net, &mut cs, &mut sink);
        assert_eq!(sink, vec![pair(7)]);
    }

    #[test]
    fn wider_fanout_reduces_tree_height() {
        let k2 = DistributionNetwork::new(NetworkKind::Scalable, 64, 2);
        let k4 = DistributionNetwork::new(NetworkKind::Scalable, 64, 4);
        let k8 = DistributionNetwork::new(NetworkKind::Scalable, 64, 8);
        assert_eq!(k2.depth(), 7);
        assert_eq!(k4.depth(), 4);
        assert_eq!(k8.depth(), 3);
    }
}
