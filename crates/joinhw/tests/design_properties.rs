//! Property-based tests of the hardware designs and synthesis models.

use joinhw::{DesignParams, FlowModel, HashWindow, JoinAlgorithm, NetworkKind, SubWindow};
use proptest::prelude::*;
use streamcore::Tuple;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The circular sub-window and the hash window agree with a model
    /// FIFO across arbitrary store sequences, including wraparound.
    #[test]
    fn windows_match_a_model_fifo(cap in 1usize..24, keys in prop::collection::vec(0u32..6, 0..120)) {
        let mut nested = SubWindow::new(cap);
        let mut hashed = HashWindow::new(cap);
        let mut model: Vec<Tuple> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            let t = Tuple::new(k, i as u32);
            nested.begin_cycle();
            let expired = nested.store(t);
            let h_expired = hashed.store(t);
            model.push(t);
            let model_expired = if model.len() > cap {
                Some(model.remove(0))
            } else {
                None
            };
            prop_assert_eq!(expired, model_expired);
            prop_assert_eq!(h_expired, model_expired);
        }
        prop_assert_eq!(nested.snapshot(), model.clone());
        prop_assert_eq!(hashed.snapshot(), model.clone());
        // Bucket views agree with filtered scans.
        for key in 0u32..6 {
            let scan: Vec<Tuple> = model.iter().copied().filter(|t| t.key() == key).collect();
            prop_assert_eq!(hashed.bucket_len(key), scan.len());
        }
    }

    /// Resource requirements are monotone in cores, window, and tuple
    /// width (no configuration gets cheaper by growing).
    #[test]
    fn resources_are_monotone(cores in 1u32..64, window in 1usize..10_000) {
        let device = hwsim::devices::XC7VX485T;
        let base = DesignParams::new(FlowModel::UniFlow, cores, window);
        let more_cores = DesignParams::new(FlowModel::UniFlow, cores * 2, window);
        let wider = base.with_tuple_bits(128);
        let r0 = base.resources(&device);
        let r1 = more_cores.resources(&device);
        let r2 = wider.resources(&device);
        prop_assert!(r1.luts >= r0.luts);
        // Doubling tuple width can shift storage between LUT-RAM and
        // BRAM; total storage bits never shrink.
        let bits = |r: hwsim::Resources| r.luts * 32 + r.bram18 * 18 * 1024;
        prop_assert!(bits(r2) >= bits(r0));
    }

    /// Synthesis either fits or reports a specific overflowing resource —
    /// and fitting designs always report a positive clock.
    #[test]
    fn synthesis_is_total(cores_exp in 0u32..8, window_exp in 4u32..16) {
        let params = DesignParams::new(FlowModel::UniFlow, 1 << cores_exp, 1usize << window_exp)
            .with_network(NetworkKind::Scalable);
        for device in hwsim::devices::ALL {
            match params.synthesize(&device) {
                Ok(report) => {
                    prop_assert!(report.clock.mhz() > 0.0);
                    prop_assert!(report.utilization.fits());
                    prop_assert!(report.power.total_mw() > 0.0);
                }
                Err(e) => {
                    prop_assert!(!e.resource.is_empty());
                    prop_assert!(e.required > e.available);
                }
            }
        }
    }

    /// Service-time models are consistent: uni-flow is never slower than
    /// bi-flow, and both grow with the window.
    #[test]
    fn service_models_are_ordered(cores in 1u32..128, w1 in 1usize..100_000, w2 in 1usize..100_000) {
        use joinhw::harness::{biflow_service_cycles, uniflow_service_cycles};
        let (small, large) = (w1.min(w2), w1.max(w2));
        prop_assert!(uniflow_service_cycles(large, cores) >= uniflow_service_cycles(small, cores));
        prop_assert!(biflow_service_cycles(large, cores) >= biflow_service_cycles(small, cores));
        prop_assert!(biflow_service_cycles(small, cores) >= uniflow_service_cycles(small, cores));
    }

    /// Hash designs cost at least as much as nested-loop designs.
    #[test]
    fn hash_costs_extra(cores in 1u32..32, window in 1usize..20_000) {
        let device = hwsim::devices::XC7VX485T;
        let nested = DesignParams::new(FlowModel::UniFlow, cores, window);
        let hashed = nested.with_algorithm(JoinAlgorithm::Hash);
        let rn = nested.resources(&device);
        let rh = hashed.resources(&device);
        prop_assert!(rh.luts >= rn.luts);
        prop_assert!(rh.bram18 >= rn.bram18);
    }
}
