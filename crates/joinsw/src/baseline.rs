//! Single-threaded nested-loop stream join: the strict-semantics
//! reference implementation and the "1 core" baseline of the software
//! experiments.
//!
//! [`NestedLoopJoin`] is the raw incremental join; [`BaselineJoin`]
//! wraps it behind the unified [`StreamJoin`] surface so harnesses and
//! figure binaries can drive the baseline, the SplitJoin router, and
//! the handshake chain through the same verbs.

use std::cell::RefCell;

use accel_error::JoinError;
use streamcore::{JoinPredicate, MatchPair, SlidingWindow, StreamTag, Tuple};

use crate::config::JoinConfig;
use crate::splitjoin::JoinOutcome;
use crate::streamjoin::StreamJoin;

/// An incremental single-threaded sliding-window join.
///
/// Implements strict arrival-order semantics (Kang's three-step
/// procedure): each arriving tuple is probed against the *entire* current
/// window of the other stream, then inserted into its own window, expiring
/// the oldest tuple if full. Every parallel realization in this workspace
/// is validated against this implementation.
///
/// # Example
///
/// ```
/// use joinsw::baseline::NestedLoopJoin;
/// use streamcore::{JoinPredicate, StreamTag, Tuple};
///
/// let mut join = NestedLoopJoin::new(16, JoinPredicate::Equi);
/// assert!(join.process(StreamTag::S, Tuple::new(1, 0)).is_empty());
/// let matches = join.process(StreamTag::R, Tuple::new(1, 1));
/// assert_eq!(matches.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NestedLoopJoin {
    window_r: SlidingWindow<Tuple>,
    window_s: SlidingWindow<Tuple>,
    predicate: JoinPredicate,
    comparisons: u64,
}

impl NestedLoopJoin {
    /// Creates a join with per-stream windows of `window_size` tuples.
    pub fn new(window_size: usize, predicate: JoinPredicate) -> Self {
        Self {
            window_r: SlidingWindow::new(window_size),
            window_s: SlidingWindow::new(window_size),
            predicate,
        comparisons: 0,
        }
    }

    /// Processes one arriving tuple, returning its matches.
    pub fn process(&mut self, tag: StreamTag, tuple: Tuple) -> Vec<MatchPair> {
        let mut out = Vec::new();
        match tag {
            StreamTag::R => {
                for &s in self.window_s.iter() {
                    self.comparisons += 1;
                    if self.predicate.matches(tuple, s) {
                        out.push(MatchPair { r: tuple, s });
                    }
                }
                self.window_r.insert(tuple);
            }
            StreamTag::S => {
                for &r in self.window_r.iter() {
                    self.comparisons += 1;
                    if self.predicate.matches(r, tuple) {
                        out.push(MatchPair { r, s: tuple });
                    }
                }
                self.window_s.insert(tuple);
            }
        }
        out
    }

    /// Loads a tuple into its window without probing (pre-fill).
    pub fn prefill(&mut self, tag: StreamTag, tuple: Tuple) {
        match tag {
            StreamTag::R => self.window_r.insert(tuple),
            StreamTag::S => self.window_s.insert(tuple),
        };
    }

    /// Total comparisons performed.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Current window occupancy `(R, S)`.
    pub fn occupancy(&self) -> (usize, usize) {
        (self.window_r.len(), self.window_s.len())
    }
}

/// Runs a whole input sequence through [`NestedLoopJoin`] and collects
/// every match — the reference result used by correctness tests.
pub fn reference_join(
    inputs: &[(StreamTag, Tuple)],
    window_size: usize,
    predicate: JoinPredicate,
) -> Vec<MatchPair> {
    let mut join = NestedLoopJoin::new(window_size, predicate);
    let mut out = Vec::new();
    for &(tag, t) in inputs {
        out.extend(join.process(tag, t));
    }
    out
}

/// The single-threaded baseline behind the unified [`StreamJoin`]
/// surface: a [`NestedLoopJoin`] plus the bookkeeping the trait's
/// outcome contract asks for. Single-threaded means nothing can die, so
/// every verb succeeds and the outcome's fault report is always clean —
/// which makes it the control arm of the fault-injection sweeps.
///
/// `window_size` is used as-is (one core, no sub-windows); the
/// `num_cores`, `channel_capacity`, and `fault_plan` fields of its
/// [`JoinConfig`] are ignored.
#[derive(Debug)]
pub struct BaselineJoin {
    inner: RefCell<BaselineState>,
}

#[derive(Debug)]
struct BaselineState {
    join: NestedLoopJoin,
    results: Vec<MatchPair>,
    collect: bool,
    matches: u64,
    tuples_seen: u64,
    stored: u64,
    batch_sizes: obs::Histogram,
}

impl StreamJoin for BaselineJoin {
    type Config = JoinConfig;
    type Outcome = JoinOutcome;

    fn spawn(config: JoinConfig) -> Self {
        Self {
            inner: RefCell::new(BaselineState {
                join: NestedLoopJoin::new(config.window_size, config.predicate),
                results: Vec::new(),
                collect: config.collect_results,
                matches: 0,
                tuples_seen: 0,
                stored: 0,
                batch_sizes: obs::Histogram::new(),
            }),
        }
    }

    fn process(&self, tag: StreamTag, tuple: Tuple) -> Result<(), JoinError> {
        let mut s = self.inner.borrow_mut();
        s.tuples_seen += 1;
        s.stored += 1;
        let found = s.join.process(tag, tuple);
        s.matches += found.len() as u64;
        if s.collect {
            s.results.extend(found);
        }
        Ok(())
    }

    fn process_batch(&self, batch: &[(StreamTag, Tuple)]) -> Result<(), JoinError> {
        self.inner
            .borrow_mut()
            .batch_sizes
            .record_value(batch.len() as u64);
        for &(tag, tuple) in batch {
            self.process(tag, tuple)?;
        }
        Ok(())
    }

    fn prefill(&self, tag: StreamTag, tuples: &[Tuple]) -> Result<(), JoinError> {
        let mut s = self.inner.borrow_mut();
        for &t in tuples {
            s.join.prefill(tag, t);
            s.stored += 1;
        }
        Ok(())
    }

    fn flush(&self) -> Result<(), JoinError> {
        Ok(()) // synchronous: nothing is ever in flight
    }

    fn drain_results(&self) -> Result<Vec<MatchPair>, JoinError> {
        // Synchronous engine: every produced match is already in the
        // buffer, so a drain is a plain take. `matches` keeps counting
        // across drains, preserving the total-ever `result_count`.
        Ok(std::mem::take(&mut self.inner.borrow_mut().results))
    }

    fn shutdown(self) -> Result<JoinOutcome, JoinError> {
        let s = self.inner.into_inner();
        Ok(JoinOutcome {
            results: s.results,
            result_count: s.matches,
            worker_stats: vec![accel_error::WorkerStats {
                tuples_seen: s.tuples_seen,
                stored: s.stored,
                comparisons: s.join.comparisons(),
                matches: s.matches,
            }],
            batch_sizes: s.batch_sizes,
            trace: Vec::new(),
            fault: crate::fault::FaultReport::default(),
            ring_stats: None,
            partition_stats: None,
            kernel_stats: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_join_implements_the_unified_surface() {
        let join = BaselineJoin::spawn(JoinConfig::new(1, 16));
        join.process(StreamTag::S, Tuple::new(1, 0)).unwrap();
        join.process(StreamTag::R, Tuple::new(1, 1)).unwrap();
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        assert_eq!(outcome.result_count, 1);
        assert_eq!(outcome.results.len(), 1);
        assert_eq!(outcome.worker_stats.len(), 1);
        assert_eq!(outcome.worker_stats[0].tuples_seen, 2);
        assert!(!outcome.fault.degraded());
    }

    #[test]
    fn baseline_join_agrees_with_reference_join() {
        use streamcore::workload::{KeyDist, WorkloadSpec};
        let inputs: Vec<_> = WorkloadSpec::new(300, KeyDist::Uniform { domain: 8 })
            .generate()
            .collect();
        let join = BaselineJoin::spawn(JoinConfig::new(1, 32));
        join.process_batch(&inputs).unwrap();
        let outcome = join.shutdown().unwrap();
        let want = reference_join(&inputs, 32, JoinPredicate::Equi);
        assert_eq!(outcome.result_count, want.len() as u64);
        assert_eq!(outcome.results.len(), want.len());
    }

    #[test]
    fn probe_happens_before_insert() {
        let mut join = NestedLoopJoin::new(4, JoinPredicate::Equi);
        // A tuple must not match itself.
        assert!(join.process(StreamTag::R, Tuple::new(1, 0)).is_empty());
        assert!(join.process(StreamTag::R, Tuple::new(1, 1)).is_empty());
        // But an S tuple matches both stored R tuples.
        let m = join.process(StreamTag::S, Tuple::new(1, 2));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn expiry_removes_oldest() {
        let mut join = NestedLoopJoin::new(2, JoinPredicate::Equi);
        join.process(StreamTag::R, Tuple::new(1, 0));
        join.process(StreamTag::R, Tuple::new(2, 1));
        join.process(StreamTag::R, Tuple::new(3, 2)); // expires key 1
        assert!(join.process(StreamTag::S, Tuple::new(1, 3)).is_empty());
        assert_eq!(join.process(StreamTag::S, Tuple::new(2, 4)).len(), 1);
    }

    #[test]
    fn reference_join_counts_cross_matches() {
        let inputs: Vec<_> = (0..10u32)
            .map(|i| {
                let tag = if i % 2 == 0 { StreamTag::R } else { StreamTag::S };
                (tag, Tuple::new(0, i)) // all same key
            })
            .collect();
        let out = reference_join(&inputs, 100, JoinPredicate::Equi);
        // i-th tuple matches all prior tuples of the other stream:
        // 0+1+1+2+2+3+3+4+4+5 = 25? With alternation: tuple i matches
        // floor(i/2) + (i odd ? 1 : 0) earlier opposite tuples:
        // 0,1,1,2,2,3,3,4,4,5 -> 25 total.
        assert_eq!(out.len(), 25);
    }

    #[test]
    fn prefill_skips_probing() {
        let mut join = NestedLoopJoin::new(4, JoinPredicate::Equi);
        join.prefill(StreamTag::S, Tuple::new(9, 0));
        assert_eq!(join.comparisons(), 0);
        assert_eq!(join.occupancy(), (0, 1));
        assert_eq!(join.process(StreamTag::R, Tuple::new(9, 1)).len(), 1);
        assert_eq!(join.comparisons(), 1);
    }

    #[test]
    fn band_predicate_respected() {
        let mut join = NestedLoopJoin::new(4, JoinPredicate::Band { delta: 1 });
        join.prefill(StreamTag::S, Tuple::new(10, 0));
        assert_eq!(join.process(StreamTag::R, Tuple::new(11, 1)).len(), 1);
        assert_eq!(join.process(StreamTag::R, Tuple::new(12, 2)).len(), 0);
    }
}
