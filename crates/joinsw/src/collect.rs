//! Crate-internal shared result sink for the software joins.
//!
//! Before the continuous-query runtime existed, each engine's collector
//! thread accumulated matches *privately* and handed them back exactly
//! once, at `shutdown`. Standing queries need the opposite: results
//! must be harvestable **mid-run** (`StreamJoin::drain_results`) so the
//! runtime can fan them out to per-query pipelines while the engine
//! keeps streaming. The [`ResultSink`] is the meeting point — workers
//! hand chunks to their lanes as before, the collector thread moves
//! them into the sink, and the caller drains the sink behind a flush
//! barrier.
//!
//! Completeness accounting: every *successful* worker→lane handoff
//! bumps the worker's `results_sent` cell (failed handoffs bump
//! `results_dropped` instead, exactly as before), and every sink
//! deposit bumps [`ResultSink::received`]. After a flush barrier the
//! two totals must meet — [`ResultSink::await_received`] waits for
//! that convergence so a drain never races the collector out of
//! in-flight chunks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use accel_error::JoinError;
use streamcore::MatchPair;

/// How long a drain waits for the collector to catch up with the
/// workers' handoff total before reporting [`JoinError::DrainStalled`].
/// Generous: the collector only has to move already-queued chunks, so a
/// healthy run converges in microseconds.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Shared deposit point between an engine's collector thread (producer)
/// and its coordinator handle (consumer). See the module docs.
#[derive(Debug, Default)]
pub(crate) struct ResultSink {
    /// Matches received and not yet drained.
    collected: Mutex<Vec<MatchPair>>,
    /// Total matches ever deposited (drained + still collected). The
    /// release store pairs with the acquire load in
    /// [`ResultSink::await_received`]: once a drainer observes the
    /// count, the matches behind it are visible in `collected`.
    received: AtomicU64,
}

impl ResultSink {
    /// Deposits one chunk and publishes the new running total.
    pub(crate) fn deposit(&self, chunk: Vec<MatchPair>) {
        if chunk.is_empty() {
            return;
        }
        let n = chunk.len() as u64;
        self.collected
            .lock()
            .expect("result sink poisoned")
            .extend(chunk);
        self.received.fetch_add(n, Ordering::Release);
    }

    /// Total matches ever deposited (drained + still collected).
    pub(crate) fn received(&self) -> u64 {
        self.received.load(Ordering::Acquire)
    }

    /// Removes and returns everything currently collected.
    pub(crate) fn take(&self) -> Vec<MatchPair> {
        std::mem::take(&mut *self.collected.lock().expect("result sink poisoned"))
    }

    /// Blocks until the deposit total reaches `expected` (the workers'
    /// summed successful handoffs, read behind a flush barrier).
    ///
    /// # Errors
    ///
    /// [`JoinError::DrainStalled`] if the collector has not caught up
    /// within the drain deadline.
    pub(crate) fn await_received(&self, expected: u64) -> Result<(), JoinError> {
        if self.received() >= expected {
            return Ok(());
        }
        let deadline = Instant::now() + DRAIN_DEADLINE;
        let mut spins = 0u32;
        loop {
            if self.received() >= expected {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(JoinError::DrainStalled {
                    expected,
                    received: self.received(),
                });
            }
            if spins < 256 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamcore::Tuple;

    fn mp(k: u32) -> MatchPair {
        MatchPair { r: Tuple::new(k, 0), s: Tuple::new(k, 1) }
    }

    #[test]
    fn deposit_take_roundtrip_keeps_the_running_total() {
        let sink = ResultSink::default();
        sink.deposit(vec![mp(1), mp(2)]);
        assert_eq!(sink.received(), 2);
        assert_eq!(sink.take().len(), 2);
        // Draining does not rewind the total...
        assert_eq!(sink.received(), 2);
        sink.deposit(vec![mp(3)]);
        assert_eq!(sink.received(), 3);
        assert_eq!(sink.take().len(), 1, "...and only undrained results remain");
    }

    #[test]
    fn empty_deposits_are_free() {
        let sink = ResultSink::default();
        sink.deposit(Vec::new());
        assert_eq!(sink.received(), 0);
        assert!(sink.take().is_empty());
    }

    #[test]
    fn await_received_returns_once_the_total_lands() {
        let sink = std::sync::Arc::new(ResultSink::default());
        let producer = std::sync::Arc::clone(&sink);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            producer.deposit(vec![mp(9)]);
        });
        sink.await_received(1).expect("deposit arrives well inside the deadline");
        t.join().unwrap();
        assert_eq!(sink.take().len(), 1);
    }
}
