//! Shared configuration for every software join engine.
//!
//! [`JoinConfig`] holds the fields all engines agree on — cores, window,
//! predicate, channel capacity, batch size, result collection, and the
//! [`FaultPlan`] — with one set of builder methods and one set of
//! validation rules. The per-engine configs
//! ([`SplitJoinConfig`](crate::splitjoin::SplitJoinConfig),
//! [`HandshakeConfig`](crate::handshake::HandshakeConfig)) wrap it in a
//! `common` field and deref to it, adding only their engine-specific
//! extensions (join algorithm, loss replication). The [`JoinParams`]
//! trait is how generic code ([`StreamJoin`](crate::streamjoin::StreamJoin)
//! implementations, the measurement harness) reaches the shared fields of
//! any engine's config.

//! # Environment overrides
//!
//! Every process-wide default below can be overridden from the
//! environment; [`JoinConfig::from_env`] is the one documented entry
//! point and holds the precedence table. Nothing else in the workspace
//! parses these variables.

use streamcore::JoinPredicate;

use crate::fault::FaultPlan;

/// Data-path transport between the distribution thread, the join
/// cores, and the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Vendored MPSC channels (mutex + condvar handoff per message) —
    /// the original path, kept as the semantic reference.
    Channel,
    /// Lock-free SPSC rings plus the shared batch arena
    /// ([`streamcore::ring`]) — zero-copy from router to probe. The
    /// default (see [`default_transport`]). SplitJoin only: the
    /// handshake chain's neighbor links stay on channels.
    Ring,
}

/// The process-wide default transport: `ACCEL_SW_TRANSPORT` when set to
/// `channel` or `ring`, [`Transport::Ring`] otherwise (CI pins both
/// values explicitly in its test matrix).
///
/// # Panics
///
/// Panics on an unrecognized value — a typo must not silently change
/// which data path a whole CI leg measures.
pub fn default_transport() -> Transport {
    static TRANSPORT: std::sync::OnceLock<Transport> = std::sync::OnceLock::new();
    *TRANSPORT.get_or_init(|| match std::env::var("ACCEL_SW_TRANSPORT") {
        Ok(v) if v.trim().eq_ignore_ascii_case("channel") => Transport::Channel,
        Ok(v) if v.trim().eq_ignore_ascii_case("ring") => Transport::Ring,
        Ok(v) => panic!("ACCEL_SW_TRANSPORT must be `channel` or `ring`, got {v:?}"),
        Err(_) => Transport::Ring,
    })
}

/// Which probe kernel the join cores run against their windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// One pass over the window per tuple
    /// ([`JoinPredicate::count_matches`] / per-key evaluation) — the
    /// original path, kept as the semantic reference.
    Scalar,
    /// Blocked batch×window compare tiles ([`streamcore::kernel`]):
    /// every distribution batch probes the window snapshot in
    /// cache-sized key tiles with 8-wide unrolled compare loops, plus
    /// software-prefetched hash-chain walks and O(1) partitioned-chain
    /// counting. The default (see [`default_kernel`]). SplitJoin only:
    /// the handshake chain probes tuple-by-tuple by construction.
    Blocked,
}

/// The process-wide default probe kernel: `ACCEL_SW_KERNEL` when set to
/// `scalar` or `blocked`, [`Kernel::Blocked`] otherwise (CI pins both
/// values explicitly in its test matrix).
///
/// # Panics
///
/// Panics on an unrecognized value — a typo must not silently change
/// which probe kernel a whole CI leg measures.
pub fn default_kernel() -> Kernel {
    static KERNEL: std::sync::OnceLock<Kernel> = std::sync::OnceLock::new();
    *KERNEL.get_or_init(|| match std::env::var("ACCEL_SW_KERNEL") {
        Ok(v) if v.trim().eq_ignore_ascii_case("scalar") => Kernel::Scalar,
        Ok(v) if v.trim().eq_ignore_ascii_case("blocked") => Kernel::Blocked,
        Ok(v) => panic!("ACCEL_SW_KERNEL must be `scalar` or `blocked`, got {v:?}"),
        Err(_) => Kernel::Blocked,
    })
}

/// How the SplitJoin router dispatches tuples to the join cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partitioning {
    /// Every batch goes to every worker; storage is round-robin by
    /// sequence number ([`streamcore::PartitionMap::owner`]). Works for
    /// any predicate — the paper's baseline discipline, and the
    /// default.
    Broadcast,
    /// Content partitioning (PanJoin-style): the window is sharded by
    /// join key ([`streamcore::PartitionMap::key_owner`]) and each
    /// tuple travels only to its key's owner, so a probe touches one
    /// worker's partition instead of all of them. Keys a frequency
    /// sketch flags as hot are split online across all live workers.
    /// Equi-joins only. SplitJoin only: the handshake chain's systolic
    /// discipline is inherently broadcast-like and ignores this knob.
    Hash,
}

/// The process-wide default dispatch mode: `ACCEL_SW_PARTITIONING` when
/// set to `broadcast` or `hash`, [`Partitioning::Broadcast`] otherwise
/// (the CI bench-smoke job pins `hash` for its partitioned leg).
///
/// # Panics
///
/// Panics on an unrecognized value — a typo must not silently change
/// which dispatch discipline a whole CI leg measures.
pub fn default_partitioning() -> Partitioning {
    static PARTITIONING: std::sync::OnceLock<Partitioning> = std::sync::OnceLock::new();
    *PARTITIONING.get_or_init(|| match std::env::var("ACCEL_SW_PARTITIONING") {
        Ok(v) if v.trim().eq_ignore_ascii_case("broadcast") => Partitioning::Broadcast,
        Ok(v) if v.trim().eq_ignore_ascii_case("hash") => Partitioning::Hash,
        Ok(v) => panic!("ACCEL_SW_PARTITIONING must be `broadcast` or `hash`, got {v:?}"),
        Err(_) => Partitioning::Broadcast,
    })
}

/// Default distribution batch size (tuples per batch message), used
/// unless overridden by the `ACCEL_SW_BATCH` environment variable (CI
/// runs the whole suite at `ACCEL_SW_BATCH=1` to prove batched and
/// unbatched paths agree).
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// The process-wide default batch size: `ACCEL_SW_BATCH` when set to a
/// positive integer, [`DEFAULT_BATCH_SIZE`] otherwise.
pub fn default_batch_size() -> usize {
    static SIZE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *SIZE.get_or_init(|| {
        std::env::var("ACCEL_SW_BATCH")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_BATCH_SIZE)
    })
}

/// The configuration fields shared by every software join engine.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinConfig {
    /// Number of join-core threads.
    pub num_cores: usize,
    /// Sliding-window size per stream (tuples), divided across cores.
    pub window_size: usize,
    /// Join condition.
    pub predicate: JoinPredicate,
    /// Per-worker (or per-link) channel capacity, counted in **messages**
    /// — i.e. batches, not tuples. Must be non-zero.
    pub channel_capacity: usize,
    /// Tuples accumulated per batch message. `1` reproduces the unbatched
    /// message-per-tuple data path exactly. Must be non-zero.
    pub batch_size: usize,
    /// Retain results (`true`) or only count them. When `false` no
    /// collector thread is spawned.
    pub collect_results: bool,
    /// Scripted faults for this run. The default is the empty plan, whose
    /// behavior is bit-for-bit the healthy data path.
    pub fault_plan: FaultPlan,
    /// Which data-path transport carries batches and results (see
    /// [`Transport`]); defaults to [`default_transport`]. Engines
    /// without a ring path (the handshake chain) ignore it.
    pub transport: Transport,
    /// Pin each join core to a CPU (`position % available CPUs`) via
    /// [`streamcore::affinity`]. Off by default; a failed pin degrades
    /// to running unpinned. Only helps when the host has a core per
    /// worker.
    pub pin_workers: bool,
    /// How tuples reach the join cores (see [`Partitioning`]); defaults
    /// to [`default_partitioning`]. [`Partitioning::Hash`] requires an
    /// equi-join predicate (checked at spawn) and is SplitJoin-only.
    pub partitioning: Partitioning,
    /// Which probe kernel the join cores run (see [`Kernel`]); defaults
    /// to [`default_kernel`]. SplitJoin-only; the kernels are
    /// observationally identical, so this is purely a performance knob.
    pub kernel: Kernel,
}

impl JoinConfig {
    /// An equi-join configuration with the SplitJoin channel defaults
    /// (capacity 1024, batch size [`default_batch_size`]) and no faults.
    ///
    /// Identical to [`JoinConfig::from_env`] except that the fault plan
    /// starts empty — `new` is the data-path constructor, and scripted
    /// faults are opted into explicitly (or via `from_env`). The other
    /// environment-overridable knobs (batch size, transport,
    /// partitioning, kernel) *are* env-aware here too: CI runs entire
    /// test suites under `ACCEL_SW_BATCH=1`, `ACCEL_SW_TRANSPORT=channel`
    /// and `ACCEL_SW_KERNEL=scalar` precisely because every engine
    /// spawned through this constructor picks the overrides up.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` or `window_size` is zero.
    pub fn new(num_cores: usize, window_size: usize) -> Self {
        assert!(num_cores > 0, "need at least one join core");
        assert!(window_size > 0, "window size must be positive");
        Self {
            num_cores,
            window_size,
            predicate: JoinPredicate::Equi,
            channel_capacity: 1_024,
            batch_size: default_batch_size(),
            collect_results: true,
            fault_plan: FaultPlan::none(),
            transport: default_transport(),
            pin_workers: false,
            partitioning: default_partitioning(),
            kernel: default_kernel(),
        }
    }

    /// The fully environment-resolved configuration: every overridable
    /// knob read from the process environment, exactly once, through
    /// this one entry point. Engines, harnesses, and bench binaries go
    /// through this (or [`JoinConfig::new`], which differs only in the
    /// fault plan) instead of parsing variables themselves.
    ///
    /// Precedence is **builder > environment > built-in default**: a
    /// `with_*` builder call (or direct field write) after construction
    /// always wins over the environment, and the environment wins over
    /// the built-in default.
    ///
    /// | Variable | Field | Values | Built-in default |
    /// |---|---|---|---|
    /// | `ACCEL_SW_BATCH` | [`batch_size`](JoinConfig::batch_size) | positive integer | [`DEFAULT_BATCH_SIZE`] (256) |
    /// | `ACCEL_SW_TRANSPORT` | [`transport`](JoinConfig::transport) | `channel`, `ring` | [`Transport::Ring`] |
    /// | `ACCEL_SW_PARTITIONING` | [`partitioning`](JoinConfig::partitioning) | `broadcast`, `hash` | [`Partitioning::Broadcast`] |
    /// | `ACCEL_SW_KERNEL` | [`kernel`](JoinConfig::kernel) | `scalar`, `blocked` | [`Kernel::Blocked`] |
    /// | `ACCEL_FAULTS` | [`fault_plan`](JoinConfig::fault_plan) | [`FaultPlan::parse`] spec | empty plan |
    ///
    /// Each variable is read once per process (the first resolution is
    /// cached), so mutating the environment mid-run has no effect.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` or `window_size` is zero, or if a set
    /// variable holds an unrecognized value — a typo must not silently
    /// change what a whole CI leg measures.
    pub fn from_env(num_cores: usize, window_size: usize) -> Self {
        let mut config = Self::new(num_cores, window_size);
        config.fault_plan = FaultPlan::from_env();
        config.fault_plan.validate(num_cores);
        config
    }

    /// Selects the data-path transport (see [`Transport`]).
    #[must_use]
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Selects the dispatch discipline (see [`Partitioning`]).
    #[must_use]
    pub fn with_partitioning(mut self, partitioning: Partitioning) -> Self {
        self.partitioning = partitioning;
        self
    }

    /// Selects the probe kernel (see [`Kernel`]).
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Pins each join core to a CPU (see [`JoinConfig::pin_workers`]).
    #[must_use]
    pub fn with_pinning(mut self) -> Self {
        self.pin_workers = true;
        self
    }

    /// Replaces the join predicate.
    #[must_use]
    pub fn with_predicate(mut self, predicate: JoinPredicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Sets the batch size (see [`JoinConfig::batch_size`]).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Sets the channel capacity (see [`JoinConfig::channel_capacity`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity bounded channel
    /// would deadlock the distributor against its own workers.
    #[must_use]
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        self.channel_capacity = capacity;
        self
    }

    /// Disables result retention and collection (counting only).
    #[must_use]
    pub fn counting_only(mut self) -> Self {
        self.collect_results = false;
        self
    }

    /// Installs a fault plan, validating its targets against the core
    /// count the same way `batch_size` / `channel_capacity` are
    /// validated.
    ///
    /// # Panics
    ///
    /// Panics if the plan targets a worker `>= num_cores`.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        plan.validate(self.num_cores);
        self.fault_plan = plan;
        self
    }

    /// Per-core sub-window capacity.
    pub fn sub_window(&self) -> usize {
        self.window_size.div_ceil(self.num_cores)
    }

    /// The window size actually realized: `num_cores × sub_window()`.
    /// Equals `window_size` whenever it divides evenly by the core count.
    pub fn effective_window(&self) -> usize {
        self.sub_window() * self.num_cores
    }

    /// Re-asserts the invariants on the public fields (engines call this
    /// at spawn, since direct field writes bypass the builders).
    ///
    /// # Panics
    ///
    /// Panics on a zero `channel_capacity` or `batch_size`, or a fault
    /// plan targeting a worker `>= num_cores`.
    pub fn validate(&self) {
        assert!(self.channel_capacity > 0, "channel capacity must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        self.fault_plan.validate(self.num_cores);
    }
}

/// Access to the shared [`JoinConfig`] inside any engine's configuration
/// type — what lets the harness set `collect_results`, read
/// `window_size`, or install a [`FaultPlan`] generically.
pub trait JoinParams {
    /// The shared configuration fields.
    fn common(&self) -> &JoinConfig;
    /// Mutable access to the shared configuration fields.
    fn common_mut(&mut self) -> &mut JoinConfig;
}

impl JoinParams for JoinConfig {
    fn common(&self) -> &JoinConfig {
        self
    }
    fn common_mut(&mut self) -> &mut JoinConfig {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultEvent;

    #[test]
    fn builders_round_trip() {
        let config = JoinConfig::new(3, 48)
            .with_predicate(JoinPredicate::Band { delta: 2 })
            .with_batch_size(7)
            .with_channel_capacity(9)
            .counting_only();
        assert_eq!(config.num_cores, 3);
        assert_eq!(config.window_size, 48);
        assert_eq!(config.batch_size, 7);
        assert_eq!(config.channel_capacity, 9);
        assert!(!config.collect_results);
        assert_eq!(config.sub_window(), 16);
        assert_eq!(config.effective_window(), 48);
    }

    #[test]
    fn transport_and_pinning_builders() {
        let config = JoinConfig::new(2, 8)
            .with_transport(Transport::Channel)
            .with_pinning();
        assert_eq!(config.transport, Transport::Channel);
        assert!(config.pin_workers);
        // The default comes from the environment override hook.
        assert_eq!(JoinConfig::new(2, 8).transport, default_transport());
    }

    #[test]
    fn partitioning_builder_and_default() {
        let config = JoinConfig::new(2, 8).with_partitioning(Partitioning::Hash);
        assert_eq!(config.partitioning, Partitioning::Hash);
        assert_eq!(JoinConfig::new(2, 8).partitioning, default_partitioning());
    }

    #[test]
    fn kernel_builder_and_default() {
        let config = JoinConfig::new(2, 8).with_kernel(Kernel::Scalar);
        assert_eq!(config.kernel, Kernel::Scalar);
        // The default comes from the environment override hook.
        assert_eq!(JoinConfig::new(2, 8).kernel, default_kernel());
    }

    #[test]
    fn from_env_matches_new_plus_the_env_fault_plan() {
        // `from_env` and `new` resolve the same knobs from the same
        // cached environment reads; the only divergence is the fault
        // plan, which `from_env` takes from `ACCEL_FAULTS` (the empty
        // plan when unset). Runs under any CI env leg unchanged.
        let a = JoinConfig::from_env(4, 32);
        let b = JoinConfig::new(4, 32);
        assert_eq!(a.batch_size, b.batch_size);
        assert_eq!(a.transport, b.transport);
        assert_eq!(a.partitioning, b.partitioning);
        assert_eq!(a.kernel, b.kernel);
        assert_eq!(a.fault_plan, FaultPlan::from_env());
        assert_eq!(b.fault_plan, FaultPlan::none());
    }

    #[test]
    #[should_panic(expected = "targets worker 5")]
    fn fault_plan_is_validated_like_the_sizing_knobs() {
        let _ = JoinConfig::new(4, 32).with_fault_plan(
            FaultPlan::none().with(FaultEvent::Kill { worker: 5, after_batch: 1 }),
        );
    }

    #[test]
    #[should_panic(expected = "channel capacity must be positive")]
    fn validate_catches_direct_field_writes() {
        let mut config = JoinConfig::new(2, 8);
        config.channel_capacity = 0;
        config.validate();
    }
}
