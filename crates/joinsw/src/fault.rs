//! Deterministic fault injection for the software join runtimes.
//!
//! A [`FaultPlan`] is a list of scripted [`FaultEvent`]s — kill worker *k*
//! after batch *n*, stall worker *k* for *d* ms at batch *n*, drop a
//! batch on a channel, panic a worker — indexed entirely by **message
//! counts**, never wall-clock randomness, so every run of a plan unfolds
//! identically. The plan travels inside the join configuration
//! ([`crate::config::JoinConfig::fault_plan`]): the coordinator consults
//! it to recover *proactively* at the exact batch boundary a kill is
//! scripted for (which is what makes completeness-loss accounting exact),
//! and each worker consults it to act out its own stalls, drops, and
//! panics.
//!
//! [`FaultReport`] is the other half: every join outcome carries one,
//! summarizing what actually went wrong — which workers were lost, how
//! many stored tuples their sub-windows orphaned, how many were
//! re-adopted from the coordinator's replica buffer, and the recovery
//! latency distribution. An empty plan yields a report for which
//! [`FaultReport::degraded`] is `false` and the outcome (including its
//! manifest registry) is byte-identical to a build without the fault
//! layer.

use streamcore::PartitionMap;

/// One scripted fault. Batch numbers are 1-indexed counts of data batch
/// messages (prefill and control messages don't count), as observed
/// identically by the coordinator and by every worker — the channels are
/// FIFO and batches are broadcast, so "batch 100" is the same instant
/// everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Worker `worker` exits abruptly after fully processing batch
    /// `after_batch` (buffered un-flushed results are lost with it).
    Kill {
        /// Core position of the victim.
        worker: usize,
        /// Last batch the worker processes before dying.
        after_batch: u64,
    },
    /// Worker `worker` freezes for `millis` before processing batch
    /// `at_batch` — back-pressure builds while its channel saturates.
    Stall {
        /// Core position of the victim.
        worker: usize,
        /// Batch whose processing is delayed.
        at_batch: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Batch `at_batch` is dropped on the floor by worker `worker`'s
    /// channel: the worker never probes or stores its tuples. Its
    /// round-robin counters silently diverge from the other workers' —
    /// deliberate, realistic corruption that the drop scenario measures.
    Drop {
        /// Core position of the victim.
        worker: usize,
        /// Batch that is lost in transit.
        at_batch: u64,
    },
    /// Worker `worker` panics while processing batch `at_batch` (after
    /// publishing its statistics snapshot, so shutdown can report them
    /// via `JoinError::WorkerPanicked`).
    Panic {
        /// Core position of the victim.
        worker: usize,
        /// Batch the panic fires on.
        at_batch: u64,
    },
}

impl FaultEvent {
    /// Core position this event targets.
    pub fn worker(&self) -> usize {
        match *self {
            FaultEvent::Kill { worker, .. }
            | FaultEvent::Stall { worker, .. }
            | FaultEvent::Drop { worker, .. }
            | FaultEvent::Panic { worker, .. } => worker,
        }
    }
}

/// A deterministic fault schedule (see the [module docs](self)).
///
/// The default plan is empty: no faults, and a data path that behaves
/// (and measures) exactly like the pre-fault-model runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scripted events, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no faults are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds one event (builder style).
    #[must_use]
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Parses the compact scenario grammar used by the `ACCEL_FAULTS`
    /// environment variable and the `faults` bench binary: a
    /// comma-separated list of
    ///
    /// * `kill<W>[@B]` — kill worker W after batch B (default 100);
    /// * `stall[<W>][@B[x<MS>]]` — stall worker W (default 0) at batch B
    ///   (default 50) for MS milliseconds (default 20);
    /// * `drop<W>[@B]` — drop worker W's batch B (default 10);
    /// * `panic<W>[@B]` — panic worker W at batch B (default 5).
    ///
    /// ```
    /// use joinsw::fault::{FaultEvent, FaultPlan};
    ///
    /// let plan = FaultPlan::parse("kill1,stall0@50x20").unwrap();
    /// assert_eq!(plan.events[0], FaultEvent::Kill { worker: 1, after_batch: 100 });
    /// assert_eq!(
    ///     plan.events[1],
    ///     FaultEvent::Stall { worker: 0, at_batch: 50, millis: 20 },
    /// );
    /// ```
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            plan.events.push(parse_event(token)?);
        }
        Ok(plan)
    }

    /// The plan scripted by the `ACCEL_FAULTS` environment variable, or
    /// the empty plan when it is unset. An unparseable value panics —
    /// silently ignoring a scripted fault scenario would make a CI fault
    /// leg vacuously green.
    ///
    /// # Panics
    ///
    /// Panics if `ACCEL_FAULTS` is set but does not parse.
    pub fn from_env() -> Self {
        match std::env::var("ACCEL_FAULTS") {
            Ok(spec) => Self::parse(&spec)
                .unwrap_or_else(|e| panic!("invalid ACCEL_FAULTS: {e}")),
            Err(_) => Self::none(),
        }
    }

    /// Validates the plan against a concrete core count, the same way
    /// `batch_size` / `channel_capacity` are validated at spawn.
    ///
    /// # Panics
    ///
    /// Panics if any event targets a worker position `>= num_cores`.
    pub fn validate(&self, num_cores: usize) {
        for event in &self.events {
            assert!(
                event.worker() < num_cores,
                "fault plan targets worker {} but the join has {} cores",
                event.worker(),
                num_cores
            );
        }
    }

    /// Workers scripted to die immediately after `batch` (coordinator
    /// side: recover these proactively at that exact boundary).
    pub fn kills_after(&self, batch: u64) -> impl Iterator<Item = usize> + '_ {
        self.events.iter().filter_map(move |e| match *e {
            FaultEvent::Kill { worker, after_batch } if after_batch == batch => Some(worker),
            _ => None,
        })
    }

    /// True when `worker` is scripted to exit after `batch`.
    pub fn kills(&self, worker: usize, batch: u64) -> bool {
        self.events.iter().any(|e| {
            matches!(*e, FaultEvent::Kill { worker: w, after_batch } if w == worker && after_batch == batch)
        })
    }

    /// Total stall milliseconds scripted for `worker` at `batch`.
    pub fn stall_ms(&self, worker: usize, batch: u64) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Stall { worker: w, at_batch, millis } if w == worker && at_batch == batch => {
                    Some(millis)
                }
                _ => None,
            })
            .sum()
    }

    /// True when `worker`'s batch `batch` is scripted to be dropped.
    pub fn drops(&self, worker: usize, batch: u64) -> bool {
        self.events.iter().any(|e| {
            matches!(*e, FaultEvent::Drop { worker: w, at_batch } if w == worker && at_batch == batch)
        })
    }

    /// True when `worker` is scripted to panic at `batch`.
    pub fn panics(&self, worker: usize, batch: u64) -> bool {
        self.events.iter().any(|e| {
            matches!(*e, FaultEvent::Panic { worker: w, at_batch } if w == worker && at_batch == batch)
        })
    }
}

fn parse_event(token: &str) -> Result<FaultEvent, String> {
    let (head, tail) = match token.split_once('@') {
        Some((h, t)) => (h, Some(t)),
        None => (token, None),
    };
    let split_kind = |kind: &str| -> Option<&str> { head.strip_prefix(kind) };
    let parse_num = |s: &str, what: &str| -> Result<u64, String> {
        s.parse::<u64>()
            .map_err(|_| format!("bad {what} in fault token {token:?}"))
    };
    if let Some(w) = split_kind("kill") {
        let worker = parse_num(w, "worker")? as usize;
        let after_batch = match tail {
            Some(t) => parse_num(t, "batch")?,
            None => 100,
        };
        return Ok(FaultEvent::Kill { worker, after_batch });
    }
    if let Some(w) = split_kind("stall") {
        let worker = if w.is_empty() { 0 } else { parse_num(w, "worker")? as usize };
        let (at_batch, millis) = match tail {
            Some(t) => match t.split_once('x') {
                Some((b, ms)) => (parse_num(b, "batch")?, parse_num(ms, "millis")?),
                None => (parse_num(t, "batch")?, 20),
            },
            None => (50, 20),
        };
        return Ok(FaultEvent::Stall { worker, at_batch, millis });
    }
    if let Some(w) = split_kind("drop") {
        let worker = parse_num(w, "worker")? as usize;
        let at_batch = match tail {
            Some(t) => parse_num(t, "batch")?,
            None => 10,
        };
        return Ok(FaultEvent::Drop { worker, at_batch });
    }
    if let Some(w) = split_kind("panic") {
        let worker = parse_num(w, "worker")? as usize;
        let at_batch = match tail {
            Some(t) => parse_num(t, "batch")?,
            None => 5,
        };
        return Ok(FaultEvent::Panic { worker, at_batch });
    }
    Err(format!("unknown fault token {token:?}"))
}

/// What actually went wrong during a run: the damage summary every join
/// outcome carries. With an empty [`FaultPlan`] and no organic failures
/// every field is zero and [`FaultReport::degraded`] is `false`.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Core positions lost during the run (killed, panicked, or organically
    /// dead), in recovery order.
    pub workers_lost: Vec<usize>,
    /// Stored tuples whose sub-window died with its worker: the exact
    /// match-completeness loss (each orphan can no longer be found by
    /// future probes). Counted from the coordinator's ownership model at
    /// the recovery boundary, not from the dead worker's own claims.
    pub orphaned_tuples: u64,
    /// Orphans re-inserted into survivor sub-windows from the
    /// coordinator's replica buffer (only with
    /// `SplitJoinConfig::replicate_on_loss`).
    pub readopted_tuples: u64,
    /// Scripted stalls that fired.
    pub injected_stalls: u64,
    /// Scripted channel drops that fired.
    pub injected_drops: u64,
    /// Matches that were buffered worker-side but never reached the
    /// collector (lost to an abrupt exit or a dead collector).
    pub results_dropped: u64,
    /// Wall-clock nanoseconds per recovery (retire + re-partition +
    /// re-replicate), one histogram value per lost worker.
    pub recovery_ns: obs::Histogram,
}

impl FaultReport {
    /// True when the run deviated from healthy behavior in any way.
    /// Outcome registries publish their `fault.*` counters only in this
    /// case, so healthy manifests keep their exact pre-fault-model shape.
    pub fn degraded(&self) -> bool {
        !self.workers_lost.is_empty()
            || self.injected_stalls > 0
            || self.injected_drops > 0
            || self.results_dropped > 0
    }

    /// Publishes the report's counters under `fault.*` names into `reg`
    /// (call only when [`FaultReport::degraded`]; see there).
    pub fn publish(&self, reg: &mut obs::Registry) {
        reg.record("fault.workers_lost", self.workers_lost.len() as u64);
        reg.record("fault.orphaned_tuples", self.orphaned_tuples);
        reg.record("fault.readopted_tuples", self.readopted_tuples);
        reg.record("fault.injected_stalls", self.injected_stalls);
        reg.record("fault.injected_drops", self.injected_drops);
        reg.record("fault.results_dropped", self.results_dropped);
        reg.record("fault.recoveries", self.recovery_ns.total());
    }
}

/// Closed-form count of round-robin storage turns owner `worker` received
/// in a stream of `sent` tuples distributed over `map` — the
/// coordinator's ownership model while the map is still full (owner of
/// turn `i` is `i % total`). Used to materialize exact per-worker
/// occupancy lazily at the first recovery, so the healthy hot path never
/// does per-tuple ownership accounting.
pub fn round_robin_share(map: &PartitionMap, worker: usize, sent: u64) -> u64 {
    debug_assert!(map.is_full(), "closed form only valid before any retirement");
    let n = map.total() as u64;
    let w = worker as u64;
    sent / n + u64::from(sent % n > w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_the_whole_grammar() {
        let plan = FaultPlan::parse("kill1@7, stall@3x5, drop2, panic0@9, stall1").unwrap();
        assert_eq!(
            plan.events,
            vec![
                FaultEvent::Kill { worker: 1, after_batch: 7 },
                FaultEvent::Stall { worker: 0, at_batch: 3, millis: 5 },
                FaultEvent::Drop { worker: 2, at_batch: 10 },
                FaultEvent::Panic { worker: 0, at_batch: 9 },
                FaultEvent::Stall { worker: 1, at_batch: 50, millis: 20 },
            ]
        );
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(FaultPlan::parse("explode3").is_err());
        assert!(FaultPlan::parse("kill").is_err());
        assert!(FaultPlan::parse("stall0@axb").is_err());
    }

    #[test]
    fn empty_specs_parse_to_the_empty_plan() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn queries_index_by_worker_and_batch() {
        let plan = FaultPlan::parse("kill1@100,stall0@50x20,drop2@10,panic3@5").unwrap();
        assert!(plan.kills(1, 100));
        assert!(!plan.kills(1, 99));
        assert!(!plan.kills(0, 100));
        assert_eq!(plan.kills_after(100).collect::<Vec<_>>(), vec![1]);
        assert_eq!(plan.stall_ms(0, 50), 20);
        assert_eq!(plan.stall_ms(0, 51), 0);
        assert!(plan.drops(2, 10));
        assert!(plan.panics(3, 5));
        assert!(!plan.panics(3, 6));
    }

    #[test]
    #[should_panic(expected = "targets worker 4")]
    fn validate_rejects_out_of_range_workers() {
        FaultPlan::parse("kill4").unwrap().validate(4);
    }

    #[test]
    fn round_robin_share_matches_brute_force() {
        let map = PartitionMap::identity(4);
        for sent in [0u64, 1, 3, 4, 5, 100, 101, 102, 103] {
            for worker in 0..4usize {
                let brute = (0..sent).filter(|s| s % 4 == worker as u64).count() as u64;
                assert_eq!(
                    round_robin_share(&map, worker, sent),
                    brute,
                    "worker {worker}, sent {sent}"
                );
            }
        }
    }

    #[test]
    fn report_is_healthy_by_default() {
        let report = FaultReport::default();
        assert!(!report.degraded());
        let mut degraded = FaultReport::default();
        degraded.workers_lost.push(1);
        assert!(degraded.degraded());
    }

    #[test]
    fn publish_emits_the_fault_namespace() {
        let mut report = FaultReport::default();
        report.workers_lost.push(2);
        report.orphaned_tuples = 17;
        report.recovery_ns.record_value(1_000);
        let mut reg = obs::Registry::new();
        report.publish(&mut reg);
        assert_eq!(reg.get("fault.workers_lost"), Some(1));
        assert_eq!(reg.get("fault.orphaned_tuples"), Some(17));
        assert_eq!(reg.get("fault.recoveries"), Some(1));
    }
}
