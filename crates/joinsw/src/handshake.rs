//! Multithreaded bi-flow stream join: a software low-latency handshake
//! join.
//!
//! Join cores form a chain of threads; R tuples enter at the left end and
//! travel right, S tuples enter at the right end and travel left. Each
//! arriving tuple is fast-forwarded along the whole chain (low-latency
//! handshake join), probing every core's opposite-stream segment, while a
//! storage cascade parks it and shifts displaced tuples toward the exit.
//!
//! Unlike the hardware model in `joinhw::biflow` — where a central
//! coordinator admits one wave at a time and therefore preserves strict
//! semantics — the software chain lets waves from both ends pipeline
//! through the cores concurrently. Tuples travelling in opposite
//! directions can race past each other between segments, so results follow
//! the *overlap* semantics of the handshake-join literature: matches whose
//! windows overlap by a margin are always found, but pairs that cross
//! right at a window boundary may be missed or observed with slightly
//! different window contents. The tests pin down both regimes: exactness
//! under serialized feeding, statistical agreement under pipelining.
//!
//! # Batched waves
//!
//! Like [`SplitJoin`](crate::splitjoin::SplitJoin), the chain can batch
//! its data path: [`HandshakeConfig::batch_size`] tuples accumulate on the
//! caller side and enter the chain as one multi-wave message, and each
//! core forwards the whole group downstream as one message after
//! processing it. Within a lane the waves of a batch are processed in
//! order at every core, so same-lane semantics are identical to the
//! unbatched chain; batching only coarsens the interleaving *between* the
//! two lanes, which the overlap semantics already permit. The default is
//! `1` (every tuple is its own wave — the historical behaviour), because
//! `batch_size` trades ordering precision for throughput exactly like a
//! larger `channel_capacity` does. Serialized feeding (flush after every
//! tuple) remains exact at any batch size, since `flush` drains the
//! partial batch first.

use std::cell::RefCell;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use streamcore::{JoinPredicate, MatchPair, SlidingWindow, StreamTag, Tuple};

/// Result-collection chunk size (matches per message to the collector).
const RESULT_CHUNK: usize = 256;

/// Configuration of a [`HandshakeJoin`] chain.
#[derive(Debug, Clone, PartialEq)]
pub struct HandshakeConfig {
    /// Number of join cores (threads) in the chain.
    pub num_cores: usize,
    /// Sliding-window size per stream (tuples), divided across cores.
    pub window_size: usize,
    /// Join condition.
    pub predicate: JoinPredicate,
    /// Per-link channel capacity, counted in **messages** — i.e. wave
    /// groups of up to `batch_size` tuples each, so the in-flight tuple
    /// bound is `channel_capacity × batch_size` per lane. Must be
    /// non-zero.
    pub channel_capacity: usize,
    /// Tuples per wave-group message (see the module docs). `1` — the
    /// default — reproduces the unbatched one-wave-per-tuple chain
    /// exactly; larger values amortize per-message channel cost at the
    /// price of coarser lane interleaving. Must be non-zero.
    pub batch_size: usize,
    /// Retain results (`true`) or only count them. When `false` no
    /// collector thread is spawned; cores count matches locally and the
    /// totals are folded at shutdown.
    pub collect_results: bool,
}

impl HandshakeConfig {
    /// An equi-join chain with default channel sizing and unbatched
    /// (`batch_size = 1`) waves.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` or `window_size` is zero.
    pub fn new(num_cores: usize, window_size: usize) -> Self {
        assert!(num_cores > 0, "need at least one join core");
        assert!(window_size > 0, "window size must be positive");
        Self {
            num_cores,
            window_size,
            predicate: JoinPredicate::Equi,
            channel_capacity: 256,
            batch_size: 1,
            collect_results: true,
        }
    }

    /// Replaces the join predicate.
    pub fn with_predicate(mut self, predicate: JoinPredicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Sets the entry channel capacity. This is the chain's *ordering
    /// precision* knob: it bounds how many wave groups can be in flight,
    /// and therefore how far result semantics can drift from strict
    /// arrival-order semantics under pipelining.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        self.channel_capacity = capacity;
        self
    }

    /// Sets the wave-group batch size (see
    /// [`HandshakeConfig::batch_size`]).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Disables result retention and collection (counting only).
    pub fn counting_only(mut self) -> Self {
        self.collect_results = false;
        self
    }

    /// Per-core segment capacity.
    pub fn sub_window(&self) -> usize {
        self.window_size.div_ceil(self.num_cores)
    }
}

/// One wave: the fast-forwarded probe replica plus the storage-cascade
/// payload it is still carrying.
#[derive(Debug, Clone, Copy)]
struct Wave {
    probe: Tuple,
    store: Option<Tuple>,
}

enum ChainMsg {
    /// A group of same-lane waves, forwarded core-to-core as one message.
    Waves { tag: StreamTag, waves: Vec<Wave> },
    /// Flush token: forwarded to the end of the chain, then acknowledged.
    /// Cores hand their buffered results to the collector on the way.
    Flush(Sender<()>),
    Stop,
}

/// A running software handshake join.
///
/// # Example
///
/// ```
/// use joinsw::handshake::{HandshakeConfig, HandshakeJoin};
/// use streamcore::{StreamTag, Tuple};
///
/// let join = HandshakeJoin::spawn(HandshakeConfig::new(3, 12));
/// join.process(StreamTag::S, Tuple::new(4, 0));
/// join.flush();
/// join.process(StreamTag::R, Tuple::new(4, 1));
/// join.flush();
/// let outcome = join.shutdown();
/// assert_eq!(outcome.result_count, 1);
/// ```
#[derive(Debug)]
pub struct HandshakeJoin {
    /// Entry of the rightward (R) lane: core 0.
    entry_r: Sender<ChainMsg>,
    /// Entry of the leftward (S) lane: core N-1.
    entry_s: Sender<ChainMsg>,
    workers: Vec<JoinHandle<(u64, Option<obs::trace::TraceRing>)>>,
    collector: Option<JoinHandle<Vec<MatchPair>>>,
    batch_size: usize,
    /// Caller-side wave buffers, one per lane; drained on flush/shutdown.
    pending_r: RefCell<Vec<Wave>>,
    pending_s: RefCell<Vec<Wave>>,
    batch_hist: RefCell<obs::Histogram>,
}

/// Shutdown outcome of a [`HandshakeJoin`].
#[derive(Debug, Clone, Default)]
pub struct HandshakeOutcome {
    /// All collected results (empty when counting only).
    pub results: Vec<MatchPair>,
    /// Total results observed.
    pub result_count: u64,
    /// Sizes of the wave groups injected at the chain entries (tuples per
    /// message): `total()` is the number of entry messages.
    pub batch_sizes: obs::Histogram,
    /// Wall-clock span rings, one per core (`hs.core.<position>`): receive
    /// waits and per-group wave processing. Empty unless tracing was
    /// enabled when the chain was spawned (see `obs::trace`).
    pub trace: Vec<obs::trace::TraceRing>,
}

impl HandshakeJoin {
    /// Spawns the chain and (unless counting-only) collector threads.
    ///
    /// # Panics
    ///
    /// Panics if `config.channel_capacity` or `config.batch_size` is
    /// zero.
    pub fn spawn(config: HandshakeConfig) -> Self {
        assert!(config.channel_capacity > 0, "channel capacity must be positive");
        assert!(config.batch_size > 0, "batch size must be positive");
        let n = config.num_cores;
        let (result_tx, collector) = if config.collect_results {
            let (tx, rx) = bounded::<Vec<MatchPair>>(8_192);
            (
                Some(tx),
                Some(std::thread::spawn(move || {
                    let mut kept = Vec::new();
                    for chunk in rx.iter() {
                        kept.extend(chunk);
                    }
                    kept
                })),
            )
        } else {
            (None, None)
        };

        // Each core has one inbox per direction lane. Only the two entry
        // channels are bounded (caller back-pressure); interior links are
        // unbounded so opposite-direction sends can never form a blocking
        // cycle between neighbouring cores. The pipeline is work-balanced
        // (every wave does the same work at every core), so interior
        // queues stay shallow in practice.
        let mut r_lane: Vec<(Sender<ChainMsg>, Receiver<ChainMsg>)> = Vec::new();
        let mut s_lane: Vec<(Sender<ChainMsg>, Receiver<ChainMsg>)> = Vec::new();
        for i in 0..n {
            r_lane.push(if i == 0 {
                bounded(config.channel_capacity)
            } else {
                crossbeam::channel::unbounded()
            });
            s_lane.push(if i == n - 1 {
                bounded(config.channel_capacity)
            } else {
                crossbeam::channel::unbounded()
            });
        }
        let entry_r = r_lane[0].0.clone();
        let entry_s = s_lane[n - 1].0.clone();

        let mut workers = Vec::with_capacity(n);
        for position in 0..n {
            let cfg = config.clone();
            let r_rx = r_lane[position].1.clone();
            let s_rx = s_lane[position].1.clone();
            let r_next = (position + 1 < n).then(|| r_lane[position + 1].0.clone());
            let s_next = position.checked_sub(1).map(|p| s_lane[p].0.clone());
            let results = result_tx.clone();
            workers.push(std::thread::spawn(move || {
                core_loop(position, &cfg, &r_rx, &s_rx, r_next, s_next, results.as_ref())
            }));
        }
        drop(result_tx);
        Self {
            entry_r,
            entry_s,
            workers,
            collector,
            batch_size: config.batch_size,
            pending_r: RefCell::new(Vec::with_capacity(config.batch_size)),
            pending_s: RefCell::new(Vec::with_capacity(config.batch_size)),
            batch_hist: RefCell::new(obs::Histogram::new()),
        }
    }

    /// Injects one tuple at the chain end of its stream. The tuple joins
    /// its lane's pending wave group; every
    /// [`HandshakeConfig::batch_size`] tuples the group enters the chain
    /// as a single message.
    pub fn process(&self, tag: StreamTag, tuple: Tuple) {
        let pending = match tag {
            StreamTag::R => &self.pending_r,
            StreamTag::S => &self.pending_s,
        };
        let mut pending = pending.borrow_mut();
        pending.push(Wave {
            probe: tuple,
            store: Some(tuple),
        });
        if pending.len() >= self.batch_size {
            let waves = std::mem::take(&mut *pending);
            drop(pending);
            self.send_waves(tag, waves);
        }
    }

    fn send_waves(&self, tag: StreamTag, waves: Vec<Wave>) {
        if waves.is_empty() {
            return;
        }
        self.batch_hist
            .borrow_mut()
            .record_value(waves.len() as u64);
        let entry = match tag {
            StreamTag::R => &self.entry_r,
            StreamTag::S => &self.entry_s,
        };
        entry
            .send(ChainMsg::Waves { tag, waves })
            .expect("chain alive");
    }

    fn drain_pending(&self) {
        let r = std::mem::take(&mut *self.pending_r.borrow_mut());
        self.send_waves(StreamTag::R, r);
        let s = std::mem::take(&mut *self.pending_s.borrow_mut());
        self.send_waves(StreamTag::S, s);
    }

    /// Blocks until everything submitted before this call (including
    /// partial wave groups, which are injected first) has traversed the
    /// whole chain and all buffered results have reached the collector.
    pub fn flush(&self) {
        self.drain_pending();
        let (ack_tx, ack_rx) = bounded::<()>(2);
        self.entry_r
            .send(ChainMsg::Flush(ack_tx.clone()))
            .expect("chain alive");
        self.entry_s
            .send(ChainMsg::Flush(ack_tx))
            .expect("chain alive");
        for _ in 0..2 {
            ack_rx.recv().expect("flush ack");
        }
    }

    /// Stops the chain and returns the accumulated outcome. Pending
    /// partial wave groups are injected first, so no submitted tuple is
    /// lost even without an explicit [`HandshakeJoin::flush`].
    pub fn shutdown(self) -> HandshakeOutcome {
        self.drain_pending();
        self.entry_r.send(ChainMsg::Stop).expect("chain alive");
        self.entry_s.send(ChainMsg::Stop).expect("chain alive");
        drop(self.entry_r);
        drop(self.entry_s);
        let mut counted = 0u64;
        let mut trace = Vec::new();
        for w in self.workers {
            let (matches, ring) = w.join().expect("core thread panicked");
            counted += matches;
            trace.extend(ring);
        }
        let (results, result_count) = match self.collector {
            Some(c) => {
                let results = c.join().expect("collector thread panicked");
                let count = results.len() as u64;
                (results, count)
            }
            None => (Vec::new(), counted),
        };
        HandshakeOutcome {
            results,
            result_count,
            batch_sizes: self.batch_hist.into_inner(),
            trace,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn core_loop(
    position: usize,
    config: &HandshakeConfig,
    r_rx: &Receiver<ChainMsg>,
    s_rx: &Receiver<ChainMsg>,
    r_next: Option<Sender<ChainMsg>>,
    s_next: Option<Sender<ChainMsg>>,
    results: Option<&Sender<Vec<MatchPair>>>,
) -> (u64, Option<obs::trace::TraceRing>) {
    let sub = config.sub_window();
    let n = config.num_cores;
    let mut window_r: SlidingWindow<Tuple> = SlidingWindow::new(sub);
    let mut window_s: SlidingWindow<Tuple> = SlidingWindow::new(sub);
    // Capacity of the chain beyond this core, per lane; while the
    // downstream still has room the storage cascade forwards tuples
    // unparked, so the chain fills from the exit end.
    let r_downstream = (n - 1 - position) * sub;
    let s_downstream = position * sub;
    let mut r_forwarded = 0usize;
    let mut s_forwarded = 0usize;
    let mut r_open = true;
    let mut s_open = true;
    let mut matches = 0u64;
    let mut out: Vec<MatchPair> = Vec::new();
    let mut ring = obs::trace::enabled().then(|| {
        obs::trace::TraceRing::new(
            format!("hs.core.{position}"),
            obs::trace::TimeDomain::Wall,
        )
    });
    let mut idle_since = obs::trace::now_ns();

    while r_open || s_open {
        // Alternate lanes fairly; block on select when both lanes open.
        let (msg, from_r) = if r_open && s_open {
            crossbeam::channel::select! {
                recv(r_rx) -> m => (m.ok(), true),
                recv(s_rx) -> m => (m.ok(), false),
            }
        } else if r_open {
            (r_rx.recv().ok(), true)
        } else {
            (s_rx.recv().ok(), false)
        };
        let Some(msg) = msg else {
            if from_r {
                r_open = false;
            } else {
                s_open = false;
            }
            continue;
        };
        if let Some(r) = ring.as_mut() {
            let t = obs::trace::now_ns();
            r.record("recv", idle_since, t.saturating_sub(idle_since));
        }
        match msg {
            ChainMsg::Waves { tag, waves } => {
                // Process the group's waves in order, collecting the
                // forwarded group for one downstream send.
                let t0 = obs::trace::now_ns();
                let group = waves.len() as u64;
                let mut onward = Vec::with_capacity(waves.len());
                for wave in waves {
                    let Wave { probe, store } = wave;
                    // Probe this core's opposite segment.
                    let opposite = match tag {
                        StreamTag::R => &window_s,
                        StreamTag::S => &window_r,
                    };
                    for &stored in opposite.iter() {
                        let (r, s) = match tag {
                            StreamTag::R => (probe, stored),
                            StreamTag::S => (stored, probe),
                        };
                        if config.predicate.matches(r, s) {
                            matches += 1;
                            if let Some(tx) = results {
                                out.push(MatchPair { r, s });
                                if out.len() >= RESULT_CHUNK {
                                    tx.send(std::mem::take(&mut out))
                                        .expect("collector alive");
                                }
                            }
                        }
                    }
                    // Storage cascade.
                    let (own, downstream, forwarded) = match tag {
                        StreamTag::R => (&mut window_r, r_downstream, &mut r_forwarded),
                        StreamTag::S => (&mut window_s, s_downstream, &mut s_forwarded),
                    };
                    let store = match store {
                        Some(t) if *forwarded < downstream => {
                            // Chain still filling beyond us: pass it on.
                            *forwarded += 1;
                            Some(t)
                        }
                        Some(t) => own.insert(t),
                        None => None,
                    };
                    onward.push(Wave { probe, store });
                }
                // Fast-forward the whole group onward as one message.
                // At the exit end, any carried tuples have expired.
                let next = match tag {
                    StreamTag::R => &r_next,
                    StreamTag::S => &s_next,
                };
                if let Some(next) = next {
                    next.send(ChainMsg::Waves { tag, waves: onward })
                        .expect("chain alive");
                }
                if let Some(r) = ring.as_mut() {
                    let t1 = obs::trace::now_ns();
                    r.record_arg("wave", t0, t1.saturating_sub(t0), group);
                }
            }
            ChainMsg::Flush(ack) => {
                if let Some(tx) = results {
                    if !out.is_empty() {
                        tx.send(std::mem::take(&mut out)).expect("collector alive");
                    }
                }
                let next = if from_r { &r_next } else { &s_next };
                match next {
                    Some(next) => next.send(ChainMsg::Flush(ack)).expect("chain alive"),
                    None => {
                        let _ = ack.send(());
                    }
                }
            }
            ChainMsg::Stop => {
                let next = if from_r { &r_next } else { &s_next };
                if let Some(next) = next {
                    next.send(ChainMsg::Stop).expect("chain alive");
                }
                if from_r {
                    r_open = false;
                } else {
                    s_open = false;
                }
            }
        }
        idle_since = obs::trace::now_ns();
    }
    if let Some(tx) = results {
        if !out.is_empty() {
            tx.send(out).expect("collector alive");
        }
    }
    (matches, ring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::reference_join;
    use std::collections::HashMap;
    use streamcore::workload::{KeyDist, WorkloadSpec};

    fn as_multiset(results: &[MatchPair]) -> HashMap<(u64, u64), u32> {
        let mut m = HashMap::new();
        for p in results {
            *m.entry((p.r.raw(), p.s.raw())).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn serialized_feeding_matches_reference_exactly() {
        // Flushing after every tuple serializes the waves: the chain then
        // implements strict semantics, like the hardware single-wave model.
        let inputs: Vec<_> = WorkloadSpec::new(120, KeyDist::Uniform { domain: 6 })
            .generate()
            .collect();
        for cores in [1usize, 2, 4] {
            let join = HandshakeJoin::spawn(HandshakeConfig::new(cores, 32));
            for &(tag, t) in &inputs {
                join.process(tag, t);
                join.flush();
            }
            let outcome = join.shutdown();
            let want = reference_join(&inputs, 32, JoinPredicate::Equi);
            assert_eq!(
                as_multiset(&outcome.results),
                as_multiset(&want),
                "mismatch with {cores} cores"
            );
        }
    }

    #[test]
    fn serialized_feeding_is_exact_at_any_batch_size() {
        // `flush` drains the partial wave group, so per-tuple flushing
        // serializes the chain even when `batch_size` exceeds 1.
        let inputs: Vec<_> = WorkloadSpec::new(120, KeyDist::Uniform { domain: 6 })
            .generate()
            .collect();
        let want = as_multiset(&reference_join(&inputs, 32, JoinPredicate::Equi));
        for batch in [4usize, 64] {
            let join =
                HandshakeJoin::spawn(HandshakeConfig::new(4, 32).with_batch_size(batch));
            for &(tag, t) in &inputs {
                join.process(tag, t);
                join.flush();
            }
            let outcome = join.shutdown();
            assert_eq!(
                as_multiset(&outcome.results),
                want,
                "mismatch at batch size {batch}"
            );
            // Serialized feeding means every wave group holds one tuple.
            assert_eq!(outcome.batch_sizes.max(), Some(1));
            assert_eq!(outcome.batch_sizes.total(), 120);
        }
    }

    #[test]
    fn serialized_feeding_with_expiry_matches_reference() {
        let inputs: Vec<_> = WorkloadSpec::new(300, KeyDist::Uniform { domain: 4 })
            .generate()
            .collect();
        let join = HandshakeJoin::spawn(HandshakeConfig::new(4, 16));
        for &(tag, t) in &inputs {
            join.process(tag, t);
            join.flush();
        }
        let outcome = join.shutdown();
        let want = reference_join(&inputs, 16, JoinPredicate::Equi);
        assert_eq!(as_multiset(&outcome.results), as_multiset(&want));
    }

    #[test]
    fn pipelined_feeding_agrees_statistically() {
        // Without per-tuple flushes, waves pipeline; the in-flight depth
        // (channel capacity) bounds how far results drift from strict
        // semantics at window boundaries.
        let inputs: Vec<_> = WorkloadSpec::new(4_000, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let join = HandshakeJoin::spawn(
            HandshakeConfig::new(4, 256).with_channel_capacity(8),
        );
        for &(tag, t) in &inputs {
            join.process(tag, t);
        }
        join.flush();
        let outcome = join.shutdown();
        let want = reference_join(&inputs, 256, JoinPredicate::Equi).len() as f64;
        let got = outcome.result_count as f64;
        let err = (got - want).abs() / want;
        assert!(
            err < 0.10,
            "pipelined result count {got} deviates {:.1}% from {want}",
            err * 100.0
        );
    }

    #[test]
    fn pipelined_batched_feeding_agrees_statistically() {
        // Batched wave groups coarsen lane interleaving but stay within
        // the same overlap-semantics drift envelope.
        let inputs: Vec<_> = WorkloadSpec::new(4_000, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let join = HandshakeJoin::spawn(
            HandshakeConfig::new(4, 256)
                .with_channel_capacity(8)
                .with_batch_size(16),
        );
        for &(tag, t) in &inputs {
            join.process(tag, t);
        }
        join.flush();
        let outcome = join.shutdown();
        let want = reference_join(&inputs, 256, JoinPredicate::Equi).len() as f64;
        let got = outcome.result_count as f64;
        let err = (got - want).abs() / want;
        assert!(
            err < 0.15,
            "batched pipelined count {got} deviates {:.1}% from {want}",
            err * 100.0
        );
        assert!(outcome.batch_sizes.max() <= Some(16));
    }

    #[test]
    fn tighter_ordering_precision_reduces_drift() {
        let inputs: Vec<_> = WorkloadSpec::new(4_000, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let want = reference_join(&inputs, 128, JoinPredicate::Equi).len() as f64;
        let mut errs = Vec::new();
        for capacity in [64usize, 2] {
            let join = HandshakeJoin::spawn(
                HandshakeConfig::new(4, 128).with_channel_capacity(capacity),
            );
            for &(tag, t) in &inputs {
                join.process(tag, t);
            }
            join.flush();
            let got = join.shutdown().result_count as f64;
            errs.push((got - want).abs() / want);
        }
        assert!(
            errs[1] <= errs[0] + 0.01,
            "capacity 2 drift {:.3} should not exceed capacity 64 drift {:.3}",
            errs[1],
            errs[0]
        );
    }

    #[test]
    fn counting_only_skips_collection() {
        let inputs: Vec<_> = WorkloadSpec::new(200, KeyDist::Uniform { domain: 4 })
            .generate()
            .collect();
        let collect = HandshakeJoin::spawn(HandshakeConfig::new(2, 16));
        let count = HandshakeJoin::spawn(HandshakeConfig::new(2, 16).counting_only());
        for &(tag, t) in &inputs {
            collect.process(tag, t);
            collect.flush();
            count.process(tag, t);
            count.flush();
        }
        let collected = collect.shutdown();
        let counted = count.shutdown();
        assert_eq!(counted.result_count, collected.result_count);
        assert!(counted.results.is_empty());
        assert!(collected.result_count > 0);
    }

    #[test]
    fn shutdown_drains_partial_wave_groups() {
        // batch_size bigger than the whole stream: shutdown alone must
        // still inject and process every buffered tuple.
        let join = HandshakeJoin::spawn(HandshakeConfig::new(2, 8).with_batch_size(512));
        join.process(StreamTag::S, Tuple::new(7, 0));
        join.process(StreamTag::R, Tuple::new(7, 1));
        let outcome = join.shutdown(); // no flush
        // Both lanes race during shutdown, but the S tuple was injected
        // first and each lane is a single 1-wave group; with both groups
        // in flight the match may legitimately be observed from either
        // side — what must never happen is losing the buffered tuples.
        assert_eq!(outcome.batch_sizes.total(), 2, "both lanes injected");
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_is_rejected() {
        let _ = HandshakeConfig::new(2, 8).with_batch_size(0);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn tracing_records_core_spans_without_changing_results() {
        let inputs: Vec<_> = WorkloadSpec::new(120, KeyDist::Uniform { domain: 6 })
            .generate()
            .collect();
        let want = as_multiset(&reference_join(&inputs, 32, JoinPredicate::Equi));

        obs::trace::enable(1);
        let join = HandshakeJoin::spawn(HandshakeConfig::new(4, 32));
        for &(tag, t) in &inputs {
            join.process(tag, t);
            join.flush();
        }
        let outcome = join.shutdown();
        obs::trace::disable();

        // Serialized feeding stays exact with tracing on.
        assert_eq!(as_multiset(&outcome.results), want);

        assert_eq!(outcome.trace.len(), 4);
        let mut tracks: Vec<_> =
            outcome.trace.iter().map(|r| r.track().to_string()).collect();
        tracks.sort();
        assert_eq!(tracks, ["hs.core.0", "hs.core.1", "hs.core.2", "hs.core.3"]);
        for ring in &outcome.trace {
            assert_eq!(ring.domain(), obs::trace::TimeDomain::Wall);
            let events = ring.events();
            assert!(!events.is_empty(), "core ring {} is empty", ring.track());
            assert!(
                events.iter().any(|e| e.name == "wave"),
                "no wave spans on {}",
                ring.track()
            );
            for e in &events {
                assert!(
                    ["recv", "wave"].contains(&e.name),
                    "unexpected span name {}",
                    e.name
                );
            }
        }
    }

    #[test]
    fn no_matches_before_windows_overlap() {
        let join = HandshakeJoin::spawn(HandshakeConfig::new(2, 8));
        join.process(StreamTag::R, Tuple::new(1, 0));
        join.process(StreamTag::R, Tuple::new(2, 1));
        join.flush();
        let outcome = join.shutdown();
        assert_eq!(outcome.result_count, 0);
    }
}
