//! Multithreaded bi-flow stream join: a software low-latency handshake
//! join.
//!
//! Join cores form a chain of threads; R tuples enter at the left end and
//! travel right, S tuples enter at the right end and travel left. Each
//! arriving tuple is fast-forwarded along the whole chain (low-latency
//! handshake join), probing every core's opposite-stream segment, while a
//! storage cascade parks it and shifts displaced tuples toward the exit.
//!
//! Unlike the hardware model in `joinhw::biflow` — where a central
//! coordinator admits one wave at a time and therefore preserves strict
//! semantics — the software chain lets waves from both ends pipeline
//! through the cores concurrently. Tuples travelling in opposite
//! directions can race past each other between segments, so results follow
//! the *overlap* semantics of the handshake-join literature: matches whose
//! windows overlap by a margin are always found, but pairs that cross
//! right at a window boundary may be missed or observed with slightly
//! different window contents. The tests pin down both regimes: exactness
//! under serialized feeding, statistical agreement under pipelining.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use streamcore::{JoinPredicate, MatchPair, SlidingWindow, StreamTag, Tuple};

/// Configuration of a [`HandshakeJoin`] chain.
#[derive(Debug, Clone, PartialEq)]
pub struct HandshakeConfig {
    /// Number of join cores (threads) in the chain.
    pub num_cores: usize,
    /// Sliding-window size per stream (tuples), divided across cores.
    pub window_size: usize,
    /// Join condition.
    pub predicate: JoinPredicate,
    /// Per-link channel capacity.
    pub channel_capacity: usize,
    /// Retain results (`true`) or only count them.
    pub collect_results: bool,
}

impl HandshakeConfig {
    /// An equi-join chain with default channel sizing.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` or `window_size` is zero.
    pub fn new(num_cores: usize, window_size: usize) -> Self {
        assert!(num_cores > 0, "need at least one join core");
        assert!(window_size > 0, "window size must be positive");
        Self {
            num_cores,
            window_size,
            predicate: JoinPredicate::Equi,
            channel_capacity: 256,
            collect_results: true,
        }
    }

    /// Replaces the join predicate.
    pub fn with_predicate(mut self, predicate: JoinPredicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Sets the entry channel capacity. This is the chain's *ordering
    /// precision* knob: it bounds how many waves can be in flight, and
    /// therefore how far result semantics can drift from strict
    /// arrival-order semantics under pipelining.
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        self.channel_capacity = capacity;
        self
    }

    /// Per-core segment capacity.
    pub fn sub_window(&self) -> usize {
        self.window_size.div_ceil(self.num_cores)
    }
}

enum ChainMsg {
    /// A tuple wave: the probe replica plus the storage cascade payload.
    Wave {
        tag: StreamTag,
        probe: Tuple,
        store: Option<Tuple>,
    },
    /// Flush token: forwarded to the end of the chain, then acknowledged.
    Flush(Sender<()>),
    Stop,
}

/// A running software handshake join.
///
/// # Example
///
/// ```
/// use joinsw::handshake::{HandshakeConfig, HandshakeJoin};
/// use streamcore::{StreamTag, Tuple};
///
/// let join = HandshakeJoin::spawn(HandshakeConfig::new(3, 12));
/// join.process(StreamTag::S, Tuple::new(4, 0));
/// join.flush();
/// join.process(StreamTag::R, Tuple::new(4, 1));
/// join.flush();
/// let outcome = join.shutdown();
/// assert_eq!(outcome.result_count, 1);
/// ```
#[derive(Debug)]
pub struct HandshakeJoin {
    /// Entry of the rightward (R) lane: core 0.
    entry_r: Sender<ChainMsg>,
    /// Entry of the leftward (S) lane: core N-1.
    entry_s: Sender<ChainMsg>,
    workers: Vec<JoinHandle<()>>,
    collector: JoinHandle<(u64, Vec<MatchPair>)>,
}

/// Shutdown outcome of a [`HandshakeJoin`].
#[derive(Debug, Clone, Default)]
pub struct HandshakeOutcome {
    /// All collected results (empty when counting only).
    pub results: Vec<MatchPair>,
    /// Total results observed.
    pub result_count: u64,
}

impl HandshakeJoin {
    /// Spawns the chain and collector threads.
    pub fn spawn(config: HandshakeConfig) -> Self {
        let n = config.num_cores;
        let (result_tx, result_rx) = bounded::<MatchPair>(8_192);
        let collect = config.collect_results;
        let collector = std::thread::spawn(move || {
            let mut count = 0u64;
            let mut kept = Vec::new();
            for m in result_rx.iter() {
                count += 1;
                if collect {
                    kept.push(m);
                }
            }
            (count, kept)
        });

        // Each core has one inbox per direction lane. Only the two entry
        // channels are bounded (caller back-pressure); interior links are
        // unbounded so opposite-direction sends can never form a blocking
        // cycle between neighbouring cores. The pipeline is work-balanced
        // (every wave does the same work at every core), so interior
        // queues stay shallow in practice.
        let mut r_lane: Vec<(Sender<ChainMsg>, Receiver<ChainMsg>)> = Vec::new();
        let mut s_lane: Vec<(Sender<ChainMsg>, Receiver<ChainMsg>)> = Vec::new();
        for i in 0..n {
            r_lane.push(if i == 0 {
                bounded(config.channel_capacity)
            } else {
                crossbeam::channel::unbounded()
            });
            s_lane.push(if i == n - 1 {
                bounded(config.channel_capacity)
            } else {
                crossbeam::channel::unbounded()
            });
        }
        let entry_r = r_lane[0].0.clone();
        let entry_s = s_lane[n - 1].0.clone();

        let mut workers = Vec::with_capacity(n);
        for position in 0..n {
            let cfg = config.clone();
            let r_rx = r_lane[position].1.clone();
            let s_rx = s_lane[position].1.clone();
            let r_next = (position + 1 < n).then(|| r_lane[position + 1].0.clone());
            let s_next = position.checked_sub(1).map(|p| s_lane[p].0.clone());
            let results = result_tx.clone();
            workers.push(std::thread::spawn(move || {
                core_loop(position, &cfg, &r_rx, &s_rx, r_next, s_next, &results);
            }));
        }
        drop(result_tx);
        Self {
            entry_r,
            entry_s,
            workers,
            collector,
        }
    }

    /// Injects one tuple at the chain end of its stream.
    pub fn process(&self, tag: StreamTag, tuple: Tuple) {
        let msg = ChainMsg::Wave {
            tag,
            probe: tuple,
            store: Some(tuple),
        };
        match tag {
            StreamTag::R => self.entry_r.send(msg).expect("chain alive"),
            StreamTag::S => self.entry_s.send(msg).expect("chain alive"),
        }
    }

    /// Blocks until everything submitted before this call has traversed
    /// the whole chain (both lanes).
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = bounded::<()>(2);
        self.entry_r
            .send(ChainMsg::Flush(ack_tx.clone()))
            .expect("chain alive");
        self.entry_s
            .send(ChainMsg::Flush(ack_tx))
            .expect("chain alive");
        for _ in 0..2 {
            ack_rx.recv().expect("flush ack");
        }
    }

    /// Stops the chain and returns the accumulated outcome.
    pub fn shutdown(self) -> HandshakeOutcome {
        self.entry_r.send(ChainMsg::Stop).expect("chain alive");
        self.entry_s.send(ChainMsg::Stop).expect("chain alive");
        drop(self.entry_r);
        drop(self.entry_s);
        for w in self.workers {
            w.join().expect("core thread panicked");
        }
        let (result_count, results) =
            self.collector.join().expect("collector thread panicked");
        HandshakeOutcome {
            results,
            result_count,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn core_loop(
    position: usize,
    config: &HandshakeConfig,
    r_rx: &Receiver<ChainMsg>,
    s_rx: &Receiver<ChainMsg>,
    r_next: Option<Sender<ChainMsg>>,
    s_next: Option<Sender<ChainMsg>>,
    results: &Sender<MatchPair>,
) {
    let sub = config.sub_window();
    let n = config.num_cores;
    let mut window_r: SlidingWindow<Tuple> = SlidingWindow::new(sub);
    let mut window_s: SlidingWindow<Tuple> = SlidingWindow::new(sub);
    // Capacity of the chain beyond this core, per lane; while the
    // downstream still has room the storage cascade forwards tuples
    // unparked, so the chain fills from the exit end.
    let r_downstream = (n - 1 - position) * sub;
    let s_downstream = position * sub;
    let mut r_forwarded = 0usize;
    let mut s_forwarded = 0usize;
    let mut r_open = true;
    let mut s_open = true;

    while r_open || s_open {
        // Alternate lanes fairly; block on select when both lanes open.
        let (msg, from_r) = if r_open && s_open {
            crossbeam::channel::select! {
                recv(r_rx) -> m => (m.ok(), true),
                recv(s_rx) -> m => (m.ok(), false),
            }
        } else if r_open {
            (r_rx.recv().ok(), true)
        } else {
            (s_rx.recv().ok(), false)
        };
        let Some(msg) = msg else {
            if from_r {
                r_open = false;
            } else {
                s_open = false;
            }
            continue;
        };
        match msg {
            ChainMsg::Wave { tag, probe, store } => {
                // Probe this core's opposite segment.
                let opposite = match tag {
                    StreamTag::R => &window_s,
                    StreamTag::S => &window_r,
                };
                for &stored in opposite.iter() {
                    let (r, s) = match tag {
                        StreamTag::R => (probe, stored),
                        StreamTag::S => (stored, probe),
                    };
                    if config.predicate.matches(r, s) {
                        results.send(MatchPair { r, s }).expect("collector alive");
                    }
                }
                // Storage cascade.
                let (own, downstream, forwarded) = match tag {
                    StreamTag::R => (&mut window_r, r_downstream, &mut r_forwarded),
                    StreamTag::S => (&mut window_s, s_downstream, &mut s_forwarded),
                };
                let store = match store {
                    Some(t) if *forwarded < downstream => {
                        // Chain still filling beyond us: pass it on.
                        *forwarded += 1;
                        Some(t)
                    }
                    Some(t) => own.insert(t),
                    None => None,
                };
                // Fast-forward the probe (and cascade payload) onward.
                let next = match tag {
                    StreamTag::R => &r_next,
                    StreamTag::S => &s_next,
                };
                if let Some(next) = next {
                    next.send(ChainMsg::Wave { tag, probe, store })
                        .expect("chain alive");
                }
                // At the exit end, any carried tuple has expired.
            }
            ChainMsg::Flush(ack) => {
                let next = if from_r { &r_next } else { &s_next };
                match next {
                    Some(next) => next.send(ChainMsg::Flush(ack)).expect("chain alive"),
                    None => {
                        let _ = ack.send(());
                    }
                }
            }
            ChainMsg::Stop => {
                let next = if from_r { &r_next } else { &s_next };
                if let Some(next) = next {
                    next.send(ChainMsg::Stop).expect("chain alive");
                }
                if from_r {
                    r_open = false;
                } else {
                    s_open = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::reference_join;
    use std::collections::HashMap;
    use streamcore::workload::{KeyDist, WorkloadSpec};

    fn as_multiset(results: &[MatchPair]) -> HashMap<(u64, u64), u32> {
        let mut m = HashMap::new();
        for p in results {
            *m.entry((p.r.raw(), p.s.raw())).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn serialized_feeding_matches_reference_exactly() {
        // Flushing after every tuple serializes the waves: the chain then
        // implements strict semantics, like the hardware single-wave model.
        let inputs: Vec<_> = WorkloadSpec::new(120, KeyDist::Uniform { domain: 6 })
            .generate()
            .collect();
        for cores in [1usize, 2, 4] {
            let join = HandshakeJoin::spawn(HandshakeConfig::new(cores, 32));
            for &(tag, t) in &inputs {
                join.process(tag, t);
                join.flush();
            }
            let outcome = join.shutdown();
            let want = reference_join(&inputs, 32, JoinPredicate::Equi);
            assert_eq!(
                as_multiset(&outcome.results),
                as_multiset(&want),
                "mismatch with {cores} cores"
            );
        }
    }

    #[test]
    fn serialized_feeding_with_expiry_matches_reference() {
        let inputs: Vec<_> = WorkloadSpec::new(300, KeyDist::Uniform { domain: 4 })
            .generate()
            .collect();
        let join = HandshakeJoin::spawn(HandshakeConfig::new(4, 16));
        for &(tag, t) in &inputs {
            join.process(tag, t);
            join.flush();
        }
        let outcome = join.shutdown();
        let want = reference_join(&inputs, 16, JoinPredicate::Equi);
        assert_eq!(as_multiset(&outcome.results), as_multiset(&want));
    }

    #[test]
    fn pipelined_feeding_agrees_statistically() {
        // Without per-tuple flushes, waves pipeline; the in-flight depth
        // (channel capacity) bounds how far results drift from strict
        // semantics at window boundaries.
        let inputs: Vec<_> = WorkloadSpec::new(4_000, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let join = HandshakeJoin::spawn(
            HandshakeConfig::new(4, 256).with_channel_capacity(8),
        );
        for &(tag, t) in &inputs {
            join.process(tag, t);
        }
        join.flush();
        let outcome = join.shutdown();
        let want = reference_join(&inputs, 256, JoinPredicate::Equi).len() as f64;
        let got = outcome.result_count as f64;
        let err = (got - want).abs() / want;
        assert!(
            err < 0.10,
            "pipelined result count {got} deviates {:.1}% from {want}",
            err * 100.0
        );
    }

    #[test]
    fn tighter_ordering_precision_reduces_drift() {
        let inputs: Vec<_> = WorkloadSpec::new(4_000, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let want = reference_join(&inputs, 128, JoinPredicate::Equi).len() as f64;
        let mut errs = Vec::new();
        for capacity in [64usize, 2] {
            let join = HandshakeJoin::spawn(
                HandshakeConfig::new(4, 128).with_channel_capacity(capacity),
            );
            for &(tag, t) in &inputs {
                join.process(tag, t);
            }
            join.flush();
            let got = join.shutdown().result_count as f64;
            errs.push((got - want).abs() / want);
        }
        assert!(
            errs[1] <= errs[0] + 0.01,
            "capacity 2 drift {:.3} should not exceed capacity 64 drift {:.3}",
            errs[1],
            errs[0]
        );
    }

    #[test]
    fn no_matches_before_windows_overlap() {
        let join = HandshakeJoin::spawn(HandshakeConfig::new(2, 8));
        join.process(StreamTag::R, Tuple::new(1, 0));
        join.process(StreamTag::R, Tuple::new(2, 1));
        join.flush();
        let outcome = join.shutdown();
        assert_eq!(outcome.result_count, 0);
    }
}
