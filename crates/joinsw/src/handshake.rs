//! Multithreaded bi-flow stream join: a software low-latency handshake
//! join.
//!
//! Join cores form a chain of threads; R tuples enter at the left end and
//! travel right, S tuples enter at the right end and travel left. Each
//! arriving tuple is fast-forwarded along the whole chain (low-latency
//! handshake join), probing every core's opposite-stream segment, while a
//! storage cascade parks it and shifts displaced tuples toward the exit.
//!
//! Unlike the hardware model in `joinhw::biflow` — where a central
//! coordinator admits one wave at a time and therefore preserves strict
//! semantics — the software chain lets waves from both ends pipeline
//! through the cores concurrently. Tuples travelling in opposite
//! directions can race past each other between segments, so results follow
//! the *overlap* semantics of the handshake-join literature: matches whose
//! windows overlap by a margin are always found, but pairs that cross
//! right at a window boundary may be missed or observed with slightly
//! different window contents. The tests pin down both regimes: exactness
//! under serialized feeding, statistical agreement under pipelining.
//!
//! # Batched waves
//!
//! Like [`SplitJoin`](crate::splitjoin::SplitJoin), the chain can batch
//! its data path: [`JoinConfig::batch_size`] tuples accumulate on the
//! caller side and enter the chain as one multi-wave message, and each
//! core forwards the whole group downstream as one message after
//! processing it. Within a lane the waves of a batch are processed in
//! order at every core, so same-lane semantics are identical to the
//! unbatched chain; batching only coarsens the interleaving *between* the
//! two lanes, which the overlap semantics already permit. The default is
//! `1` (every tuple is its own wave — the historical behaviour), because
//! `batch_size` trades ordering precision for throughput exactly like a
//! larger `channel_capacity` does. Serialized feeding (flush after every
//! tuple) remains exact at any batch size, since `flush` drains the
//! partial batch first.
//!
//! # Fault tolerance
//!
//! The chain has no partition map to re-route over — a core *is* a link
//! in both lanes — so degradation here means **severing**: a core lost to
//! a scripted [`FaultPlan`](crate::fault::FaultPlan) kill (or a panic, or
//! organic death) cuts both lanes at its position, and its neighbours
//! detect the cut on their next forward, stop forwarding into it, and
//! count every wave-carried window tuple that can no longer be parked as
//! orphaned. Entry sends are supervised (bounded-backoff `send_timeout`
//! watching the entry core's heartbeat); tuples offered to a severed
//! entry are counted as orphaned rather than panicking the caller, and
//! [`HandshakeJoin::flush`] degrades to a survivors-only barrier. The
//! damage tally arrives in [`HandshakeOutcome::fault`]; with an empty
//! plan and no organic failures it is all-zero and the data path is the
//! pre-fault-model one.

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use accel_error::JoinError;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use streamcore::{MatchPair, SlidingWindow, StreamTag, Tuple};

use crate::config::{JoinConfig, JoinParams};
use crate::fault::FaultReport;
use crate::supervise::{supervised_send, AliveGuard, SendStatus, WorkerCell};

/// Result-collection chunk size (matches per message to the collector).
const RESULT_CHUNK: usize = 256;

/// Configuration of a [`HandshakeJoin`] chain: the shared [`JoinConfig`]
/// with chain-appropriate defaults (entry capacity 256, unbatched
/// waves). Derefs to [`JoinConfig`], so the shared fields read and write
/// exactly as before the convergence.
#[derive(Debug, Clone, PartialEq)]
pub struct HandshakeConfig {
    /// The engine-independent configuration fields.
    pub common: JoinConfig,
}

impl std::ops::Deref for HandshakeConfig {
    type Target = JoinConfig;
    fn deref(&self) -> &JoinConfig {
        &self.common
    }
}

impl std::ops::DerefMut for HandshakeConfig {
    fn deref_mut(&mut self) -> &mut JoinConfig {
        &mut self.common
    }
}

impl JoinParams for HandshakeConfig {
    fn common(&self) -> &JoinConfig {
        &self.common
    }
    fn common_mut(&mut self) -> &mut JoinConfig {
        &mut self.common
    }
}

impl HandshakeConfig {
    /// An equi-join chain with default channel sizing and unbatched
    /// (`batch_size = 1`) waves.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` or `window_size` is zero.
    pub fn new(num_cores: usize, window_size: usize) -> Self {
        let mut common = JoinConfig::new(num_cores, window_size);
        common.channel_capacity = 256;
        common.batch_size = 1;
        Self { common }
    }

    /// Replaces the join predicate.
    #[must_use]
    pub fn with_predicate(mut self, predicate: streamcore::JoinPredicate) -> Self {
        self.common = self.common.with_predicate(predicate);
        self
    }

    /// Sets the entry channel capacity. This is the chain's *ordering
    /// precision* knob: it bounds how many wave groups can be in flight,
    /// and therefore how far result semantics can drift from strict
    /// arrival-order semantics under pipelining.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        self.common = self.common.with_channel_capacity(capacity);
        self
    }

    /// Sets the wave-group batch size (see
    /// [`JoinConfig::batch_size`] and the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.common = self.common.with_batch_size(batch_size);
        self
    }

    /// Disables result retention and collection (counting only).
    #[must_use]
    pub fn counting_only(mut self) -> Self {
        self.common = self.common.counting_only();
        self
    }

    /// Installs a fault plan (validated against the core count). Batch
    /// numbers count the wave-group messages each core processes, both
    /// lanes combined.
    ///
    /// # Panics
    ///
    /// Panics if the plan targets a core `>= num_cores`.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.common = self.common.with_fault_plan(plan);
        self
    }
}

/// One wave: the fast-forwarded probe replica plus the storage-cascade
/// payload it is still carrying.
#[derive(Debug, Clone, Copy)]
struct Wave {
    probe: Tuple,
    store: Option<Tuple>,
}

enum ChainMsg {
    /// A group of same-lane waves, forwarded core-to-core as one message.
    Waves { tag: StreamTag, waves: Vec<Wave> },
    /// Flush token: forwarded to the end of the chain, then acknowledged.
    /// Cores hand their buffered results to the collector on the way.
    Flush(Sender<()>),
    Stop,
}

/// A running software handshake join.
///
/// # Example
///
/// ```
/// use joinsw::handshake::{HandshakeConfig, HandshakeJoin};
/// use streamcore::{StreamTag, Tuple};
///
/// let join = HandshakeJoin::spawn(HandshakeConfig::new(3, 12));
/// join.process(StreamTag::S, Tuple::new(4, 0)).unwrap();
/// join.flush().unwrap();
/// join.process(StreamTag::R, Tuple::new(4, 1)).unwrap();
/// join.flush().unwrap();
/// let outcome = join.shutdown().unwrap();
/// assert_eq!(outcome.result_count, 1);
/// ```
#[derive(Debug)]
pub struct HandshakeJoin {
    /// Entry of the rightward (R) lane: core 0.
    entry_r: Sender<ChainMsg>,
    /// Entry of the leftward (S) lane: core N-1.
    entry_s: Sender<ChainMsg>,
    workers: Vec<JoinHandle<(u64, Option<obs::trace::TraceRing>)>>,
    cells: Vec<Arc<WorkerCell>>,
    collector: Option<JoinHandle<()>>,
    /// Shared deposit point the collector thread feeds and
    /// [`HandshakeJoin::drain_results`] harvests; `None` when
    /// counting-only.
    sink: Option<Arc<crate::collect::ResultSink>>,
    batch_size: usize,
    /// Caller-side wave buffers, one per lane; drained on flush/shutdown.
    pending_r: RefCell<Vec<Wave>>,
    pending_s: RefCell<Vec<Wave>>,
    batch_hist: RefCell<obs::Histogram>,
    /// Caller-side damage tally: tuples that could not even enter the
    /// chain because an entry core was gone.
    report: RefCell<FaultReport>,
    /// Live-telemetry handles; `None` unless the plane was armed at
    /// spawn ([`obs::live::set_active`]).
    live: Option<LiveChain>,
}

/// Handles into the process-global live plane (`obs::live`) for the
/// handshake chain: wave-group throughput and the depth of the group
/// most recently injected at an entry core. Updated once per injected
/// group — relaxed atomic stores, nothing per tuple.
#[derive(Debug)]
struct LiveChain {
    /// `handshake.waves` — wave groups injected at the chain entries.
    waves: obs::live::SharedCounter,
    /// `handshake.wave_tuples` — tuples carried by those groups.
    wave_tuples: obs::live::SharedCounter,
    /// `handshake.wave_depth` — size (waves per message) of the most
    /// recently injected group; the sampler turns it into a trajectory.
    wave_depth: obs::live::SharedGauge,
}

impl LiveChain {
    fn new() -> Self {
        let reg = obs::live::global();
        Self {
            waves: reg.counter("handshake.waves"),
            wave_tuples: reg.counter("handshake.wave_tuples"),
            wave_depth: reg.gauge("handshake.wave_depth"),
        }
    }
}

/// Shutdown outcome of a [`HandshakeJoin`].
#[derive(Debug, Clone, Default)]
pub struct HandshakeOutcome {
    /// Collected results no mid-run [`HandshakeJoin::drain_results`]
    /// call harvested (all of them when nothing drained; empty when
    /// counting only).
    pub results: Vec<MatchPair>,
    /// Total results ever observed, including drained ones.
    pub result_count: u64,
    /// Sizes of the wave groups injected at the chain entries (tuples per
    /// message): `total()` is the number of entry messages.
    pub batch_sizes: obs::Histogram,
    /// Wall-clock span rings, one per core (`hs.core.<position>`): receive
    /// waits and per-group wave processing. Empty unless tracing was
    /// enabled when the chain was spawned (see `obs::trace`).
    pub trace: Vec<obs::trace::TraceRing>,
    /// What went wrong, if anything: severed cores, window tuples lost to
    /// the cuts, scripted stalls and drops. All-zero (and
    /// [`FaultReport::degraded`] is `false`) for a healthy run.
    pub fault: FaultReport,
}

impl HandshakeJoin {
    /// Spawns the chain and (unless counting-only) collector threads.
    ///
    /// # Panics
    ///
    /// Panics if `config.channel_capacity` or `config.batch_size` is
    /// zero, or the fault plan targets a core out of range (the builder
    /// methods reject these, but the fields are public).
    pub fn spawn(config: HandshakeConfig) -> Self {
        config.common.validate();
        let n = config.num_cores;
        let (result_tx, collector, sink) = if config.collect_results {
            let (tx, rx) = bounded::<Vec<MatchPair>>(8_192);
            let shared = Arc::new(crate::collect::ResultSink::default());
            let dst = Arc::clone(&shared);
            (
                Some(tx),
                Some(std::thread::spawn(move || {
                    for chunk in rx.iter() {
                        dst.deposit(chunk);
                    }
                })),
                Some(shared),
            )
        } else {
            (None, None, None)
        };

        // Each core has one inbox per direction lane. Only the two entry
        // channels are bounded (caller back-pressure); interior links are
        // unbounded so opposite-direction sends can never form a blocking
        // cycle between neighbouring cores. The pipeline is work-balanced
        // (every wave does the same work at every core), so interior
        // queues stay shallow in practice.
        let mut r_lane: Vec<(Sender<ChainMsg>, Receiver<ChainMsg>)> = Vec::new();
        let mut s_lane: Vec<(Sender<ChainMsg>, Receiver<ChainMsg>)> = Vec::new();
        for i in 0..n {
            r_lane.push(if i == 0 {
                bounded(config.channel_capacity)
            } else {
                crossbeam::channel::unbounded()
            });
            s_lane.push(if i == n - 1 {
                bounded(config.channel_capacity)
            } else {
                crossbeam::channel::unbounded()
            });
        }
        let entry_r = r_lane[0].0.clone();
        let entry_s = s_lane[n - 1].0.clone();

        let mut cells = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for position in 0..n {
            let cfg = config.clone();
            let cell = Arc::new(WorkerCell::default());
            cells.push(Arc::clone(&cell));
            let r_rx = r_lane[position].1.clone();
            let s_rx = s_lane[position].1.clone();
            let r_next = (position + 1 < n).then(|| r_lane[position + 1].0.clone());
            let s_next = position.checked_sub(1).map(|p| s_lane[p].0.clone());
            let results = result_tx.clone();
            workers.push(std::thread::spawn(move || {
                core_loop(position, &cfg, &r_rx, &s_rx, r_next, s_next, results, &cell)
            }));
        }
        drop(result_tx);
        Self {
            entry_r,
            entry_s,
            workers,
            cells,
            collector,
            sink,
            batch_size: config.batch_size,
            pending_r: RefCell::new(Vec::with_capacity(config.batch_size)),
            pending_s: RefCell::new(Vec::with_capacity(config.batch_size)),
            batch_hist: RefCell::new(obs::Histogram::new()),
            report: RefCell::new(FaultReport::default()),
            live: obs::live::active().then(LiveChain::new),
        }
    }

    /// Injects one tuple at the chain end of its stream. The tuple joins
    /// its lane's pending wave group; every
    /// [`JoinConfig::batch_size`] tuples the group enters the chain
    /// as a single message.
    ///
    /// # Errors
    ///
    /// [`JoinError::Saturated`] when the entry core's channel stays full
    /// with a frozen heartbeat past the supervision deadline. A *severed*
    /// entry (its core killed or panicked) is not an error: the tuples
    /// are counted as orphaned in [`HandshakeOutcome::fault`] instead.
    pub fn process(&self, tag: StreamTag, tuple: Tuple) -> Result<(), JoinError> {
        let pending = match tag {
            StreamTag::R => &self.pending_r,
            StreamTag::S => &self.pending_s,
        };
        let mut pending = pending.borrow_mut();
        pending.push(Wave {
            probe: tuple,
            store: Some(tuple),
        });
        if pending.len() >= self.batch_size {
            let waves = std::mem::take(&mut *pending);
            drop(pending);
            self.send_waves(tag, waves)?;
        }
        Ok(())
    }

    /// Loads `tuples` into the chain's windows by ordinary processing
    /// (the chain has no probe-free fast path — storage *is* the wave
    /// cascade), then flushes so the windows are settled.
    ///
    /// # Errors
    ///
    /// See [`HandshakeJoin::process`].
    pub fn prefill(&self, tag: StreamTag, tuples: &[Tuple]) -> Result<(), JoinError> {
        for &t in tuples {
            self.process(tag, t)?;
        }
        self.flush()
    }

    fn entry_for(&self, tag: StreamTag) -> (&Sender<ChainMsg>, usize) {
        match tag {
            StreamTag::R => (&self.entry_r, 0),
            StreamTag::S => (&self.entry_s, self.cells.len() - 1),
        }
    }

    fn send_waves(&self, tag: StreamTag, waves: Vec<Wave>) -> Result<(), JoinError> {
        if waves.is_empty() {
            return Ok(());
        }
        self.batch_hist
            .borrow_mut()
            .record_value(waves.len() as u64);
        if let Some(lv) = self.live.as_ref() {
            lv.waves.incr();
            lv.wave_tuples.add(waves.len() as u64);
            lv.wave_depth.set(waves.len() as u64);
        }
        let (entry, core) = self.entry_for(tag);
        let count = waves.len() as u64;
        match supervised_send(entry, &self.cells[core], core, ChainMsg::Waves { tag, waves })? {
            SendStatus::Sent => {}
            SendStatus::Lost => {
                // The entry core is gone: these tuples never enter the
                // join at all.
                self.report.borrow_mut().orphaned_tuples += count;
            }
        }
        Ok(())
    }

    fn drain_pending(&self) -> Result<(), JoinError> {
        let r = std::mem::take(&mut *self.pending_r.borrow_mut());
        self.send_waves(StreamTag::R, r)?;
        let s = std::mem::take(&mut *self.pending_s.borrow_mut());
        self.send_waves(StreamTag::S, s)
    }

    /// Blocks until everything submitted before this call (including
    /// partial wave groups, which are injected first) has traversed the
    /// whole chain and all buffered results have reached the collector.
    ///
    /// # Errors
    ///
    /// See [`HandshakeJoin::process`]. Once a core has died the barrier
    /// degrades to best-effort: it covers the reachable part of the
    /// chain and gives up waiting on acknowledgements that can no longer
    /// arrive.
    pub fn flush(&self) -> Result<(), JoinError> {
        self.drain_pending()?;
        let (ack_tx, ack_rx) = bounded::<()>(2);
        let mut sent = 0usize;
        for tag in [StreamTag::R, StreamTag::S] {
            let (entry, core) = self.entry_for(tag);
            match supervised_send(entry, &self.cells[core], core, ChainMsg::Flush(ack_tx.clone()))? {
                SendStatus::Sent => sent += 1,
                SendStatus::Lost => {}
            }
        }
        drop(ack_tx);
        let mut acks = 0usize;
        while acks < sent {
            match ack_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(()) => acks += 1,
                Err(RecvTimeoutError::Disconnected) => break,
                // A dead core can strand a token (and its ack) in a
                // severed link forever; stop waiting once any core is
                // down — the barrier already covered the survivors that
                // still forward.
                Err(RecvTimeoutError::Timeout) => {
                    if self.cells.iter().any(|c| c.is_dead()) {
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Flushes the chain, then removes and returns every match produced
    /// so far and not yet drained — see
    /// [`StreamJoin::drain_results`](crate::streamjoin::StreamJoin::drain_results).
    /// Counting-only runs return an empty vector.
    ///
    /// # Errors
    ///
    /// See [`HandshakeJoin::flush`]; additionally
    /// [`JoinError::DrainStalled`] if the collector fails to catch up
    /// with the cores' successful result handoffs.
    pub fn drain_results(&self) -> Result<Vec<MatchPair>, JoinError> {
        self.flush()?;
        let Some(sink) = &self.sink else { return Ok(Vec::new()) };
        let sent: u64 = self
            .cells
            .iter()
            .map(|c| c.results_sent.load(Ordering::Acquire))
            .sum();
        sink.await_received(sent)?;
        Ok(sink.take())
    }

    /// Stops the chain and returns the accumulated outcome. Pending
    /// partial wave groups are injected first, so no submitted tuple is
    /// lost even without an explicit [`HandshakeJoin::flush`].
    ///
    /// # Errors
    ///
    /// [`JoinError::WorkerPanicked`] if a core thread panicked (with its
    /// last published statistics snapshot);
    /// [`JoinError::CollectorPanicked`] if the collector died. Cores
    /// lost to *scripted kills* exit cleanly and do not error: their
    /// damage is in [`HandshakeOutcome::fault`].
    pub fn shutdown(self) -> Result<HandshakeOutcome, JoinError> {
        // Best effort: with an entry core gone the buffered waves are
        // already accounted as orphaned by `send_waves`.
        let _ = self.drain_pending();
        let _ = self.entry_r.send(ChainMsg::Stop);
        let _ = self.entry_s.send(ChainMsg::Stop);
        drop(self.entry_r);
        drop(self.entry_s);
        let mut counted = 0u64;
        let mut trace = Vec::new();
        let mut panicked: Option<usize> = None;
        for (i, w) in self.workers.into_iter().enumerate() {
            match w.join() {
                Ok((matches, ring)) => {
                    counted += matches;
                    trace.extend(ring);
                }
                Err(_) => {
                    if panicked.is_none() {
                        panicked = Some(i);
                    }
                    counted += self.cells[i].matches.load(Ordering::Relaxed);
                }
            }
        }
        let collected = self.collector.map(|c| c.join());
        let mut report = self.report.into_inner();
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.killed.load(Ordering::Relaxed) {
                report.workers_lost.push(i);
            }
            report.orphaned_tuples += cell.orphaned.load(Ordering::Relaxed);
            report.injected_stalls += cell.stalls.load(Ordering::Relaxed);
            report.injected_drops += cell.drops.load(Ordering::Relaxed);
            report.results_dropped += cell.results_dropped.load(Ordering::Relaxed);
        }
        if let Some(worker) = panicked {
            return Err(JoinError::WorkerPanicked {
                worker,
                stats_so_far: self.cells[worker].snapshot(),
            });
        }
        let (results, result_count) = match (collected, self.sink) {
            (Some(Ok(())), Some(sink)) => {
                // `results` holds only what no mid-run drain harvested;
                // the sink's running total is every match ever
                // collected, so the count survives draining.
                let count = sink.received();
                (sink.take(), count)
            }
            (Some(Err(_)), _) => return Err(JoinError::CollectorPanicked),
            _ => (Vec::new(), counted),
        };
        Ok(HandshakeOutcome {
            results,
            result_count,
            batch_sizes: self.batch_hist.into_inner(),
            trace,
            fault: report,
        })
    }
}

impl crate::streamjoin::StreamJoin for HandshakeJoin {
    type Config = HandshakeConfig;
    type Outcome = HandshakeOutcome;

    fn spawn(config: HandshakeConfig) -> Self {
        HandshakeJoin::spawn(config)
    }
    fn process(&self, tag: StreamTag, tuple: Tuple) -> Result<(), JoinError> {
        HandshakeJoin::process(self, tag, tuple)
    }
    fn prefill(&self, tag: StreamTag, tuples: &[Tuple]) -> Result<(), JoinError> {
        HandshakeJoin::prefill(self, tag, tuples)
    }
    fn flush(&self) -> Result<(), JoinError> {
        HandshakeJoin::flush(self)
    }
    fn drain_results(&self) -> Result<Vec<MatchPair>, JoinError> {
        HandshakeJoin::drain_results(self)
    }
    fn shutdown(self) -> Result<HandshakeOutcome, JoinError> {
        HandshakeJoin::shutdown(self)
    }
}

impl crate::streamjoin::JoinSummary for HandshakeOutcome {
    fn result_count(&self) -> u64 {
        self.result_count
    }
    fn results(&self) -> &[MatchPair] {
        &self.results
    }
    fn batch_sizes(&self) -> &obs::Histogram {
        &self.batch_sizes
    }
    fn trace(&self) -> &[obs::trace::TraceRing] {
        &self.trace
    }
    fn fault(&self) -> &FaultReport {
        &self.fault
    }
}

/// Forwards `msg` downstream, severing the link on failure. Hands the
/// message back when the link is (or just became) severed, so the
/// caller can account for what it carried.
fn forward(
    next: &mut Option<Sender<ChainMsg>>,
    msg: ChainMsg,
) -> Result<(), ChainMsg> {
    let Some(tx) = next else { return Err(msg) };
    match tx.send(msg) {
        Ok(()) => Ok(()),
        Err(e) => {
            // The downstream core is gone: drop our sender so its queue
            // can be freed, and stop forwarding into the cut.
            *next = None;
            Err(e.0)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn core_loop(
    position: usize,
    config: &HandshakeConfig,
    r_rx: &Receiver<ChainMsg>,
    s_rx: &Receiver<ChainMsg>,
    mut r_next: Option<Sender<ChainMsg>>,
    mut s_next: Option<Sender<ChainMsg>>,
    mut results: Option<Sender<Vec<MatchPair>>>,
    cell: &Arc<WorkerCell>,
) -> (u64, Option<obs::trace::TraceRing>) {
    let _guard = AliveGuard(Arc::clone(cell));
    let plan = &config.fault_plan;
    let sub = config.sub_window();
    let n = config.num_cores;
    let mut window_r: SlidingWindow<Tuple> = SlidingWindow::new(sub);
    let mut window_s: SlidingWindow<Tuple> = SlidingWindow::new(sub);
    // Capacity of the chain beyond this core, per lane; while the
    // downstream still has room the storage cascade forwards tuples
    // unparked, so the chain fills from the exit end.
    let r_downstream = (n - 1 - position) * sub;
    let s_downstream = position * sub;
    let mut r_forwarded = 0usize;
    let mut s_forwarded = 0usize;
    let mut r_open = true;
    let mut s_open = true;
    let mut stats = accel_error::WorkerStats::default();
    let mut out: Vec<MatchPair> = Vec::new();
    let mut group_no: u64 = 0;
    let mut ring = obs::trace::enabled().then(|| {
        obs::trace::TraceRing::new(
            format!("hs.core.{position}"),
            obs::trace::TimeDomain::Wall,
        )
    });
    let mut idle_since = obs::trace::now_ns();

    let publish = |cell: &WorkerCell, stats: &accel_error::WorkerStats| {
        cell.tuples_seen.store(stats.tuples_seen, Ordering::Relaxed);
        cell.stored.store(stats.stored, Ordering::Relaxed);
        cell.comparisons.store(stats.comparisons, Ordering::Relaxed);
        cell.matches.store(stats.matches, Ordering::Relaxed);
        cell.heartbeat.fetch_add(1, Ordering::Relaxed);
    };

    while r_open || s_open {
        // Alternate lanes fairly; block on select when both lanes open.
        let (msg, from_r) = if r_open && s_open {
            crossbeam::channel::select! {
                recv(r_rx) -> m => (m.ok(), true),
                recv(s_rx) -> m => (m.ok(), false),
            }
        } else if r_open {
            (r_rx.recv().ok(), true)
        } else {
            (s_rx.recv().ok(), false)
        };
        let Some(msg) = msg else {
            if from_r {
                r_open = false;
            } else {
                s_open = false;
            }
            continue;
        };
        if let Some(r) = ring.as_mut() {
            let t = obs::trace::now_ns();
            r.record("recv", idle_since, t.saturating_sub(idle_since));
        }
        match msg {
            ChainMsg::Waves { tag, waves } => {
                group_no += 1;
                let stall = plan.stall_ms(position, group_no);
                if stall > 0 {
                    cell.stalls.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(stall));
                }
                if plan.drops(position, group_no) {
                    // The group is lost in transit: never probed, never
                    // parked, never forwarded — downstream windows
                    // silently diverge. Deliberate corruption.
                    cell.drops.fetch_add(1, Ordering::Relaxed);
                    publish(cell, &stats);
                    idle_since = obs::trace::now_ns();
                    continue;
                }
                // Process the group's waves in order, collecting the
                // forwarded group for one downstream send.
                let t0 = obs::trace::now_ns();
                let group = waves.len() as u64;
                let mut onward = Vec::with_capacity(waves.len());
                for wave in waves {
                    let Wave { probe, store } = wave;
                    stats.tuples_seen += 1;
                    // Probe this core's opposite segment.
                    let opposite = match tag {
                        StreamTag::R => &window_s,
                        StreamTag::S => &window_r,
                    };
                    for &stored in opposite.iter() {
                        stats.comparisons += 1;
                        let (r, s) = match tag {
                            StreamTag::R => (probe, stored),
                            StreamTag::S => (stored, probe),
                        };
                        if config.predicate.matches(r, s) {
                            stats.matches += 1;
                            if results.is_some() {
                                out.push(MatchPair { r, s });
                                if out.len() >= RESULT_CHUNK {
                                    hand_results(&mut results, cell, &mut out);
                                }
                            }
                        }
                    }
                    // Storage cascade.
                    let (own, downstream, forwarded) = match tag {
                        StreamTag::R => (&mut window_r, r_downstream, &mut r_forwarded),
                        StreamTag::S => (&mut window_s, s_downstream, &mut s_forwarded),
                    };
                    let store = match store {
                        Some(t) if *forwarded < downstream => {
                            // Chain still filling beyond us: pass it on.
                            *forwarded += 1;
                            Some(t)
                        }
                        Some(t) => {
                            stats.stored += 1;
                            own.insert(t)
                        }
                        None => None,
                    };
                    onward.push(Wave { probe, store });
                }
                // Fast-forward the whole group onward as one message.
                // At the exit end, any carried tuples have expired; at a
                // severed link, every carried tuple is a window tuple
                // the join has now lost.
                let next = match tag {
                    StreamTag::R => &mut r_next,
                    StreamTag::S => &mut s_next,
                };
                let at_exit = match tag {
                    StreamTag::R => position + 1 == n,
                    StreamTag::S => position == 0,
                };
                if !at_exit {
                    if let Err(ChainMsg::Waves { waves: lost, .. }) =
                        forward(next, ChainMsg::Waves { tag, waves: onward })
                    {
                        let stranded =
                            lost.iter().filter(|w| w.store.is_some()).count() as u64;
                        cell.orphaned.fetch_add(stranded, Ordering::Relaxed);
                    }
                }
                if let Some(r) = ring.as_mut() {
                    let t1 = obs::trace::now_ns();
                    r.record_arg("wave", t0, t1.saturating_sub(t0), group);
                }
                if plan.panics(position, group_no) {
                    publish(cell, &stats);
                    panic!(
                        "fault injection: core {position} scripted panic at group {group_no}"
                    );
                }
                if plan.kills(position, group_no) {
                    // Cooperative abrupt exit: both lanes sever here.
                    // Everything parked in our segments is orphaned,
                    // and buffered un-flushed results die with us.
                    cell.orphaned.fetch_add(
                        (window_r.len() + window_s.len()) as u64,
                        Ordering::Relaxed,
                    );
                    cell.results_dropped
                        .fetch_add(out.len() as u64, Ordering::Relaxed);
                    cell.killed.store(true, Ordering::Relaxed);
                    publish(cell, &stats);
                    return (stats.matches, ring);
                }
            }
            ChainMsg::Flush(ack) => {
                hand_results(&mut results, cell, &mut out);
                let next = if from_r { &mut r_next } else { &mut s_next };
                // At the exit end — or a severed link — acknowledge
                // directly: the barrier covers the reachable chain.
                if let Err(ChainMsg::Flush(ack)) = forward(next, ChainMsg::Flush(ack)) {
                    let _ = ack.send(());
                }
            }
            ChainMsg::Stop => {
                let next = if from_r { &mut r_next } else { &mut s_next };
                let _ = forward(next, ChainMsg::Stop);
                if from_r {
                    r_open = false;
                } else {
                    s_open = false;
                }
            }
        }
        publish(cell, &stats);
        idle_since = obs::trace::now_ns();
    }
    hand_results(&mut results, cell, &mut out);
    publish(cell, &stats);
    (stats.matches, ring)
}

/// Hands the core's buffered result chunk to the collector, keeping the
/// sent/dropped completeness accounting the drain barrier relies on
/// (see `collect::ResultSink`). A dead collector degrades the core to
/// counting — it doesn't kill it.
fn hand_results(
    results: &mut Option<Sender<Vec<MatchPair>>>,
    cell: &WorkerCell,
    out: &mut Vec<MatchPair>,
) {
    let Some(tx) = results else { return };
    if out.is_empty() {
        return;
    }
    let chunk = std::mem::take(out);
    let n = chunk.len() as u64;
    if tx.send(chunk).is_ok() {
        cell.results_sent.fetch_add(n, Ordering::Release);
    } else {
        cell.results_dropped.fetch_add(n, Ordering::Relaxed);
        *results = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::reference_join;
    use crate::fault::FaultPlan;
    use std::collections::HashMap;
    use streamcore::workload::{KeyDist, WorkloadSpec};
    use streamcore::JoinPredicate;

    fn as_multiset(results: &[MatchPair]) -> HashMap<(u64, u64), u32> {
        let mut m = HashMap::new();
        for p in results {
            *m.entry((p.r.raw(), p.s.raw())).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn serialized_feeding_matches_reference_exactly() {
        // Flushing after every tuple serializes the waves: the chain then
        // implements strict semantics, like the hardware single-wave model.
        let inputs: Vec<_> = WorkloadSpec::new(120, KeyDist::Uniform { domain: 6 })
            .generate()
            .collect();
        for cores in [1usize, 2, 4] {
            let join = HandshakeJoin::spawn(HandshakeConfig::new(cores, 32));
            for &(tag, t) in &inputs {
                join.process(tag, t).unwrap();
                join.flush().unwrap();
            }
            let outcome = join.shutdown().unwrap();
            let want = reference_join(&inputs, 32, JoinPredicate::Equi);
            assert_eq!(
                as_multiset(&outcome.results),
                as_multiset(&want),
                "mismatch with {cores} cores"
            );
            assert!(!outcome.fault.degraded(), "healthy run must not degrade");
        }
    }

    #[test]
    fn serialized_feeding_is_exact_at_any_batch_size() {
        // `flush` drains the partial wave group, so per-tuple flushing
        // serializes the chain even when `batch_size` exceeds 1.
        let inputs: Vec<_> = WorkloadSpec::new(120, KeyDist::Uniform { domain: 6 })
            .generate()
            .collect();
        let want = as_multiset(&reference_join(&inputs, 32, JoinPredicate::Equi));
        for batch in [4usize, 64] {
            let join =
                HandshakeJoin::spawn(HandshakeConfig::new(4, 32).with_batch_size(batch));
            for &(tag, t) in &inputs {
                join.process(tag, t).unwrap();
                join.flush().unwrap();
            }
            let outcome = join.shutdown().unwrap();
            assert_eq!(
                as_multiset(&outcome.results),
                want,
                "mismatch at batch size {batch}"
            );
            // Serialized feeding means every wave group holds one tuple.
            assert_eq!(outcome.batch_sizes.max(), Some(1));
            assert_eq!(outcome.batch_sizes.total(), 120);
        }
    }

    #[test]
    fn serialized_feeding_with_expiry_matches_reference() {
        let inputs: Vec<_> = WorkloadSpec::new(300, KeyDist::Uniform { domain: 4 })
            .generate()
            .collect();
        let join = HandshakeJoin::spawn(HandshakeConfig::new(4, 16));
        for &(tag, t) in &inputs {
            join.process(tag, t).unwrap();
            join.flush().unwrap();
        }
        let outcome = join.shutdown().unwrap();
        let want = reference_join(&inputs, 16, JoinPredicate::Equi);
        assert_eq!(as_multiset(&outcome.results), as_multiset(&want));
    }

    #[test]
    fn pipelined_feeding_agrees_statistically() {
        // Without per-tuple flushes, waves pipeline; the in-flight depth
        // (channel capacity) bounds how far results drift from strict
        // semantics at window boundaries.
        let inputs: Vec<_> = WorkloadSpec::new(4_000, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let join = HandshakeJoin::spawn(
            HandshakeConfig::new(4, 256).with_channel_capacity(8),
        );
        for &(tag, t) in &inputs {
            join.process(tag, t).unwrap();
        }
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        let want = reference_join(&inputs, 256, JoinPredicate::Equi).len() as f64;
        let got = outcome.result_count as f64;
        let err = (got - want).abs() / want;
        assert!(
            err < 0.10,
            "pipelined result count {got} deviates {:.1}% from {want}",
            err * 100.0
        );
    }

    #[test]
    fn pipelined_batched_feeding_agrees_statistically() {
        // Batched wave groups coarsen lane interleaving but stay within
        // the same overlap-semantics drift envelope.
        let inputs: Vec<_> = WorkloadSpec::new(4_000, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let join = HandshakeJoin::spawn(
            HandshakeConfig::new(4, 256)
                .with_channel_capacity(8)
                .with_batch_size(16),
        );
        for &(tag, t) in &inputs {
            join.process(tag, t).unwrap();
        }
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        let want = reference_join(&inputs, 256, JoinPredicate::Equi).len() as f64;
        let got = outcome.result_count as f64;
        let err = (got - want).abs() / want;
        assert!(
            err < 0.15,
            "batched pipelined count {got} deviates {:.1}% from {want}",
            err * 100.0
        );
        assert!(outcome.batch_sizes.max() <= Some(16));
    }

    #[test]
    fn tighter_ordering_precision_reduces_drift() {
        let inputs: Vec<_> = WorkloadSpec::new(4_000, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let want = reference_join(&inputs, 128, JoinPredicate::Equi).len() as f64;
        let mut errs = Vec::new();
        for capacity in [64usize, 2] {
            let join = HandshakeJoin::spawn(
                HandshakeConfig::new(4, 128).with_channel_capacity(capacity),
            );
            for &(tag, t) in &inputs {
                join.process(tag, t).unwrap();
            }
            join.flush().unwrap();
            let got = join.shutdown().unwrap().result_count as f64;
            errs.push((got - want).abs() / want);
        }
        assert!(
            errs[1] <= errs[0] + 0.01,
            "capacity 2 drift {:.3} should not exceed capacity 64 drift {:.3}",
            errs[1],
            errs[0]
        );
    }

    #[test]
    fn counting_only_skips_collection() {
        let inputs: Vec<_> = WorkloadSpec::new(200, KeyDist::Uniform { domain: 4 })
            .generate()
            .collect();
        let collect = HandshakeJoin::spawn(HandshakeConfig::new(2, 16));
        let count = HandshakeJoin::spawn(HandshakeConfig::new(2, 16).counting_only());
        for &(tag, t) in &inputs {
            collect.process(tag, t).unwrap();
            collect.flush().unwrap();
            count.process(tag, t).unwrap();
            count.flush().unwrap();
        }
        let collected = collect.shutdown().unwrap();
        let counted = count.shutdown().unwrap();
        assert_eq!(counted.result_count, collected.result_count);
        assert!(counted.results.is_empty());
        assert!(collected.result_count > 0);
    }

    #[test]
    fn shutdown_drains_partial_wave_groups() {
        // batch_size bigger than the whole stream: shutdown alone must
        // still inject and process every buffered tuple.
        let join = HandshakeJoin::spawn(HandshakeConfig::new(2, 8).with_batch_size(512));
        join.process(StreamTag::S, Tuple::new(7, 0)).unwrap();
        join.process(StreamTag::R, Tuple::new(7, 1)).unwrap();
        let outcome = join.shutdown().unwrap(); // no flush
        // Both lanes race during shutdown, but the S tuple was injected
        // first and each lane is a single 1-wave group; with both groups
        // in flight the match may legitimately be observed from either
        // side — what must never happen is losing the buffered tuples.
        assert_eq!(outcome.batch_sizes.total(), 2, "both lanes injected");
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_is_rejected() {
        let _ = HandshakeConfig::new(2, 8).with_batch_size(0);
    }

    #[test]
    #[should_panic(expected = "targets worker 7")]
    fn spawn_validates_fault_plan_targets() {
        let mut config = HandshakeConfig::new(2, 8);
        config.common.fault_plan = FaultPlan::parse("kill7@1").unwrap();
        let _ = HandshakeJoin::spawn(config);
    }

    #[test]
    fn killing_an_interior_core_degrades_without_error() {
        let inputs: Vec<_> = WorkloadSpec::new(3_000, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let plan = FaultPlan::parse("kill1@5").unwrap();
        let join = HandshakeJoin::spawn(
            HandshakeConfig::new(4, 64).with_fault_plan(plan),
        );
        for &(tag, t) in &inputs {
            join.process(tag, t).unwrap();
        }
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        assert_eq!(outcome.fault.workers_lost, vec![1]);
        assert!(outcome.fault.degraded());
        assert!(
            outcome.fault.orphaned_tuples > 0,
            "severing the chain mid-stream must strand window tuples"
        );
        // The reachable part of the chain kept joining.
        let want = reference_join(&inputs, 64, JoinPredicate::Equi).len() as u64;
        assert!(outcome.result_count < want, "a severed chain loses matches");
    }

    #[test]
    fn scripted_stalls_and_drops_are_reported() {
        let inputs: Vec<_> = WorkloadSpec::new(400, KeyDist::Uniform { domain: 8 })
            .generate()
            .collect();
        let plan = FaultPlan::parse("stall0@2x5,drop1@3").unwrap();
        let join = HandshakeJoin::spawn(
            HandshakeConfig::new(2, 16).with_fault_plan(plan),
        );
        for &(tag, t) in &inputs {
            join.process(tag, t).unwrap();
        }
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        assert_eq!(outcome.fault.injected_stalls, 1);
        assert_eq!(outcome.fault.injected_drops, 1);
        assert!(outcome.fault.degraded());
        assert!(outcome.fault.workers_lost.is_empty());
    }

    #[test]
    fn scripted_panic_surfaces_as_worker_panicked() {
        let inputs: Vec<_> = WorkloadSpec::new(200, KeyDist::Uniform { domain: 4 })
            .generate()
            .collect();
        let plan = FaultPlan::parse("panic1@3").unwrap();
        let join = HandshakeJoin::spawn(
            HandshakeConfig::new(2, 16).with_fault_plan(plan),
        );
        for &(tag, t) in &inputs {
            join.process(tag, t).unwrap();
        }
        let _ = join.flush();
        match join.shutdown() {
            Err(JoinError::WorkerPanicked { worker, stats_so_far }) => {
                assert_eq!(worker, 1);
                assert!(stats_so_far.tuples_seen > 0, "snapshot published pre-panic");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn fallible_surface_round_trips_a_match() {
        let join = HandshakeJoin::spawn(HandshakeConfig::new(2, 8));
        join.process(StreamTag::S, Tuple::new(3, 0)).unwrap();
        join.flush().unwrap();
        join.process(StreamTag::R, Tuple::new(3, 1)).unwrap();
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        assert_eq!(outcome.result_count, 1);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn tracing_records_core_spans_without_changing_results() {
        let inputs: Vec<_> = WorkloadSpec::new(120, KeyDist::Uniform { domain: 6 })
            .generate()
            .collect();
        let want = as_multiset(&reference_join(&inputs, 32, JoinPredicate::Equi));

        obs::trace::enable(1);
        let join = HandshakeJoin::spawn(HandshakeConfig::new(4, 32));
        for &(tag, t) in &inputs {
            join.process(tag, t).unwrap();
            join.flush().unwrap();
        }
        let outcome = join.shutdown().unwrap();
        obs::trace::disable();

        // Serialized feeding stays exact with tracing on.
        assert_eq!(as_multiset(&outcome.results), want);

        assert_eq!(outcome.trace.len(), 4);
        let mut tracks: Vec<_> =
            outcome.trace.iter().map(|r| r.track().to_string()).collect();
        tracks.sort();
        assert_eq!(tracks, ["hs.core.0", "hs.core.1", "hs.core.2", "hs.core.3"]);
        for ring in &outcome.trace {
            assert_eq!(ring.domain(), obs::trace::TimeDomain::Wall);
            let events = ring.events();
            assert!(!events.is_empty(), "core ring {} is empty", ring.track());
            assert!(
                events.iter().any(|e| e.name == "wave"),
                "no wave spans on {}",
                ring.track()
            );
            for e in &events {
                assert!(
                    ["recv", "wave"].contains(&e.name),
                    "unexpected span name {}",
                    e.name
                );
            }
        }
    }

    #[test]
    fn no_matches_before_windows_overlap() {
        let join = HandshakeJoin::spawn(HandshakeConfig::new(2, 8));
        join.process(StreamTag::R, Tuple::new(1, 0)).unwrap();
        join.process(StreamTag::R, Tuple::new(2, 1)).unwrap();
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        assert_eq!(outcome.result_count, 0);
    }
}
