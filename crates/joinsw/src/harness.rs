//! Measurement harness for the software joins (Figs. 14d and 16).
//!
//! Since the `StreamJoin` convergence the measurement loops are generic:
//! [`measure_throughput_with`] and [`measure_latency_with`] drive any
//! engine implementing [`StreamJoin`] — the SplitJoin router, the
//! handshake chain, or the single-threaded baseline — through the same
//! warm-up/feed/flush protocol, and the engine-named wrappers
//! ([`measure_throughput`], [`measure_handshake_throughput`],
//! [`measure_latency`]) are thin typed aliases kept for the figure
//! binaries. All of them are fallible: a run that loses its last worker
//! (or trips the saturation supervisor) reports a
//! [`JoinError`] instead of panicking mid-measurement, and scripted
//! fault scenarios surface their damage in the returned outcome's
//! fault report.

use std::time::Instant;

use accel_error::JoinError;
use streamcore::metrics::{LatencyRecorder, LatencySummary, Throughput};
use streamcore::{StreamTag, Tuple};

use crate::config::JoinParams;
use crate::handshake::{HandshakeConfig, HandshakeJoin, HandshakeOutcome};
use crate::splitjoin::{JoinOutcome, SplitJoin, SplitJoinConfig};
use crate::streamjoin::StreamJoin;

/// Parallel efficiency of the software SplitJoin when one thread per join
/// core actually gets its own hardware core. Calibrated to the paper's
/// observation that throughput peaked at 28 of 32 cores because "the
/// distribution and result gathering network also consume a portion of
/// the processors' capacity".
pub const PARALLEL_EFFICIENCY: f64 = 0.875;

/// Number of hardware threads available on this host.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Models N-core SplitJoin throughput from a measured single-core rate.
///
/// On hosts with fewer hardware threads than join cores (this
/// reproduction's default environment is a 1-CPU container, unlike the
/// paper's 32-core Dell R820), wall-clock multi-thread runs measure the
/// scheduler, not the algorithm. The bench harness therefore measures the
/// single-core comparison rate for the exact window size and predicts the
/// N-core rate as `N × efficiency × single_core_rate` — the linear-scaling
/// shape the paper reports, with the efficiency anchor above.
pub fn modeled_throughput(single_core: Throughput, num_cores: usize) -> f64 {
    single_core.per_second() * num_cores as f64 * PARALLEL_EFFICIENCY
}

/// Pre-fills both windows of any running [`StreamJoin`] to capacity with
/// non-matching keys and flushes, leaving it in steady state.
///
/// # Errors
///
/// See [`StreamJoin::process`].
pub fn prefill_steady_state<J: StreamJoin>(
    join: &J,
    window_size: usize,
) -> Result<(), JoinError> {
    join.warm(window_size)?;
    join.flush()
}

/// Measures steady-state input throughput of any [`StreamJoin`] engine:
/// the windows are pre-filled (counting-only, so no collector work
/// distorts the rate), then `tuples` inputs (alternating R/S, keys
/// hashed over `key_domain`) are pushed as fast as the engine absorbs
/// them. Returns the rate together with the shutdown outcome, so bench
/// manifests can archive batch-size histograms, per-worker counters,
/// and the fault report alongside the number.
///
/// # Errors
///
/// See [`StreamJoin::process`].
pub fn measure_throughput_with<J: StreamJoin>(
    mut config: J::Config,
    tuples: u64,
    key_domain: u32,
) -> Result<(Throughput, J::Outcome), JoinError> {
    config.common_mut().collect_results = false;
    measure_throughput_collecting::<J>(config, tuples, key_domain)
}

/// [`measure_throughput_with`] that honors the config's
/// `collect_results` flag instead of forcing counting-only. With
/// collection on, the timed segment exercises the full materializing
/// path — matches are built, chunked, and handed to a live collector
/// draining concurrently — which is what the kernel figure's
/// materializing variants compare across probe kernels.
///
/// # Errors
///
/// See [`StreamJoin::process`].
pub fn measure_throughput_collecting<J: StreamJoin>(
    config: J::Config,
    tuples: u64,
    key_domain: u32,
) -> Result<(Throughput, J::Outcome), JoinError> {
    let window = config.common().window_size;
    let join = J::spawn(config);
    prefill_steady_state(&join, window)?;
    let start = Instant::now();
    for seq in 0..tuples {
        let tag = if seq % 2 == 0 { StreamTag::R } else { StreamTag::S };
        let key = ((seq as u32).wrapping_mul(2_654_435_761) >> 16) % key_domain;
        join.process(tag, Tuple::new(key, seq as u32))?;
    }
    join.flush()?;
    let elapsed = start.elapsed();
    let outcome = join.shutdown()?;
    Ok((Throughput::over_duration(tuples, elapsed), outcome))
}

/// SplitJoin-typed [`measure_throughput_with`] — the experiment behind
/// Fig. 14d. Per-tuple cross-thread wake-ups (`batch_size = 1`) measure
/// the channel implementation as much as the join, which is exactly the
/// contrast `BENCH_swjoin.json` records.
///
/// # Errors
///
/// See [`StreamJoin::process`].
pub fn measure_throughput(
    config: SplitJoinConfig,
    tuples: u64,
    key_domain: u32,
) -> Result<Throughput, JoinError> {
    Ok(measure_throughput_outcome(config, tuples, key_domain)?.0)
}

/// [`measure_throughput`] that also returns the shutdown
/// [`JoinOutcome`], so bench manifests can archive the batch-size
/// histogram and per-worker counters alongside the rate.
///
/// # Errors
///
/// See [`StreamJoin::process`].
pub fn measure_throughput_outcome(
    config: SplitJoinConfig,
    tuples: u64,
    key_domain: u32,
) -> Result<(Throughput, JoinOutcome), JoinError> {
    measure_throughput_with::<SplitJoin>(config, tuples, key_domain)
}

/// Handshake-typed [`measure_throughput_with`] — the uni-flow/bi-flow
/// comparison of Fig. 14b, in software. The chain has no probe-free
/// pre-fill path (window placement *is* the flow), so the warm-up
/// processes `2 × window` tuples through the chain before the timed
/// segment starts.
///
/// # Errors
///
/// See [`StreamJoin::process`].
pub fn measure_handshake_throughput(
    config: HandshakeConfig,
    tuples: u64,
    key_domain: u32,
) -> Result<Throughput, JoinError> {
    Ok(measure_handshake_throughput_outcome(config, tuples, key_domain)?.0)
}

/// [`measure_handshake_throughput`] that also returns the shutdown
/// [`HandshakeOutcome`], so bench manifests can archive the batch-size
/// histogram and any harvested span rings alongside the rate.
///
/// # Errors
///
/// See [`StreamJoin::process`].
pub fn measure_handshake_throughput_outcome(
    config: HandshakeConfig,
    tuples: u64,
    key_domain: u32,
) -> Result<(Throughput, HandshakeOutcome), JoinError> {
    measure_throughput_with::<HandshakeJoin>(config, tuples, key_domain)
}

/// Measures per-tuple latency of any [`StreamJoin`] engine: with
/// pre-filled windows, each sample submits one tuple and waits until the
/// engine has processed it and emitted its results (flush barrier) — the
/// paper's definition of latency ("time to process and emit all results
/// for a newly inserted tuple"). Returns the summary, the full sample
/// distribution as a log2-bucketed [`obs::Histogram`] (nanoseconds), and
/// the shutdown outcome.
///
/// # Errors
///
/// See [`StreamJoin::process`].
pub fn measure_latency_with<J: StreamJoin>(
    mut config: J::Config,
    samples: usize,
    key_domain: u32,
) -> Result<(LatencySummary, obs::Histogram, J::Outcome), JoinError> {
    let window = config.common().window_size;
    config.common_mut().collect_results = false;
    let join = J::spawn(config);
    prefill_steady_state(&join, window)?;
    let mut recorder = LatencyRecorder::new();
    for i in 0..samples {
        let tag = if i % 2 == 0 { StreamTag::R } else { StreamTag::S };
        let key = ((i as u32).wrapping_mul(2_654_435_761) >> 16) % key_domain;
        let start = Instant::now();
        join.process(tag, Tuple::new(key, i as u32))?;
        join.flush()?;
        recorder.record(start.elapsed());
    }
    let outcome = join.shutdown()?;
    Ok((
        recorder.summary().expect("samples recorded"),
        recorder.histogram(),
        outcome,
    ))
}

/// SplitJoin-typed [`measure_latency_with`] returning just the summary —
/// the experiment behind Fig. 16.
///
/// # Errors
///
/// See [`StreamJoin::process`].
pub fn measure_latency(
    config: SplitJoinConfig,
    samples: usize,
    key_domain: u32,
) -> Result<LatencySummary, JoinError> {
    Ok(measure_latency_hist(config, samples, key_domain)?.0)
}

/// [`measure_latency`] that also returns the full sample distribution —
/// the summary's p50/p99 collapse the distribution; the histogram is
/// what the bench manifests archive.
///
/// # Errors
///
/// See [`StreamJoin::process`].
pub fn measure_latency_hist(
    config: SplitJoinConfig,
    samples: usize,
    key_domain: u32,
) -> Result<(LatencySummary, obs::Histogram), JoinError> {
    let (s, h, _) = measure_latency_outcome(config, samples, key_domain)?;
    Ok((s, h))
}

/// [`measure_latency_hist`] that also returns the shutdown
/// [`JoinOutcome`], so bench manifests can archive per-worker counters
/// and any harvested span rings alongside the latency distribution.
///
/// # Errors
///
/// See [`StreamJoin::process`].
pub fn measure_latency_outcome(
    config: SplitJoinConfig,
    samples: usize,
    key_domain: u32,
) -> Result<(LatencySummary, obs::Histogram, JoinOutcome), JoinError> {
    measure_latency_with::<SplitJoin>(config, samples, key_domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineJoin;
    use crate::config::JoinConfig;

    #[test]
    fn throughput_decreases_with_window_size() {
        // Fig. 14d shape: 1/W scaling of the nested-loop probe.
        let small =
            measure_throughput(SplitJoinConfig::new(2, 1 << 8), 2_000, 1 << 20).unwrap();
        let large =
            measure_throughput(SplitJoinConfig::new(2, 1 << 12), 2_000, 1 << 20).unwrap();
        assert!(
            small.per_second() > 2.0 * large.per_second(),
            "16x window should cost well over 2x throughput: {small} vs {large}"
        );
    }

    #[test]
    fn throughput_improves_with_cores() {
        // Fig. 14d: more cores help. On a host with real parallelism this
        // shows up in wall-clock throughput; on a single-CPU host (this
        // repo's default container) wall-clock cannot improve, so we
        // verify the property that *produces* the speedup — each core does
        // only 1/N of the probe work — plus the calibrated model.
        if host_parallelism() >= 4 {
            let one = measure_throughput(SplitJoinConfig::new(1, 1 << 12), 4_000, 1 << 20)
                .unwrap();
            let four =
                measure_throughput(SplitJoinConfig::new(4, 1 << 12), 4_000, 1 << 20)
                    .unwrap();
            assert!(
                four.per_second() > 1.5 * one.per_second(),
                "4 cores should beat 1 core clearly: {four} vs {one}"
            );
        } else {
            let join = SplitJoin::spawn(SplitJoinConfig::new(4, 1 << 8));
            prefill_steady_state(&join, 1 << 8).unwrap();
            for i in 0..100u32 {
                join.process(StreamTag::R, Tuple::new(1 << 30, i)).unwrap();
            }
            join.flush().unwrap();
            let outcome = join.shutdown().unwrap();
            for ws in &outcome.worker_stats {
                // Each probe scans only the 64-tuple sub-window, not 256.
                assert_eq!(ws.comparisons, 100 * 64);
            }
            let one = Throughput::over_duration(
                1_000,
                std::time::Duration::from_secs(1),
            );
            assert_eq!(modeled_throughput(one, 4), 3_500.0);
        }
    }

    #[test]
    fn harness_workload_is_kernel_invariant() {
        // The bench harness drives the same deterministic tuple stream
        // through both kernels; every logical counter must be
        // bit-identical, or the kernel A/B in `BENCH_swjoin.json` would
        // compare different joins.
        let mk = |kernel| {
            SplitJoinConfig::new(3, 1 << 8)
                .with_batch_size(64)
                .with_kernel(kernel)
                .counting_only()
        };
        let (_, scalar) =
            measure_throughput_outcome(mk(crate::config::Kernel::Scalar), 3_000, 1 << 10)
                .unwrap();
        let (_, blocked) =
            measure_throughput_outcome(mk(crate::config::Kernel::Blocked), 3_000, 1 << 10)
                .unwrap();
        assert_eq!(scalar.result_count, blocked.result_count);
        assert_eq!(scalar.worker_stats, blocked.worker_stats);
        assert!(scalar.kernel_stats.is_none());
        assert!(blocked.kernel_stats.unwrap().tiles > 0);
    }

    #[test]
    fn handshake_throughput_is_measurable() {
        let t = measure_handshake_throughput(
            crate::handshake::HandshakeConfig::new(2, 1 << 8),
            2_000,
            1 << 20,
        )
        .unwrap();
        assert!(t.per_second() > 0.0);
        assert_eq!(t.events(), 2_000);
    }

    #[test]
    fn every_engine_measures_through_the_unified_surface() {
        let (t, _) = measure_throughput_with::<BaselineJoin>(
            JoinConfig::new(1, 1 << 6),
            500,
            1 << 20,
        )
        .unwrap();
        assert!(t.per_second() > 0.0);
        let (t, outcome) = measure_throughput_with::<SplitJoin>(
            SplitJoinConfig::new(2, 1 << 6),
            500,
            1 << 20,
        )
        .unwrap();
        assert!(t.per_second() > 0.0);
        assert!(!outcome.fault.degraded());
        let (t, _) = measure_throughput_with::<HandshakeJoin>(
            HandshakeConfig::new(2, 1 << 6),
            500,
            1 << 20,
        )
        .unwrap();
        assert!(t.per_second() > 0.0);
    }

    #[test]
    fn latency_summary_is_populated() {
        let s = measure_latency(SplitJoinConfig::new(2, 1 << 10), 50, 1 << 20).unwrap();
        assert_eq!(s.samples, 50);
        assert!(s.mean.as_nanos() > 0);
        assert!(s.max >= s.p50);
    }

    #[test]
    fn latency_grows_with_window() {
        // Fig. 16 shape: larger windows -> longer scans -> higher latency.
        let small =
            measure_latency(SplitJoinConfig::new(2, 1 << 10), 40, 1 << 20).unwrap();
        let large =
            measure_latency(SplitJoinConfig::new(2, 1 << 15), 40, 1 << 20).unwrap();
        assert!(
            large.p50 > small.p50,
            "latency should grow with window: {small} vs {large}"
        );
    }
}
