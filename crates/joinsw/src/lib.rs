//! Software realizations of flow-based parallel stream joins.
//!
//! This crate is the "software" column of the paper's evaluation: the
//! multithreaded SplitJoin (uni-flow) whose measurements appear in
//! Figs. 14d and 16, a software handshake join (bi-flow) chain, and a
//! single-threaded nested-loop baseline that doubles as the strict-
//! semantics reference implementation used by tests across the workspace.
//!
//! * [`splitjoin`] — uni-flow: a distributor broadcasts every tuple to N
//!   independent join-core threads; each thread stores round-robin into
//!   its sub-window and probes its share of the opposite window; results
//!   converge on a collector thread. The thread structure mirrors the
//!   SplitJoin paper's software implementation, including the observation
//!   that the distribution and result-gathering work "consume a portion
//!   of the processors' capacity" — which is why both directions of the
//!   data path are batched (see the module docs) and the sub-windows are
//!   flat struct-of-arrays rings (`streamcore::FlatWindow` /
//!   `streamcore::HashIndexWindow`).
//! * [`handshake`] — bi-flow: a chain of threads through which R flows
//!   left-to-right and S right-to-left with low-latency fast-forwarding,
//!   with the same optional wave batching.
//! * [`baseline`] — the strict-semantics reference join.
//! * [`harness`] — the measurement loops behind those figures:
//!   [`harness::measure_throughput`], [`harness::measure_latency`] (and
//!   [`harness::measure_latency_hist`], which also returns the full
//!   sample distribution as an [`obs::Histogram`] for the bench
//!   manifests), plus the calibrated multi-core scaling model used when
//!   the host has fewer hardware threads than join cores.
//!
//! Latency here is wall-clock (nanoseconds), unlike `joinhw`'s simulated
//! cycle counts: these joins run on real OS threads, so their harness
//! measures with `Instant` and archives distributions rather than single
//! averages.
//!
//! # Example
//!
//! ```
//! use joinsw::splitjoin::{SplitJoin, SplitJoinConfig};
//! use streamcore::{StreamTag, Tuple};
//!
//! let config = SplitJoinConfig::new(4, 1024);
//! let join = SplitJoin::spawn(config);
//! join.process(StreamTag::S, Tuple::new(7, 0));
//! join.process(StreamTag::R, Tuple::new(7, 1));
//! join.flush();
//! let outcome = join.shutdown();
//! assert_eq!(outcome.results.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod handshake;
pub mod harness;
pub mod splitjoin;
