//! Software realizations of flow-based parallel stream joins.
//!
//! This crate is the "software" column of the paper's evaluation: the
//! multithreaded SplitJoin (uni-flow) whose measurements appear in
//! Figs. 14d and 16, a software handshake join (bi-flow) chain, and a
//! single-threaded nested-loop baseline that doubles as the strict-
//! semantics reference implementation used by tests across the workspace.
//!
//! * [`splitjoin`] — uni-flow: a distributor broadcasts every tuple to N
//!   independent join-core threads; each thread stores round-robin into
//!   its sub-window and probes its share of the opposite window; results
//!   converge on a collector thread. The thread structure mirrors the
//!   SplitJoin paper's software implementation, including the observation
//!   that the distribution and result-gathering work "consume a portion
//!   of the processors' capacity" — which is why both directions of the
//!   data path are batched (see the module docs) and the sub-windows are
//!   flat struct-of-arrays rings (`streamcore::FlatWindow` /
//!   `streamcore::HashIndexWindow`).
//! * [`handshake`] — bi-flow: a chain of threads through which R flows
//!   left-to-right and S right-to-left with low-latency fast-forwarding,
//!   with the same optional wave batching.
//! * [`baseline`] — the strict-semantics reference join, plus
//!   [`baseline::BaselineJoin`] wrapping it behind the unified trait.
//! * [`streamjoin`] — the unified [`StreamJoin`] surface: every engine
//!   behind the same five fallible verbs (spawn, process, prefill,
//!   flush, shutdown), with [`JoinSummary`] as the common outcome view.
//! * [`config`] — the shared [`JoinConfig`] builder (cores, window,
//!   predicate, batching, channel capacity, fault plan) that every
//!   engine-specific config embeds and exposes via [`JoinParams`].
//! * [`fault`] — deterministic fault injection: a seedless, scripted
//!   [`FaultPlan`] (kill/stall/drop/panic worker k at batch n) and the
//!   [`FaultReport`] each outcome carries describing exactly what
//!   capacity and match-completeness was lost.
//! * [`harness`] — the measurement loops behind those figures, now
//!   generic over [`StreamJoin`]: [`harness::measure_throughput_with`],
//!   [`harness::measure_latency_with`] and their engine-typed wrappers,
//!   plus the calibrated multi-core scaling model used when the host has
//!   fewer hardware threads than join cores.
//!
//! # Fault model
//!
//! The data path never panics on a dead peer. Channel sends are
//! supervised (bounded exponential backoff with a saturation deadline),
//! worker liveness is tracked through heartbeat counters, and losing a
//! join core *degrades* the run instead of aborting it: the SplitJoin
//! router re-partitions new tuples over the survivors (see
//! `streamcore::PartitionMap`) and the handshake chain severs at the
//! dead core. Each outcome's [`FaultReport`] accounts the exact
//! match-completeness loss (orphaned sub-window tuples) and recovery
//! latency. Only unrecoverable conditions — every worker gone, a worker
//! panic, saturation past the deadline — surface as [`JoinError`].
//!
//! Latency here is wall-clock (nanoseconds), unlike `joinhw`'s simulated
//! cycle counts: these joins run on real OS threads, so their harness
//! measures with `Instant` and archives distributions rather than single
//! averages.
//!
//! # Example
//!
//! ```
//! use joinsw::splitjoin::{SplitJoin, SplitJoinConfig};
//! use joinsw::StreamJoin;
//! use streamcore::{StreamTag, Tuple};
//!
//! let config = SplitJoinConfig::new(4, 1024);
//! let join = SplitJoin::spawn(config);
//! join.process(StreamTag::S, Tuple::new(7, 0)).unwrap();
//! join.process(StreamTag::R, Tuple::new(7, 1)).unwrap();
//! join.flush().unwrap();
//! let outcome = join.shutdown().unwrap();
//! assert_eq!(outcome.results.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod collect;
pub mod config;
pub mod fault;
pub mod handshake;
pub mod harness;
pub mod splitjoin;
pub mod streamjoin;
mod supervise;

pub use accel_error::{JoinError, WorkerStats};
pub use config::{
    default_batch_size, default_kernel, default_partitioning, default_transport, JoinConfig,
    JoinParams, Kernel, Partitioning, Transport, DEFAULT_BATCH_SIZE,
};
pub use fault::{FaultEvent, FaultPlan, FaultReport};
pub use streamjoin::{JoinSummary, StreamJoin};

/// The convenient single import for driving the software joins: the
/// unified trait surface, the shared configuration with its env-override
/// story, the error vocabulary, and every engine type.
///
/// ```
/// use joinsw::prelude::*;
/// use streamcore::{StreamTag, Tuple};
///
/// let join = BaselineJoin::spawn(JoinConfig::new(1, 16));
/// join.process(StreamTag::S, Tuple::new(1, 0)).unwrap();
/// join.process(StreamTag::R, Tuple::new(1, 1)).unwrap();
/// assert_eq!(join.drain_results().unwrap().len(), 1);
/// join.shutdown().unwrap();
/// ```
pub mod prelude {
    pub use crate::baseline::{BaselineJoin, NestedLoopJoin};
    pub use crate::config::{JoinConfig, JoinParams, Kernel, Partitioning, Transport};
    pub use crate::fault::{FaultEvent, FaultPlan, FaultReport};
    pub use crate::handshake::{HandshakeConfig, HandshakeJoin, HandshakeOutcome};
    pub use crate::splitjoin::{JoinOutcome, SplitJoin, SplitJoinConfig};
    pub use crate::streamjoin::{JoinSummary, StreamJoin};
    pub use accel_error::{JoinError, WorkerStats};
}
