//! Multithreaded uni-flow stream join (SplitJoin) — the software system
//! measured in Figs. 14d and 16 of the paper.
//!
//! Architecture (mirroring the hardware design of Fig. 9 in threads):
//!
//! ```text
//!            caller thread (distribution network)
//!           /         |          \
//!      join core   join core   join core      (N worker threads)
//!           \         |          /
//!             collector thread (result gathering network)
//! ```
//!
//! Each worker owns one sub-window per stream and receives *every* tuple:
//! it probes the tuple against its share of the opposite window and stores
//! it round-robin ("each join core independently counts the number of
//! tuples received and, based on its position among other join cores,
//! determines its turn to store") — no central coordination.

use std::collections::{HashMap, VecDeque};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use streamcore::{JoinPredicate, MatchPair, SlidingWindow, StreamTag, Tuple};

/// Join algorithm inside each worker (mirrors `joinhw::JoinAlgorithm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwJoinAlgorithm {
    /// Scan the whole opposite sub-window per probe — any predicate.
    NestedLoop,
    /// Probe a per-key hash index — equi-joins only, O(matches) probes.
    Hash,
}

/// Configuration of a [`SplitJoin`] instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitJoinConfig {
    /// Number of join-core threads.
    pub num_cores: usize,
    /// Sliding-window size per stream (tuples), divided across cores.
    pub window_size: usize,
    /// Join condition.
    pub predicate: JoinPredicate,
    /// Join algorithm (default nested-loop, as the paper measures).
    pub algorithm: SwJoinAlgorithm,
    /// Per-worker input channel capacity (back-pressure depth).
    pub channel_capacity: usize,
    /// If `false`, the collector counts results but does not retain them
    /// (throughput runs over long streams).
    pub collect_results: bool,
}

impl SplitJoinConfig {
    /// An equi-join configuration with default channel sizing.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` or `window_size` is zero.
    pub fn new(num_cores: usize, window_size: usize) -> Self {
        assert!(num_cores > 0, "need at least one join core");
        assert!(window_size > 0, "window size must be positive");
        Self {
            num_cores,
            window_size,
            predicate: JoinPredicate::Equi,
            algorithm: SwJoinAlgorithm::NestedLoop,
            channel_capacity: 1_024,
            collect_results: true,
        }
    }

    /// Replaces the join predicate.
    pub fn with_predicate(mut self, predicate: JoinPredicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Selects the join algorithm.
    ///
    /// # Panics
    ///
    /// Panics if [`SwJoinAlgorithm::Hash`] is combined with a non-equi
    /// predicate.
    pub fn with_algorithm(mut self, algorithm: SwJoinAlgorithm) -> Self {
        assert!(
            algorithm != SwJoinAlgorithm::Hash || self.predicate == JoinPredicate::Equi,
            "hash join requires an equi-join predicate"
        );
        self.algorithm = algorithm;
        self
    }

    /// Disables result retention (counting only).
    pub fn counting_only(mut self) -> Self {
        self.collect_results = false;
        self
    }

    /// Per-core sub-window capacity.
    pub fn sub_window(&self) -> usize {
        self.window_size.div_ceil(self.num_cores)
    }

    /// The window size actually realized: `num_cores × sub_window()`.
    /// Equals `window_size` whenever it divides evenly by the core count.
    pub fn effective_window(&self) -> usize {
        self.sub_window() * self.num_cores
    }
}

enum Msg {
    Tuple(StreamTag, Tuple),
    Batch(Vec<(StreamTag, Tuple)>),
    Prefill(StreamTag, Vec<Tuple>),
    Flush(Sender<()>),
    Stop,
}

/// Statistics reported by each worker at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tuples this worker received.
    pub tuples_seen: u64,
    /// Tuples this worker stored into a sub-window.
    pub stored: u64,
    /// Window comparisons performed.
    pub comparisons: u64,
    /// Matches emitted.
    pub matches: u64,
}

/// Everything a [`SplitJoin`] leaves behind at shutdown.
#[derive(Debug, Clone, Default)]
pub struct JoinOutcome {
    /// All collected results (empty when configured counting-only).
    pub results: Vec<MatchPair>,
    /// Total results observed by the collector.
    pub result_count: u64,
    /// Per-worker statistics, indexed by core position.
    pub worker_stats: Vec<WorkerStats>,
}

/// A running SplitJoin: N join-core threads plus a collector thread.
///
/// See the [crate-level example](crate) for basic usage.
#[derive(Debug)]
pub struct SplitJoin {
    senders: Vec<Sender<Msg>>,
    workers: Vec<JoinHandle<WorkerStats>>,
    collector: JoinHandle<(u64, Vec<MatchPair>)>,
}

impl SplitJoin {
    /// Spawns the worker and collector threads.
    pub fn spawn(config: SplitJoinConfig) -> Self {
        let (result_tx, result_rx) = bounded::<MatchPair>(8_192);
        let collect = config.collect_results;
        let collector = std::thread::spawn(move || collector_loop(result_rx, collect));

        let mut senders = Vec::with_capacity(config.num_cores);
        let mut workers = Vec::with_capacity(config.num_cores);
        for position in 0..config.num_cores {
            let (tx, rx) = bounded::<Msg>(config.channel_capacity);
            senders.push(tx);
            let cfg = config.clone();
            let results = result_tx.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(position, &cfg, &rx, &results)
            }));
        }
        drop(result_tx); // collector exits once every worker has stopped
        Self {
            senders,
            workers,
            collector,
        }
    }

    /// Broadcasts one tuple to every join core (the distribution step).
    /// Blocks when worker queues are full — natural back-pressure.
    pub fn process(&self, tag: StreamTag, tuple: Tuple) {
        for tx in &self.senders {
            tx.send(Msg::Tuple(tag, tuple)).expect("worker alive");
        }
    }

    /// Broadcasts a batch of tuples in one message per worker. Amortizes
    /// the cross-thread wake-up cost of the distribution step, which
    /// otherwise dominates when the per-tuple probe is short — the
    /// "distribution network consumes a portion of the processors'
    /// capacity" effect the paper observes in software.
    pub fn process_batch(&self, batch: &[(StreamTag, Tuple)]) {
        for tx in &self.senders {
            tx.send(Msg::Batch(batch.to_vec())).expect("worker alive");
        }
    }

    /// Loads `tuples` directly into the sliding windows without probing —
    /// measurement setup, mirroring the hardware pre-fill path.
    pub fn prefill(&self, tag: StreamTag, tuples: &[Tuple]) {
        for tx in &self.senders {
            tx.send(Msg::Prefill(tag, tuples.to_vec()))
                .expect("worker alive");
        }
    }

    /// Blocks until every worker has drained its queue and processed
    /// everything submitted before this call.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = bounded::<()>(self.senders.len());
        for tx in &self.senders {
            tx.send(Msg::Flush(ack_tx.clone())).expect("worker alive");
        }
        drop(ack_tx);
        // One ack per worker; channel closes afterwards.
        let acks = ack_rx.iter().count();
        assert_eq!(acks, self.senders.len(), "missing flush acks");
    }

    /// Stops all threads and returns the accumulated outcome.
    pub fn shutdown(self) -> JoinOutcome {
        for tx in &self.senders {
            tx.send(Msg::Stop).expect("worker alive");
        }
        drop(self.senders);
        let mut worker_stats = Vec::with_capacity(self.workers.len());
        for w in self.workers {
            worker_stats.push(w.join().expect("worker thread panicked"));
        }
        let (result_count, results) =
            self.collector.join().expect("collector thread panicked");
        JoinOutcome {
            results,
            result_count,
            worker_stats,
        }
    }
}

fn collector_loop(rx: Receiver<MatchPair>, collect: bool) -> (u64, Vec<MatchPair>) {
    let mut count = 0u64;
    let mut kept = Vec::new();
    for m in rx.iter() {
        count += 1;
        if collect {
            kept.push(m);
        }
    }
    (count, kept)
}

/// Worker-local sub-window storage, specialized per algorithm.
#[derive(Debug, Clone)]
enum SwWindow {
    Nested(SlidingWindow<Tuple>),
    Hash {
        slots: VecDeque<Tuple>,
        index: HashMap<u32, VecDeque<Tuple>>,
        capacity: usize,
    },
}

impl SwWindow {
    fn new(algorithm: SwJoinAlgorithm, capacity: usize) -> Self {
        match algorithm {
            SwJoinAlgorithm::NestedLoop => SwWindow::Nested(SlidingWindow::new(capacity)),
            SwJoinAlgorithm::Hash => SwWindow::Hash {
                slots: VecDeque::with_capacity(capacity),
                index: HashMap::new(),
                capacity,
            },
        }
    }

    fn insert(&mut self, tuple: Tuple) {
        match self {
            SwWindow::Nested(w) => {
                w.insert(tuple);
            }
            SwWindow::Hash {
                slots,
                index,
                capacity,
            } => {
                if slots.len() == *capacity {
                    let old = slots.pop_front().expect("full window");
                    let bucket = index.get_mut(&old.key()).expect("indexed");
                    bucket.pop_front();
                    if bucket.is_empty() {
                        index.remove(&old.key());
                    }
                }
                slots.push_back(tuple);
                index.entry(tuple.key()).or_default().push_back(tuple);
            }
        }
    }

    /// Visits the probe candidates for `key`: the whole window for
    /// nested-loop, the matching bucket for hash. Returns a concrete
    /// iterator — this is the innermost loop of the whole crate, and a
    /// boxed iterator's virtual dispatch costs ~3× per comparison.
    fn probe(&self, key: u32) -> ProbeIter<'_> {
        match self {
            SwWindow::Nested(w) => ProbeIter::Nested(w.into_iter()),
            SwWindow::Hash { index, .. } => {
                ProbeIter::Hash(index.get(&key).map(|b| b.iter()))
            }
        }
    }
}

/// Concrete probe iterator over a [`SwWindow`].
enum ProbeIter<'a> {
    Nested(std::collections::vec_deque::Iter<'a, Tuple>),
    Hash(Option<std::collections::vec_deque::Iter<'a, Tuple>>),
}

impl Iterator for ProbeIter<'_> {
    type Item = Tuple;

    #[inline]
    fn next(&mut self) -> Option<Tuple> {
        match self {
            ProbeIter::Nested(it) => it.next().copied(),
            ProbeIter::Hash(Some(it)) => it.next().copied(),
            ProbeIter::Hash(None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            ProbeIter::Nested(it) => it.size_hint(),
            ProbeIter::Hash(Some(it)) => it.size_hint(),
            ProbeIter::Hash(None) => (0, Some(0)),
        }
    }
}

struct WorkerState<'a> {
    position: u64,
    n: u64,
    predicate: JoinPredicate,
    window_r: SwWindow,
    window_s: SwWindow,
    r_count: u64,
    s_count: u64,
    stats: WorkerStats,
    results: &'a Sender<MatchPair>,
}

impl WorkerState<'_> {
    fn handle_tuple(&mut self, tag: StreamTag, tuple: Tuple) {
        self.stats.tuples_seen += 1;
        // Probe the opposite sub-window.
        let opposite = match tag {
            StreamTag::R => &self.window_s,
            StreamTag::S => &self.window_r,
        };
        for stored in opposite.probe(tuple.key()) {
            self.stats.comparisons += 1;
            let (r, s) = match tag {
                StreamTag::R => (tuple, stored),
                StreamTag::S => (stored, tuple),
            };
            if self.predicate.matches(r, s) {
                self.stats.matches += 1;
                self.results.send(MatchPair { r, s }).expect("collector alive");
            }
        }
        self.store(tag, tuple, true);
    }

    /// Round-robin storage without central coordination.
    fn store(&mut self, tag: StreamTag, tuple: Tuple, count_stat: bool) {
        let count = match tag {
            StreamTag::R => &mut self.r_count,
            StreamTag::S => &mut self.s_count,
        };
        let my_turn = *count % self.n == self.position;
        *count += 1;
        if my_turn {
            if count_stat {
                self.stats.stored += 1;
            }
            match tag {
                StreamTag::R => self.window_r.insert(tuple),
                StreamTag::S => self.window_s.insert(tuple),
            };
        }
    }
}

fn worker_loop(
    position: usize,
    config: &SplitJoinConfig,
    rx: &Receiver<Msg>,
    results: &Sender<MatchPair>,
) -> WorkerStats {
    let sub = config.sub_window();
    let mut w = WorkerState {
        position: position as u64,
        n: config.num_cores as u64,
        predicate: config.predicate,
        window_r: SwWindow::new(config.algorithm, sub),
        window_s: SwWindow::new(config.algorithm, sub),
        r_count: 0,
        s_count: 0,
        stats: WorkerStats::default(),
        results,
    };

    for msg in rx.iter() {
        match msg {
            Msg::Tuple(tag, tuple) => w.handle_tuple(tag, tuple),
            Msg::Batch(batch) => {
                for (tag, tuple) in batch {
                    w.handle_tuple(tag, tuple);
                }
            }
            Msg::Prefill(tag, tuples) => {
                // Same round-robin discipline, no probing.
                for t in tuples {
                    w.store(tag, t, false);
                }
            }
            Msg::Flush(ack) => {
                let _ = ack.send(());
            }
            Msg::Stop => break,
        }
    }
    w.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::reference_join;
    use std::collections::HashMap;
    use streamcore::workload::{KeyDist, WorkloadSpec};

    fn as_multiset(results: &[MatchPair]) -> HashMap<(u64, u64), u32> {
        let mut m = HashMap::new();
        for p in results {
            *m.entry((p.r.raw(), p.s.raw())).or_insert(0) += 1;
        }
        m
    }

    fn run_workload(config: SplitJoinConfig, inputs: &[(StreamTag, Tuple)]) -> JoinOutcome {
        let join = SplitJoin::spawn(config);
        for &(tag, t) in inputs {
            join.process(tag, t);
        }
        join.flush();
        join.shutdown()
    }

    #[test]
    fn matches_reference_exactly() {
        let inputs: Vec<_> = WorkloadSpec::new(500, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        // Core counts dividing the window: the effective window equals the
        // nominal one (see `effective_window`).
        for cores in [1usize, 2, 4, 8] {
            let outcome = run_workload(SplitJoinConfig::new(cores, 64), &inputs);
            let want = reference_join(&inputs, 64, JoinPredicate::Equi);
            assert_eq!(
                as_multiset(&outcome.results),
                as_multiset(&want),
                "mismatch with {cores} cores"
            );
            assert!(!want.is_empty());
        }
    }

    #[test]
    fn uneven_core_count_rounds_the_window_up() {
        let config = SplitJoinConfig::new(7, 64);
        assert_eq!(config.sub_window(), 10);
        assert_eq!(config.effective_window(), 70);
        // Against a reference with the *effective* window, results match.
        let inputs: Vec<_> = WorkloadSpec::new(600, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let outcome = run_workload(config, &inputs);
        let want = reference_join(&inputs, 70, JoinPredicate::Equi);
        assert_eq!(as_multiset(&outcome.results), as_multiset(&want));
    }

    #[test]
    fn batch_processing_matches_per_tuple_processing() {
        let inputs: Vec<_> = WorkloadSpec::new(300, KeyDist::Uniform { domain: 8 })
            .generate()
            .collect();
        let per_tuple = run_workload(SplitJoinConfig::new(4, 32), &inputs);
        let join = SplitJoin::spawn(SplitJoinConfig::new(4, 32));
        for chunk in inputs.chunks(37) {
            join.process_batch(chunk);
        }
        join.flush();
        let batched = join.shutdown();
        assert_eq!(
            as_multiset(&batched.results),
            as_multiset(&per_tuple.results)
        );
    }

    #[test]
    fn matches_reference_with_expiry() {
        let inputs: Vec<_> = WorkloadSpec::new(2_000, KeyDist::Uniform { domain: 8 })
            .generate()
            .collect();
        let outcome = run_workload(SplitJoinConfig::new(4, 32), &inputs);
        let want = reference_join(&inputs, 32, JoinPredicate::Equi);
        assert_eq!(as_multiset(&outcome.results), as_multiset(&want));
    }

    #[test]
    fn every_worker_sees_every_tuple_but_stores_its_share() {
        let inputs: Vec<_> = WorkloadSpec::new(400, KeyDist::Uniform { domain: 1 << 20 })
            .generate()
            .collect();
        let outcome = run_workload(SplitJoinConfig::new(4, 80), &inputs);
        for (i, ws) in outcome.worker_stats.iter().enumerate() {
            assert_eq!(ws.tuples_seen, 400, "worker {i}");
            assert_eq!(ws.stored, 100, "worker {i}");
        }
    }

    #[test]
    fn prefill_skips_probing_but_keeps_rotation() {
        let config = SplitJoinConfig::new(2, 8);
        let join = SplitJoin::spawn(config);
        let fill: Vec<Tuple> = (0..4u32).map(|i| Tuple::new(i, i)).collect();
        join.prefill(StreamTag::S, &fill);
        // Probe matches exactly one prefilled tuple.
        join.process(StreamTag::R, Tuple::new(2, 99));
        join.flush();
        let outcome = join.shutdown();
        assert_eq!(outcome.result_count, 1);
        let total_comparisons: u64 =
            outcome.worker_stats.iter().map(|w| w.comparisons).sum();
        assert_eq!(total_comparisons, 4, "prefill must not probe");
    }

    #[test]
    fn counting_only_discards_results() {
        let config = SplitJoinConfig::new(2, 16).counting_only();
        let join = SplitJoin::spawn(config);
        join.process(StreamTag::S, Tuple::new(1, 0));
        join.process(StreamTag::R, Tuple::new(1, 1));
        join.flush();
        let outcome = join.shutdown();
        assert_eq!(outcome.result_count, 1);
        assert!(outcome.results.is_empty());
    }

    #[test]
    fn band_predicate_propagates_to_workers() {
        let config =
            SplitJoinConfig::new(3, 9).with_predicate(JoinPredicate::Band { delta: 5 });
        let join = SplitJoin::spawn(config);
        join.process(StreamTag::S, Tuple::new(100, 0));
        join.process(StreamTag::R, Tuple::new(104, 1));
        join.process(StreamTag::R, Tuple::new(106, 2));
        join.flush();
        let outcome = join.shutdown();
        assert_eq!(outcome.result_count, 1);
    }

    #[test]
    fn hash_algorithm_matches_nested_loop_exactly() {
        let inputs: Vec<_> = WorkloadSpec::new(800, KeyDist::Uniform { domain: 12 })
            .generate()
            .collect();
        let nested = run_workload(SplitJoinConfig::new(4, 32), &inputs);
        let hashed = run_workload(
            SplitJoinConfig::new(4, 32).with_algorithm(SwJoinAlgorithm::Hash),
            &inputs,
        );
        assert_eq!(
            as_multiset(&hashed.results),
            as_multiset(&nested.results)
        );
        // Hash workers compare only matching tuples.
        let nested_cmp: u64 = nested.worker_stats.iter().map(|w| w.comparisons).sum();
        let hashed_cmp: u64 = hashed.worker_stats.iter().map(|w| w.comparisons).sum();
        let matches: u64 = hashed.worker_stats.iter().map(|w| w.matches).sum();
        assert_eq!(hashed_cmp, matches);
        assert!(nested_cmp > 2 * hashed_cmp);
    }

    #[test]
    #[should_panic(expected = "hash join requires an equi-join")]
    fn hash_with_band_predicate_is_rejected() {
        let _ = SplitJoinConfig::new(2, 8)
            .with_predicate(JoinPredicate::Band { delta: 2 })
            .with_algorithm(SwJoinAlgorithm::Hash);
    }

    #[test]
    fn flush_is_a_real_barrier() {
        let config = SplitJoinConfig::new(4, 4_096);
        let join = SplitJoin::spawn(config);
        let fill: Vec<Tuple> = (0..4_096u32).map(|i| Tuple::new(i, i)).collect();
        join.prefill(StreamTag::S, &fill);
        for i in 0..64u32 {
            join.process(StreamTag::R, Tuple::new(i, 1 << 20 | i));
        }
        join.flush();
        // After flush all probes are done: every R probed its key once.
        let outcome = join.shutdown();
        assert_eq!(outcome.result_count, 64);
    }
}
