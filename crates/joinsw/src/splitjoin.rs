//! Multithreaded uni-flow stream join (SplitJoin) — the software system
//! measured in Figs. 14d and 16 of the paper.
//!
//! Architecture (mirroring the hardware design of Fig. 9 in threads):
//!
//! ```text
//!            caller thread (distribution network)
//!           /         |          \
//!      join core   join core   join core      (N worker threads)
//!           \         |          /
//!             collector thread (result gathering network)
//! ```
//!
//! Each worker owns one sub-window per stream and receives *every* tuple:
//! it probes the tuple against its share of the opposite window and stores
//! it round-robin ("each join core independently counts the number of
//! tuples received and, based on its position among other join cores,
//! determines its turn to store") — no central coordination.
//!
//! # The batched data path
//!
//! The paper observes that in software "the distribution and result
//! gathering network also consume a portion of the processors' capacity";
//! naïvely that cost is one cross-thread channel message *per tuple per
//! worker* on the way in and one *per match* on the way out, which
//! dominates the short per-tuple probe. This implementation batches both
//! directions:
//!
//! * **Distribution** — [`SplitJoin::process`] accumulates tuples in a
//!   caller-side buffer and ships one [`Arc`]-shared batch message per
//!   [`SplitJoinConfig::batch_size`] tuples to every worker (one
//!   allocation per batch, N reference-count bumps — not N copies).
//! * **Collection** — workers buffer matches locally and emit them to the
//!   collector in chunks; in counting-only mode
//!   ([`SplitJoinConfig::counting_only`]) no collector thread exists at
//!   all and matches are folded from per-worker counters at shutdown.
//!
//! Batching never changes results: [`SplitJoin::flush`] and
//! [`SplitJoin::shutdown`] both drain the partial batch first, so
//! `batch_size = 1` reproduces the unbatched message-per-tuple path
//! exactly and every batch size yields the same result multiset.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use streamcore::{FlatWindow, HashIndexWindow, JoinPredicate, MatchPair, StreamTag, Tuple};

/// Default distribution batch size (tuples per batch message), used by
/// [`SplitJoinConfig::new`] unless overridden by the `ACCEL_SW_BATCH`
/// environment variable (CI runs the whole suite at `ACCEL_SW_BATCH=1`
/// to prove batched and unbatched paths agree).
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// The process-wide default batch size: `ACCEL_SW_BATCH` when set to a
/// positive integer, [`DEFAULT_BATCH_SIZE`] otherwise.
pub fn default_batch_size() -> usize {
    static SIZE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *SIZE.get_or_init(|| {
        std::env::var("ACCEL_SW_BATCH")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_BATCH_SIZE)
    })
}

/// Join algorithm inside each worker (mirrors `joinhw::JoinAlgorithm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwJoinAlgorithm {
    /// Scan the whole opposite sub-window per probe — any predicate.
    /// Backed by [`FlatWindow`]: the scan walks a dense `u32` key array.
    NestedLoop,
    /// Probe a per-key hash index — equi-joins only, O(matches) probes.
    /// Backed by [`HashIndexWindow`]: a flat ring plus an
    /// open-addressing key index.
    Hash,
}

/// Configuration of a [`SplitJoin`] instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitJoinConfig {
    /// Number of join-core threads.
    pub num_cores: usize,
    /// Sliding-window size per stream (tuples), divided across cores.
    pub window_size: usize,
    /// Join condition.
    pub predicate: JoinPredicate,
    /// Join algorithm (default nested-loop, as the paper measures).
    pub algorithm: SwJoinAlgorithm,
    /// Per-worker input channel capacity, counted in **messages** — i.e.
    /// batches, not tuples. The caller can be up to
    /// `channel_capacity × batch_size` tuples ahead of the slowest
    /// worker before [`SplitJoin::process`] blocks (back-pressure), so
    /// raising `batch_size` deepens the effective pipeline even at a
    /// fixed capacity. Must be non-zero.
    pub channel_capacity: usize,
    /// Tuples accumulated per distribution batch message (and the chunk
    /// size of the result-collection path). `1` reproduces the unbatched
    /// message-per-tuple data path exactly; larger values amortize the
    /// cross-thread wake-up cost. Must be non-zero. Results are
    /// identical at every batch size.
    pub batch_size: usize,
    /// If `false`, the collector thread is not spawned at all: workers
    /// count matches locally and the totals are folded at shutdown
    /// (throughput runs over long streams pay zero collection traffic).
    pub collect_results: bool,
}

impl SplitJoinConfig {
    /// An equi-join configuration with default channel and batch sizing
    /// (see [`default_batch_size`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` or `window_size` is zero.
    pub fn new(num_cores: usize, window_size: usize) -> Self {
        assert!(num_cores > 0, "need at least one join core");
        assert!(window_size > 0, "window size must be positive");
        Self {
            num_cores,
            window_size,
            predicate: JoinPredicate::Equi,
            algorithm: SwJoinAlgorithm::NestedLoop,
            channel_capacity: 1_024,
            batch_size: default_batch_size(),
            collect_results: true,
        }
    }

    /// Replaces the join predicate.
    pub fn with_predicate(mut self, predicate: JoinPredicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Selects the join algorithm.
    ///
    /// # Panics
    ///
    /// Panics if [`SwJoinAlgorithm::Hash`] is combined with a non-equi
    /// predicate.
    pub fn with_algorithm(mut self, algorithm: SwJoinAlgorithm) -> Self {
        assert!(
            algorithm != SwJoinAlgorithm::Hash || self.predicate == JoinPredicate::Equi,
            "hash join requires an equi-join predicate"
        );
        self.algorithm = algorithm;
        self
    }

    /// Sets the distribution batch size (see
    /// [`SplitJoinConfig::batch_size`] for the semantics and the
    /// interaction with `channel_capacity`).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Sets the per-worker channel capacity (in batch messages; see
    /// [`SplitJoinConfig::channel_capacity`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity bounded channel
    /// would deadlock the distributor against its own workers.
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        self.channel_capacity = capacity;
        self
    }

    /// Disables result retention and collection (counting only).
    pub fn counting_only(mut self) -> Self {
        self.collect_results = false;
        self
    }

    /// Per-core sub-window capacity.
    pub fn sub_window(&self) -> usize {
        self.window_size.div_ceil(self.num_cores)
    }

    /// The window size actually realized: `num_cores × sub_window()`.
    /// Equals `window_size` whenever it divides evenly by the core count.
    pub fn effective_window(&self) -> usize {
        self.sub_window() * self.num_cores
    }
}

enum Msg {
    /// One distribution batch, shared across all workers.
    Batch(Arc<[(StreamTag, Tuple)]>),
    /// Window pre-fill (no probing), shared across all workers.
    Prefill(StreamTag, Arc<[Tuple]>),
    /// Barrier token: drain local result buffers, then acknowledge.
    Flush(Sender<()>),
    Stop,
}

/// Statistics reported by each worker at shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tuples this worker received.
    pub tuples_seen: u64,
    /// Tuples this worker stored into a sub-window.
    pub stored: u64,
    /// Window comparisons (probe candidates visited).
    pub comparisons: u64,
    /// Matches emitted.
    pub matches: u64,
}

/// Everything a [`SplitJoin`] leaves behind at shutdown.
#[derive(Debug, Clone, Default)]
pub struct JoinOutcome {
    /// All collected results (empty when configured counting-only).
    pub results: Vec<MatchPair>,
    /// Total matches: the collector's tally, or the per-worker counters
    /// folded together when counting-only.
    pub result_count: u64,
    /// Per-worker statistics, indexed by core position.
    pub worker_stats: Vec<WorkerStats>,
    /// Distribution batch sizes (tuples per batch message), as recorded
    /// by the distributor: `total()` is the number of batch messages
    /// sent per worker.
    pub batch_sizes: obs::Histogram,
    /// Wall-clock span rings, one per worker (`sw.worker.<position>`):
    /// receive waits and per-batch probe/prefill/flush work. Empty
    /// unless tracing was enabled when the workers were spawned (see
    /// `obs::trace`).
    pub trace: Vec<obs::trace::TraceRing>,
}

impl JoinOutcome {
    /// Publishes the run's counters under stable dotted names
    /// (`splitjoin.worker<i>.probes`, `.stored`, `.matches`,
    /// `splitjoin.batches`, …) for a
    /// [`RunManifest`](obs::RunManifest).
    pub fn registry(&self) -> obs::Registry {
        let mut reg = obs::Registry::new();
        reg.record("splitjoin.batches", self.batch_sizes.total());
        reg.record("splitjoin.matches", self.result_count);
        for (i, ws) in self.worker_stats.iter().enumerate() {
            reg.record(format!("splitjoin.worker{i}.probes"), ws.comparisons);
            reg.record(format!("splitjoin.worker{i}.stored"), ws.stored);
            reg.record(format!("splitjoin.worker{i}.matches"), ws.matches);
        }
        reg
    }
}

/// A running SplitJoin: N join-core threads plus (when collecting) a
/// collector thread.
///
/// See the [crate-level example](crate) for basic usage.
#[derive(Debug)]
pub struct SplitJoin {
    senders: Vec<Sender<Msg>>,
    workers: Vec<JoinHandle<(WorkerStats, Option<obs::trace::TraceRing>)>>,
    collector: Option<JoinHandle<Vec<MatchPair>>>,
    batch_size: usize,
    /// Caller-side distribution buffer; drained on flush/shutdown so a
    /// partial batch is never lost.
    pending: RefCell<Vec<(StreamTag, Tuple)>>,
    batch_hist: RefCell<obs::Histogram>,
    batches_sent: Cell<u64>,
}

impl SplitJoin {
    /// Spawns the worker (and, unless counting-only, collector) threads.
    ///
    /// # Panics
    ///
    /// Panics if `config.channel_capacity` or `config.batch_size` is
    /// zero (the builder methods reject these, but the fields are
    /// public).
    pub fn spawn(config: SplitJoinConfig) -> Self {
        assert!(config.channel_capacity > 0, "channel capacity must be positive");
        assert!(config.batch_size > 0, "batch size must be positive");
        let (result_tx, collector) = if config.collect_results {
            let (tx, rx) = bounded::<Vec<MatchPair>>(1_024);
            (Some(tx), Some(std::thread::spawn(move || collector_loop(&rx))))
        } else {
            (None, None)
        };

        let mut senders = Vec::with_capacity(config.num_cores);
        let mut workers = Vec::with_capacity(config.num_cores);
        for position in 0..config.num_cores {
            let (tx, rx) = bounded::<Msg>(config.channel_capacity);
            senders.push(tx);
            let cfg = config.clone();
            let results = result_tx.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(position, &cfg, &rx, results.as_ref())
            }));
        }
        drop(result_tx); // collector exits once every worker has stopped
        Self {
            senders,
            workers,
            collector,
            batch_size: config.batch_size,
            pending: RefCell::new(Vec::with_capacity(config.batch_size)),
            batch_hist: RefCell::new(obs::Histogram::new()),
            batches_sent: Cell::new(0),
        }
    }

    /// Submits one tuple to the distribution network. The tuple is
    /// buffered; every [`SplitJoinConfig::batch_size`] tuples, one batch
    /// message is broadcast to all join cores. Blocks when worker queues
    /// are full — natural back-pressure.
    pub fn process(&self, tag: StreamTag, tuple: Tuple) {
        let mut pending = self.pending.borrow_mut();
        pending.push((tag, tuple));
        if pending.len() >= self.batch_size {
            let batch = std::mem::take(&mut *pending);
            drop(pending);
            self.send_batch(batch);
        }
    }

    /// Broadcasts a pre-assembled batch as a single message per worker
    /// (after draining any partial [`SplitJoin::process`] buffer, so
    /// submission order is preserved).
    pub fn process_batch(&self, batch: &[(StreamTag, Tuple)]) {
        self.drain_pending();
        self.send_batch(batch.to_vec());
    }

    fn drain_pending(&self) {
        let batch = std::mem::take(&mut *self.pending.borrow_mut());
        self.send_batch(batch);
    }

    fn send_batch(&self, batch: Vec<(StreamTag, Tuple)>) {
        if batch.is_empty() {
            return;
        }
        self.batch_hist
            .borrow_mut()
            .record_value(batch.len() as u64);
        self.batches_sent.set(self.batches_sent.get() + 1);
        let shared: Arc<[(StreamTag, Tuple)]> = batch.into();
        for tx in &self.senders {
            tx.send(Msg::Batch(shared.clone())).expect("worker alive");
        }
    }

    /// Number of batch messages broadcast so far (per worker).
    pub fn batches_sent(&self) -> u64 {
        self.batches_sent.get()
    }

    /// Loads `tuples` directly into the sliding windows without probing —
    /// measurement setup, mirroring the hardware pre-fill path. Drains
    /// the pending batch first so earlier `process` calls stay ordered.
    pub fn prefill(&self, tag: StreamTag, tuples: &[Tuple]) {
        self.drain_pending();
        let shared: Arc<[Tuple]> = tuples.to_vec().into();
        for tx in &self.senders {
            tx.send(Msg::Prefill(tag, shared.clone()))
                .expect("worker alive");
        }
    }

    /// Blocks until every worker has drained its queue and processed
    /// everything submitted before this call (including the partial
    /// batch, which is flushed first), and has handed any buffered
    /// results to the collector.
    pub fn flush(&self) {
        self.drain_pending();
        let (ack_tx, ack_rx) = bounded::<()>(self.senders.len());
        for tx in &self.senders {
            tx.send(Msg::Flush(ack_tx.clone())).expect("worker alive");
        }
        drop(ack_tx);
        // One ack per worker; channel closes afterwards.
        let acks = ack_rx.iter().count();
        assert_eq!(acks, self.senders.len(), "missing flush acks");
    }

    /// Stops all threads and returns the accumulated outcome. Any
    /// buffered partial batch is drained first — workers never observe
    /// channel close with submitted-but-unsent tuples outstanding, so an
    /// explicit [`SplitJoin::flush`] before shutdown is not required for
    /// completeness.
    pub fn shutdown(self) -> JoinOutcome {
        self.drain_pending();
        for tx in &self.senders {
            tx.send(Msg::Stop).expect("worker alive");
        }
        drop(self.senders);
        let mut worker_stats = Vec::with_capacity(self.workers.len());
        let mut trace = Vec::new();
        for w in self.workers {
            let (stats, ring) = w.join().expect("worker thread panicked");
            worker_stats.push(stats);
            trace.extend(ring);
        }
        let (results, result_count) = match self.collector {
            Some(c) => {
                let results = c.join().expect("collector thread panicked");
                let count = results.len() as u64;
                (results, count)
            }
            // Counting-only: fold the per-worker match counters.
            None => (Vec::new(), worker_stats.iter().map(|w| w.matches).sum()),
        };
        JoinOutcome {
            results,
            result_count,
            worker_stats,
            batch_sizes: self.batch_hist.into_inner(),
            trace,
        }
    }
}

fn collector_loop(rx: &Receiver<Vec<MatchPair>>) -> Vec<MatchPair> {
    let mut kept = Vec::new();
    for chunk in rx.iter() {
        kept.extend(chunk);
    }
    kept
}

/// Worker-local sub-window storage, specialized per algorithm. Both
/// variants are flat ring buffers (see `streamcore::window`).
#[derive(Debug, Clone)]
enum SwWindow {
    Nested(FlatWindow),
    Hash(HashIndexWindow),
}

impl SwWindow {
    fn new(algorithm: SwJoinAlgorithm, capacity: usize) -> Self {
        match algorithm {
            SwJoinAlgorithm::NestedLoop => SwWindow::Nested(FlatWindow::new(capacity)),
            SwJoinAlgorithm::Hash => SwWindow::Hash(HashIndexWindow::new(capacity)),
        }
    }

    fn insert(&mut self, tuple: Tuple) {
        match self {
            SwWindow::Nested(w) => {
                w.insert(tuple);
            }
            SwWindow::Hash(w) => {
                w.insert(tuple);
            }
        }
    }
}

struct WorkerState<'a> {
    position: u64,
    n: u64,
    predicate: JoinPredicate,
    window_r: SwWindow,
    window_s: SwWindow,
    r_count: u64,
    s_count: u64,
    stats: WorkerStats,
    /// Locally buffered matches awaiting a chunked send (empty when
    /// counting-only).
    out: Vec<MatchPair>,
    out_chunk: usize,
    results: Option<&'a Sender<Vec<MatchPair>>>,
}

impl WorkerState<'_> {
    fn handle_tuple(&mut self, tag: StreamTag, tuple: Tuple) {
        self.stats.tuples_seen += 1;
        // Probe the opposite sub-window. The nested-loop path scans the
        // contiguous key segments of the flat window and touches a
        // payload only when the key predicate holds.
        let opposite = match tag {
            StreamTag::R => &self.window_s,
            StreamTag::S => &self.window_r,
        };
        let probe_key = tuple.key();
        match opposite {
            SwWindow::Nested(w) => {
                for (keys, payloads) in w.segments() {
                    for (i, &key) in keys.iter().enumerate() {
                        self.stats.comparisons += 1;
                        let key_match = match tag {
                            StreamTag::R => self.predicate.matches_keys(probe_key, key),
                            StreamTag::S => self.predicate.matches_keys(key, probe_key),
                        };
                        if key_match {
                            let stored = Tuple::new(key, payloads[i]);
                            self.stats.matches += 1;
                            if let Some(tx) = self.results {
                                self.out.push(MatchPair::oriented(tag, tuple, stored));
                                if self.out.len() >= self.out_chunk {
                                    tx.send(std::mem::take(&mut self.out))
                                        .expect("collector alive");
                                }
                            }
                        }
                    }
                }
            }
            SwWindow::Hash(w) => {
                for stored in w.probe(probe_key) {
                    self.stats.comparisons += 1;
                    self.stats.matches += 1;
                    if let Some(tx) = self.results {
                        self.out.push(MatchPair::oriented(tag, tuple, stored));
                        if self.out.len() >= self.out_chunk {
                            tx.send(std::mem::take(&mut self.out))
                                .expect("collector alive");
                        }
                    }
                }
            }
        }
        self.store(tag, tuple, true);
    }

    /// Round-robin storage without central coordination.
    fn store(&mut self, tag: StreamTag, tuple: Tuple, count_stat: bool) {
        let count = match tag {
            StreamTag::R => &mut self.r_count,
            StreamTag::S => &mut self.s_count,
        };
        let my_turn = *count % self.n == self.position;
        *count += 1;
        if my_turn {
            if count_stat {
                self.stats.stored += 1;
            }
            match tag {
                StreamTag::R => self.window_r.insert(tuple),
                StreamTag::S => self.window_s.insert(tuple),
            };
        }
    }

    /// Hands any buffered matches to the collector (barrier points and
    /// shutdown).
    fn flush_results(&mut self) {
        if let Some(tx) = self.results {
            if !self.out.is_empty() {
                tx.send(std::mem::take(&mut self.out)).expect("collector alive");
            }
        }
    }
}

fn worker_loop(
    position: usize,
    config: &SplitJoinConfig,
    rx: &Receiver<Msg>,
    results: Option<&Sender<Vec<MatchPair>>>,
) -> (WorkerStats, Option<obs::trace::TraceRing>) {
    let sub = config.sub_window();
    let mut w = WorkerState {
        position: position as u64,
        n: config.num_cores as u64,
        predicate: config.predicate,
        window_r: SwWindow::new(config.algorithm, sub),
        window_s: SwWindow::new(config.algorithm, sub),
        r_count: 0,
        s_count: 0,
        stats: WorkerStats::default(),
        out: Vec::new(),
        out_chunk: config.batch_size.max(1),
        results,
    };

    let mut ring = obs::trace::enabled().then(|| {
        obs::trace::TraceRing::new(
            format!("sw.worker.{position}"),
            obs::trace::TimeDomain::Wall,
        )
    });
    let mut idle_since = obs::trace::now_ns();

    for msg in rx.iter() {
        if let Some(r) = ring.as_mut() {
            let t = obs::trace::now_ns();
            r.record("recv", idle_since, t.saturating_sub(idle_since));
        }
        match msg {
            Msg::Batch(batch) => {
                let t0 = obs::trace::now_ns();
                for &(tag, tuple) in batch.iter() {
                    w.handle_tuple(tag, tuple);
                }
                if let Some(r) = ring.as_mut() {
                    let t1 = obs::trace::now_ns();
                    r.record_arg("probe", t0, t1.saturating_sub(t0), batch.len() as u64);
                }
            }
            Msg::Prefill(tag, tuples) => {
                // Same round-robin discipline, no probing.
                let t0 = obs::trace::now_ns();
                for &t in tuples.iter() {
                    w.store(tag, t, false);
                }
                if let Some(r) = ring.as_mut() {
                    let t1 = obs::trace::now_ns();
                    r.record_arg("insert", t0, t1.saturating_sub(t0), tuples.len() as u64);
                }
            }
            Msg::Flush(ack) => {
                let t0 = obs::trace::now_ns();
                w.flush_results();
                if let Some(r) = ring.as_mut() {
                    let t1 = obs::trace::now_ns();
                    r.record("send", t0, t1.saturating_sub(t0));
                }
                let _ = ack.send(());
            }
            Msg::Stop => break,
        }
        idle_since = obs::trace::now_ns();
    }
    w.flush_results();
    (w.stats, ring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::reference_join;
    use std::collections::HashMap;
    use streamcore::workload::{KeyDist, WorkloadSpec};

    fn as_multiset(results: &[MatchPair]) -> HashMap<(u64, u64), u32> {
        let mut m = HashMap::new();
        for p in results {
            *m.entry((p.r.raw(), p.s.raw())).or_insert(0) += 1;
        }
        m
    }

    fn run_workload(config: SplitJoinConfig, inputs: &[(StreamTag, Tuple)]) -> JoinOutcome {
        let join = SplitJoin::spawn(config);
        for &(tag, t) in inputs {
            join.process(tag, t);
        }
        join.flush();
        join.shutdown()
    }

    #[test]
    fn matches_reference_exactly() {
        let inputs: Vec<_> = WorkloadSpec::new(500, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        // Core counts dividing the window: the effective window equals the
        // nominal one (see `effective_window`).
        for cores in [1usize, 2, 4, 8] {
            let outcome = run_workload(SplitJoinConfig::new(cores, 64), &inputs);
            let want = reference_join(&inputs, 64, JoinPredicate::Equi);
            assert_eq!(
                as_multiset(&outcome.results),
                as_multiset(&want),
                "mismatch with {cores} cores"
            );
            assert!(!want.is_empty());
        }
    }

    #[test]
    fn every_batch_size_yields_identical_results() {
        let inputs: Vec<_> = WorkloadSpec::new(700, KeyDist::Uniform { domain: 12 })
            .generate()
            .collect();
        let want = as_multiset(&reference_join(&inputs, 48, JoinPredicate::Equi));
        assert!(!want.is_empty());
        for batch in [1usize, 2, 7, 64, 256, 4_096] {
            let outcome = run_workload(
                SplitJoinConfig::new(3, 48).with_batch_size(batch),
                &inputs,
            );
            assert_eq!(
                as_multiset(&outcome.results),
                want,
                "mismatch at batch size {batch}"
            );
        }
    }

    #[test]
    fn shutdown_drains_partial_batches() {
        // Regression: with `batch_size` larger than the whole stream, no
        // batch is ever full — shutdown (without an explicit flush) must
        // still deliver every buffered tuple before workers see channel
        // close.
        let inputs: Vec<_> = WorkloadSpec::new(40, KeyDist::Uniform { domain: 4 })
            .generate()
            .collect();
        let want = reference_join(&inputs, 16, JoinPredicate::Equi);
        assert!(!want.is_empty());
        let join = SplitJoin::spawn(SplitJoinConfig::new(2, 16).with_batch_size(1_024));
        for &(tag, t) in &inputs {
            join.process(tag, t);
        }
        let outcome = join.shutdown(); // no flush
        assert_eq!(as_multiset(&outcome.results), as_multiset(&want));
        assert_eq!(outcome.batch_sizes.total(), 1, "one partial batch");
        assert_eq!(outcome.batch_sizes.max(), Some(40));
    }

    #[test]
    fn uneven_core_count_rounds_the_window_up() {
        let config = SplitJoinConfig::new(7, 64);
        assert_eq!(config.sub_window(), 10);
        assert_eq!(config.effective_window(), 70);
        // Against a reference with the *effective* window, results match.
        let inputs: Vec<_> = WorkloadSpec::new(600, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let outcome = run_workload(config, &inputs);
        let want = reference_join(&inputs, 70, JoinPredicate::Equi);
        assert_eq!(as_multiset(&outcome.results), as_multiset(&want));
    }

    #[test]
    fn batch_processing_matches_per_tuple_processing() {
        let inputs: Vec<_> = WorkloadSpec::new(300, KeyDist::Uniform { domain: 8 })
            .generate()
            .collect();
        let per_tuple = run_workload(
            SplitJoinConfig::new(4, 32).with_batch_size(1),
            &inputs,
        );
        let join = SplitJoin::spawn(SplitJoinConfig::new(4, 32));
        for chunk in inputs.chunks(37) {
            join.process_batch(chunk);
        }
        join.flush();
        let batched = join.shutdown();
        assert_eq!(
            as_multiset(&batched.results),
            as_multiset(&per_tuple.results)
        );
    }

    #[test]
    fn matches_reference_with_expiry() {
        let inputs: Vec<_> = WorkloadSpec::new(2_000, KeyDist::Uniform { domain: 8 })
            .generate()
            .collect();
        let outcome = run_workload(SplitJoinConfig::new(4, 32), &inputs);
        let want = reference_join(&inputs, 32, JoinPredicate::Equi);
        assert_eq!(as_multiset(&outcome.results), as_multiset(&want));
    }

    #[test]
    fn every_worker_sees_every_tuple_but_stores_its_share() {
        let inputs: Vec<_> = WorkloadSpec::new(400, KeyDist::Uniform { domain: 1 << 20 })
            .generate()
            .collect();
        let outcome = run_workload(SplitJoinConfig::new(4, 80), &inputs);
        for (i, ws) in outcome.worker_stats.iter().enumerate() {
            assert_eq!(ws.tuples_seen, 400, "worker {i}");
            assert_eq!(ws.stored, 100, "worker {i}");
        }
    }

    #[test]
    fn prefill_skips_probing_but_keeps_rotation() {
        let config = SplitJoinConfig::new(2, 8);
        let join = SplitJoin::spawn(config);
        let fill: Vec<Tuple> = (0..4u32).map(|i| Tuple::new(i, i)).collect();
        join.prefill(StreamTag::S, &fill);
        // Probe matches exactly one prefilled tuple.
        join.process(StreamTag::R, Tuple::new(2, 99));
        join.flush();
        let outcome = join.shutdown();
        assert_eq!(outcome.result_count, 1);
        let total_comparisons: u64 =
            outcome.worker_stats.iter().map(|w| w.comparisons).sum();
        assert_eq!(total_comparisons, 4, "prefill must not probe");
    }

    #[test]
    fn counting_only_discards_results() {
        let config = SplitJoinConfig::new(2, 16).counting_only();
        let join = SplitJoin::spawn(config);
        join.process(StreamTag::S, Tuple::new(1, 0));
        join.process(StreamTag::R, Tuple::new(1, 1));
        join.flush();
        let outcome = join.shutdown();
        assert_eq!(outcome.result_count, 1);
        assert!(outcome.results.is_empty());
    }

    #[test]
    fn counting_only_agrees_with_collection_at_every_batch_size() {
        let inputs: Vec<_> = WorkloadSpec::new(900, KeyDist::Uniform { domain: 8 })
            .generate()
            .collect();
        let collected = run_workload(SplitJoinConfig::new(3, 24), &inputs);
        for batch in [1usize, 5, 256] {
            let counted = run_workload(
                SplitJoinConfig::new(3, 24).with_batch_size(batch).counting_only(),
                &inputs,
            );
            assert_eq!(counted.result_count, collected.result_count);
            assert!(counted.results.is_empty());
        }
    }

    #[test]
    fn band_predicate_propagates_to_workers() {
        let config =
            SplitJoinConfig::new(3, 9).with_predicate(JoinPredicate::Band { delta: 5 });
        let join = SplitJoin::spawn(config);
        join.process(StreamTag::S, Tuple::new(100, 0));
        join.process(StreamTag::R, Tuple::new(104, 1));
        join.process(StreamTag::R, Tuple::new(106, 2));
        join.flush();
        let outcome = join.shutdown();
        assert_eq!(outcome.result_count, 1);
    }

    #[test]
    fn hash_algorithm_matches_nested_loop_exactly() {
        let inputs: Vec<_> = WorkloadSpec::new(800, KeyDist::Uniform { domain: 12 })
            .generate()
            .collect();
        let nested = run_workload(SplitJoinConfig::new(4, 32), &inputs);
        let hashed = run_workload(
            SplitJoinConfig::new(4, 32).with_algorithm(SwJoinAlgorithm::Hash),
            &inputs,
        );
        assert_eq!(
            as_multiset(&hashed.results),
            as_multiset(&nested.results)
        );
        // Hash workers compare only matching tuples.
        let nested_cmp: u64 = nested.worker_stats.iter().map(|w| w.comparisons).sum();
        let hashed_cmp: u64 = hashed.worker_stats.iter().map(|w| w.comparisons).sum();
        let matches: u64 = hashed.worker_stats.iter().map(|w| w.matches).sum();
        assert_eq!(hashed_cmp, matches);
        assert!(nested_cmp > 2 * hashed_cmp);
    }

    #[test]
    #[should_panic(expected = "hash join requires an equi-join")]
    fn hash_with_band_predicate_is_rejected() {
        let _ = SplitJoinConfig::new(2, 8)
            .with_predicate(JoinPredicate::Band { delta: 2 })
            .with_algorithm(SwJoinAlgorithm::Hash);
    }

    #[test]
    #[should_panic(expected = "channel capacity must be positive")]
    fn zero_channel_capacity_is_rejected() {
        let _ = SplitJoinConfig::new(2, 8).with_channel_capacity(0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_is_rejected() {
        let _ = SplitJoinConfig::new(2, 8).with_batch_size(0);
    }

    #[test]
    #[should_panic(expected = "channel capacity must be positive")]
    fn spawn_validates_direct_field_writes() {
        let mut config = SplitJoinConfig::new(2, 8);
        config.channel_capacity = 0;
        let _ = SplitJoin::spawn(config);
    }

    #[test]
    fn flush_is_a_real_barrier() {
        let config = SplitJoinConfig::new(4, 4_096);
        let join = SplitJoin::spawn(config);
        let fill: Vec<Tuple> = (0..4_096u32).map(|i| Tuple::new(i, i)).collect();
        join.prefill(StreamTag::S, &fill);
        for i in 0..64u32 {
            join.process(StreamTag::R, Tuple::new(i, 1 << 20 | i));
        }
        join.flush();
        // After flush all probes are done: every R probed its key once.
        let outcome = join.shutdown();
        assert_eq!(outcome.result_count, 64);
    }

    #[test]
    fn batch_histogram_records_distribution_shape() {
        let join = SplitJoin::spawn(SplitJoinConfig::new(2, 8).with_batch_size(4));
        for i in 0..10u32 {
            join.process(StreamTag::R, Tuple::new(i, i));
        }
        join.flush(); // two full batches of 4, one partial of 2
        assert_eq!(join.batches_sent(), 3);
        let outcome = join.shutdown();
        assert_eq!(outcome.batch_sizes.total(), 3);
        assert_eq!(outcome.batch_sizes.max(), Some(4));
        assert_eq!(outcome.batch_sizes.min(), Some(2));
        let reg = outcome.registry();
        assert_eq!(reg.get("splitjoin.batches"), Some(3));
        assert!(reg.get("splitjoin.worker0.probes").is_some());
    }

    #[test]
    #[cfg(feature = "obs")]
    fn tracing_records_worker_spans_without_changing_results() {
        let inputs: Vec<_> = WorkloadSpec::new(600, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let prefill: Vec<Tuple> = (0..32u32).map(|i| Tuple::new(i, i)).collect();
        let config = || SplitJoinConfig::new(3, 64).with_batch_size(32);

        let run = |traced: bool| {
            if traced {
                obs::trace::enable(1);
            }
            let join = SplitJoin::spawn(config());
            join.prefill(StreamTag::S, &prefill);
            for &(tag, t) in &inputs {
                join.process(tag, t);
            }
            join.flush();
            let outcome = join.shutdown();
            if traced {
                obs::trace::disable();
            }
            outcome
        };

        let plain = run(false);
        assert!(plain.trace.is_empty());
        let traced = run(true);

        assert_eq!(as_multiset(&plain.results), as_multiset(&traced.results));
        assert_eq!(plain.worker_stats, traced.worker_stats);

        assert_eq!(traced.trace.len(), 3);
        let mut tracks: Vec<_> = traced.trace.iter().map(|r| r.track().to_string()).collect();
        tracks.sort();
        assert_eq!(tracks, ["sw.worker.0", "sw.worker.1", "sw.worker.2"]);
        for ring in &traced.trace {
            assert_eq!(ring.domain(), obs::trace::TimeDomain::Wall);
            assert!(!ring.is_empty(), "worker ring {} is empty", ring.track());
            let names: HashMap<&str, u32> =
                ring.events().iter().fold(HashMap::new(), |mut m, e| {
                    *m.entry(e.name).or_insert(0) += 1;
                    m
                });
            for name in names.keys() {
                assert!(
                    ["recv", "probe", "insert", "send"].contains(name),
                    "unexpected span name {name}"
                );
            }
            assert!(names.contains_key("probe"), "no probe spans on {}", ring.track());
            assert!(names.contains_key("insert"), "no insert spans on {}", ring.track());
        }
    }
}
